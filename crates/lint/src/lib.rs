//! `samurai-lint` — the workspace invariant analyzer.
//!
//! SAMURAI's two load-bearing guarantees — bit-identical parallel
//! Monte-Carlo ensembles and an allocation-free compiled
//! Newton/timestep hot loop — are contracts that a single stray
//! `thread_rng()`, `HashMap` iteration or `clone()` can silently
//! destroy. This crate checks them mechanically on every commit: a
//! from-scratch, dependency-free static analyzer (hand-rolled lexer +
//! rule engine, no `syn` — the vendor tree is offline) that walks
//! every first-party crate and reports violations as deny-by-default
//! diagnostics with `file:line` spans and stable rule ids.
//!
//! Analysis is two-pass since v2. Pass 1 runs the token-level rules
//! and parses every file into an item index ([`parser`]); pass 2
//! builds a name-resolution-approximate call graph over the whole
//! workspace ([`callgraph`]) and checks the transitive contracts. A
//! content-hash cache ([`cache`]) makes warm runs skip pass 1 for
//! unchanged files.
//!
//! The rule catalog ([`rules::RULES`]) covers six families:
//!
//! * `DET…` — determinism: no wall clocks, ambient randomness or
//!   environment reads in library code; no unordered collections in
//!   numeric crates.
//! * `HOT…` — hot-loop purity: no allocation, cloning, growth or
//!   collection inside declared `// lint: hot-loop` regions; the
//!   `HOT1xx` call-graph rules extend the same contract to every
//!   function reachable from a hot region or a `// lint: hot-fn`
//!   annotation, with the witness call chain in the diagnostic.
//! * `DRW…` — fixed draw order: in the sampling modules, no RNG draw
//!   under a conditional guard (unless annotated
//!   `// lint: fixed-draw: reason`), and public sampling fns consume
//!   a threaded job-indexed RNG.
//! * `CG…` — layering: numeric code on the `run_ensemble*` path never
//!   calls tool crates.
//! * `HYG…` — numeric hygiene: no `unwrap`/`expect`/`panic!` outside
//!   tests, no float-literal equality, `total_cmp` over `partial_cmp`.
//! * `UNS…` — unsafe audit: every `unsafe` carries a `SAFETY:`
//!   comment.
//!
//! Reviewed exceptions are recorded in-source with
//! `// lint: allow(RULE): reason`. See DESIGN.md §"Invariants & lint
//! catalog" and §"Workspace analysis" for the full policy, and
//! `samurai-lint --explain <RULE>` for any single rule.

pub mod cache;
pub mod callgraph;
pub mod context;
pub mod engine;
pub mod parser;
pub mod report;
pub mod rules;
pub mod tokenizer;

pub use engine::{
    analyze_file, analyze_source, analyze_source_full, analyze_workspace, analyze_workspace_full,
    classify_crate, WorkspaceAnalysis,
};
pub use rules::{FileClass, Finding, Rule, RULES};
