//! `samurai-lint` — the workspace invariant analyzer.
//!
//! SAMURAI's two load-bearing guarantees — bit-identical parallel
//! Monte-Carlo ensembles and an allocation-free compiled
//! Newton/timestep hot loop — are contracts that a single stray
//! `thread_rng()`, `HashMap` iteration or `clone()` can silently
//! destroy. This crate checks them mechanically on every commit: a
//! from-scratch, dependency-free static analyzer (hand-rolled lexer +
//! rule engine, no `syn` — the vendor tree is offline) that walks
//! every first-party crate and reports violations as deny-by-default
//! diagnostics with `file:line` spans and stable rule ids.
//!
//! The rule catalog ([`rules::RULES`]) covers four families:
//!
//! * `DET…` — determinism: no wall clocks, ambient randomness or
//!   environment reads in library code; no unordered collections in
//!   numeric crates.
//! * `HOT…` — hot-loop purity: no allocation, cloning, growth or
//!   collection inside declared `// lint: hot-loop` regions.
//! * `HYG…` — numeric hygiene: no `unwrap`/`expect`/`panic!` outside
//!   tests, no float-literal equality, `total_cmp` over `partial_cmp`.
//! * `UNS…` — unsafe audit: every `unsafe` carries a `SAFETY:`
//!   comment.
//!
//! Reviewed exceptions are recorded in-source with
//! `// lint: allow(RULE): reason`. See DESIGN.md §"Invariants & lint
//! catalog" for the full policy, and `samurai-lint --explain <RULE>`
//! for any single rule.

pub mod context;
pub mod engine;
pub mod report;
pub mod rules;
pub mod tokenizer;

pub use engine::{analyze_file, analyze_source, analyze_workspace, classify_crate};
pub use rules::{FileClass, Finding, Rule, RULES};
