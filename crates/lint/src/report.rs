//! Rendering findings: human-readable text and machine-readable JSON.
//!
//! The JSON writer is hand-rolled (the workspace vendors only stub
//! external crates, and the analyzer must stay dependency-free); it
//! emits a flat array of `{rule, path, line, message}` objects with
//! full string escaping, suitable for CI annotation tooling.

use crate::rules::{Finding, Rule};

/// One finding as `path:line: RULE title — message`.
pub fn render_text(f: &Finding) -> String {
    format!("{}:{}: {} {}", f.path, f.line, f.rule, f.message)
}

/// All findings plus a summary line, for terminal output.
pub fn render_report(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&render_text(f));
        out.push('\n');
    }
    if findings.is_empty() {
        out.push_str("samurai-lint: no violations\n");
    } else {
        out.push_str(&format!(
            "samurai-lint: {} violation{}\n",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" }
        ));
    }
    out
}

/// The findings as a JSON array.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            escape(f.rule),
            escape(&f.path),
            f.line,
            escape(&f.message)
        ));
    }
    out.push_str(if findings.is_empty() { "]\n" } else { "\n]\n" });
    out
}

/// The `--explain` page for one rule.
pub fn render_explain(rule: &Rule) -> String {
    format!(
        "{} — {}\ncontract: {}\n\n{}\n",
        rule.id, rule.title, rule.contract, rule.explain
    )
}

/// Minimal JSON string escaping (shared with the cache and graph
/// writers).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    fn sample() -> Finding {
        Finding {
            rule: "HYG001",
            path: "crates/core/src/x.rs".into(),
            line: 42,
            message: "`.unwrap()` panics \"hard\"".into(),
        }
    }

    #[test]
    fn text_format_is_path_line_rule() {
        assert_eq!(
            render_text(&sample()),
            "crates/core/src/x.rs:42: HYG001 `.unwrap()` panics \"hard\""
        );
    }

    #[test]
    fn json_escapes_quotes_and_is_an_array() {
        let j = render_json(&[sample()]);
        assert!(j.starts_with('[') && j.trim_end().ends_with(']'));
        assert!(j.contains("\\\"hard\\\""));
        assert!(j.contains("\"line\": 42"));
        assert_eq!(render_json(&[]).trim(), "[]");
    }

    #[test]
    fn report_summarises_counts() {
        assert!(render_report(&[]).contains("no violations"));
        assert!(render_report(&[sample()]).contains("1 violation\n"));
        assert!(render_report(&[sample(), sample()]).contains("2 violations\n"));
    }
}
