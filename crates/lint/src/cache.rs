//! The incremental-analysis cache (`target/lint-cache.json`).
//!
//! Pass 1 is a pure function of a file's bytes and classification, so
//! its output — the parsed item index *and* the token-level findings —
//! can be keyed on a content hash and reused. A warm run therefore
//! skips both tokenization and rule matching for unchanged files and
//! goes straight to pass 2, which keeps the two-pass analyzer under
//! the old single-pass wall time in CI.
//!
//! The format is hand-rolled JSON (schema `samurai-lint-cache-v1`) so
//! the crate stays dependency-free. Robustness policy: the cache is an
//! accelerator, never a source of truth — any parse error, schema
//! mismatch, hash mismatch or unknown rule id silently degrades to a
//! cold analysis of the affected file. Corrupting the cache can cost
//! time, never correctness.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use crate::parser::{Call, Draw, Effect, FileRecord, Item, Recv};
use crate::report::escape;
use crate::rules::{rule_by_id, FileClass, Finding};

/// Schema tag; bump on any layout change to invalidate old caches.
const SCHEMA: &str = "samurai-lint-cache-v1";

/// FNV-1a 64-bit content hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One cached analysis: content hash plus the full pass-1 output.
pub type Entries = BTreeMap<String, (u64, FileRecord)>;

/// Loads a cache file; any failure yields an empty cache.
pub fn load(path: &Path) -> Entries {
    let Ok(text) = fs::read_to_string(path) else {
        return Entries::new();
    };
    parse_cache(&text).unwrap_or_default()
}

/// Writes the cache file (creating parent directories).
pub fn store(path: &Path, entries: &Entries) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    fs::write(path, render_cache(entries))
}

// --- serialization ---------------------------------------------------

fn render_cache(entries: &Entries) -> String {
    let mut out = format!("{{\"schema\": \"{SCHEMA}\", \"files\": {{");
    for (i, (path, (hash, rec))) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n\"{}\": {{\"hash\": \"{hash:016x}\", {}}}",
            escape(path),
            render_record(rec)
        ));
    }
    out.push_str("\n}}\n");
    out
}

fn render_record(rec: &FileRecord) -> String {
    let class = match rec.class {
        FileClass::Library { numeric: true } => "numeric",
        FileClass::Library { numeric: false } => "library",
        FileClass::Tool => "tool",
    };
    let items: Vec<String> = rec.items.iter().map(render_item).collect();
    let hot_calls: Vec<String> = rec.hot_calls.iter().map(render_call).collect();
    let allows: Vec<String> = rec
        .allows
        .iter()
        .map(|(r, l)| format!("[\"{}\", {l}]", escape(r)))
        .collect();
    let fixed: Vec<String> = rec.fixed_draw_lines.iter().map(usize::to_string).collect();
    let findings: Vec<String> = rec
        .token_findings
        .iter()
        .map(|f| {
            format!(
                "{{\"rule\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                f.rule,
                f.line,
                escape(&f.message)
            )
        })
        .collect();
    format!(
        "\"class\": \"{class}\", \"items\": [{}], \"hot_calls\": [{}], \
         \"allows\": [{}], \"fixed_draw\": [{}], \"findings\": [{}]",
        items.join(", "),
        hot_calls.join(", "),
        allows.join(", "),
        fixed.join(", "),
        findings.join(", ")
    )
}

fn render_item(item: &Item) -> String {
    let impl_ty = item
        .impl_type
        .as_ref()
        .map_or("null".to_string(), |t| format!("\"{}\"", escape(t)));
    let calls: Vec<String> = item.calls.iter().map(render_call).collect();
    let effects: Vec<String> = item
        .effects
        .iter()
        .map(|e| format!("[\"{}\", {}, \"{}\"]", e.rule, e.line, escape(&e.what)))
        .collect();
    let draws: Vec<String> = item
        .draws
        .iter()
        .map(|d| format!("[\"{}\", {}, {}]", escape(&d.name), d.line, d.guarded))
        .collect();
    let ctors: Vec<String> = item.rng_ctor_lines.iter().map(usize::to_string).collect();
    format!(
        "{{\"name\": \"{}\", \"impl\": {impl_ty}, \"pub\": {}, \"rng\": {}, \
         \"hot_fn\": {}, \"line\": {}, \"end\": {}, \"calls\": [{}], \
         \"effects\": [{}], \"draws\": [{}], \"rng_ctors\": [{}]}}",
        escape(&item.name),
        item.is_pub,
        item.has_rng_param,
        item.hot_fn,
        item.line,
        item.end_line,
        calls.join(", "),
        effects.join(", "),
        draws.join(", "),
        ctors.join(", ")
    )
}

fn render_call(call: &Call) -> String {
    let recv = match &call.recv {
        Recv::Method => "\"method\"".to_string(),
        Recv::Bare => "\"bare\"".to_string(),
        Recv::Path(segs) => {
            let segs: Vec<String> = segs.iter().map(|s| format!("\"{}\"", escape(s))).collect();
            format!("[{}]", segs.join(", "))
        }
    };
    format!(
        "{{\"name\": \"{}\", \"line\": {}, \"recv\": {recv}}}",
        escape(&call.name),
        call.line
    )
}

// --- deserialization -------------------------------------------------

/// Minimal JSON value for the reader side.
#[derive(Debug, Clone)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }
    fn str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
    fn arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }
    fn usize(&self) -> Option<usize> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
            _ => None,
        }
    }
    fn bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

fn parse_cache(text: &str) -> Option<Entries> {
    let root = Parser::new(text).parse()?;
    if root.get("schema")?.str()? != SCHEMA {
        return None;
    }
    let Value::Obj(files) = root.get("files")? else {
        return None;
    };
    let mut entries = Entries::new();
    for (path, v) in files {
        let hash = u64::from_str_radix(v.get("hash")?.str()?, 16).ok()?;
        let rec = parse_record(path, v)?;
        entries.insert(path.clone(), (hash, rec));
    }
    Some(entries)
}

fn parse_record(path: &str, v: &Value) -> Option<FileRecord> {
    let class = match v.get("class")?.str()? {
        "numeric" => FileClass::Library { numeric: true },
        "library" => FileClass::Library { numeric: false },
        "tool" => FileClass::Tool,
        _ => return None,
    };
    let mut items = Vec::new();
    for iv in v.get("items")?.arr()? {
        items.push(parse_item(iv)?);
    }
    let mut hot_calls = Vec::new();
    for cv in v.get("hot_calls")?.arr()? {
        hot_calls.push(parse_call(cv)?);
    }
    let mut allows = Vec::new();
    for av in v.get("allows")?.arr()? {
        let pair = av.arr()?;
        allows.push((pair.first()?.str()?.to_string(), pair.get(1)?.usize()?));
    }
    let mut fixed_draw_lines = Vec::new();
    for fv in v.get("fixed_draw")?.arr()? {
        fixed_draw_lines.push(fv.usize()?);
    }
    let mut token_findings = Vec::new();
    for fv in v.get("findings")?.arr()? {
        // Rule ids intern back to the static catalog; an id the
        // current binary no longer knows invalidates the entry.
        let rule = rule_by_id(fv.get("rule")?.str()?)?.id;
        token_findings.push(Finding {
            rule,
            path: path.to_string(),
            line: fv.get("line")?.usize()?,
            message: fv.get("message")?.str()?.to_string(),
        });
    }
    Some(FileRecord {
        path: path.to_string(),
        class,
        items,
        hot_calls,
        allows,
        fixed_draw_lines,
        token_findings,
    })
}

fn parse_item(v: &Value) -> Option<Item> {
    let impl_type = match v.get("impl")? {
        Value::Null => None,
        Value::Str(s) => Some(s.clone()),
        _ => return None,
    };
    let mut calls = Vec::new();
    for cv in v.get("calls")?.arr()? {
        calls.push(parse_call(cv)?);
    }
    let mut effects = Vec::new();
    for ev in v.get("effects")?.arr()? {
        let t = ev.arr()?;
        let rule = match t.first()?.str()? {
            "HOT101" => "HOT101",
            "HOT102" => "HOT102",
            "HOT103" => "HOT103",
            _ => return None,
        };
        effects.push(Effect {
            rule,
            line: t.get(1)?.usize()?,
            what: t.get(2)?.str()?.to_string(),
        });
    }
    let mut draws = Vec::new();
    for dv in v.get("draws")?.arr()? {
        let t = dv.arr()?;
        draws.push(Draw {
            name: t.first()?.str()?.to_string(),
            line: t.get(1)?.usize()?,
            guarded: t.get(2)?.bool()?,
        });
    }
    let mut rng_ctor_lines = Vec::new();
    for rv in v.get("rng_ctors")?.arr()? {
        rng_ctor_lines.push(rv.usize()?);
    }
    Some(Item {
        name: v.get("name")?.str()?.to_string(),
        impl_type,
        is_pub: v.get("pub")?.bool()?,
        has_rng_param: v.get("rng")?.bool()?,
        hot_fn: v.get("hot_fn")?.bool()?,
        line: v.get("line")?.usize()?,
        end_line: v.get("end")?.usize()?,
        calls,
        effects,
        draws,
        rng_ctor_lines,
    })
}

fn parse_call(v: &Value) -> Option<Call> {
    let recv = match v.get("recv")? {
        Value::Str(s) if s == "method" => Recv::Method,
        Value::Str(s) if s == "bare" => Recv::Bare,
        Value::Arr(segs) => {
            let mut out = Vec::new();
            for s in segs {
                out.push(s.str()?.to_string());
            }
            Recv::Path(out)
        }
        _ => return None,
    };
    Some(Call {
        name: v.get("name")?.str()?.to_string(),
        line: v.get("line")?.usize()?,
        recv,
    })
}

/// Recursive-descent JSON reader — just enough for the cache schema
/// (and strict enough to reject anything else into a cold run).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse(mut self) -> Option<Value> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Some(v)
        } else {
            None
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<Value> {
        self.skip_ws();
        match self.bytes.get(self.pos)? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Value::Str),
            b't' => self.literal("true").map(|()| Value::Bool(true)),
            b'f' => self.literal("false").map(|()| Value::Bool(false)),
            b'n' => self.literal("null").map(|()| Value::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, lit: &str) -> Option<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Some(())
        } else {
            None
        }
    }

    fn object(&mut self) -> Option<Value> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Some(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos)? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Some(Value::Obj(map));
                }
                _ => return None,
            }
        }
    }

    fn array(&mut self) -> Option<Value> {
        self.eat(b'[')?;
        let mut arr = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Some(Value::Arr(arr));
        }
        loop {
            arr.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos)? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Some(Value::Arr(arr));
                }
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return None;
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos + 1..self.pos + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                &b if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8: validate a bounded window only
                    // (validating the whole remaining input here made
                    // the parse quadratic in the cache size).
                    let end = (self.pos + 4).min(self.bytes.len());
                    let window = &self.bytes[self.pos..end];
                    let s = match std::str::from_utf8(window) {
                        Ok(s) => s,
                        // A 4-byte window can cut the *next* scalar in
                        // half; the first one is still whole.
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()]).ok()?
                        }
                        Err(_) => return None,
                    };
                    let c = s.chars().next()?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Option<Value> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return None;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse()
            .ok()
            .map(Value::Num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;
    use crate::parser::parse_file;
    use crate::tokenizer::tokenize;

    fn sample_record() -> FileRecord {
        let src = "// lint: hot-fn\n\
                   pub fn kernel(rng: &mut R, on: bool) -> f64 {\n\
                   // lint: hot-loop\n\
                   stage(1.0);\n\
                   // lint: end-hot-loop\n\
                   let s = x.to_string(); // lint: allow(HOT101): boundary\n\
                   // lint: fixed-draw: contract\n\
                   if on { standard_normal(rng) } else { 0.0 }\n\
                   }\n\
                   impl W {\n    fn helper(&self) { Self::go(); v.to_vec(); }\n    fn go() {}\n}\n";
        let (toks, comments) = tokenize(src);
        let ctx = FileContext::build(&toks, &comments);
        let mut rec = parse_file(
            "crates/core/src/scenario.rs",
            FileClass::Library { numeric: true },
            &toks,
            &ctx,
        );
        rec.token_findings.push(Finding {
            rule: "HYG001",
            path: rec.path.clone(),
            line: 6,
            message: "quoted \"msg\" with\nnewline".into(),
        });
        rec
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let rec = sample_record();
        let mut entries = Entries::new();
        entries.insert(rec.path.clone(), (fnv1a(b"content"), rec.clone()));
        let parsed = parse_cache(&render_cache(&entries)).expect("cache parses");
        let (hash, back) = &parsed["crates/core/src/scenario.rs"];
        assert_eq!(*hash, fnv1a(b"content"));
        assert_eq!(back.class, rec.class);
        assert_eq!(back.items.len(), rec.items.len());
        for (a, b) in back.items.iter().zip(&rec.items) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.impl_type, b.impl_type);
            assert_eq!(a.is_pub, b.is_pub);
            assert_eq!(a.has_rng_param, b.has_rng_param);
            assert_eq!(a.hot_fn, b.hot_fn);
            assert_eq!(a.calls, b.calls);
            assert_eq!(a.effects.len(), b.effects.len());
            assert_eq!(a.draws.len(), b.draws.len());
            assert_eq!(a.rng_ctor_lines, b.rng_ctor_lines);
        }
        assert_eq!(back.hot_calls, rec.hot_calls);
        assert_eq!(back.allows, rec.allows);
        assert_eq!(back.fixed_draw_lines, rec.fixed_draw_lines);
        assert_eq!(back.token_findings, rec.token_findings);
    }

    #[test]
    fn schema_mismatch_and_garbage_degrade_to_empty() {
        assert!(parse_cache("not json at all").is_none());
        assert!(parse_cache("{\"schema\": \"other-v9\", \"files\": {}}").is_none());
        let ok = format!("{{\"schema\": \"{SCHEMA}\", \"files\": {{}}}}");
        assert_eq!(parse_cache(&ok).map(|e| e.len()), Some(0));
    }

    #[test]
    fn unknown_rule_ids_invalidate_the_entry() {
        let rec = sample_record();
        let mut entries = Entries::new();
        entries.insert(rec.path.clone(), (1, rec));
        let text = render_cache(&entries).replace("HYG001", "ZZZ999");
        assert!(parse_cache(&text).is_none());
    }

    #[test]
    fn fnv1a_is_stable_and_content_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(fnv1a(b"same"), fnv1a(b"same"));
    }
}
