//! Pass 2 of the workspace analyzer: the call graph and the semantic
//! rule families.
//!
//! The graph's nodes are the [`crate::parser::Item`]s of every
//! analyzed file; edges come from the approximate call resolution
//! described in [`crate::parser`], pruned by the first-party crate
//! dependency graph (a `core` function cannot call into `bench`, so
//! no edge is drawn there even when method names collide). Three rule
//! families run over the graph:
//!
//! * **HOTPATH** (`HOT101`–`HOT103`) — breadth-first reachability from
//!   the hot roots (calls made inside `// lint: hot-loop` regions, and
//!   items annotated `// lint: hot-fn`). Every reachable function must
//!   be free of allocation, cloning and container growth; a violation
//!   reports the full call chain from the root so the reader can see
//!   *why* the function is hot.
//! * **DRAW** (`DRW001`–`DRW002`) — the fixed-draw-order contract of
//!   the sampling modules (`scenario.rs`, `profile.rs`): no RNG draw
//!   under an `if`/`match`/early-`return` guard unless annotated
//!   `// lint: fixed-draw: reason`, and every public sampling fn
//!   consumes a threaded job-indexed RNG instead of constructing one.
//! * **CALLGRAPH** (`CG001`) — layering: functions in numeric crates
//!   reachable from `run_ensemble*` must not call into tool-class
//!   crates (recognised by `samurai_bench::` / `samurai_lint::` call
//!   paths).
//!
//! Reachability is computed once, breadth-first from all roots
//! simultaneously with parent pointers, so every diagnostic renders a
//! shortest witness chain and the whole pass stays linear in edges.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::parser::{Call, FileRecord, Recv};
use crate::report::escape;
use crate::rules::{FileClass, Finding};

/// Crate-visibility map: crate directory name → the crate directory
/// names it may call (itself plus its transitive first-party
/// dependencies). `None` passed to [`CallGraph::build`] disables
/// pruning — the single-file fixture mode.
pub type DepMap = BTreeMap<String, BTreeSet<String>>;

/// Leading path segments that mark a call into tool-class code
/// (CG001).
const TOOL_PATH_ROOTS: &[&str] = &["samurai_bench", "samurai_lint"];

/// Method names never resolved across the workspace. These are the
/// ubiquitous std surface (and the HOTPATH effect methods, which are
/// reported where they occur): resolving `.len(` or `.clone(` to
/// every workspace impl with that name would draw edges between
/// unrelated types and drown the reachability pass in false paths.
const METHOD_STOPLIST: &[&str] = &[
    // effect methods — already reported at the call site
    "clone",
    "cloned",
    "to_vec",
    "to_owned",
    "to_string",
    "push",
    "collect",
    "extend",
    "insert",
    "with_capacity", // std operator traits — every numeric type implements these names
    "add",
    "sub",
    "mul",
    "div",
    "rem",
    "neg",
    "index",
    "index_mut",
    "deref",
    // std containers / options / results
    "len",
    "is_empty",
    "get",
    "get_mut",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
    "fold",
    "sum",
    "product",
    "zip",
    "enumerate",
    "rev",
    "take",
    "skip",
    "take_while",
    "skip_while",
    "step_by",
    "chain",
    "find",
    "position",
    "any",
    "all",
    "count",
    "last",
    "first",
    "peekable",
    "peek",
    "and_then",
    "or_else",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok_or",
    "ok_or_else",
    "ok",
    "err",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "unwrap",
    "expect",
    "as_ref",
    "as_mut",
    "as_str",
    "as_slice",
    "as_bytes",
    "as_deref",
    "clear",
    "contains",
    "contains_key",
    "copy_from_slice",
    "fill",
    "swap",
    "sort",
    "sort_by",
    "sort_unstable",
    "sort_unstable_by",
    "split",
    "remove",
    "entry",
    "drain",
    "retain",
    "resize",
    "truncate",
    "windows",
    "chunks",
    "join", // float / ord surface
    "min",
    "max",
    "abs",
    "sqrt",
    "exp",
    "ln",
    "powi",
    "powf",
    "floor",
    "ceil",
    "round",
    "signum",
    "mul_add",
    "hypot",
    "atan2",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "total_cmp",
    "partial_cmp",
    "cmp",
    "eq",
    "ne",
    "hash",
    "to_bits",
    "from_bits",
    "is_finite",
    "is_nan",
    "saturating_sub",
    "saturating_add",
    "wrapping_sub",
    "wrapping_add",
    "checked_sub",
    "checked_add", // strings / io / rng primitives
    "fmt",
    "write",
    "write_str",
    "push_str",
    "parse",
    "trim",
    "starts_with",
    "ends_with",
    "chars",
    "bytes",
    "split_whitespace",
    "gen",
    "gen_range",
    "gen_bool",
    "sample_iter",
];

/// One graph node: an item addressed by file and item index.
#[derive(Debug, Clone, Copy)]
pub struct NodeRef {
    /// Index into the record slice the graph was built over.
    pub file: usize,
    /// Index into that record's `items`.
    pub item: usize,
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Caller node id.
    pub from: usize,
    /// Callee node id.
    pub to: usize,
    /// 1-based source line of the call site.
    pub line: usize,
}

/// One hot-path root.
#[derive(Debug, Clone)]
pub enum Root {
    /// A call made lexically inside a `// lint: hot-loop` region.
    HotLoop {
        /// File containing the region.
        path: String,
        /// Call-site line.
        line: usize,
        /// The resolved callee node.
        target: usize,
    },
    /// An item annotated `// lint: hot-fn`.
    HotFn {
        /// The annotated node.
        node: usize,
    },
}

impl Root {
    fn target(&self) -> usize {
        match self {
            Root::HotLoop { target, .. } => *target,
            Root::HotFn { node } => *node,
        }
    }
}

/// The workspace call graph with hot-path and ensemble reachability.
pub struct CallGraph<'a> {
    records: &'a [FileRecord],
    /// All items, in file order.
    pub nodes: Vec<NodeRef>,
    /// All resolved edges, deduplicated, in caller order.
    pub edges: Vec<Edge>,
    adj: Vec<Vec<(usize, usize)>>,
    /// Hot-path roots in discovery order.
    pub roots: Vec<Root>,
    /// Nodes named `run_ensemble*` in numeric crates (CG001 roots).
    pub ensemble_roots: Vec<usize>,
    /// Per node: `(root index, BFS parent)` once hot-reachable.
    hot_prev: Vec<Option<(usize, Option<usize>)>>,
    /// Per node: `(root node, BFS parent)` once ensemble-reachable.
    ens_prev: Vec<Option<(usize, Option<usize>)>>,
}

struct Indexes<'a> {
    by_method: BTreeMap<&'a str, Vec<usize>>,
    by_type_method: BTreeMap<(&'a str, &'a str), Vec<usize>>,
    by_bare: BTreeMap<&'a str, Vec<usize>>,
}

impl<'a> CallGraph<'a> {
    /// Builds the graph and computes both reachability passes.
    pub fn build(records: &'a [FileRecord], deps: Option<&DepMap>) -> Self {
        let mut nodes = Vec::new();
        for (fi, rec) in records.iter().enumerate() {
            for ii in 0..rec.items.len() {
                nodes.push(NodeRef { file: fi, item: ii });
            }
        }

        let mut idx = Indexes {
            by_method: BTreeMap::new(),
            by_type_method: BTreeMap::new(),
            by_bare: BTreeMap::new(),
        };
        for (n, nref) in nodes.iter().enumerate() {
            let item = &records[nref.file].items[nref.item];
            match &item.impl_type {
                Some(ty) => {
                    idx.by_method.entry(&item.name).or_default().push(n);
                    idx.by_type_method
                        .entry((ty.as_str(), item.name.as_str()))
                        .or_default()
                        .push(n);
                }
                None => idx.by_bare.entry(&item.name).or_default().push(n),
            }
        }

        let mut edges = Vec::new();
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nodes.len()];
        for (n, nref) in nodes.iter().enumerate() {
            let rec = &records[nref.file];
            let item = &rec.items[nref.item];
            for call in &item.calls {
                for t in resolve(records, &nodes, &idx, deps, rec.crate_name(), call) {
                    let e = Edge {
                        from: n,
                        to: t,
                        line: call.line,
                    };
                    if !adj[n].contains(&(t, call.line)) {
                        adj[n].push((t, call.line));
                        edges.push(e);
                    }
                }
            }
        }

        let mut roots = Vec::new();
        for rec in records {
            for call in &rec.hot_calls {
                for t in resolve(records, &nodes, &idx, deps, rec.crate_name(), call) {
                    roots.push(Root::HotLoop {
                        path: rec.path.clone(),
                        line: call.line,
                        target: t,
                    });
                }
            }
        }
        for (n, nref) in nodes.iter().enumerate() {
            if records[nref.file].items[nref.item].hot_fn {
                roots.push(Root::HotFn { node: n });
            }
        }

        let hot_prev = bfs(
            &adj,
            nodes.len(),
            roots.iter().enumerate().map(|(ri, r)| (ri, r.target())),
        );

        let ensemble_roots: Vec<usize> = nodes
            .iter()
            .enumerate()
            .filter(|(_, nref)| {
                records[nref.file].items[nref.item]
                    .name
                    .starts_with("run_ensemble")
                    && records[nref.file].class == FileClass::Library { numeric: true }
            })
            .map(|(n, _)| n)
            .collect();
        let ens_prev = bfs(&adj, nodes.len(), ensemble_roots.iter().map(|&n| (n, n)));

        CallGraph {
            records,
            nodes,
            edges,
            adj,
            roots,
            ensemble_roots,
            hot_prev,
            ens_prev,
        }
    }

    /// The display name of node `n`.
    pub fn display(&self, n: usize) -> String {
        let nref = self.nodes[n];
        self.records[nref.file].items[nref.item].display_name()
    }

    /// Looks a node up by display name (first match, file order).
    pub fn node_by_name(&self, display: &str) -> Option<usize> {
        (0..self.nodes.len()).find(|&n| self.display(n) == display)
    }

    /// `true` if node `n` is reachable from a hot root.
    pub fn hot_reachable(&self, n: usize) -> bool {
        self.hot_prev[n].is_some()
    }

    /// `true` if node `n` is reachable from a `run_ensemble*` root.
    pub fn ensemble_reachable(&self, n: usize) -> bool {
        self.ens_prev[n].is_some()
    }

    /// The witness chain from a hot root to node `n`, e.g.
    /// `hot-loop at crates/spice/src/stepper.rs:98 ->
    /// `CompiledCircuit::solve_trial` -> `CompiledCircuit::singular_at``.
    pub fn hot_chain(&self, n: usize) -> String {
        let (root_idx, names) = chain_to_root(&self.hot_prev, n, |m| self.display(m));
        let spine = names.join(" -> ");
        match &self.roots[root_idx] {
            Root::HotLoop { path, line, .. } => {
                format!("hot-loop at {path}:{line} -> {spine}")
            }
            Root::HotFn { .. } => format!("hot-fn {spine}"),
        }
    }

    /// The witness chain from a `run_ensemble*` root to node `n`.
    pub fn ensemble_chain(&self, n: usize) -> String {
        let (_, names) = chain_to_root(&self.ens_prev, n, |m| self.display(m));
        format!("ensemble path {}", names.join(" -> "))
    }

    /// Runs the HOTPATH, DRAW and CALLGRAPH rule families.
    pub fn semantic_findings(&self) -> Vec<Finding> {
        let mut out = Vec::new();

        for (n, nref) in self.nodes.iter().enumerate() {
            let rec = &self.records[nref.file];
            let item = &rec.items[nref.item];

            // --- HOTPATH -----------------------------------------
            if self.hot_prev[n].is_some() {
                for e in &item.effects {
                    if rec.allowed(e.line, e.rule) {
                        continue;
                    }
                    out.push(Finding {
                        rule: e.rule,
                        path: rec.path.clone(),
                        line: e.line,
                        message: format!(
                            "{} in `{}` on a hot path: {}",
                            e.what,
                            item.display_name(),
                            self.hot_chain(n)
                        ),
                    });
                }
            }

            // --- DRAW --------------------------------------------
            if rec.is_sampling_module() && matches!(rec.class, FileClass::Library { .. }) {
                for d in &item.draws {
                    if !d.guarded
                        || rec.fixed_draw_lines.contains(&d.line)
                        || rec.allowed(d.line, "DRW001")
                    {
                        continue;
                    }
                    out.push(Finding {
                        rule: "DRW001",
                        path: rec.path.clone(),
                        line: d.line,
                        message: format!(
                            "`{}(..)` drawn under a conditional guard in `{}`; a skipped draw \
                             changes the per-job stream layout — annotate \
                             `// lint: fixed-draw: reason` if the guard is the stream contract",
                            d.name,
                            item.display_name()
                        ),
                    });
                }
                if item.is_pub
                    && !item.draws.is_empty()
                    && !item.has_rng_param
                    && !rec.allowed(item.line, "DRW002")
                {
                    out.push(Finding {
                        rule: "DRW002",
                        path: rec.path.clone(),
                        line: item.line,
                        message: format!(
                            "public sampling fn `{}` draws without an RNG parameter; consume \
                             the job-indexed RNG instead of hiding the stream",
                            item.display_name()
                        ),
                    });
                }
                for &l in &item.rng_ctor_lines {
                    if rec.allowed(l, "DRW002") {
                        continue;
                    }
                    out.push(Finding {
                        rule: "DRW002",
                        path: rec.path.clone(),
                        line: l,
                        message: format!(
                            "`{}` constructs its own RNG; sampling code must consume the \
                             job-indexed RNG it is handed",
                            item.display_name()
                        ),
                    });
                }
            }

            // --- CALLGRAPH ---------------------------------------
            if self.ens_prev[n].is_some() && rec.class == (FileClass::Library { numeric: true }) {
                for call in &item.calls {
                    let Recv::Path(segs) = &call.recv else {
                        continue;
                    };
                    let Some(first) = segs.first() else {
                        continue;
                    };
                    if !TOOL_PATH_ROOTS.contains(&first.as_str()) || rec.allowed(call.line, "CG001")
                    {
                        continue;
                    }
                    out.push(Finding {
                        rule: "CG001",
                        path: rec.path.clone(),
                        line: call.line,
                        message: format!(
                            "`{}::{}` is tool-crate code called on the ensemble path: {}; \
                             numeric crates must stay independent of tooling",
                            segs.join("::"),
                            call.name,
                            self.ensemble_chain(n)
                        ),
                    });
                }
            }
        }

        out.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
                b.path.as_str(),
                b.line,
                b.rule,
                b.message.as_str(),
            ))
        });
        out
    }

    /// Dumps the graph as JSON (`samurai-lint-graph-v1`) for the
    /// bench/telemetry tooling.
    pub fn graph_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"samurai-lint-graph-v1\",\n  \"nodes\": [");
        for (n, nref) in self.nodes.iter().enumerate() {
            let rec = &self.records[nref.file];
            let item = &rec.items[nref.item];
            let krate = rec
                .crate_name()
                .map_or("null".to_string(), |c| format!("\"{}\"", escape(c)));
            out.push_str(&format!(
                "{}\n    {{\"id\": {n}, \"name\": \"{}\", \"path\": \"{}\", \"line\": {}, \
                 \"crate\": {krate}, \"hot_fn\": {}, \"hot_reachable\": {}, \
                 \"ensemble_reachable\": {}}}",
                if n == 0 { "" } else { "," },
                escape(&item.display_name()),
                escape(&rec.path),
                item.line,
                item.hot_fn,
                self.hot_prev[n].is_some(),
                self.ens_prev[n].is_some(),
            ));
        }
        out.push_str(if self.nodes.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"edges\": [");
        for (i, e) in self.edges.iter().enumerate() {
            out.push_str(&format!(
                "{}\n    {{\"from\": {}, \"to\": {}, \"line\": {}}}",
                if i == 0 { "" } else { "," },
                e.from,
                e.to,
                e.line
            ));
        }
        out.push_str(if self.edges.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"hot_roots\": [");
        for (i, r) in self.roots.iter().enumerate() {
            let body = match r {
                Root::HotLoop { path, line, target } => format!(
                    "{{\"kind\": \"hot-loop\", \"path\": \"{}\", \"line\": {line}, \
                     \"target\": {target}}}",
                    escape(path)
                ),
                Root::HotFn { node } => {
                    format!("{{\"kind\": \"hot-fn\", \"target\": {node}}}")
                }
            };
            out.push_str(&format!("{}\n    {body}", if i == 0 { "" } else { "," }));
        }
        out.push_str(if self.roots.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        let roots: Vec<String> = self.ensemble_roots.iter().map(usize::to_string).collect();
        out.push_str(&format!(
            "  \"ensemble_roots\": [{}]\n}}\n",
            roots.join(", ")
        ));
        out
    }

    /// The adjacency list of node `n` as `(callee, line)` pairs.
    pub fn callees(&self, n: usize) -> &[(usize, usize)] {
        &self.adj[n]
    }
}

/// Builds the full analysis for a record set and returns the semantic
/// findings (the one-call form used by single-file fixture analysis).
pub fn analyze_records(records: &[FileRecord], deps: Option<&DepMap>) -> Vec<Finding> {
    CallGraph::build(records, deps).semantic_findings()
}

/// Multi-root BFS with parent pointers: `seeds` yields
/// `(tag, start_node)` pairs; the result holds `(tag, parent)` for
/// every reached node, first visit wins.
fn bfs(
    adj: &[Vec<(usize, usize)>],
    n_nodes: usize,
    seeds: impl Iterator<Item = (usize, usize)>,
) -> Vec<Option<(usize, Option<usize>)>> {
    let mut prev: Vec<Option<(usize, Option<usize>)>> = vec![None; n_nodes];
    let mut queue = VecDeque::new();
    for (tag, start) in seeds {
        if prev[start].is_none() {
            prev[start] = Some((tag, None));
            queue.push_back(start);
        }
    }
    while let Some(n) = queue.pop_front() {
        let Some((tag, _)) = prev[n] else { continue };
        for &(m, _) in &adj[n] {
            if prev[m].is_none() {
                prev[m] = Some((tag, Some(n)));
                queue.push_back(m);
            }
        }
    }
    prev
}

/// Walks parent pointers from `n` to its root, returning the root's
/// tag and the backquoted node names root-first.
fn chain_to_root(
    prev: &[Option<(usize, Option<usize>)>],
    n: usize,
    display: impl Fn(usize) -> String,
) -> (usize, Vec<String>) {
    let mut names = Vec::new();
    let mut cur = n;
    loop {
        let Some((tag, parent)) = prev[cur] else {
            // Unreachable nodes never ask for a chain; keep the
            // renderer total anyway.
            names.reverse();
            return (0, names);
        };
        names.push(format!("`{}`", display(cur)));
        match parent {
            Some(p) => cur = p,
            None => {
                names.reverse();
                return (tag, names);
            }
        }
    }
}

/// Resolves one call site to candidate nodes, honoring the crate
/// dependency filter.
fn resolve(
    records: &[FileRecord],
    nodes: &[NodeRef],
    idx: &Indexes<'_>,
    deps: Option<&DepMap>,
    caller_crate: Option<&str>,
    call: &Call,
) -> Vec<usize> {
    let candidates: &[usize] = match &call.recv {
        Recv::Method => {
            if METHOD_STOPLIST.contains(&call.name.as_str()) {
                return Vec::new();
            }
            idx.by_method
                .get(call.name.as_str())
                .map_or(&[][..], Vec::as_slice)
        }
        Recv::Bare => idx
            .by_bare
            .get(call.name.as_str())
            .map_or(&[][..], Vec::as_slice),
        Recv::Path(segs) => {
            let last = segs.last().map(String::as_str).unwrap_or("");
            if last.starts_with(char::is_uppercase) {
                idx.by_type_method
                    .get(&(last, call.name.as_str()))
                    .map_or(&[][..], Vec::as_slice)
            } else {
                // `module::free_fn(..)` — resolve by bare name.
                idx.by_bare
                    .get(call.name.as_str())
                    .map_or(&[][..], Vec::as_slice)
            }
        }
    };
    candidates
        .iter()
        .copied()
        .filter(|&t| {
            let target_crate = records[nodes[t].file].crate_name();
            visible(deps, caller_crate, target_crate)
        })
        .collect()
}

/// Crate-dependency visibility: without a map (or for paths outside
/// `crates/`) everything is visible; with one, a caller sees itself
/// and its transitive first-party dependencies.
fn visible(deps: Option<&DepMap>, caller: Option<&str>, target: Option<&str>) -> bool {
    match (deps, caller, target) {
        (Some(d), Some(c), Some(t)) => c == t || d.get(c).is_some_and(|s| s.contains(t)),
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;
    use crate::parser::parse_file;
    use crate::tokenizer::tokenize;

    fn rec(path: &str, class: FileClass, src: &str) -> FileRecord {
        let (toks, comments) = tokenize(src);
        let ctx = FileContext::build(&toks, &comments);
        parse_file(path, class, &toks, &ctx)
    }

    const NUM: FileClass = FileClass::Library { numeric: true };

    #[test]
    fn edges_resolve_bare_path_and_method_calls() {
        let records = [rec(
            "crates/core/src/lib.rs",
            NUM,
            "pub fn a() { b(); W::make(); }\n\
             fn b() {}\n\
             struct W;\n\
             impl W {\n    fn make() { helper(); }\n}\n\
             fn helper() {}\n",
        )];
        let g = CallGraph::build(&records, None);
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let make = g.node_by_name("W::make").unwrap();
        let helper = g.node_by_name("helper").unwrap();
        assert!(g.callees(a).iter().any(|&(t, _)| t == b));
        assert!(g.callees(a).iter().any(|&(t, _)| t == make));
        assert!(g.callees(make).iter().any(|&(t, _)| t == helper));
    }

    #[test]
    fn dependency_filter_prunes_cross_crate_name_collisions() {
        let caller = rec(
            "crates/core/src/lib.rs",
            NUM,
            "// lint: hot-fn\npub fn kernel(s: &S) { s.evaluate(); }\n",
        );
        let in_dep = rec(
            "crates/trap/src/lib.rs",
            NUM,
            "impl S {\n    pub fn evaluate(&self) { let v = Vec::new(); drop(v); }\n}\n",
        );
        let out_of_dep = rec(
            "crates/bench/src/lib.rs",
            FileClass::Tool,
            "impl T {\n    pub fn evaluate(&self) { let v = Vec::new(); drop(v); }\n}\n",
        );
        let records = [caller, in_dep, out_of_dep];
        let mut deps = DepMap::new();
        deps.insert(
            "core".into(),
            ["core", "trap"].iter().map(|s| s.to_string()).collect(),
        );
        let g = CallGraph::build(&records, Some(&deps));
        let dep_node = g.node_by_name("S::evaluate").unwrap();
        let tool_node = g.node_by_name("T::evaluate").unwrap();
        assert!(g.hot_reachable(dep_node));
        assert!(
            !g.hot_reachable(tool_node),
            "bench is not a dependency of core; no edge may exist"
        );
    }

    #[test]
    fn hot_chain_text_is_pinned() {
        let records = [rec(
            "crates/core/src/run.rs",
            NUM,
            "fn outer() {\n\
             // lint: hot-loop\n\
             stage(1.0);\n\
             // lint: end-hot-loop\n\
             }\n\
             fn stage(x: f64) { deep(x); }\n\
             fn deep(x: f64) { let v = x.to_string(); drop(v); }\n",
        )];
        let g = CallGraph::build(&records, None);
        let findings = g.semantic_findings();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "HOT101");
        assert_eq!(findings[0].line, 7);
        assert_eq!(
            findings[0].message,
            "`.to_string()` allocates in `deep` on a hot path: \
             hot-loop at crates/core/src/run.rs:3 -> `stage` -> `deep`"
        );
    }

    #[test]
    fn hot_fn_roots_report_their_own_effects() {
        let records = [rec(
            "crates/core/src/k.rs",
            NUM,
            "// lint: hot-fn\npub fn kernel(xs: &[f64]) -> Vec<f64> { xs.to_vec() }\n",
        )];
        let f = CallGraph::build(&records, None).semantic_findings();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "HOT102");
        assert!(f[0].message.contains("hot-fn `kernel`"), "{}", f[0].message);
    }

    #[test]
    fn allows_silence_hotpath_findings() {
        let records = [rec(
            "crates/core/src/k.rs",
            NUM,
            "// lint: hot-fn\npub fn kernel(xs: &[f64]) -> Vec<f64> {\n\
             xs.to_vec() // lint: allow(HOT102): one-time setup copy\n}\n",
        )];
        assert!(CallGraph::build(&records, None)
            .semantic_findings()
            .is_empty());
    }

    #[test]
    fn guarded_draws_fire_drw001_unless_fixed_draw() {
        let bad = [rec(
            "crates/core/src/scenario.rs",
            NUM,
            "pub fn sample(rng: &mut R, on: bool) -> f64 {\n\
             if on { standard_normal(rng) } else { 0.0 }\n}\n",
        )];
        let f = CallGraph::build(&bad, None).semantic_findings();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "DRW001");

        let ok = [rec(
            "crates/core/src/scenario.rs",
            NUM,
            "pub fn sample(rng: &mut R, on: bool) -> f64 {\n\
             // lint: fixed-draw: disabled axis still has a slot upstream\n\
             if on { standard_normal(rng) } else { 0.0 }\n}\n",
        )];
        assert!(CallGraph::build(&ok, None).semantic_findings().is_empty());
    }

    #[test]
    fn drw001_only_applies_to_sampling_modules() {
        let records = [rec(
            "crates/core/src/other.rs",
            NUM,
            "pub fn f(rng: &mut R, on: bool) -> f64 { if on { rng.gen() } else { 0.0 } }\n",
        )];
        assert!(CallGraph::build(&records, None)
            .semantic_findings()
            .is_empty());
    }

    #[test]
    fn drw002_requires_threaded_rng_in_public_sampling_fns() {
        let records = [rec(
            "crates/core/src/scenario.rs",
            NUM,
            "pub fn sample(seed: u64) -> f64 {\n\
             let mut r = ChaCha8Rng::seed_from_u64(seed);\nr.gen()\n}\n",
        )];
        let f = CallGraph::build(&records, None).semantic_findings();
        let rules: Vec<&str> = f.iter().map(|f| f.rule).collect();
        // Missing RNG param (line 1) and in-body construction (line 2).
        assert_eq!(rules, ["DRW002", "DRW002"]);
        assert_eq!(f[0].line, 1);
        assert_eq!(f[1].line, 2);
    }

    #[test]
    fn cg001_flags_tool_calls_on_the_ensemble_path() {
        let records = [rec(
            "crates/core/src/ensemble.rs",
            NUM,
            "pub fn run_ensemble() { worker(); }\n\
             fn worker() { samurai_bench::emit_summary(); }\n",
        )];
        let f = CallGraph::build(&records, None).semantic_findings();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "CG001");
        assert_eq!(f[0].line, 2);
        assert!(
            f[0].message
                .contains("ensemble path `run_ensemble` -> `worker`"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn graph_json_is_schema_stable() {
        let records = [rec(
            "crates/core/src/lib.rs",
            NUM,
            "// lint: hot-fn\npub fn a() { b(); }\nfn b() {}\n",
        )];
        let g = CallGraph::build(&records, None);
        let json = g.graph_json();
        assert!(json.contains("\"schema\": \"samurai-lint-graph-v1\""));
        assert!(json.contains("\"name\": \"a\""));
        assert!(json.contains("\"crate\": \"core\""));
        assert!(json.contains("\"hot_reachable\": true"));
        assert!(json.contains("\"kind\": \"hot-fn\""));
        assert!(json.contains("\"from\": 0"));
    }
}
