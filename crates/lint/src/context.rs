//! Per-file lint context: directives, test regions, hot-loop regions.
//!
//! Five comment-borne mechanisms parameterise the rule engine:
//!
//! * **Allow escapes** — `// lint: allow(RULE1, RULE2): reason`
//!   suppresses the named rules: a trailing directive covers the
//!   statement it ends (every line from the statement's first token to
//!   the comment's line, so rustfmt-wrapped statements stay covered), a
//!   standalone comment line covers the next code line. The reason
//!   after the colon is free text but strongly encouraged; the catalog
//!   treats an allow as a reviewed, justified exception.
//! * **Hot-loop regions** — `// lint: hot-loop` opens a region in
//!   which the allocation-freedom rules (`HOT…`) apply;
//!   `// lint: end-hot-loop` closes it. An unclosed region extends to
//!   the end of the file (which makes the mistake self-revealing: the
//!   rest of the file starts tripping HOT rules).
//! * **Hot functions** — `// lint: hot-fn` above (or trailing on) a
//!   `fn` item marks it as a hot-path root for the workspace
//!   reachability pass (HOT101–HOT103): the function and everything it
//!   transitively calls must stay allocation-free.
//! * **Fixed draws** — `// lint: fixed-draw: reason` records that a
//!   conditionally-guarded RNG draw in the scenario layer has been
//!   reviewed against the fixed-draw-order contract (DRW001).
//! * **SAFETY comments** — any comment containing `SAFETY` (or a
//!   `# Safety` doc section) within three lines above an `unsafe`
//!   token satisfies the unsafe-audit rule.
//!
//! Test regions are detected from the token stream: `#[cfg(test)]` and
//! `#[test]` attributes mark the following item (brace-matched) as
//! test code, where the hygiene and determinism rules do not apply.

use std::collections::{BTreeMap, BTreeSet};

use crate::tokenizer::{Comment, Tok, TokKind};

/// Everything the rule engine needs to know about one file beyond its
/// tokens.
#[derive(Debug, Default)]
pub struct FileContext {
    /// Inclusive line ranges of `#[cfg(test)]` / `#[test]` items.
    test_ranges: Vec<(usize, usize)>,
    /// Inclusive line ranges between hot-loop directives.
    hot_ranges: Vec<(usize, usize)>,
    /// Lines directly covered by an allow directive, per rule id.
    allows: BTreeMap<String, BTreeSet<usize>>,
    /// Lines bearing a SAFETY (or `# Safety`) comment.
    safety_lines: BTreeSet<usize>,
    /// Lines covered by a `// lint: hot-fn` annotation.
    hot_fn_lines: BTreeSet<usize>,
    /// Lines covered by a `// lint: fixed-draw: reason` annotation.
    fixed_draw_lines: BTreeSet<usize>,
}

impl FileContext {
    /// Builds the context from a file's tokens and comments.
    pub fn build(toks: &[Tok], comments: &[Comment]) -> Self {
        let mut ctx = Self::default();
        let code_lines: BTreeSet<usize> = toks.iter().map(|t| t.line).collect();
        let stmt_starts = statement_starts(toks);
        ctx.scan_comments(comments, &code_lines, &stmt_starts);
        ctx.scan_test_regions(toks);
        ctx
    }

    /// `true` if `line` is inside test-gated code.
    pub fn in_test(&self, line: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// `true` if `line` is inside a declared hot-loop region.
    pub fn in_hot(&self, line: usize) -> bool {
        self.hot_ranges.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// `true` if an allow directive for `rule` covers `line`: a
    /// trailing directive covers the statement it ends, a standalone
    /// comment line covers the next code line.
    pub fn allowed(&self, line: usize, rule: &str) -> bool {
        self.allows
            .get(rule)
            .is_some_and(|lines| lines.contains(&line))
    }

    /// The full allow map (rule id → covered lines), for serialization
    /// into the workspace analysis cache.
    pub fn allow_map(&self) -> &BTreeMap<String, BTreeSet<usize>> {
        &self.allows
    }

    /// `true` if a `// lint: hot-fn` annotation covers `line`.
    pub fn hot_fn_covers(&self, line: usize) -> bool {
        self.hot_fn_lines.contains(&line)
    }

    /// `true` if a `// lint: fixed-draw` annotation covers `line`.
    pub fn fixed_draw_covers(&self, line: usize) -> bool {
        self.fixed_draw_lines.contains(&line)
    }

    /// The lines covered by `// lint: fixed-draw` annotations.
    pub fn fixed_draw_lines(&self) -> &BTreeSet<usize> {
        &self.fixed_draw_lines
    }

    /// The declared hot-loop regions, as inclusive line ranges.
    pub fn hot_ranges(&self) -> &[(usize, usize)] {
        &self.hot_ranges
    }

    /// `true` if a SAFETY comment sits on `line` or up to three lines
    /// above it.
    pub fn has_safety_near(&self, line: usize) -> bool {
        (line.saturating_sub(3)..=line).any(|l| self.safety_lines.contains(&l))
    }

    /// `true` if the file declares at least one hot-loop region.
    pub fn has_hot_regions(&self) -> bool {
        !self.hot_ranges.is_empty()
    }

    fn scan_comments(
        &mut self,
        comments: &[Comment],
        code_lines: &BTreeSet<usize>,
        stmt_starts: &BTreeMap<usize, usize>,
    ) {
        // A trailing directive covers the statement it ends: every
        // line from the statement's first token to the comment's line.
        // This honours same-line allows regardless of where on the
        // statement the violating token sits — including the rustfmt
        // shape where a wrapped statement leaves the trailing comment
        // on a later line than the violation. A standalone comment
        // line covers the next code line (skipping blank lines).
        let covered_lines = |line: usize| -> Vec<usize> {
            if code_lines.contains(&line) {
                let start = stmt_starts.get(&line).copied().unwrap_or(line);
                (start..=line).collect()
            } else {
                match code_lines.range(line + 1..).next() {
                    Some(&next) => vec![next],
                    None => vec![line + 1],
                }
            }
        };
        let mut open_hot: Option<usize> = None;
        for c in comments {
            let text = c.text.trim();
            if text.contains("SAFETY") || text.contains("# Safety") {
                self.safety_lines.insert(c.line);
            }
            let Some(rest) = text.strip_prefix("lint:") else {
                continue;
            };
            let directive = rest.trim();
            if directive == "hot-loop" {
                if open_hot.is_none() {
                    open_hot = Some(c.line);
                }
            } else if directive == "end-hot-loop" {
                if let Some(start) = open_hot.take() {
                    self.hot_ranges.push((start, c.line));
                }
            } else if directive == "hot-fn" || directive.starts_with("hot-fn:") {
                self.hot_fn_lines.extend(covered_lines(c.line));
            } else if directive.starts_with("fixed-draw") {
                self.fixed_draw_lines.extend(covered_lines(c.line));
            } else if let Some(args) = directive.strip_prefix("allow") {
                let args = args.trim_start();
                if let Some(inner) = args.strip_prefix('(').and_then(|a| a.split(')').next()) {
                    let covered = covered_lines(c.line);
                    for rule in inner.split(',') {
                        let rule = rule.trim();
                        if !rule.is_empty() {
                            self.allows
                                .entry(rule.to_string())
                                .or_default()
                                .extend(covered.iter().copied());
                        }
                    }
                }
            }
        }
        if let Some(start) = open_hot {
            // Unclosed region: runs to end of file.
            self.hot_ranges.push((start, usize::MAX));
        }
    }

    /// Finds `#[cfg(test)]` / `#[test]` attributes and brace-matches
    /// the item that follows each.
    fn scan_test_regions(&mut self, toks: &[Tok]) {
        let mut k = 0usize;
        while k < toks.len() {
            if !(toks[k].kind == TokKind::Punct && toks[k].text == "#") {
                k += 1;
                continue;
            }
            let Some(open) = toks.get(k + 1).filter(|t| t.text == "[") else {
                k += 1;
                continue;
            };
            let _ = open;
            // Collect the attribute tokens up to the matching `]`.
            let mut depth = 0usize;
            let mut end = k + 1;
            while end < toks.len() {
                match toks[end].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                end += 1;
            }
            if end >= toks.len() {
                break;
            }
            let attr: Vec<&str> = toks[k + 2..end].iter().map(|t| t.text.as_str()).collect();
            if is_test_attribute(&attr) {
                let region_start = toks[k].line;
                let region_end = item_end_line(toks, end + 1);
                self.test_ranges.push((region_start, region_end));
            }
            k = end + 1;
        }
    }
}

/// For each line bearing code, the starting line of the last statement
/// open (or ending) on that line. Statements are delimited lexically by
/// `;`, `{` and `}` — an approximation that errs toward covering more
/// of a wrapped statement, which is the safe direction for an allow.
fn statement_starts(toks: &[Tok]) -> BTreeMap<usize, usize> {
    let mut starts = BTreeMap::new();
    let mut cur: Option<usize> = None;
    for t in toks {
        let start = *cur.get_or_insert(t.line);
        starts.insert(t.line, start);
        if t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
            cur = None;
        }
    }
    starts
}

/// `true` for `#[test]`, `#[cfg(test)]` and `#[cfg(all(test, …))]` —
/// but not `#[cfg(not(test))]`.
fn is_test_attribute(attr: &[&str]) -> bool {
    if attr == ["test"] {
        return true;
    }
    if attr.first() != Some(&"cfg") {
        return false;
    }
    // Look for `test` not immediately preceded by `not (`.
    for (i, t) in attr.iter().enumerate() {
        if *t == "test" {
            let negated = i >= 2 && attr[i - 2] == "not" && attr[i - 1] == "(";
            if !negated {
                return true;
            }
        }
    }
    false
}

/// The last line of the item starting at token `k` (after an
/// attribute): either the statement's `;` or the brace-matched body.
fn item_end_line(toks: &[Tok], k: usize) -> usize {
    let mut j = k;
    while j < toks.len() {
        match toks[j].text.as_str() {
            ";" => return toks[j].line,
            "{" => {
                let mut depth = 0usize;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                return toks[j].line;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                break;
            }
            _ => j += 1,
        }
    }
    toks.last().map_or(k, |t| t.line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn ctx_of(src: &str) -> FileContext {
        let (toks, comments) = tokenize(src);
        FileContext::build(&toks, &comments)
    }

    #[test]
    fn allow_covers_same_and_next_line() {
        let src = "// lint: allow(HYG001): reason\nlet a = x.unwrap();\nlet b = y.unwrap(); // lint: allow(HYG001)\nlet c = z.unwrap();\n";
        let ctx = ctx_of(src);
        assert!(ctx.allowed(2, "HYG001"));
        assert!(ctx.allowed(3, "HYG001"));
        assert!(!ctx.allowed(4, "HYG001"));
        assert!(!ctx.allowed(2, "HYG002"));
    }

    #[test]
    fn trailing_allow_covers_the_whole_statement() {
        // Regression: a trailing same-line allow must cover the
        // violation even when rustfmt wraps the statement so that the
        // comment lands on a later line than the violating token.
        let src =
            "let y = x.unwrap(\n); // lint: allow(HYG001): proven non-empty\nlet z = q.unwrap();\n";
        let ctx = ctx_of(src);
        assert!(ctx.allowed(1, "HYG001"), "first statement line uncovered");
        assert!(ctx.allowed(2, "HYG001"));
        assert!(!ctx.allowed(3, "HYG001"), "next statement leaked");
    }

    #[test]
    fn standalone_allow_skips_blank_lines_to_the_next_code_line() {
        let ctx = ctx_of("// lint: allow(HYG001): below\n\nlet a = x.unwrap();\n");
        assert!(ctx.allowed(3, "HYG001"));
    }

    #[test]
    fn hot_fn_annotation_covers_the_item_line() {
        let src = "// lint: hot-fn\nfn fast() {}\nfn slow() {}\n// lint: hot-fn: trailing form\n";
        let ctx = ctx_of(src);
        assert!(ctx.hot_fn_covers(2));
        assert!(!ctx.hot_fn_covers(3));
    }

    #[test]
    fn fixed_draw_annotation_covers_its_statement() {
        let src =
            "let d = draw(rng); // lint: fixed-draw: config-level guard\nlet e = draw(rng);\n";
        let ctx = ctx_of(src);
        assert!(ctx.fixed_draw_covers(1));
        assert!(!ctx.fixed_draw_covers(2));
    }

    #[test]
    fn allow_parses_multiple_rules() {
        let ctx = ctx_of("// lint: allow(DET001, DET002)\nx();\n");
        assert!(ctx.allowed(2, "DET001"));
        assert!(ctx.allowed(2, "DET002"));
    }

    #[test]
    fn hot_regions_are_delimited() {
        let src = "a();\n// lint: hot-loop\nb();\nc();\n// lint: end-hot-loop\nd();\n";
        let ctx = ctx_of(src);
        assert!(!ctx.in_hot(1));
        assert!(ctx.in_hot(3));
        assert!(ctx.in_hot(4));
        assert!(!ctx.in_hot(6));
    }

    #[test]
    fn unclosed_hot_region_extends_to_eof() {
        let ctx = ctx_of("// lint: hot-loop\nx();\ny();\n");
        assert!(ctx.in_hot(3));
        assert!(ctx.in_hot(1000));
    }

    #[test]
    fn cfg_test_module_is_a_test_region() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn tail() {}\n";
        let ctx = ctx_of(src);
        assert!(!ctx.in_test(1));
        assert!(ctx.in_test(2));
        assert!(ctx.in_test(4));
        assert!(!ctx.in_test(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let ctx = ctx_of("#[cfg(not(test))]\nfn prod() {\n    body();\n}\n");
        assert!(!ctx.in_test(3));
    }

    #[test]
    fn cfg_test_statement_without_braces() {
        let ctx = ctx_of("#[cfg(test)]\nuse helper::thing;\nfn lib() {}\n");
        assert!(ctx.in_test(2));
        assert!(!ctx.in_test(3));
    }

    #[test]
    fn safety_comment_is_found_nearby() {
        let src = "// SAFETY: index checked above\nlet v = unsafe { get(i) };\n\n\n\nlet w = unsafe { get(j) };\n";
        let ctx = ctx_of(src);
        assert!(ctx.has_safety_near(2));
        assert!(!ctx.has_safety_near(6));
    }
}
