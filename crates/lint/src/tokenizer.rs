//! A hand-rolled Rust lexer, sufficient for invariant linting.
//!
//! The analyzer must run in a hermetic workspace with no access to
//! crates.io, so it cannot use `syn` or `proc-macro2`. This lexer
//! produces the token classes the rule engine needs — identifiers,
//! number literals (with float detection), string/char literals,
//! lifetimes and punctuation — plus a side-channel of comments, which
//! carry the lint directives (`// lint: ...`) and `// SAFETY:`
//! justifications.
//!
//! It understands the full literal grammar that matters for not
//! mis-lexing real code: nested block comments, raw strings
//! (`r#"…"#`), byte and C strings, raw identifiers (`r#type`), char
//! literals vs lifetimes, and numeric literals with underscores,
//! exponents and type suffixes. Tokens inside string literals are
//! *not* tokens — `"thread_rng"` in a string never trips a rule.

/// The classes of tokens the rule engine distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including `unsafe`, `fn`, …).
    Ident,
    /// A lifetime such as `'a` (not a char literal).
    Lifetime,
    /// Integer literal.
    Int,
    /// Float literal (has a fractional part, exponent or f32/f64
    /// suffix) — the operand class the float-equality rule keys on.
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Punctuation, possibly multi-character (`==`, `::`, `..=`, …).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// The token text exactly as written (raw identifiers keep their
    /// `r#` prefix stripped so rules match on the plain name).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

/// One comment (line, block or doc) with its 1-based starting line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the `//` or `/*`.
    pub line: usize,
    /// Comment body without the delimiters.
    pub text: String,
}

/// Multi-character punctuation, longest first so greedy matching is
/// correct.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into code tokens and comments.
pub fn tokenize(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut i = 0;
    let mut line = 1;
    let mut toks: Vec<Tok> = Vec::new();
    let mut comments: Vec<Comment> = Vec::new();

    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Line comment (incl. `///` and `//!` doc comments).
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            comments.push(Comment {
                line,
                text: chars[start..j].iter().collect(),
            });
            i = j;
            continue;
        }

        // Block comment, nested per the Rust grammar.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start_line = line;
            let mut depth = 1usize;
            let mut j = i + 2;
            let mut text = String::new();
            while j < n && depth > 0 {
                if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                    depth += 1;
                    text.push_str("/*");
                    j += 2;
                } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    j += 2;
                } else {
                    if chars[j] == '\n' {
                        line += 1;
                    }
                    text.push(chars[j]);
                    j += 1;
                }
            }
            comments.push(Comment {
                line: start_line,
                text,
            });
            i = j;
            continue;
        }

        // String-family literals, including prefixed and raw forms.
        if let Some((end, end_line)) = scan_string(&chars, i, line) {
            toks.push(Tok {
                kind: TokKind::Str,
                text: chars[i..end].iter().collect(),
                line,
            });
            line = end_line;
            i = end;
            continue;
        }

        // Char literal or lifetime.
        if c == '\'' {
            if let Some(end) = scan_char_literal(&chars, i) {
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: chars[i..end].iter().collect(),
                    line,
                });
                i = end;
            } else {
                // Lifetime: `'` followed by an identifier run.
                let mut j = i + 1;
                while j < n && is_ident_continue(chars[j]) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: chars[i..j].iter().collect(),
                    line,
                });
                i = j.max(i + 1);
            }
            continue;
        }

        // Raw identifier `r#name` (scan_string above already took
        // `r#"…"` forms).
        if c == 'r' && i + 1 < n && chars[i + 1] == '#' && i + 2 < n && is_ident_start(chars[i + 2])
        {
            let mut j = i + 2;
            while j < n && is_ident_continue(chars[j]) {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[i + 2..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }

        // Identifier / keyword.
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < n && is_ident_continue(chars[j]) {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }

        // Numeric literal.
        if c.is_ascii_digit() {
            let (end, is_float) = scan_number(&chars, i);
            toks.push(Tok {
                kind: if is_float {
                    TokKind::Float
                } else {
                    TokKind::Int
                },
                text: chars[i..end].iter().collect(),
                line,
            });
            i = end;
            continue;
        }

        // Punctuation, multi-char first.
        let mut matched = false;
        for p in PUNCTS {
            let pc: Vec<char> = p.chars().collect();
            if i + pc.len() <= n && chars[i..i + pc.len()] == pc[..] {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (*p).into(),
                    line,
                });
                i += pc.len();
                matched = true;
                break;
            }
        }
        if !matched {
            toks.push(Tok {
                kind: TokKind::Punct,
                text: c.to_string(),
                line,
            });
            i += 1;
        }
    }

    (toks, comments)
}

/// If a string literal starts at `i`, returns `(end_index, end_line)`.
///
/// Handles `"…"`, `b"…"`, `c"…"`, `r"…"`, `r#"…"#` (any hash count) and
/// the `br`/`cr` combinations. Returns `None` for raw identifiers and
/// anything else.
fn scan_string(chars: &[char], i: usize, line: usize) -> Option<(usize, usize)> {
    let n = chars.len();
    let mut j = i;
    // Optional one-letter prefix (b or c), optionally followed by r.
    if j < n && (chars[j] == 'b' || chars[j] == 'c') {
        j += 1;
    }
    let raw =
        j < n && chars[j] == 'r' && (j + 1 < n && (chars[j + 1] == '"' || chars[j + 1] == '#'));
    if raw {
        j += 1;
    }
    // Count hashes of a raw string.
    let mut hashes = 0usize;
    if raw {
        while j < n && chars[j] == '#' {
            hashes += 1;
            j += 1;
        }
    }
    if j >= n || chars[j] != '"' {
        return None;
    }
    // A bare identifier like `balance` must not match off its leading
    // `b`: the prefix path is only valid if something was consumed
    // before the quote or the literal starts with the quote itself.
    if j > i && !raw && !(j == i + 1 && (chars[i] == 'b' || chars[i] == 'c')) {
        return None;
    }
    j += 1; // opening quote
    let mut end_line = line;
    if raw {
        while j < n {
            if chars[j] == '\n' {
                end_line += 1;
            }
            if chars[j] == '"' {
                let mut k = 0;
                while k < hashes && j + 1 + k < n && chars[j + 1 + k] == '#' {
                    k += 1;
                }
                if k == hashes {
                    return Some((j + 1 + hashes, end_line));
                }
            }
            j += 1;
        }
    } else {
        while j < n {
            match chars[j] {
                '\\' => j += 2,
                '\n' => {
                    end_line += 1;
                    j += 1;
                }
                '"' => return Some((j + 1, end_line)),
                _ => j += 1,
            }
        }
    }
    Some((n, end_line))
}

/// If a char (or byte-char) literal starts at `i`, returns its end
/// index; `None` means the quote starts a lifetime.
fn scan_char_literal(chars: &[char], i: usize) -> Option<usize> {
    let n = chars.len();
    debug_assert!(chars[i] == '\'');
    if i + 1 >= n {
        return None;
    }
    if chars[i + 1] == '\\' {
        // Escaped char: scan to the closing quote.
        let mut j = i + 2;
        while j < n {
            match chars[j] {
                '\\' => j += 2,
                '\'' => return Some(j + 1),
                _ => j += 1,
            }
        }
        return Some(n);
    }
    // `'x'` is a char, `'x` (no closing quote right after one scalar)
    // is a lifetime.
    if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
        return Some(i + 3);
    }
    None
}

/// Scans a numeric literal starting at digit `i`; returns `(end,
/// is_float)`.
fn scan_number(chars: &[char], i: usize) -> (usize, bool) {
    let n = chars.len();
    let mut j = i;
    let mut is_float = false;

    // Radix-prefixed integers are never floats.
    if chars[i] == '0' && i + 1 < n && matches!(chars[i + 1], 'x' | 'X' | 'b' | 'o') {
        j = i + 2;
        while j < n && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
        return (j, false);
    }

    while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
        j += 1;
    }
    // Fractional part: a dot followed by a digit, or a trailing dot
    // that is not a range/method/field access.
    if j < n && chars[j] == '.' {
        if j + 1 < n && chars[j + 1].is_ascii_digit() {
            is_float = true;
            j += 1;
            while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        } else if !(j + 1 < n && (chars[j + 1] == '.' || is_ident_start(chars[j + 1]))) {
            is_float = true;
            j += 1;
        }
    }
    // Exponent.
    if j < n && matches!(chars[j], 'e' | 'E') {
        let mut k = j + 1;
        if k < n && matches!(chars[k], '+' | '-') {
            k += 1;
        }
        if k < n && chars[k].is_ascii_digit() {
            is_float = true;
            j = k;
            while j < n && (chars[j].is_ascii_digit() || chars[j] == '_') {
                j += 1;
            }
        }
    }
    // Type suffix.
    let suffix_start = j;
    while j < n && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
        j += 1;
    }
    let suffix: String = chars[suffix_start..j].iter().collect();
    if suffix.starts_with("f32") || suffix.starts_with("f64") {
        is_float = true;
    }
    (j, is_float)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .0
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_numbers_and_puncts() {
        let t = texts("let x = a.partial_cmp(&b);");
        assert!(t.contains(&(TokKind::Ident, "partial_cmp".into())));
        let t = texts("x == 0.0 && y != 1e-9");
        assert_eq!(
            t,
            vec![
                (TokKind::Ident, "x".into()),
                (TokKind::Punct, "==".into()),
                (TokKind::Float, "0.0".into()),
                (TokKind::Punct, "&&".into()),
                (TokKind::Ident, "y".into()),
                (TokKind::Punct, "!=".into()),
                (TokKind::Float, "1e-9".into()),
            ]
        );
    }

    #[test]
    fn float_vs_int_vs_method_on_literal() {
        assert_eq!(texts("1.max(2)")[0], (TokKind::Int, "1".into()));
        assert_eq!(texts("1.5f32")[0], (TokKind::Float, "1.5f32".into()));
        assert_eq!(texts("3f64")[0], (TokKind::Float, "3f64".into()));
        assert_eq!(texts("0x1E")[0], (TokKind::Int, "0x1E".into()));
        assert_eq!(texts("0..10")[0], (TokKind::Int, "0".into()));
        assert_eq!(texts("2.")[0], (TokKind::Float, "2.".into()));
        assert_eq!(texts("1_000.5")[0], (TokKind::Float, "1_000.5".into()));
    }

    #[test]
    fn strings_hide_their_contents() {
        let t = texts(r##"let s = "thread_rng()"; let r = r#"unwrap()"#;"##);
        assert!(!t.iter().any(|(_, x)| x == "thread_rng" || x == "unwrap"));
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Str).count(), 2);
    }

    #[test]
    fn byte_and_c_strings_and_raw_idents() {
        let t = texts(r##"let a = b"bytes"; let b = c"cstr"; let c = br#"raw"#; let r#type = 1;"##);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Str).count(), 3);
        assert!(t.contains(&(TokKind::Ident, "type".into())));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let t = texts("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(t.contains(&(TokKind::Lifetime, "'a".into())));
        assert!(t.contains(&(TokKind::Char, "'x'".into())));
        let t = texts(r"let c = '\n'; let q = '\'';");
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let (toks, comments) = tokenize("a\n// lint: allow(X)\nb /* block\nstill */ c");
        assert_eq!(comments.len(), 2);
        assert_eq!(comments[0].line, 2);
        assert!(comments[0].text.contains("lint: allow(X)"));
        assert_eq!(comments[1].line, 3);
        // Lines survive multi-line block comments.
        assert_eq!(toks.last().map(|t| t.line), Some(4));
    }

    #[test]
    fn nested_block_comments() {
        let (toks, comments) = tokenize("/* outer /* inner */ tail */ x");
        assert_eq!(comments.len(), 1);
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].text, "x");
    }

    #[test]
    fn multiline_strings_keep_line_numbers() {
        let (toks, _) = tokenize("let s = \"a\nb\nc\";\nnext");
        let next = toks.iter().find(|t| t.text == "next").expect("next token");
        assert_eq!(next.line, 4);
    }
}
