//! The invariant catalog and the token-level rule engine.
//!
//! Every rule protects one of the project's three load-bearing
//! contracts (see DESIGN.md §"Invariants & lint catalog"):
//!
//! * **Determinism** (`DET…`) — bit-identical results for any worker
//!   count and across runs: no wall clocks, no ambient randomness, no
//!   environment reads in library code, no unordered-collection use in
//!   numeric crates.
//! * **Hot-loop purity** (`HOT…`) — the compiled Newton/timestep and
//!   uniformisation loops stay allocation-free: no constructors,
//!   clones, pushes or collects inside declared `// lint: hot-loop`
//!   regions.
//! * **Numeric hygiene & unsafe audit** (`HYG…`, `UNS…`) — library
//!   code propagates errors instead of panicking, compares floats
//!   deliberately, orders with `total_cmp`, and justifies every
//!   `unsafe` with a `SAFETY:` comment.
//!
//! The engine is lexical by design (no type information): rules are
//! written so that their token patterns have near-zero false-negative
//! rates on this codebase, and the `// lint: allow(RULE): reason`
//! escape hatch turns the residual false positives into reviewed,
//! self-documenting exceptions.

use crate::context::FileContext;
use crate::tokenizer::{Tok, TokKind};

/// How a first-party file is classified, which decides the applicable
/// rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// `src/` of a library crate. `numeric` marks the crates whose
    /// results feed numeric outputs (`core`, `spice`, `sram`, `trap`),
    /// where unordered iteration is banned outright.
    Library {
        /// Crate participates in numeric result paths.
        numeric: bool,
    },
    /// Binaries and developer tooling (`bench`, `lint`, `src/bin/`):
    /// wall clocks, env access and stdout are their job, so only the
    /// hot-loop and unsafe-audit rules apply.
    Tool,
}

/// One diagnostic produced by the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `DET002`.
    pub rule: &'static str,
    /// Path as reported (workspace-relative in workspace mode).
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

/// A catalog entry: one enforced invariant.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable identifier (`DET001`, …) used in findings and allows.
    pub id: &'static str,
    /// One-line summary.
    pub title: &'static str,
    /// The contract family the rule protects.
    pub contract: &'static str,
    /// Long-form explanation for `--explain`.
    pub explain: &'static str,
}

/// Every rule the analyzer enforces, in catalog order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "DET001",
        title: "no wall-clock time in library code",
        contract: "determinism",
        explain: "SystemTime and Instant make results depend on when the simulation ran. \
                  Library crates must be pure functions of their inputs and seeds; timing \
                  belongs in the bench/ tooling. Fix: thread explicit parameters, or move \
                  the measurement out of the library.",
    },
    Rule {
        id: "DET002",
        title: "no ambient randomness in library code",
        contract: "determinism",
        explain: "thread_rng, OsRng and from_entropy draw from process-global or OS entropy, \
                  which breaks bit-identical reproduction and the worker-count-independence \
                  contract of the ensemble engine. Fix: derive every stream from a SeedStream \
                  job index (seeds.rng(job)).",
    },
    Rule {
        id: "DET003",
        title: "no environment access in library code",
        contract: "determinism",
        explain: "std::env reads make library results depend on ambient process state. \
                  Configuration must arrive through typed config structs; only binaries \
                  (bench/, src/bin/) may parse the environment and pass values down.",
    },
    Rule {
        id: "DET004",
        title: "no HashMap/HashSet in numeric crates",
        contract: "determinism",
        explain: "std HashMap/HashSet iteration order is randomized per process. In the \
                  numeric crates (core, spice, sram, trap) any iteration feeding a float \
                  accumulation would destroy bit-identical results, so unordered \
                  collections are banned outright there. Fix: use BTreeMap/BTreeSet, or \
                  justify a lookup-only map with `// lint: allow(DET004): reason`.",
    },
    Rule {
        id: "DET005",
        title: "no fault-plan construction in production code",
        contract: "determinism",
        explain: "FaultPlan builder calls (fail_nth_solve, fail_nth_step, fail_job, \
                  kill_at_job) schedule deliberate solver failures or a hard process kill. \
                  They belong in #[cfg(test)] modules, the fault-injection suite and the \
                  faults module itself; a plan built in production library code would \
                  silently corrupt ensemble results. Fix: move the construction into a \
                  test, or thread a plan in from the caller's configuration (carrying and \
                  arming plans is always allowed).",
    },
    Rule {
        id: "DET006",
        title: "no direct device-parameter sampling outside the scenario layer",
        contract: "determinism",
        explain: "standard_normal/poisson draws scattered through library code are how \
                  per-job parameter sampling drifts away from the ScenarioConfig surface: \
                  a consumer that rolls its own mismatch or trap-count draws changes the \
                  per-job stream layout and silently breaks bit-identical replay across \
                  worker counts. Device statistics must be expanded in core::scenario (or \
                  the defining trap profile module) and flow to consumers as concrete \
                  ScenarioSample/TrapParams values. Fix: accept a sampled input, or \
                  justify a non-parameter draw (e.g. process noise) with \
                  `// lint: allow(DET006): reason`.",
    },
    Rule {
        id: "HOT001",
        title: "no heap construction in hot loops",
        contract: "no-alloc",
        explain: "Inside `// lint: hot-loop` regions (compiled Newton/timestep loop, \
                  uniformisation candidate loop, ensemble shard fold), constructors that \
                  allocate — Vec::new, vec![], Box::new, String::new/from, format!, \
                  with_capacity, to_string, to_owned — are banned. Buffers live in the \
                  persistent workspace and are reused across iterations.",
    },
    Rule {
        id: "HOT002",
        title: "no clone/to_vec in hot loops",
        contract: "no-alloc",
        explain: ".clone() and .to_vec() inside a hot region copy a buffer per iteration. \
                  Reuse workspace buffers (copy_from, clear + extend into retained \
                  capacity) or promote results with mem::swap, as the Newton workspace \
                  does for trial acceptance.",
    },
    Rule {
        id: "HOT003",
        title: "no container growth in hot loops",
        contract: "no-alloc",
        explain: ".push() inside a hot region may reallocate. Either pre-size the buffer \
                  outside the region, or — for genuinely unbounded output accumulation \
                  like the RTN staircase — add `// lint: allow(HOT003): reason` to record \
                  that amortised growth is the algorithm's contract.",
    },
    Rule {
        id: "HOT004",
        title: "no collect in hot loops",
        contract: "no-alloc",
        explain: ".collect() materialises a fresh container per iteration. Fold into a \
                  pre-allocated workspace buffer instead.",
    },
    Rule {
        id: "HOT101",
        title: "no allocation in hot-reachable functions",
        contract: "no-alloc",
        explain: "The call-graph pass extends the hot-loop contract transitively: any \
                  function reachable from a `// lint: hot-loop` region or a \
                  `// lint: hot-fn` annotation runs per iteration, so allocating \
                  constructors (Vec::new, Box::new, String::from, format!, vec![], \
                  to_string, to_owned, with_capacity) inside it are as bad as in the \
                  loop body itself. The diagnostic renders the full call chain from \
                  the hot root. Fix at the allocation site (workspace buffers, \
                  preformatted data), or record a boundary-only path with \
                  `// lint: allow(HOT101): reason`.",
    },
    Rule {
        id: "HOT102",
        title: "no clone/copy in hot-reachable functions",
        contract: "no-alloc",
        explain: ".clone()/.cloned()/.to_vec() in a function on a hot call chain copies \
                  a buffer per iteration even though the loop body itself looks clean. \
                  Restructure to borrow, reuse workspace storage, or justify a cold \
                  error-path copy with `// lint: allow(HOT102): reason`.",
    },
    Rule {
        id: "HOT103",
        title: "no container growth in hot-reachable functions",
        contract: "no-alloc",
        explain: ".push()/.collect() in a hot-reachable function may reallocate per \
                  iteration. Pre-size buffers at the hot boundary, or record \
                  amortised-growth contracts with `// lint: allow(HOT103): reason`.",
    },
    Rule {
        id: "DRW001",
        title: "no guarded RNG draws in sampling modules",
        contract: "determinism",
        explain: "In scenario.rs/profile.rs every job must consume the same number of \
                  draws in the same order, or per-job streams shift and results stop \
                  being bit-identical across worker counts and config toggles. A draw \
                  under `if`/`match` or after a conditional early `return` executes \
                  for some jobs and not others. Fix: draw unconditionally and discard \
                  (burn the slot), or annotate a deliberate stream-layout branch with \
                  `// lint: fixed-draw: reason` on the draw's statement.",
    },
    Rule {
        id: "DRW002",
        title: "public sampling fns consume a threaded RNG",
        contract: "determinism",
        explain: "A public sampling fn that draws without taking an RNG parameter, or \
                  that constructs its own (seed_from_u64/from_seed/from_rng), hides a \
                  stream from the job-indexed seeding discipline: its draws cannot be \
                  replayed or sharded deterministically. Thread the job-indexed RNG \
                  through the signature; construction belongs to SeedStream alone \
                  (`// lint: allow(DRW002): reason` for the defining site).",
    },
    Rule {
        id: "CG001",
        title: "no tool-crate calls on the ensemble path",
        contract: "layering",
        explain: "Functions in numeric crates reachable from `run_ensemble*` are the \
                  reproducibility kernel; calling into tool-class crates \
                  (samurai_bench::, samurai_lint::) from there would couple numeric \
                  results to tooling that is free to read clocks and environments. \
                  The call-graph pass reports the chain from the ensemble root. Fix: \
                  invert the dependency (have the tool observe via telemetry), or \
                  move the helper into a library crate.",
    },
    Rule {
        id: "HYG001",
        title: "no unwrap in library code",
        contract: "hygiene",
        explain: "unwrap()/unwrap_err() turn recoverable conditions into panics that kill \
                  whole ensemble runs. Library code must propagate Result via the crate \
                  error types (CoreError, SpiceError, SramError, WaveformError). Test \
                  modules are exempt. For locally-provable invariants, prefer restructuring; \
                  otherwise record the proof with `// lint: allow(HYG001): reason`.",
    },
    Rule {
        id: "HYG002",
        title: "no expect in library code",
        contract: "hygiene",
        explain: "expect() is unwrap() with a message; the failure mode is still a panic. \
                  Propagate Result instead, or justify a construction-guaranteed invariant \
                  with `// lint: allow(HYG002): reason`.",
    },
    Rule {
        id: "HYG003",
        title: "no panicking macros in library code",
        contract: "hygiene",
        explain: "panic!/unreachable!/todo!/unimplemented! abort the caller's whole \
                  computation. Return an error variant instead. assert!/debug_assert! are \
                  permitted: they document invariants and (debug_assert) vanish in release.",
    },
    Rule {
        id: "HYG004",
        title: "no float literal equality",
        contract: "hygiene",
        explain: "== / != against a float literal is almost always a rounding bug; compare \
                  against a tolerance. Exact-sentinel comparisons (e.g. a companion-model \
                  conductance that is exactly 0.0 in DC mode) are legitimate — record them \
                  with `// lint: allow(HYG004): reason`. The lexical rule only fires when \
                  one operand is a float literal.",
    },
    Rule {
        id: "HYG005",
        title: "use total_cmp, not partial_cmp",
        contract: "hygiene",
        explain: "partial_cmp on floats returns None for NaN, which every call site then \
                  unwraps — a latent panic. f64::total_cmp is total, NaN-safe, and agrees \
                  with partial_cmp on all ordered values: sort_by(f64::total_cmp) or \
                  a.total_cmp(&b).",
    },
    Rule {
        id: "UNS001",
        title: "unsafe requires a SAFETY comment",
        contract: "hygiene",
        explain: "Every `unsafe` keyword (block, fn, impl) must be preceded (within three \
                  lines) by a `// SAFETY:` comment stating why the invariants hold. This \
                  applies everywhere, including tests and tools.",
    },
    Rule {
        id: "RSM001",
        title: "checkpoint files are written only through the atomic helper",
        contract: "crash-safety",
        explain: "A snapshot written with a bare File::create or fs::write can be torn by \
                  a crash mid-write, and a torn `.ckpt` file silently costs a resume its \
                  whole saved prefix. The one sanctioned writer is \
                  samurai_core::checkpoint::write_checkpoint_atomic, which stages the \
                  document in a temp sibling and renames it into place (rename is atomic \
                  on POSIX filesystems). The lexical rule fires on File::create/fs::write \
                  with a `.ckpt` string literal nearby; route the write through the \
                  helper, or justify a deliberately-torn test artifact with \
                  `// lint: allow(RSM001): reason`.",
    },
    Rule {
        id: "SVC001",
        title: "only the serve worker module may run the ensemble engines",
        contract: "layering",
        explain: "Inside crates/serve, calls to the ensemble engines \
                  (`run_ensemble_resilient*`, `run_ensemble_checkpointed`, \
                  `run_column_ensemble*`) are reserved for the worker module \
                  (worker.rs and its workload.rs execution closures). HTTP handler \
                  threads are spawned per connection and unbounded, so an engine call \
                  there bypasses the job queue's capacity, backpressure, checkpoint and \
                  cache discipline — a burst of submissions would fork ensembles without \
                  limit. Handlers must stay I/O-only: parse, enqueue via \
                  ServiceState::submit, and read published state. Route simulation \
                  through a queued ticket instead, or justify a deliberate exception \
                  with `// lint: allow(SVC001): reason`.",
    },
    Rule {
        id: "OBS001",
        title: "telemetry in hot loops must use the guarded macros",
        contract: "observability",
        explain: "Direct MetricsSink calls (`.counter(..)`, `.observe(..)`) inside a \
                  `// lint: hot-loop` region execute unconditionally — with a recording \
                  sink they put map lookups and branches on the innermost numeric path. \
                  The sanctioned form is the `count!`/`observe!` macros from \
                  samurai-telemetry, which guard on `MetricsSink::live` so the NoopSink \
                  default compiles to nothing. Better still: bump a plain u64 field on \
                  the persistent workspace stats and let the sink consume it at the job \
                  boundary, as the Newton and uniformisation loops do.",
    },
];

/// Looks up a catalog entry by id.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// Constructors whose `Type::method` form allocates (HOT001).
const HOT_ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
];

/// Method names that allocate regardless of receiver (HOT001).
const HOT_ALLOC_METHODS: &[&str] = &["to_string", "to_owned", "with_capacity"];

/// Macros that allocate (HOT001).
const HOT_ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Identifiers that reach ambient entropy (DET002).
const AMBIENT_RNG: &[&str] = &["thread_rng", "ThreadRng", "OsRng", "from_entropy"];

/// Panicking macros (HYG003).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// FaultPlan builder methods that schedule injected failures (DET005).
const FAULT_PLAN_BUILDERS: &[&str] =
    &["fail_nth_solve", "fail_nth_step", "fail_job", "kill_at_job"];

/// How many tokens past a raw write call the RSM001 scan looks for a
/// `.ckpt` literal — generous enough to cover a path expression
/// argument, small enough not to leak into the next statement.
const RSM_SCAN_WINDOW: usize = 16;

/// Statistical sampling primitives reserved for the scenario layer
/// (DET006).
const SCENARIO_SAMPLERS: &[&str] = &["standard_normal", "poisson"];

/// Runs every applicable rule over one file's tokens.
pub fn check_tokens(path: &str, class: FileClass, toks: &[Tok], ctx: &FileContext) -> Vec<Finding> {
    let mut out = Vec::new();
    let is_library = matches!(class, FileClass::Library { .. });
    let is_numeric = matches!(class, FileClass::Library { numeric: true });
    // The faults module defines the builders; its own (non-test) code
    // is the one legitimate construction site.
    let is_faults_module = std::path::Path::new(path)
        .file_name()
        .is_some_and(|f| f == "faults.rs");
    // The scenario layer expands per-job parameters and the trap
    // profile module defines the primitives; those are the sanctioned
    // draw sites.
    let is_sampling_module = std::path::Path::new(path)
        .file_name()
        .is_some_and(|f| f == "scenario.rs" || f == "profile.rs");
    // SVC001 is scoped to the serve crate (and its fixture corpus):
    // the worker module and its workload execution closures are the
    // sanctioned engine-call sites; everything else there is I/O-only.
    let in_serve_crate = std::path::Path::new(path)
        .components()
        .filter_map(|c| c.as_os_str().to_str())
        .any(|c| c == "serve" || c == "svc001");
    let is_serve_worker = std::path::Path::new(path)
        .file_name()
        .is_some_and(|f| f == "worker.rs" || f == "workload.rs");

    let mut emit = |rule: &'static str, tok: &Tok, message: String| {
        // UNS001 applies even in test code; everything else is exempt
        // there. Allows silence any rule.
        if ctx.in_test(tok.line) && rule != "UNS001" {
            return;
        }
        if ctx.allowed(tok.line, rule) {
            return;
        }
        out.push(Finding {
            rule,
            path: path.to_string(),
            line: tok.line,
            message,
        });
    };

    let text_at = |k: isize| -> &str {
        if k < 0 {
            return "";
        }
        toks.get(k as usize).map_or("", |t| t.text.as_str())
    };

    for (k, t) in toks.iter().enumerate() {
        let ki = k as isize;
        let prev = text_at(ki - 1);
        let prev2 = text_at(ki - 2);
        let next = text_at(ki + 1);
        let hot = ctx.in_hot(t.line);

        match t.kind {
            TokKind::Ident => {
                let name = t.text.as_str();

                // --- determinism -------------------------------------
                if is_library && matches!(name, "SystemTime" | "Instant") {
                    emit(
                        "DET001",
                        t,
                        format!("`{name}` reads the wall clock; library results must not depend on when they run"),
                    );
                }
                if is_library && AMBIENT_RNG.contains(&name) {
                    emit(
                        "DET002",
                        t,
                        format!("`{name}` draws ambient entropy; derive streams from a SeedStream job index"),
                    );
                }
                if is_library && name == "env" && prev == "::" && prev2 == "std" {
                    emit(
                        "DET003",
                        t,
                        "`std::env` read in library code; configuration must arrive through typed parameters".into(),
                    );
                }
                if is_numeric && matches!(name, "HashMap" | "HashSet") {
                    emit(
                        "DET004",
                        t,
                        format!("`{name}` has randomized iteration order; use BTreeMap/BTreeSet in numeric crates"),
                    );
                }
                if is_library
                    && !is_faults_module
                    && prev == "."
                    && FAULT_PLAN_BUILDERS.contains(&name)
                {
                    emit(
                        "DET005",
                        t,
                        format!("`.{name}()` builds a fault plan in production code; construct plans only in tests"),
                    );
                }
                if is_library
                    && !is_sampling_module
                    && next == "("
                    && prev != "fn"
                    && SCENARIO_SAMPLERS.contains(&name)
                {
                    emit(
                        "DET006",
                        t,
                        format!("`{name}(..)` draws device statistics outside the scenario layer; expand parameters through core::scenario"),
                    );
                }

                // --- service isolation -------------------------------
                if in_serve_crate
                    && !is_serve_worker
                    && next == "("
                    && prev != "fn"
                    && (name.starts_with("run_ensemble") || name.starts_with("run_column_ensemble"))
                {
                    emit(
                        "SVC001",
                        t,
                        format!("`{name}(..)` runs the ensemble engine outside the serve worker module; handlers must enqueue via ServiceState::submit"),
                    );
                }

                // --- hot-loop purity ---------------------------------
                if hot {
                    if prev == "::"
                        && HOT_ALLOC_PATHS
                            .iter()
                            .any(|(ty, m)| *ty == prev2 && *m == name)
                    {
                        emit(
                            "HOT001",
                            t,
                            format!("`{prev2}::{name}` allocates inside a hot-loop region"),
                        );
                    } else if prev == "." && HOT_ALLOC_METHODS.contains(&name) {
                        emit(
                            "HOT001",
                            t,
                            format!("`.{name}()` allocates inside a hot-loop region"),
                        );
                    }
                    if next == "!" && HOT_ALLOC_MACROS.contains(&name) {
                        emit(
                            "HOT001",
                            t,
                            format!("`{name}!` allocates inside a hot-loop region"),
                        );
                    }
                    if prev == "." && matches!(name, "clone" | "to_vec") {
                        emit(
                            "HOT002",
                            t,
                            format!("`.{name}()` copies a buffer inside a hot-loop region"),
                        );
                    }
                    if prev == "." && name == "push" {
                        emit(
                            "HOT003",
                            t,
                            "`.push()` may reallocate inside a hot-loop region".into(),
                        );
                    }
                    if prev == "." && name == "collect" {
                        emit(
                            "HOT004",
                            t,
                            "`.collect()` materialises a container inside a hot-loop region".into(),
                        );
                    }
                    // --- observability -------------------------------
                    if matches!(name, "counter" | "observe")
                        && (prev == "." || (prev == "::" && prev2 == "MetricsSink"))
                    {
                        emit(
                            "OBS001",
                            t,
                            format!("unguarded `{name}` sink call inside a hot-loop region; use the `count!`/`observe!` macros or job-boundary stats"),
                        );
                    }
                }

                // --- numeric hygiene ---------------------------------
                if is_library && prev == "." && matches!(name, "unwrap" | "unwrap_err") {
                    emit(
                        "HYG001",
                        t,
                        format!(
                            "`.{name}()` panics on the error path; propagate the crate error type"
                        ),
                    );
                }
                if is_library && prev == "." && name == "expect" {
                    emit(
                        "HYG002",
                        t,
                        "`.expect()` panics on the error path; propagate the crate error type"
                            .into(),
                    );
                }
                if is_library && next == "!" && PANIC_MACROS.contains(&name) {
                    emit(
                        "HYG003",
                        t,
                        format!("`{name}!` aborts the caller; return an error variant instead"),
                    );
                }
                if is_library && name == "partial_cmp" {
                    emit(
                        "HYG005",
                        t,
                        "`partial_cmp` is partial over NaN; use `f64::total_cmp`".into(),
                    );
                }

                // --- crash safety ------------------------------------
                // A raw write aimed at a checkpoint file (`.ckpt`
                // literal in the argument window) bypasses the atomic
                // temp-and-rename helper. Applies to tools too: a torn
                // snapshot is torn no matter who wrote it.
                if (name == "create" && prev == "::" && prev2 == "File")
                    || (name == "write" && prev == "::" && prev2 == "fs")
                {
                    let near_ckpt = toks[k + 1..]
                        .iter()
                        .take(RSM_SCAN_WINDOW)
                        .any(|a| a.kind == TokKind::Str && a.text.contains(".ckpt"));
                    if near_ckpt {
                        emit(
                            "RSM001",
                            t,
                            format!(
                                "`{prev2}::{name}` writes a checkpoint file directly; \
                                 use checkpoint::write_checkpoint_atomic"
                            ),
                        );
                    }
                }

                // --- unsafe audit ------------------------------------
                if name == "unsafe" && !ctx.has_safety_near(t.line) {
                    emit(
                        "UNS001",
                        t,
                        "`unsafe` without a preceding `// SAFETY:` comment".into(),
                    );
                }
            }
            TokKind::Punct if is_library && (t.text == "==" || t.text == "!=") => {
                let float_operand = toks
                    .get(k.wrapping_sub(1))
                    .is_some_and(|p| p.kind == TokKind::Float)
                    || toks.get(k + 1).is_some_and(|p| p.kind == TokKind::Float);
                if float_operand {
                    emit(
                        "HYG004",
                        t,
                        format!("float literal compared with `{}`; use a tolerance or justify exact-sentinel semantics", t.text),
                    );
                }
            }
            _ => {}
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;
    use crate::tokenizer::tokenize;

    fn findings(src: &str, class: FileClass) -> Vec<Finding> {
        let (toks, comments) = tokenize(src);
        let ctx = FileContext::build(&toks, &comments);
        check_tokens("mem.rs", class, &toks, &ctx)
    }

    const LIB: FileClass = FileClass::Library { numeric: true };

    #[test]
    fn rule_ids_are_unique_and_well_formed() {
        let mut ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate rule id");
        for r in RULES {
            // `FAMnnn` with a 2–3 letter family prefix (CG001, HYG001).
            let (fam, num) = r.id.split_at(r.id.len() - 3);
            assert!(
                (2..=3).contains(&fam.len()) && fam.chars().all(|c| c.is_ascii_uppercase()),
                "{} must be FAMnnn",
                r.id
            );
            assert!(
                num.chars().all(|c| c.is_ascii_digit()),
                "{} must end in 3 digits",
                r.id
            );
            assert!(!r.explain.is_empty() && !r.title.is_empty());
        }
    }

    #[test]
    fn unwrap_fires_only_outside_tests() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn g() { y.unwrap(); } }\n";
        let f = findings(src, LIB);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "HYG001");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(id); z.unwrap_or_default(); }\n";
        assert!(findings(src, LIB).is_empty());
    }

    #[test]
    fn tool_class_skips_library_rules() {
        let src = "fn main() { let t = Instant::now(); std::env::var(\"X\"); x.unwrap(); }\n";
        assert!(findings(src, FileClass::Tool).is_empty());
    }

    #[test]
    fn hot_rules_require_a_region() {
        let src = "fn f() { v.push(1); }\n";
        assert!(findings(src, LIB).is_empty());
        let src = "// lint: hot-loop\nfn f() { v.push(1); }\n// lint: end-hot-loop\n";
        let f = findings(src, LIB);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "HOT003");
    }

    #[test]
    fn float_equality_needs_a_literal_operand() {
        assert_eq!(
            findings("fn f() { if x == 0.0 {} }\n", LIB)[0].rule,
            "HYG004"
        );
        // Two variables: lexically invisible, documented limitation.
        assert!(findings("fn f() { if x == y {} }\n", LIB).is_empty());
        // Integer comparison is fine.
        assert!(findings("fn f() { if x == 0 {} }\n", LIB).is_empty());
    }

    #[test]
    fn safety_comment_satisfies_unsafe_audit() {
        assert_eq!(
            findings("fn f() { unsafe { g() } }\n", LIB)[0].rule,
            "UNS001"
        );
        assert!(findings(
            "// SAFETY: g is infallible here\nfn f() { unsafe { g() } }\n",
            LIB
        )
        .is_empty());
    }

    #[test]
    fn fault_plan_builders_fire_outside_tests_and_the_faults_module() {
        let src =
            "fn f(p: FaultPlan) -> FaultPlan { p.fail_nth_solve(3, FaultKind::NanResidual) }\n";
        let f = findings(src, LIB);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "DET005");

        // Test modules may build plans freely.
        let src = "#[cfg(test)]\nmod tests { fn g() { let p = FaultPlan::none().fail_nth_step(1, FaultKind::TimestepFloor); } }\n";
        assert!(findings(src, LIB).is_empty());

        // The faults module is the defining (and one legitimate
        // production) construction site.
        let src = "fn f(p: FaultPlan) -> FaultPlan { p.fail_job(2, FaultKind::NonConvergence) }\n";
        let (toks, comments) = tokenize(src);
        let ctx = FileContext::build(&toks, &comments);
        assert!(check_tokens("crates/core/src/faults.rs", LIB, &toks, &ctx).is_empty());

        // Carrying or arming a plan is not construction.
        let src = "fn f(p: &FaultPlan) { let a = p.arm(FaultSite::Solve); }\n";
        assert!(findings(src, LIB).is_empty());
    }

    #[test]
    fn raw_checkpoint_writes_fire_in_every_class() {
        let src = "fn f() { fs::write(dir.join(\"run.ckpt\"), doc); }\n";
        for class in [LIB, FileClass::Tool] {
            let (toks, comments) = tokenize(src);
            let ctx = FileContext::build(&toks, &comments);
            let f = check_tokens("mem.rs", class, &toks, &ctx);
            assert_eq!(f.len(), 1, "{class:?}");
            assert_eq!(f[0].rule, "RSM001");
        }
        let src = "fn f() { let h = File::create(\"col.ckpt\")?; }\n";
        assert_eq!(findings(src, LIB)[0].rule, "RSM001");

        // Writes with no checkpoint literal in range are untouched,
        // as is the atomic helper's own temp-file staging.
        assert!(findings("fn f() { fs::write(path, doc); }\n", LIB).is_empty());
        assert!(findings(
            "fn f() { fs::write(&tmp, contents)?; fs::rename(&tmp, path) }\n",
            LIB
        )
        .is_empty());

        // The kill drill is a DET005 builder like the others.
        let src = "fn f(p: FaultPlan) -> FaultPlan { p.kill_at_job(7) }\n";
        assert_eq!(findings(src, LIB)[0].rule, "DET005");
    }

    #[test]
    fn parameter_sampling_fires_outside_the_scenario_layer() {
        let src = "fn f(rng: &mut R, sigma: f64) -> f64 { sigma * standard_normal(rng) }\n";
        let f = findings(src, LIB);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "DET006");

        // Test modules may draw freely.
        let src = "#[cfg(test)]\nmod tests { fn g(rng: &mut R) { let n = poisson(rng, 1.5); } }\n";
        assert!(findings(src, LIB).is_empty());

        // The scenario layer is the sanctioned expansion site, and the
        // trap profile module defines the primitives.
        let src = "fn f(rng: &mut R) -> f64 { standard_normal(rng) }\n";
        let (toks, comments) = tokenize(src);
        let ctx = FileContext::build(&toks, &comments);
        assert!(check_tokens("crates/core/src/scenario.rs", LIB, &toks, &ctx).is_empty());
        assert!(check_tokens("crates/trap/src/profile.rs", LIB, &toks, &ctx).is_empty());

        // Definitions and bare re-exports are not draws.
        let src = "fn standard_normal(rng: &mut R) -> f64 { rng.gen() }\n\
                   pub use profile::{poisson, standard_normal};\n";
        assert!(findings(src, LIB).is_empty());
    }

    #[test]
    fn telemetry_calls_in_hot_regions_must_be_guarded() {
        let src = "// lint: hot-loop\nfn f() { s.counter(\"n\", 1); s.observe(\"v\", x); }\n// lint: end-hot-loop\n";
        let f = findings(src, LIB);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.rule == "OBS001"));

        // The guarded macros are the sanctioned form.
        let src = "// lint: hot-loop\nfn f() { count!(s, \"n\", 1); observe!(s, \"v\", x); }\n// lint: end-hot-loop\n";
        assert!(findings(src, LIB).is_empty());

        // The fully-qualified trait form is still a direct call.
        let src = "// lint: hot-loop\nfn f() { MetricsSink::counter(&mut s, \"n\", 1); }\n// lint: end-hot-loop\n";
        assert_eq!(findings(src, LIB)[0].rule, "OBS001");

        // Outside hot regions direct sink calls are fine.
        assert!(findings("fn f() { s.counter(\"n\", 1); }\n", LIB).is_empty());
    }

    #[test]
    fn string_contents_never_fire() {
        let src = "fn f() { let s = \"thread_rng unwrap() HashMap\"; }\n";
        assert!(findings(src, LIB).is_empty());
    }

    #[test]
    fn allows_silence_exactly_the_named_rule() {
        let src = "fn f() { x.unwrap(); } // lint: allow(HYG001): proven above\n";
        assert!(findings(src, LIB).is_empty());
        let src = "fn f() { x.unwrap(); } // lint: allow(HYG002): wrong rule\n";
        assert_eq!(findings(src, LIB).len(), 1);
    }
}
