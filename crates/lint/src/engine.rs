//! Workspace discovery, file classification and the two-pass driver.
//!
//! The analyzer walks the *first-party* crates only (`crates/*/src`),
//! never `vendor/` (offline API stubs we do not own) and never
//! `target/`. Classification is by crate directory name:
//!
//! | crates        | class                 | rule families            |
//! |---------------|-----------------------|--------------------------|
//! | core, spice, sram, trap | numeric library | DET (incl. DET004), HOT, HYG, UNS, HOTPATH, DRAW, CG |
//! | units, waveform, analysis, samurai, (new crates) | library | DET, HOT, HYG, UNS, HOTPATH, DRAW |
//! | bench, lint, any `src/bin/` file | tool   | HOT, UNS, HOTPATH        |
//!
//! Analysis is two-pass. Pass 1 is per-file and embarrassingly
//! cacheable: tokenize, run the token-level rules, and parse the item
//! index ([`crate::parser`]). Pass 2 is whole-workspace: build the
//! call graph over all item indexes, pruned by the first-party crate
//! dependency graph read from the `Cargo.toml`s, and run the
//! HOTPATH/DRAW/CALLGRAPH families ([`crate::callgraph`]). The
//! optional content-hash cache ([`crate::cache`]) lets warm runs skip
//! pass 1 entirely for unchanged files.
//!
//! Integration tests (`tests/`), benches and examples are not scanned:
//! panicking and ad-hoc comparison are legitimate there, and the
//! in-file `#[cfg(test)]` regions are already exempted by the context.
//! Unknown new crates default to the (non-numeric) library class, so a
//! freshly added crate is linted strictly from its first commit.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::cache;
use crate::callgraph::{CallGraph, DepMap};
use crate::context::FileContext;
use crate::parser::{parse_file, FileRecord};
use crate::rules::{check_tokens, FileClass, Finding};
use crate::tokenizer::tokenize;

/// Crates on the numeric result path: unordered collections banned.
const NUMERIC_CRATES: &[&str] = &["core", "spice", "sram", "trap"];

/// Developer tooling: only hot-loop and unsafe rules apply.
const TOOL_CRATES: &[&str] = &["bench", "lint"];

/// The result of a full two-pass workspace analysis.
pub struct WorkspaceAnalysis {
    /// All findings (token-level and semantic), sorted.
    pub findings: Vec<Finding>,
    /// Per-file pass-1 output, in analysis order — build a
    /// [`CallGraph`] over it for `--graph`.
    pub records: Vec<FileRecord>,
    /// The first-party crate dependency closure used for pruning.
    pub deps: DepMap,
    /// Files whose pass-1 output came from the cache.
    pub cache_hits: usize,
    /// Files analyzed cold.
    pub cache_misses: usize,
}

/// Analyzes one source string under an explicit classification —
/// token rules only (the historical single-pass surface, still used
/// by unit tests).
pub fn analyze_source(path: &str, src: &str, class: FileClass) -> Vec<Finding> {
    let (toks, comments) = tokenize(src);
    let ctx = FileContext::build(&toks, &comments);
    check_tokens(path, class, &toks, &ctx)
}

/// Analyzes one source string with both passes: token rules plus the
/// semantic families over a single-file call graph (no dependency
/// pruning). This is what fixtures and explicit-path mode run.
pub fn analyze_source_full(path: &str, src: &str, class: FileClass) -> Vec<Finding> {
    let rec = pass1(path, src, class);
    let mut findings = rec.token_findings.clone();
    let records = [rec];
    findings.extend(CallGraph::build(&records, None).semantic_findings());
    sort_findings(&mut findings);
    findings
}

/// Analyzes one file on disk under an explicit classification
/// (token rules only).
pub fn analyze_file(path: &Path, class: FileClass) -> io::Result<Vec<Finding>> {
    let src = fs::read_to_string(path)?;
    Ok(analyze_source(&path.display().to_string(), &src, class))
}

/// Pass 1 for one file: token findings plus the parsed item index.
fn pass1(path: &str, src: &str, class: FileClass) -> FileRecord {
    let (toks, comments) = tokenize(src);
    let ctx = FileContext::build(&toks, &comments);
    let mut rec = parse_file(path, class, &toks, &ctx);
    rec.token_findings = check_tokens(path, class, &toks, &ctx);
    rec
}

/// The classification of crate `name`.
pub fn classify_crate(name: &str) -> FileClass {
    if TOOL_CRATES.contains(&name) {
        FileClass::Tool
    } else {
        FileClass::Library {
            numeric: NUMERIC_CRATES.contains(&name),
        }
    }
}

/// Walks `root/crates/*/src` and runs both passes; returns findings
/// only. Kept as the stable entry point for callers that do not need
/// the graph (`analyze_workspace_full` for the rest).
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(analyze_workspace_full(root, None)?.findings)
}

/// The full two-pass workspace analysis. `cache_path`, when given,
/// names the content-hash cache file (`target/lint-cache.json` by
/// convention); it is read best-effort and rewritten after pass 1.
pub fn analyze_workspace_full(
    root: &Path,
    cache_path: Option<&Path>,
) -> io::Result<WorkspaceAnalysis> {
    let old = cache_path.map(cache::load).unwrap_or_default();
    let mut new_entries = cache::Entries::new();
    let mut records = Vec::new();
    let mut cache_hits = 0;
    let mut cache_misses = 0;

    for (file, src_dir, crate_class) in workspace_files(root)? {
        // Binary targets are tooling even inside library crates.
        let class = if file
            .strip_prefix(&src_dir)
            .ok()
            .is_some_and(|rel| rel.starts_with("bin"))
        {
            FileClass::Tool
        } else {
            crate_class
        };
        let src = fs::read_to_string(&file)?;
        let label = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .display()
            .to_string();
        let hash = cache::fnv1a(src.as_bytes());
        let rec = match old.get(&label) {
            Some((h, cached)) if *h == hash && cached.class == class => {
                cache_hits += 1;
                cached.clone()
            }
            _ => {
                cache_misses += 1;
                pass1(&label, &src, class)
            }
        };
        if cache_path.is_some() {
            new_entries.insert(label, (hash, rec.clone()));
        }
        records.push(rec);
    }
    if let Some(p) = cache_path {
        // Best-effort: a read-only target/ dir costs speed, not
        // correctness.
        let _ = cache::store(p, &new_entries);
    }

    let deps = crate_deps(root)?;
    let mut findings: Vec<Finding> = records
        .iter()
        .flat_map(|r| r.token_findings.iter().cloned())
        .collect();
    findings.extend(CallGraph::build(&records, Some(&deps)).semantic_findings());
    sort_findings(&mut findings);
    Ok(WorkspaceAnalysis {
        findings,
        records,
        deps,
        cache_hits,
        cache_misses,
    })
}

fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.rule,
            b.message.as_str(),
        ))
    });
}

/// Enumerates the workspace's first-party `.rs` files in
/// deterministic (sorted) order — the analyzer holds itself to the
/// determinism contract it enforces. Yields
/// `(file, crate_src_dir, crate_class)`.
fn workspace_files(root: &Path) -> io::Result<Vec<(PathBuf, PathBuf, FileClass)>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut out = Vec::new();
    for dir in crate_dirs {
        let Some(name) = dir.file_name().and_then(|n| n.to_str()).map(String::from) else {
            continue;
        };
        let crate_class = classify_crate(&name);
        let src_dir = dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for file in files {
            out.push((file, src_dir.clone(), crate_class));
        }
    }
    Ok(out)
}

/// Reads the first-party dependency graph out of the crate manifests
/// and closes it transitively. Keys and values are crate directory
/// names (`core`, not `samurai-core`); every crate sees itself.
pub fn crate_deps(root: &Path) -> io::Result<DepMap> {
    let crates_dir = root.join("crates");
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for entry in fs::read_dir(&crates_dir)? {
        let dir = entry?.path();
        let Some(name) = dir.file_name().and_then(|n| n.to_str()).map(String::from) else {
            continue;
        };
        let Ok(manifest) = fs::read_to_string(dir.join("Cargo.toml")) else {
            continue;
        };
        let mut deps = BTreeSet::new();
        deps.insert(name.clone());
        for line in manifest.lines() {
            // `samurai-core = { workspace = true }` (or a path dep) —
            // the left-hand side names the first-party crate.
            let trimmed = line.trim_start();
            if let Some(rest) = trimmed.strip_prefix("samurai-") {
                if let Some(dep) = rest.split(['=', ' ', '.']).next() {
                    if rest[dep.len()..].trim_start().starts_with('=') && !dep.is_empty() {
                        deps.insert(dep.to_string());
                    }
                }
            }
        }
        direct.insert(name, deps);
    }

    // Transitive closure (the graph is tiny; fixpoint iteration).
    let mut closed = direct.clone();
    loop {
        let mut changed = false;
        for name in direct.keys() {
            let current: Vec<String> = closed[name].iter().cloned().collect();
            let mut add = BTreeSet::new();
            for dep in &current {
                if let Some(next) = closed.get(dep) {
                    for d in next {
                        if !closed[name].contains(d) {
                            add.insert(d.clone());
                        }
                    }
                }
            }
            if !add.is_empty() {
                closed.get_mut(name).map(|s| s.extend(add)).unwrap_or(());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Ok(closed)
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Ascends from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_table() {
        assert_eq!(classify_crate("core"), FileClass::Library { numeric: true });
        assert_eq!(
            classify_crate("spice"),
            FileClass::Library { numeric: true }
        );
        assert_eq!(
            classify_crate("units"),
            FileClass::Library { numeric: false }
        );
        assert_eq!(classify_crate("bench"), FileClass::Tool);
        assert_eq!(classify_crate("lint"), FileClass::Tool);
        // Unknown crates are linted as libraries from day one.
        assert_eq!(
            classify_crate("brand-new"),
            FileClass::Library { numeric: false }
        );
    }

    #[test]
    fn analyze_source_is_deterministic() {
        let src = "fn f() { a.unwrap(); b.expect(\"x\"); }\n";
        let class = FileClass::Library { numeric: false };
        let a = analyze_source("f.rs", src, class);
        let b = analyze_source("f.rs", src, class);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn full_analysis_adds_semantic_findings() {
        let src = "// lint: hot-fn\npub fn kernel() { helper(); }\n\
                   fn helper() { let v = Vec::new(); drop(v); }\n";
        let class = FileClass::Library { numeric: true };
        let token_only = analyze_source("k.rs", src, class);
        assert!(token_only.is_empty(), "no token-level violation here");
        let full = analyze_source_full("k.rs", src, class);
        assert_eq!(full.len(), 1);
        assert_eq!(full[0].rule, "HOT101");
    }
}
