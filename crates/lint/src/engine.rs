//! Workspace discovery, file classification and the analysis driver.
//!
//! The analyzer walks the *first-party* crates only (`crates/*/src`),
//! never `vendor/` (offline API stubs we do not own) and never
//! `target/`. Classification is by crate directory name:
//!
//! | crates        | class                 | rule families            |
//! |---------------|-----------------------|--------------------------|
//! | core, spice, sram, trap | numeric library | DET (incl. DET004), HOT, HYG, UNS |
//! | units, waveform, analysis, samurai, (new crates) | library | DET, HOT, HYG, UNS |
//! | bench, lint, any `src/bin/` file | tool   | HOT, UNS                 |
//!
//! Integration tests (`tests/`), benches and examples are not scanned:
//! panicking and ad-hoc comparison are legitimate there, and the
//! in-file `#[cfg(test)]` regions are already exempted by the context.
//! Unknown new crates default to the (non-numeric) library class, so a
//! freshly added crate is linted strictly from its first commit.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::context::FileContext;
use crate::rules::{check_tokens, FileClass, Finding};
use crate::tokenizer::tokenize;

/// Crates on the numeric result path: unordered collections banned.
const NUMERIC_CRATES: &[&str] = &["core", "spice", "sram", "trap"];

/// Developer tooling: only hot-loop and unsafe rules apply.
const TOOL_CRATES: &[&str] = &["bench", "lint"];

/// Analyzes one source string under an explicit classification.
pub fn analyze_source(path: &str, src: &str, class: FileClass) -> Vec<Finding> {
    let (toks, comments) = tokenize(src);
    let ctx = FileContext::build(&toks, &comments);
    check_tokens(path, class, &toks, &ctx)
}

/// Analyzes one file on disk under an explicit classification.
pub fn analyze_file(path: &Path, class: FileClass) -> io::Result<Vec<Finding>> {
    let src = fs::read_to_string(path)?;
    Ok(analyze_source(&path.display().to_string(), &src, class))
}

/// The classification of crate `name`.
pub fn classify_crate(name: &str) -> FileClass {
    if TOOL_CRATES.contains(&name) {
        FileClass::Tool
    } else {
        FileClass::Library {
            numeric: NUMERIC_CRATES.contains(&name),
        }
    }
}

/// Walks `root/crates/*/src` and analyzes every `.rs` file, in
/// deterministic (sorted) order — the analyzer holds itself to the
/// determinism contract it enforces.
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut findings = Vec::new();
    for dir in crate_dirs {
        let Some(name) = dir.file_name().and_then(|n| n.to_str()).map(String::from) else {
            continue;
        };
        let crate_class = classify_crate(&name);
        let src_dir = dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for file in files {
            // Binary targets are tooling even inside library crates.
            let class = if file
                .strip_prefix(&src_dir)
                .ok()
                .is_some_and(|rel| rel.starts_with("bin"))
            {
                FileClass::Tool
            } else {
                crate_class
            };
            let src = fs::read_to_string(&file)?;
            let label = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .display()
                .to_string();
            findings.extend(analyze_source(&label, &src, class));
        }
    }
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(findings)
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Ascends from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_table() {
        assert_eq!(classify_crate("core"), FileClass::Library { numeric: true });
        assert_eq!(
            classify_crate("spice"),
            FileClass::Library { numeric: true }
        );
        assert_eq!(
            classify_crate("units"),
            FileClass::Library { numeric: false }
        );
        assert_eq!(classify_crate("bench"), FileClass::Tool);
        assert_eq!(classify_crate("lint"), FileClass::Tool);
        // Unknown crates are linted as libraries from day one.
        assert_eq!(
            classify_crate("brand-new"),
            FileClass::Library { numeric: false }
        );
    }

    #[test]
    fn analyze_source_is_deterministic() {
        let src = "fn f() { a.unwrap(); b.expect(\"x\"); }\n";
        let class = FileClass::Library { numeric: false };
        let a = analyze_source("f.rs", src, class);
        let b = analyze_source("f.rs", src, class);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }
}
