//! The `samurai-lint` command-line interface.
//!
//! ```text
//! samurai-lint                      # report findings, exit 0
//! samurai-lint --deny               # CI mode: exit 2 on any finding
//! samurai-lint --json               # machine-readable findings
//! samurai-lint --explain HYG005     # the catalog page for one rule
//! samurai-lint --self-check         # prove the fixture corpus still
//!                                   # trips every rule (CI guard
//!                                   # against the analyzer going blind)
//! samurai-lint --graph FILE         # dump the workspace call graph
//!                                   # as JSON (samurai-lint-graph-v1)
//! samurai-lint --no-cache           # force a cold pass-1 analysis
//! samurai-lint --cache FILE         # cache location override
//!                                   # (default target/lint-cache.json)
//! samurai-lint path/to/file.rs …    # lint explicit paths under the
//!                                   # strictest (numeric-library) class
//! samurai-lint --root DIR           # workspace root override
//! ```
#![allow(clippy::print_stdout, clippy::print_stderr)] // a CLI's output IS stdout

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use samurai_lint::callgraph::CallGraph;
use samurai_lint::report::{render_explain, render_json, render_report};
use samurai_lint::rules::{rule_by_id, RULES};
use samurai_lint::{analyze_source_full, analyze_workspace_full, engine, FileClass, Finding};

struct Options {
    deny: bool,
    json: bool,
    self_check: bool,
    explain: Option<String>,
    graph: Option<PathBuf>,
    no_cache: bool,
    cache: Option<PathBuf>,
    root: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        deny: false,
        json: false,
        self_check: false,
        explain: None,
        graph: None,
        no_cache: false,
        cache: None,
        root: None,
        paths: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => opts.deny = true,
            "--json" => opts.json = true,
            "--self-check" => opts.self_check = true,
            "--no-cache" => opts.no_cache = true,
            "--explain" => {
                opts.explain = Some(args.next().ok_or("--explain requires a rule id")?);
            }
            "--graph" => {
                opts.graph = Some(PathBuf::from(
                    args.next().ok_or("--graph requires an output file")?,
                ));
            }
            "--cache" => {
                opts.cache = Some(PathBuf::from(args.next().ok_or("--cache requires a file")?));
            }
            "--root" => {
                opts.root = Some(PathBuf::from(
                    args.next().ok_or("--root requires a directory")?,
                ));
            }
            "--help" | "-h" => {
                return Err("usage: samurai-lint [--deny] [--json] [--explain RULE] \
                            [--self-check] [--graph FILE] [--no-cache] [--cache FILE] \
                            [--root DIR] [paths...]"
                    .into())
            }
            p if !p.starts_with('-') => opts.paths.push(PathBuf::from(p)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn workspace_root(opts: &Options) -> Result<PathBuf, String> {
    if let Some(root) = &opts.root {
        return Ok(root.clone());
    }
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    engine::find_workspace_root(&cwd)
        .ok_or_else(|| "no workspace root found (run inside the repo or pass --root)".into())
}

/// Recursively collects `.rs` fixture files under `dir`, sorted.
fn fixture_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if path.is_dir() {
                walk(&path, out)?;
            } else if path.extension().is_some_and(|x| x == "rs") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut files = Vec::new();
    walk(dir, &mut files).map_err(|e| format!("{}: {e}", dir.display()))?;
    files.sort();
    Ok(files)
}

/// `true` when `file` is the fixture for `rule`: its stem, or any
/// directory between the corpus subdir and the file, equals the
/// lowercased rule id. (Scope-sensitive rules like the DRW family
/// live at `violations/drw001/scenario.rs` because the analyzer keys
/// on the file name.)
fn covers_rule(file: &Path, rule: &str) -> bool {
    let id = rule.to_ascii_lowercase();
    file.iter()
        .filter_map(|c| c.to_str())
        .any(|c| c == id || c.strip_suffix(".rs") == Some(&id))
}

/// Runs the analyzer over the seeded fixture corpus and verifies that
/// every rule has dedicated fixture coverage, fires on its
/// `violations/` fixture, and is suppressible (`allowed/` silent,
/// `clean/` silent). This is the CI guard against the analyzer
/// silently going blind.
fn self_check(root: &Path) -> Result<(), String> {
    let fixtures = root.join("crates/lint/fixtures");
    let class = FileClass::Library { numeric: true };
    let scan = |sub: &str| -> Result<Vec<(PathBuf, Vec<Finding>)>, String> {
        let mut out = Vec::new();
        for f in fixture_files(&fixtures.join(sub))? {
            let src = std::fs::read_to_string(&f).map_err(|e| format!("{}: {e}", f.display()))?;
            out.push((
                f.clone(),
                analyze_source_full(&f.display().to_string(), &src, class),
            ));
        }
        Ok(out)
    };

    let violations = scan("violations")?;
    let allowed = scan("allowed")?;
    let mut failures = Vec::new();

    // Coverage: every rule needs a dedicated violations/ and allowed/
    // fixture — a rule with no fixture can go blind without CI
    // noticing.
    for rule in RULES {
        for (sub, set) in [("violations", &violations), ("allowed", &allowed)] {
            if !set.iter().any(|(f, _)| covers_rule(f, rule.id)) {
                failures.push(format!(
                    "rule {} has no {sub}/ fixture (expected a file or directory named {})",
                    rule.id,
                    rule.id.to_ascii_lowercase()
                ));
            }
        }
    }

    let fired: BTreeSet<&str> = violations
        .iter()
        .flat_map(|(_, fs)| fs.iter().map(|f| f.rule))
        .collect();
    for rule in RULES {
        if !fired.contains(rule.id) {
            failures.push(format!(
                "rule {} no longer fires on its violation fixture",
                rule.id
            ));
        }
    }
    for (sub, set) in [("allowed", &allowed), ("clean", &scan("clean")?)] {
        for (_, fs) in set {
            for f in fs {
                failures.push(format!(
                    "{} fixture should be silent but {} fired at {}:{}",
                    sub, f.rule, f.path, f.line
                ));
            }
        }
    }
    if failures.is_empty() {
        println!(
            "samurai-lint self-check: all {} rules have fixture coverage, fire and are suppressible",
            RULES.len()
        );
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;

    if let Some(id) = &opts.explain {
        let rule = rule_by_id(id).ok_or_else(|| {
            let known: Vec<&str> = RULES.iter().map(|r| r.id).collect();
            format!("unknown rule `{id}`; known rules: {}", known.join(", "))
        })?;
        print!("{}", render_explain(rule));
        return Ok(ExitCode::SUCCESS);
    }

    if opts.self_check {
        let root = workspace_root(&opts)?;
        self_check(&root)?;
        return Ok(ExitCode::SUCCESS);
    }

    let findings = if opts.paths.is_empty() {
        let root = workspace_root(&opts)?;
        let cache_path = if opts.no_cache {
            None
        } else {
            Some(
                opts.cache
                    .clone()
                    .unwrap_or_else(|| root.join("target/lint-cache.json")),
            )
        };
        let analysis =
            analyze_workspace_full(&root, cache_path.as_deref()).map_err(|e| e.to_string())?;
        if let Some(out) = &opts.graph {
            let graph = CallGraph::build(&analysis.records, Some(&analysis.deps));
            std::fs::write(out, graph.graph_json())
                .map_err(|e| format!("{}: {e}", out.display()))?;
            eprintln!(
                "samurai-lint: call graph ({} nodes, {} edges) written to {}",
                graph.nodes.len(),
                graph.edges.len(),
                out.display()
            );
        }
        analysis.findings
    } else {
        // Explicit paths are linted under the strictest class, with
        // both passes over each single file.
        let mut all = Vec::new();
        for p in &opts.paths {
            let src = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
            all.extend(analyze_source_full(
                &p.display().to_string(),
                &src,
                FileClass::Library { numeric: true },
            ));
        }
        all
    };

    if opts.json {
        print!("{}", render_json(&findings));
    } else {
        print!("{}", render_report(&findings));
    }

    if opts.deny && !findings.is_empty() {
        return Ok(ExitCode::from(2));
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("samurai-lint: {msg}");
            ExitCode::FAILURE
        }
    }
}
