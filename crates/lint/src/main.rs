//! The `samurai-lint` command-line interface.
//!
//! ```text
//! samurai-lint                      # report findings, exit 0
//! samurai-lint --deny               # CI mode: exit 2 on any finding
//! samurai-lint --json               # machine-readable findings
//! samurai-lint --explain HYG005     # the catalog page for one rule
//! samurai-lint --self-check         # prove the fixture corpus still
//!                                   # trips every rule (CI guard
//!                                   # against the analyzer going blind)
//! samurai-lint path/to/file.rs …    # lint explicit paths under the
//!                                   # strictest (numeric-library) class
//! samurai-lint --root DIR           # workspace root override
//! ```
#![allow(clippy::print_stdout, clippy::print_stderr)] // a CLI's output IS stdout

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use samurai_lint::report::{render_explain, render_json, render_report};
use samurai_lint::rules::{rule_by_id, RULES};
use samurai_lint::{analyze_file, analyze_workspace, engine, FileClass, Finding};

struct Options {
    deny: bool,
    json: bool,
    self_check: bool,
    explain: Option<String>,
    root: Option<PathBuf>,
    paths: Vec<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        deny: false,
        json: false,
        self_check: false,
        explain: None,
        root: None,
        paths: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => opts.deny = true,
            "--json" => opts.json = true,
            "--self-check" => opts.self_check = true,
            "--explain" => {
                opts.explain = Some(args.next().ok_or("--explain requires a rule id")?);
            }
            "--root" => {
                opts.root = Some(PathBuf::from(
                    args.next().ok_or("--root requires a directory")?,
                ));
            }
            "--help" | "-h" => {
                return Err("usage: samurai-lint [--deny] [--json] [--explain RULE] \
                            [--self-check] [--root DIR] [paths...]"
                    .into())
            }
            p if !p.starts_with('-') => opts.paths.push(PathBuf::from(p)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn workspace_root(opts: &Options) -> Result<PathBuf, String> {
    if let Some(root) = &opts.root {
        return Ok(root.clone());
    }
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    engine::find_workspace_root(&cwd)
        .ok_or_else(|| "no workspace root found (run inside the repo or pass --root)".into())
}

/// Runs the analyzer over the seeded fixture corpus and verifies that
/// every rule both fires (violations/) and is suppressible (allowed/),
/// and that the clean counterparts are silent. This is the CI guard
/// against the analyzer silently going blind.
fn self_check(root: &Path) -> Result<(), String> {
    let fixtures = root.join("crates/lint/fixtures");
    let class = FileClass::Library { numeric: true };
    let scan = |sub: &str| -> Result<Vec<Finding>, String> {
        let dir = fixtures.join(sub);
        let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .map_err(|e| format!("{}: {e}", dir.display()))?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "rs"))
            .collect();
        files.sort();
        let mut all = Vec::new();
        for f in files {
            all.extend(analyze_file(&f, class).map_err(|e| format!("{}: {e}", f.display()))?);
        }
        Ok(all)
    };

    let fired: BTreeSet<&str> = scan("violations")?.iter().map(|f| f.rule).collect();
    let mut failures = Vec::new();
    for rule in RULES {
        if !fired.contains(rule.id) {
            failures.push(format!(
                "rule {} no longer fires on its violation fixture",
                rule.id
            ));
        }
    }
    for sub in ["allowed", "clean"] {
        for f in scan(sub)? {
            failures.push(format!(
                "{} fixture should be silent but {} fired at {}:{}",
                sub, f.rule, f.path, f.line
            ));
        }
    }
    if failures.is_empty() {
        println!(
            "samurai-lint self-check: all {} rules fire and are suppressible",
            RULES.len()
        );
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;

    if let Some(id) = &opts.explain {
        let rule = rule_by_id(id).ok_or_else(|| {
            let known: Vec<&str> = RULES.iter().map(|r| r.id).collect();
            format!("unknown rule `{id}`; known rules: {}", known.join(", "))
        })?;
        print!("{}", render_explain(rule));
        return Ok(ExitCode::SUCCESS);
    }

    if opts.self_check {
        let root = workspace_root(&opts)?;
        self_check(&root)?;
        return Ok(ExitCode::SUCCESS);
    }

    let findings = if opts.paths.is_empty() {
        let root = workspace_root(&opts)?;
        analyze_workspace(&root).map_err(|e| e.to_string())?
    } else {
        // Explicit paths are linted under the strictest class.
        let mut all = Vec::new();
        for p in &opts.paths {
            all.extend(
                analyze_file(p, FileClass::Library { numeric: true })
                    .map_err(|e| format!("{}: {e}", p.display()))?,
            );
        }
        all
    };

    if opts.json {
        print!("{}", render_json(&findings));
    } else {
        print!("{}", render_report(&findings));
    }

    if opts.deny && !findings.is_empty() {
        return Ok(ExitCode::from(2));
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("samurai-lint: {msg}");
            ExitCode::FAILURE
        }
    }
}
