//! Pass 1 of the workspace analyzer: the per-file item index.
//!
//! The tokenizer gives a flat token stream; this module recovers just
//! enough structure for cross-file analysis without a real parser:
//! `fn` items (free functions and `impl` methods) with their
//! brace-matched body extents, the calls each body makes, and the
//! body facts the semantic rule families key on — allocation /
//! clone / collect effects (HOT101–HOT103), RNG draw sites with their
//! conditional-guard status (DRW001), signature evidence of a threaded
//! RNG (DRW002), and in-body RNG construction (DRW002).
//!
//! Name resolution is deliberately approximate (no type information):
//! a `.method(..)` call names every workspace method with that name, a
//! `Type::method(..)` call names the methods of `impl Type` blocks,
//! and a bare `name(..)` call names the free functions. Pass 2
//! ([`crate::callgraph`]) prunes candidate sets with the crate
//! dependency graph, which keeps the over-approximation small enough
//! to act on.

use crate::context::FileContext;
use crate::rules::{FileClass, Finding};
use crate::tokenizer::{Tok, TokKind};

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recv {
    /// `recv.name(..)` — a method call on an unknown receiver type.
    Method,
    /// `a::b::name(..)` — a path-qualified call; the field holds the
    /// leading segments (`a`, `b`), with `Self` already resolved to
    /// the enclosing impl type.
    Path(Vec<String>),
    /// `name(..)` — an unqualified call.
    Bare,
}

/// One call site inside a function body or hot-loop region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// The callee's final path segment / method name.
    pub name: String,
    /// 1-based source line of the call.
    pub line: usize,
    /// How the callee is named.
    pub recv: Recv,
}

/// One rule-relevant body fact for the hot-path reachability pass.
#[derive(Debug, Clone)]
pub struct Effect {
    /// The HOTPATH rule the effect violates when hot-reachable.
    pub rule: &'static str,
    /// 1-based source line.
    pub line: usize,
    /// The offending construct, e.g. `` `Vec::new` ``.
    pub what: String,
}

/// One RNG draw site (DRW001).
#[derive(Debug, Clone)]
pub struct Draw {
    /// The draw primitive's name.
    pub name: String,
    /// 1-based source line.
    pub line: usize,
    /// `true` when the draw sits under an `if`/`match` guard or after
    /// a conditional early `return` in the same function.
    pub guarded: bool,
}

/// One indexed `fn` item.
#[derive(Debug, Clone)]
pub struct Item {
    /// The function's name.
    pub name: String,
    /// Enclosing `impl` type, if the item is a method.
    pub impl_type: Option<String>,
    /// `true` for `pub` (any visibility-qualified `pub(..)` counts).
    pub is_pub: bool,
    /// `true` when the signature threads an RNG (an `rng` parameter
    /// or an `Rng`/`ChaCha8Rng`/`SeedStream` bound).
    pub has_rng_param: bool,
    /// `true` when a `// lint: hot-fn` annotation marks the item as a
    /// hot-path root.
    pub hot_fn: bool,
    /// 1-based line of the `fn` name.
    pub line: usize,
    /// 1-based line of the body's closing brace.
    pub end_line: usize,
    /// Calls the body makes (nested items excluded).
    pub calls: Vec<Call>,
    /// Allocation/clone/collect facts for HOT101–HOT103.
    pub effects: Vec<Effect>,
    /// RNG draw sites for DRW001.
    pub draws: Vec<Draw>,
    /// Lines where the body constructs an RNG (DRW002).
    pub rng_ctor_lines: Vec<usize>,
}

impl Item {
    /// The item's display name: `Type::name` for methods, `name` for
    /// free functions.
    pub fn display_name(&self) -> String {
        match &self.impl_type {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Everything pass 2 needs to know about one analyzed file. This is
/// the unit the incremental cache persists: it is a pure function of
/// the file's content and classification.
#[derive(Debug, Clone)]
pub struct FileRecord {
    /// Workspace-relative path as reported in findings.
    pub path: String,
    /// Classification the file was analyzed under.
    pub class: FileClass,
    /// The indexed `fn` items (test items excluded).
    pub items: Vec<Item>,
    /// Calls made lexically inside `// lint: hot-loop` regions — the
    /// roots of the hot-path reachability pass.
    pub hot_calls: Vec<Call>,
    /// Covered lines per allowed rule (`// lint: allow(..)`).
    pub allows: Vec<(String, usize)>,
    /// Lines covered by `// lint: fixed-draw` annotations.
    pub fixed_draw_lines: Vec<usize>,
    /// Findings of the token-level (pass 0) rules.
    pub token_findings: Vec<Finding>,
}

impl FileRecord {
    /// `true` if an allow for `rule` covers `line`.
    pub fn allowed(&self, line: usize, rule: &str) -> bool {
        self.allows.iter().any(|(r, l)| r == rule && *l == line)
    }

    /// The crate directory name, recovered from a
    /// `crates/<name>/src/...` path; `None` for fixtures and ad-hoc
    /// paths, which pass 2 then resolves without dependency pruning.
    pub fn crate_name(&self) -> Option<&str> {
        let mut parts = self.path.split(['/', '\\']);
        while let Some(p) = parts.next() {
            if p == "crates" {
                return parts.next();
            }
        }
        None
    }

    /// The file name (final path component).
    pub fn file_name(&self) -> &str {
        self.path
            .rsplit(['/', '\\'])
            .next()
            .unwrap_or(self.path.as_str())
    }

    /// `true` for the sanctioned sampling modules, where the DRAW
    /// rules apply.
    pub fn is_sampling_module(&self) -> bool {
        matches!(self.file_name(), "scenario.rs" | "profile.rs")
    }
}

/// Method names that allocate regardless of receiver (HOT101).
const ALLOC_METHODS: &[&str] = &["to_string", "to_owned", "with_capacity"];

/// `Type::method` constructor paths that allocate (HOT101).
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Box", "new"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
];

/// Macros that allocate (HOT101).
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Methods that copy a buffer (HOT102).
const CLONE_METHODS: &[&str] = &["clone", "cloned", "to_vec"];

/// Methods that grow or materialise a container (HOT103).
const GROW_METHODS: &[&str] = &["push", "collect"];

/// RNG draw primitives (DRW001). `gen`/`gen_range`/`gen_bool` cover
/// the `rand::Rng` surface the workspace uses; `standard_normal`,
/// `poisson` and `sample_uniform` are the project's own primitives.
const DRAW_CALLS: &[&str] = &[
    "standard_normal",
    "poisson",
    "sample_uniform",
    "gen",
    "gen_range",
    "gen_bool",
];

/// RNG constructors (DRW002): a sampling fn must consume a threaded,
/// job-indexed RNG, never seed its own.
const RNG_CTORS: &[&str] = &["seed_from_u64", "from_seed", "from_rng"];

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "match", "while", "for", "loop", "return", "fn", "in", "as", "move",
];

/// Parses one file's token stream into its [`FileRecord`] (minus the
/// token-level findings, which the engine attaches).
pub fn parse_file(path: &str, class: FileClass, toks: &[Tok], ctx: &FileContext) -> FileRecord {
    let impls = scan_impl_regions(toks);
    let mut items = scan_items(toks, ctx, &impls);

    // Nested fn items (rare, but closures-with-helpers exist) must not
    // double-report: exclude each child's token span from its parent.
    let spans: Vec<(usize, usize)> = items.iter().map(|(s, e, _)| (*s, *e)).collect();
    for (k, (start, end, item)) in items.iter_mut().enumerate() {
        let children: Vec<(usize, usize)> = spans
            .iter()
            .enumerate()
            .filter(|&(j, &(s, e))| j != k && s > *start && e < *end)
            .map(|(_, &se)| se)
            .collect();
        analyze_body(toks, *start, *end, &children, ctx, item);
    }

    // Calls inside declared hot-loop regions are reachability roots.
    let mut hot_calls = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        if ctx.in_hot(t.line) && !ctx.in_test(t.line) {
            if let Some(call) = call_at(toks, k, &impls) {
                hot_calls.push(call);
            }
        }
    }

    let allows = ctx
        .allow_map()
        .iter()
        .flat_map(|(rule, lines)| lines.iter().map(move |&l| (rule.clone(), l)))
        .collect();

    FileRecord {
        path: path.to_string(),
        class,
        items: items.into_iter().map(|(_, _, item)| item).collect(),
        hot_calls,
        allows,
        fixed_draw_lines: ctx.fixed_draw_lines().iter().copied().collect(),
        token_findings: Vec::new(),
    }
}

/// One `impl` block: its type name and body token range.
struct ImplRegion {
    ty: String,
    start: usize,
    end: usize,
}

/// Finds every `impl` block and its brace-matched extent.
fn scan_impl_regions(toks: &[Tok]) -> Vec<ImplRegion> {
    let mut regions = Vec::new();
    let mut k = 0usize;
    while k < toks.len() {
        if !(toks[k].kind == TokKind::Ident && toks[k].text == "impl") {
            k += 1;
            continue;
        }
        let mut j = k + 1;
        // Skip the generic parameter introducer `impl<..>`.
        j = skip_angle_block(toks, j);
        // `impl Type {..}` or `impl Trait for Type {..}`: the type is
        // the first ident after `for` if present, else the first ident
        // after `impl`.
        let mut ty: Option<String> = None;
        let mut saw_for = false;
        while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
            let t = &toks[j];
            if t.kind == TokKind::Ident {
                if t.text == "for" {
                    saw_for = true;
                    ty = None;
                } else if ty.is_none() || saw_for && ty.is_none() {
                    ty = Some(t.text.clone());
                }
            }
            j += 1;
        }
        if j < toks.len() && toks[j].text == "{" {
            let close = match_brace(toks, j);
            if let Some(ty) = ty {
                regions.push(ImplRegion {
                    ty,
                    start: j,
                    end: close,
                });
            }
            // Continue scanning *inside* the impl for nested impls? No
            // nested impls in Rust; skip straight past the header.
            k = j + 1;
        } else {
            k = j + 1;
        }
    }
    regions
}

/// Finds every `fn` item with a body, returning `(body_start_idx,
/// body_end_idx, item)` triples. Items inside test regions are
/// dropped.
fn scan_items(toks: &[Tok], ctx: &FileContext, impls: &[ImplRegion]) -> Vec<(usize, usize, Item)> {
    let mut items = Vec::new();
    let mut k = 0usize;
    while k < toks.len() {
        if !(toks[k].kind == TokKind::Ident && toks[k].text == "fn") {
            k += 1;
            continue;
        }
        let Some(name_tok) = toks.get(k + 1).filter(|t| t.kind == TokKind::Ident) else {
            k += 1;
            continue;
        };
        if ctx.in_test(name_tok.line) {
            k += 2;
            continue;
        }
        // Signature: optional generics, then the parameter list.
        let j = skip_angle_block(toks, k + 2);
        if toks.get(j).map(|t| t.text.as_str()) != Some("(") {
            k += 2;
            continue;
        }
        let params_end = match_paren(toks, j);
        let sig: Vec<&str> = toks[j..=params_end.min(toks.len().saturating_sub(1))]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        let has_rng_param = sig
            .iter()
            .any(|s| matches!(*s, "rng" | "Rng" | "ChaCha8Rng" | "SeedStream"));
        // Body: first `{` before a `;` ends the signature.
        let mut b = params_end + 1;
        while b < toks.len() && toks[b].text != "{" && toks[b].text != ";" {
            b += 1;
        }
        if b >= toks.len() || toks[b].text == ";" {
            // Trait method declaration without a body.
            k = b.min(toks.len());
            continue;
        }
        let body_end = match_brace(toks, b);
        let header_line = header_start_line(toks, k);
        let is_pub = is_pub_item(toks, k);
        let hot_fn = (header_line..=name_tok.line).any(|l| ctx.hot_fn_covers(l));
        let impl_type = impls
            .iter()
            .rfind(|r| r.start < k && k < r.end)
            .map(|r| r.ty.clone());
        items.push((
            b,
            body_end,
            Item {
                name: name_tok.text.clone(),
                impl_type,
                is_pub,
                has_rng_param,
                hot_fn,
                line: name_tok.line,
                end_line: toks.get(body_end).map_or(name_tok.line, |t| t.line),
                calls: Vec::new(),
                effects: Vec::new(),
                draws: Vec::new(),
                rng_ctor_lines: Vec::new(),
            },
        ));
        k += 2;
    }
    items
}

/// Walks one body span, extracting calls, effects, draws and RNG
/// constructions; `children` are nested item spans to skip.
fn analyze_body(
    toks: &[Tok],
    start: usize,
    end: usize,
    children: &[(usize, usize)],
    ctx: &FileContext,
    item: &mut Item,
) {
    let impls = scan_impl_regions(toks);
    // Conditional-region tracking for DRW001: `if`/`match`/`else`
    // bodies are guarded; a `return` inside one taints everything
    // after it in the same body (the early-return guard shape).
    let mut pending_cond: Option<usize> = None; // paren depth at `if`/`match`
    let mut paren_depth = 0usize;
    let mut brace_depth = 0usize;
    let mut cond_stack: Vec<usize> = Vec::new(); // brace depths of conditional regions
    let mut guard_return_seen = false;

    let mut k = start;
    while k <= end && k < toks.len() {
        if let Some(&(cs, ce)) = children.iter().find(|&&(s, _)| s == k) {
            k = ce + 1;
            let _ = cs;
            continue;
        }
        let t = &toks[k];
        let text = t.text.as_str();
        match t.kind {
            TokKind::Punct => match text {
                "(" => paren_depth += 1,
                ")" => paren_depth = paren_depth.saturating_sub(1),
                "{" => {
                    brace_depth += 1;
                    if let Some(d) = pending_cond.take() {
                        if d == paren_depth {
                            cond_stack.push(brace_depth);
                        }
                    }
                }
                "}" => {
                    if cond_stack.last() == Some(&brace_depth) {
                        cond_stack.pop();
                    }
                    brace_depth = brace_depth.saturating_sub(1);
                }
                _ => {}
            },
            TokKind::Ident => {
                let prev = tok_text(toks, k, -1);
                let prev2 = tok_text(toks, k, -2);
                let next = tok_text(toks, k, 1);
                if matches!(text, "if" | "match") || (text == "else" && next == "{") {
                    pending_cond = Some(paren_depth);
                } else if text == "return" && !cond_stack.is_empty() {
                    guard_return_seen = true;
                }

                if let Some(call) = call_at(toks, k, &impls) {
                    item.calls.push(call);
                }

                // HOTPATH effects — skipped inside lexical hot-loop
                // regions, which the token rules (HOT001–004) already
                // police.
                if !ctx.in_hot(t.line) {
                    if prev == "::" && ALLOC_PATHS.iter().any(|(ty, m)| *ty == prev2 && *m == text)
                    {
                        item.effects.push(Effect {
                            rule: "HOT101",
                            line: t.line,
                            what: format!("`{prev2}::{text}` allocates"),
                        });
                    } else if prev == "." && ALLOC_METHODS.contains(&text) {
                        item.effects.push(Effect {
                            rule: "HOT101",
                            line: t.line,
                            what: format!("`.{text}()` allocates"),
                        });
                    }
                    if next == "!" && ALLOC_MACROS.contains(&text) {
                        item.effects.push(Effect {
                            rule: "HOT101",
                            line: t.line,
                            what: format!("`{text}!` allocates"),
                        });
                    }
                    if prev == "." && CLONE_METHODS.contains(&text) {
                        item.effects.push(Effect {
                            rule: "HOT102",
                            line: t.line,
                            what: format!("`.{text}()` copies a buffer"),
                        });
                    }
                    if prev == "." && GROW_METHODS.contains(&text) {
                        item.effects.push(Effect {
                            rule: "HOT103",
                            line: t.line,
                            what: format!("`.{text}()` grows or materialises a container"),
                        });
                    }
                }

                // DRW001 draw sites.
                if DRAW_CALLS.contains(&text) && (next == "(" || prev == ".") && prev != "fn" {
                    item.draws.push(Draw {
                        name: text.to_string(),
                        line: t.line,
                        guarded: !cond_stack.is_empty() || guard_return_seen,
                    });
                }

                // DRW002 RNG construction.
                if RNG_CTORS.contains(&text) && next == "(" && prev != "fn" {
                    item.rng_ctor_lines.push(t.line);
                }
            }
            _ => {}
        }
        k += 1;
    }
}

/// If token `k` is the callee name of a call, classifies it.
fn call_at(toks: &[Tok], k: usize, impls: &[ImplRegion]) -> Option<Call> {
    let t = toks.get(k)?;
    if t.kind != TokKind::Ident || CALL_KEYWORDS.contains(&t.text.as_str()) {
        return None;
    }
    if tok_text(toks, k, 1) != "(" || tok_text(toks, k, -1) == "fn" {
        return None;
    }
    let prev = tok_text(toks, k, -1);
    let recv = if prev == "." {
        Recv::Method
    } else if prev == "::" {
        // Walk the leading path backwards: `a::b::name(`.
        let mut segs: Vec<String> = Vec::new();
        let mut j = k as isize - 1;
        while j >= 1 && toks[j as usize].text == "::" {
            let seg = &toks[(j - 1) as usize];
            if seg.kind != TokKind::Ident {
                break;
            }
            let mut name = seg.text.clone();
            if name == "Self" {
                if let Some(r) = impls.iter().rfind(|r| r.start < k && k < r.end) {
                    name = r.ty.clone();
                }
            }
            segs.insert(0, name);
            j -= 2;
        }
        if segs.is_empty() {
            Recv::Bare
        } else {
            Recv::Path(segs)
        }
    } else {
        Recv::Bare
    };
    Some(Call {
        name: t.text.clone(),
        line: t.line,
        recv,
    })
}

/// The text of the token at `k + delta`, or `""`.
fn tok_text(toks: &[Tok], k: usize, delta: isize) -> &str {
    let idx = k as isize + delta;
    if idx < 0 {
        return "";
    }
    toks.get(idx as usize).map_or("", |t| t.text.as_str())
}

/// Skips a `<..>` generic block starting at `j`, handling the `>>`
/// token the tokenizer emits for nested closers; returns the index
/// after the block (or `j` unchanged if none starts there).
fn skip_angle_block(toks: &[Tok], j: usize) -> usize {
    if toks.get(j).map(|t| t.text.as_str()) != Some("<") {
        return j;
    }
    let mut depth = 0isize;
    let mut k = j;
    while k < toks.len() {
        match toks[k].text.as_str() {
            "<" => depth += 1,
            ">" => depth -= 1,
            ">>" => depth -= 2,
            "(" | "{" | ";" => break,
            _ => {}
        }
        k += 1;
        if depth <= 0 {
            break;
        }
    }
    k
}

/// The index of the brace matching the `{` at `open`.
fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut k = open;
    while k < toks.len() {
        match toks[k].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
        k += 1;
    }
    toks.len().saturating_sub(1)
}

/// The index of the paren matching the `(` at `open`.
fn match_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut k = open;
    while k < toks.len() {
        match toks[k].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
        k += 1;
    }
    toks.len().saturating_sub(1)
}

/// The line where an item's header starts: the earliest contiguous
/// run of attributes and modifiers before the `fn` keyword at `k`.
fn header_start_line(toks: &[Tok], k: usize) -> usize {
    let mut j = k as isize - 1;
    let mut line = toks[k].line;
    while j >= 0 {
        let t = &toks[j as usize];
        match t.text.as_str() {
            "pub" | "const" | "unsafe" | "async" | "extern" | "crate" | "in" => {
                line = t.line;
                j -= 1;
            }
            ")" | "]" => {
                // `pub(crate)` / attribute `#[..]`: skip the group.
                let open = if t.text == ")" { "(" } else { "[" };
                let close = t.text.as_str();
                let mut depth = 0isize;
                while j >= 0 {
                    let s = toks[j as usize].text.as_str();
                    if s == close {
                        depth += 1;
                    } else if s == open {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j -= 1;
                }
                line = if j >= 0 { toks[j as usize].line } else { line };
                j -= 1;
            }
            "#" => {
                line = t.line;
                j -= 1;
            }
            _ => break,
        }
    }
    line
}

/// `true` when the tokens immediately before the `fn` at `k` carry a
/// `pub` modifier (any `pub(..)` restriction counts).
fn is_pub_item(toks: &[Tok], k: usize) -> bool {
    let mut j = k as isize - 1;
    let mut steps = 0;
    while j >= 0 && steps < 8 {
        match toks[j as usize].text.as_str() {
            "pub" => return true,
            "const" | "unsafe" | "async" | "extern" | ")" | "(" | "crate" | "in" => {
                j -= 1;
                steps += 1;
            }
            _ => return false,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn record(src: &str) -> FileRecord {
        let (toks, comments) = tokenize(src);
        let ctx = FileContext::build(&toks, &comments);
        parse_file("mem.rs", FileClass::Library { numeric: true }, &toks, &ctx)
    }

    #[test]
    fn free_fns_and_methods_are_indexed() {
        let rec = record(
            "pub fn alpha() { beta(); }\n\
             fn beta() {}\n\
             struct S;\n\
             impl S {\n    pub(crate) fn gamma(&self) -> f64 { self.delta() }\n    fn delta(&self) -> f64 { 0.0 }\n}\n",
        );
        let names: Vec<String> = rec.items.iter().map(Item::display_name).collect();
        assert_eq!(names, ["alpha", "beta", "S::gamma", "S::delta"]);
        assert!(rec.items[0].is_pub && !rec.items[1].is_pub);
        assert!(rec.items[2].is_pub, "pub(crate) counts as pub");
        assert_eq!(
            rec.items[0].calls,
            vec![Call {
                name: "beta".into(),
                line: 1,
                recv: Recv::Bare
            }]
        );
        assert_eq!(rec.items[2].calls[0].recv, Recv::Method);
    }

    #[test]
    fn impl_for_attributes_methods_to_the_type() {
        let rec = record("impl Display for Matrix {\n    fn fmt(&self) -> R { x() }\n}\n");
        assert_eq!(rec.items[0].display_name(), "Matrix::fmt");
    }

    #[test]
    fn self_paths_resolve_to_the_impl_type() {
        let rec = record("impl W {\n    fn a() { Self::b(); }\n    fn b() {}\n}\n");
        assert_eq!(
            rec.items[0].calls[0].recv,
            Recv::Path(vec!["W".to_string()])
        );
    }

    #[test]
    fn effects_cover_alloc_clone_and_growth() {
        let rec = record(
            "fn f(xs: &[f64]) -> Vec<f64> {\n\
             let mut v = Vec::new();\n\
             let w = xs.to_vec();\n\
             v.push(w.len() as f64);\n\
             let s = format!(\"n\");\n\
             drop(s);\n\
             v\n}\n",
        );
        let rules: Vec<&str> = rec.items[0].effects.iter().map(|e| e.rule).collect();
        assert_eq!(rules, ["HOT101", "HOT102", "HOT103", "HOT101"]);
    }

    #[test]
    fn effects_inside_hot_regions_belong_to_the_token_rules() {
        let rec = record(
            "fn f() {\n// lint: hot-loop\nlet v = Vec::new();\n// lint: end-hot-loop\ndrop(v);\n}\n",
        );
        assert!(rec.items[0].effects.is_empty());
    }

    #[test]
    fn hot_region_calls_become_roots() {
        let rec = record("fn f() {\n// lint: hot-loop\nstage(1);\n// lint: end-hot-loop\n}\n");
        assert_eq!(rec.hot_calls.len(), 1);
        assert_eq!(rec.hot_calls[0].name, "stage");
    }

    #[test]
    fn guarded_draws_are_flagged() {
        let rec = record(
            "fn s(rng: &mut R, on: bool) -> f64 {\n\
             let a = standard_normal(rng);\n\
             let b = if on { standard_normal(rng) } else { 0.0 };\n\
             a + b\n}\n",
        );
        let d = &rec.items[0].draws;
        assert_eq!(d.len(), 2);
        assert!(!d[0].guarded);
        assert!(d[1].guarded);
    }

    #[test]
    fn draws_after_a_conditional_return_are_guarded() {
        let rec = record(
            "fn s(rng: &mut R, lo: f64, hi: f64) -> f64 {\n\
             if lo >= hi {\n    return lo;\n}\n\
             lo + standard_normal(rng)\n}\n",
        );
        assert!(rec.items[0].draws[0].guarded);
    }

    #[test]
    fn rng_signature_and_construction_are_detected() {
        let rec = record(
            "pub fn good<R: Rng>(rng: &mut R) -> f64 { rng.gen() }\n\
             pub fn bad(seed: u64) -> f64 { let mut r = ChaCha8Rng::seed_from_u64(seed); r.gen() }\n",
        );
        assert!(rec.items[0].has_rng_param);
        assert!(!rec.items[1].has_rng_param);
        assert_eq!(rec.items[1].rng_ctor_lines, vec![2]);
    }

    #[test]
    fn test_items_are_excluded() {
        let rec = record("fn lib() {}\n#[cfg(test)]\nmod t {\n    fn helper() {}\n}\n");
        assert_eq!(rec.items.len(), 1);
    }

    #[test]
    fn hot_fn_annotation_marks_the_item() {
        let rec = record("// lint: hot-fn\n#[inline]\npub fn kernel() {}\nfn other() {}\n");
        assert!(rec.items[0].hot_fn);
        assert!(!rec.items[1].hot_fn);
    }
}
