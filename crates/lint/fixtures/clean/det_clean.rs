//! Clean counterpart for the determinism family: ordered collections,
//! seeded randomness threaded in as a parameter, typed configuration.

use std::collections::BTreeMap;

pub fn tally(xs: &[u32]) -> BTreeMap<u32, usize> {
    let mut m = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

pub fn draw(rng: &mut impl rand::Rng) -> u64 {
    rng.gen()
}

pub struct Config {
    pub threads: usize,
}

pub fn workers(config: &Config) -> usize {
    config.threads.max(1)
}
