//! Clean counterpart for the hygiene family: errors propagate, float
//! comparisons use tolerances, ordering uses total_cmp.

pub fn mean(xs: &[f64]) -> Result<f64, &'static str> {
    if xs.is_empty() {
        return Err("empty input");
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

pub fn nearly(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() < tol
}

pub fn sort_times(ts: &mut [f64]) {
    ts.sort_by(f64::total_cmp);
}

#[cfg(test)]
mod tests {
    // Test modules may unwrap freely.
    #[test]
    fn mean_of_two() {
        assert!((super::mean(&[1.0, 3.0]).unwrap() - 2.0).abs() < 1e-12);
    }
}
