//! Clean counterpart for the hot-loop family: the region touches only
//! preallocated storage; setup and teardown sit outside it.

pub fn axpy_into(alpha: f64, xs: &[f64], ys: &mut [f64]) {
    // lint: hot-loop
    for (y, &x) in ys.iter_mut().zip(xs) {
        *y += alpha * x;
    }
    // lint: end-hot-loop
}

pub fn doubled(xs: &[f64]) -> Vec<f64> {
    // Allocation outside any hot region is fine.
    xs.iter().map(|x| x * 2.0).collect()
}
