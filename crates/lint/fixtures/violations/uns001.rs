//! Seeded violation: UNS001 — unsafe without its audit comment.

pub fn read_first(xs: &[f64]) -> f64 {
    unsafe { *xs.get_unchecked(0) } //~ UNS001
}
