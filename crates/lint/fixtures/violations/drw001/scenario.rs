//! Seeded violation: DRW001 — guarded RNG draw in a sampling module.
//!
//! DRW scope keys on the file name (`scenario.rs` / `profile.rs`), so
//! this fixture lives in a directory named after the rule.

pub fn sample_shift(rng: &mut JobRng, enabled: bool) -> f64 {
    if enabled {
        rng.standard_normal() //~ DRW001
    } else {
        0.0
    }
}
