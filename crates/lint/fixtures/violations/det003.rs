//! Seeded violation: DET003 — environment access in library code.

pub fn threads_from_env() -> usize {
    std::env::var("SAMURAI_THREADS") //~ DET003
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}
