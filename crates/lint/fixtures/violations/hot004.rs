//! Seeded violation: HOT004 — collect in a hot-loop region.

pub fn materialise(xs: &[f64]) -> Vec<f64> {
    // lint: hot-loop
    let doubled = xs.iter().map(|x| x * 2.0).collect(); //~ HOT004
    // lint: end-hot-loop
    doubled
}
