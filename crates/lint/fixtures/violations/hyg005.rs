//! Seeded violation: HYG005 — partial_cmp on floats.

pub fn sort_times(ts: &mut [f64]) {
    ts.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal)); //~ HYG005
}
