//! Seeded violation: SVC001 — an HTTP handler in the serve crate that
//! runs the ensemble engine inline instead of enqueueing a ticket.

use samurai_core::ensemble::{run_ensemble_resilient, IndexedResults};
use samurai_sram::run_column_ensemble_observed;

pub fn handle_submit_inline(jobs: usize) -> usize {
    let report = run_ensemble_resilient(jobs, 1, &Default::default(), IndexedResults::new, job); //~ SVC001
    let _ = run_column_ensemble_observed(&Default::default(), None); //~ SVC001
    report.len()
}
