//! Seeded violation: DRW002 — public sampling fn hides its RNG stream.

pub fn sample_shift(job: u64) -> f64 { //~ DRW002 (no RNG parameter)
    let mut rng = ChaCha8Rng::seed_from_u64(job); //~ DRW002 (constructs its own RNG)
    rng.standard_normal()
}
