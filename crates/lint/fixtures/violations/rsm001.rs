//! Seeded violation: RSM001 — checkpoint files written without the
//! atomic temp-and-rename helper.

use std::fs;
use std::fs::File;
use std::path::Path;

pub fn torn_snapshot(dir: &Path, doc: &str) -> std::io::Result<()> {
    fs::write(dir.join("ensemble.ckpt"), doc) //~ RSM001
}

pub fn torn_handle(dir: &Path) -> std::io::Result<File> {
    File::create(dir.join("column.ckpt")) //~ RSM001
}
