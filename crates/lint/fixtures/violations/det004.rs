//! Seeded violation: DET004 — unordered collections in a numeric crate.

use std::collections::HashMap; //~ DET004

pub fn tally(xs: &[u32]) -> HashMap<u32, usize> { //~ DET004
    let mut m = HashMap::new(); //~ DET004
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}
