//! Seeded violation: HYG004 — float-literal equality.

pub fn is_disabled(gmin: f64) -> bool {
    gmin == 0.0 //~ HYG004
}
