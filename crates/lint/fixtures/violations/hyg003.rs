//! Seeded violation: HYG003 — panicking macro in library code.

pub fn stage(kind: u8) -> &'static str {
    match kind {
        0 => "capture",
        1 => "emission",
        _ => unreachable!("callers pass 0 or 1"), //~ HYG003
    }
}
