//! Seeded violation: DET006 — direct device-parameter sampling outside
//! the scenario layer.

use samurai_trap::{poisson, standard_normal};

pub fn sabotaged_mismatch(rng: &mut impl Rng, sigma: f64) -> f64 {
    sigma * standard_normal(rng) //~ DET006
}

pub fn sabotaged_trap_count(rng: &mut impl Rng, mean: f64) -> u64 {
    poisson(rng, mean) //~ DET006
}
