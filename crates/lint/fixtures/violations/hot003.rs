//! Seeded violation: HOT003 — container growth in a hot-loop region.

pub fn grow(xs: &[f64], out: &mut Vec<f64>) {
    // lint: hot-loop
    for &x in xs {
        out.push(x * 2.0); //~ HOT003
    }
    // lint: end-hot-loop
}
