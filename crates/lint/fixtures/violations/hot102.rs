//! Seeded violation: HOT102 — clone/copy-out reachable from a hot fn.

// lint: hot-fn
pub fn kernel(v: &[f64]) -> f64 {
    stage(v)
}

fn stage(v: &[f64]) -> f64 {
    let w = v.to_vec(); //~ HOT102
    w[0]
}
