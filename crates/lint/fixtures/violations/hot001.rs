//! Seeded violation: HOT001 — heap construction in a hot-loop region.

pub fn residual_labels(rows: usize) -> Vec<f64> {
    // lint: hot-loop
    let out = Vec::new(); //~ HOT001
    let label = format!("rows = {rows}"); //~ HOT001
    // lint: end-hot-loop
    drop(label);
    out
}
