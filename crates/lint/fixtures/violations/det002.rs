//! Seeded violation: DET002 — ambient randomness in library code.

pub fn ambient_draw() -> u64 {
    let mut rng = rand::thread_rng(); //~ DET002
    rng.gen()
}
