//! Seeded violation: HOT101 — transitive allocation on a hot path.
//!
//! The allocation is two calls away from the annotated kernel; only
//! the reachability pass can see it.

// lint: hot-fn
pub fn kernel(x: f64) -> f64 {
    stage(x)
}

fn stage(x: f64) -> f64 {
    deep(x)
}

fn deep(x: f64) -> f64 {
    let v = vec![x; 4]; //~ HOT101
    v[0]
}
