//! Seeded violation: CG001 — tool-crate call on the ensemble path.
//!
//! The call into `samurai_bench` is one hop below the ensemble entry
//! point; only the reachability pass connects the two.

pub fn run_ensemble(jobs: usize) -> usize {
    let mut done = 0;
    for job in 0..jobs {
        done += worker(job);
    }
    done
}

fn worker(job: usize) -> usize {
    samurai_bench::metrics::record("job", job); //~ CG001
    job
}
