//! Seeded violation: HYG001 — unwrap in library code.

pub fn first(xs: &[f64]) -> f64 {
    *xs.first().unwrap() //~ HYG001
}
