//! Seeded violation: DET001 — wall-clock reads in library code.
//! The tilde markers declare the expected findings per line.

use std::time::{Instant, SystemTime}; //~ DET001 //~ DET001

pub fn elapsed_wall_clock() -> f64 {
    let start = Instant::now(); //~ DET001
    let _stamp = SystemTime::now(); //~ DET001
    start.elapsed().as_secs_f64()
}
