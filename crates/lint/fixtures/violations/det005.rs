//! Seeded violation: DET005 — fault-plan construction in production code.

use samurai_core::faults::{FaultKind, FaultPlan};

pub fn sabotaged_plan() -> FaultPlan {
    FaultPlan::none()
        .fail_nth_solve(3, FaultKind::SingularMatrix) //~ DET005
        .fail_nth_step(7, FaultKind::TimestepFloor) //~ DET005
        .fail_job(2, FaultKind::NonConvergence) //~ DET005
}
