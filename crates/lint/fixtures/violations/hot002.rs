//! Seeded violation: HOT002 — buffer copies in a hot-loop region.

pub fn copy_per_iteration(xs: &[f64], scratch: &mut Vec<f64>) {
    // lint: hot-loop
    *scratch = xs.to_vec(); //~ HOT002
    let again = scratch.clone(); //~ HOT002
    // lint: end-hot-loop
    drop(again);
}
