//! Seeded violation: OBS001 — unguarded telemetry sink calls in a
//! hot-loop region.

pub fn accumulate<S: MetricsSink>(sink: &mut S, xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    // lint: hot-loop
    for &x in xs {
        acc += x;
        sink.counter("iters", 1); //~ OBS001
        sink.observe("value", x); //~ OBS001
        MetricsSink::counter(sink, "qualified", 1); //~ OBS001
    }
    // lint: end-hot-loop
    acc
}
