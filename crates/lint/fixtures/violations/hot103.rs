//! Seeded violation: HOT103 — container growth reachable from a hot fn.

// lint: hot-fn
pub fn kernel(out: &mut Vec<usize>, n: usize) -> usize {
    stage(out, n)
}

fn stage(out: &mut Vec<usize>, n: usize) -> usize {
    out.push(n); //~ HOT103
    out.len()
}
