//! Seeded violation: HYG002 — expect in library code.

pub fn parse(s: &str) -> f64 {
    s.parse().expect("caller passes digits") //~ HYG002
}
