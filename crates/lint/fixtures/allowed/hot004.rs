//! Allowed counterpart: HOT004 suppressed with a justified escape.

pub fn materialise(xs: &[f64]) -> Vec<f64> {
    // lint: hot-loop
    let doubled = xs.iter().map(|x| x * 2.0).collect(); // lint: allow(HOT004): output buffer, sized once
    // lint: end-hot-loop
    doubled
}
