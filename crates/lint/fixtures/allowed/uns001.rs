//! Allowed counterpart: UNS001 satisfied by a SAFETY comment.

pub fn read_first(xs: &[f64]) -> f64 {
    debug_assert!(!xs.is_empty());
    // SAFETY: the caller contract (and the debug_assert above)
    // guarantees at least one element.
    unsafe { *xs.get_unchecked(0) }
}
