//! Allowed counterpart: HOT002 suppressed with a justified escape.

pub fn copy_per_iteration(xs: &[f64], scratch: &mut Vec<f64>) {
    // lint: hot-loop
    *scratch = xs.to_vec(); // lint: allow(HOT002): runs once per shard, not per job
    let again = scratch.clone(); // lint: allow(HOT002): runs once per shard, not per job
    // lint: end-hot-loop
    drop(again);
}
