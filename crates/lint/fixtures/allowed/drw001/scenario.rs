//! Allowed counterpart: DRW001 silenced by a fixed-draw annotation.

pub fn sample_shift(rng: &mut JobRng, enabled: bool) -> f64 {
    if enabled {
        // lint: fixed-draw: guard is ensemble-constant config; every job branches alike
        rng.standard_normal()
    } else {
        0.0
    }
}
