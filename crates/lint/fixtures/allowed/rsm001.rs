//! Allowed counterpart: RSM001 suppressed with a justified escape, and
//! the sanctioned shapes that never fire.

use std::fs;
use std::path::Path;

pub fn deliberately_torn(dir: &Path, doc: &str) -> std::io::Result<()> {
    // A corruption drill needs a torn file on purpose.
    fs::write(dir.join("torn.ckpt"), &doc[..doc.len() / 2]) // lint: allow(RSM001): corruption drill writes a torn snapshot on purpose
}

pub fn atomic_staging(tmp: &Path, target: &Path, doc: &str) -> std::io::Result<()> {
    // The helper's own shape: stage in a temp sibling, then rename.
    // No `.ckpt` literal near the raw write, so the rule is silent.
    fs::write(tmp, doc)?;
    fs::rename(tmp, target)
}
