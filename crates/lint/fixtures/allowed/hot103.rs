//! Allowed counterpart: HOT103 suppressed with a justified escape.

// lint: hot-fn
pub fn kernel(out: &mut Vec<usize>, n: usize) -> usize {
    stage(out, n)
}

fn stage(out: &mut Vec<usize>, n: usize) -> usize {
    out.push(n); // lint: allow(HOT103): amortised growth is the output contract
    out.len()
}
