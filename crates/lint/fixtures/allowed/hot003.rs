//! Allowed counterpart: HOT003 suppressed with a justified escape.

pub fn grow(xs: &[f64], out: &mut Vec<f64>) {
    // lint: hot-loop
    for &x in xs {
        out.push(x * 2.0); // lint: allow(HOT003): amortised output accumulation
    }
    // lint: end-hot-loop
}
