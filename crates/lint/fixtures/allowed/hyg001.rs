//! Allowed counterpart: HYG001 suppressed with a justified escape.

pub fn first(xs: &[f64]) -> f64 {
    *xs.first().unwrap() // lint: allow(HYG001): caller contract guarantees non-empty
}
