//! Allowed counterpart: DET006 suppressed with a justified escape.

use samurai_trap::{poisson, standard_normal};

pub fn process_noise(rng: &mut impl Rng) -> f64 {
    standard_normal(rng) // lint: allow(DET006): AR(1) process noise, not a device parameter
}

pub fn candidate_count(rng: &mut impl Rng, mean: f64) -> u64 {
    poisson(rng, mean) // lint: allow(DET006): uniformisation candidate count, not device statistics
}
