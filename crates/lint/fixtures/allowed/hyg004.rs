//! Allowed counterpart: HYG004 suppressed with a justified escape.

pub fn is_disabled(gmin: f64) -> bool {
    gmin == 0.0 // lint: allow(HYG004): exact zero is the disabled sentinel
}
