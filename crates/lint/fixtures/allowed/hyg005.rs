//! Allowed counterpart: HYG005 suppressed with a justified escape.

pub fn sort_times(ts: &mut [f64]) {
    ts.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal)); // lint: allow(HYG005): NaN handled by unwrap_or
}
