//! Allowed counterpart: DET003 suppressed with a justified escape.

pub fn threads_from_env() -> usize {
    std::env::var("SAMURAI_THREADS") // lint: allow(DET003): worker count only, never results
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}
