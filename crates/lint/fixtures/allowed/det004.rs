//! Allowed counterpart: DET004 suppressed with a justified escape.

// lint: allow(DET004): lookup-only map, never iterated
use std::collections::HashMap;

pub fn tally(xs: &[u32]) -> HashMap<u32, usize> { // lint: allow(DET004): lookup-only map, never iterated
    let mut m = HashMap::new(); // lint: allow(DET004): lookup-only map, never iterated
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}
