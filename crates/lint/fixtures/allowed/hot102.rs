//! Allowed counterpart: HOT102 suppressed with a justified escape.

// lint: hot-fn
pub fn kernel(v: &[f64]) -> f64 {
    stage(v)
}

fn stage(v: &[f64]) -> f64 {
    let w = v.to_vec(); // lint: allow(HOT102): defensive copy required by the FFI contract
    w[0]
}
