//! Allowed counterpart: DET005 suppressed with a justified escape.

use samurai_core::faults::{FaultKind, FaultPlan};

pub fn diagnostic_plan() -> FaultPlan {
    FaultPlan::none()
        .fail_nth_solve(3, FaultKind::SingularMatrix) // lint: allow(DET005): diagnostic harness, opt-in via config
        .fail_nth_step(7, FaultKind::TimestepFloor) // lint: allow(DET005): diagnostic harness, opt-in via config
        .fail_job(2, FaultKind::NonConvergence) // lint: allow(DET005): diagnostic harness, opt-in via config
}
