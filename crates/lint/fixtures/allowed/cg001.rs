//! Allowed counterpart: CG001 suppressed with a justified escape.

pub fn run_ensemble(jobs: usize) -> usize {
    let mut done = 0;
    for job in 0..jobs {
        done += worker(job);
    }
    done
}

fn worker(job: usize) -> usize {
    samurai_bench::metrics::record("job", job); // lint: allow(CG001): demo-only probe stripped in release
    job
}
