//! Allowed counterpart: DET001 suppressed with a justified escape.

// lint: allow(DET001): coarse progress display only, never in results
use std::time::{Instant, SystemTime};

pub fn elapsed_wall_clock() -> f64 {
    let start = Instant::now(); // lint: allow(DET001): progress display only
    let _stamp = SystemTime::now(); // lint: allow(DET001): progress display only
    start.elapsed().as_secs_f64()
}
