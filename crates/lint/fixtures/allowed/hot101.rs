//! Allowed counterpart: HOT101 suppressed with a justified escape.

// lint: hot-fn
pub fn kernel(x: f64) -> f64 {
    stage(x)
}

fn stage(x: f64) -> f64 {
    deep(x)
}

fn deep(x: f64) -> f64 {
    let v = vec![x; 4]; // lint: allow(HOT101): scratch hoisted by the caller next refactor
    v[0]
}
