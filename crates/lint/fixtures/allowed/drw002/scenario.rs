//! Allowed counterpart: DRW002 suppressed with a justified escape.

// lint: allow(DRW002): compat shim for the scripted demos; new code threads the job RNG
pub fn sample_shift(job: u64) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(job); // lint: allow(DRW002): see fn-level note
    rng.standard_normal()
}
