//! Allowed counterpart: the guarded macros are the sanctioned hot-loop
//! form, and a reviewed direct call carries an inline allow.

pub fn accumulate<S: MetricsSink>(sink: &mut S, xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    // lint: hot-loop
    for &x in xs {
        acc += x;
        count!(sink, "iters", 1);
        observe!(sink, "value", x);
        sink.counter("cold", 1); // lint: allow(OBS001): sink is statically NoopSink here
    }
    // lint: end-hot-loop
    acc
}
