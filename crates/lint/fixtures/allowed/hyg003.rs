//! Allowed counterpart: HYG003 suppressed with a justified escape.

pub fn stage(kind: u8) -> &'static str {
    match kind {
        0 => "capture",
        1 => "emission",
        _ => unreachable!("callers pass 0 or 1"), // lint: allow(HYG003): enum-like input proven at construction
    }
}
