//! Allowed counterpart: HYG002 suppressed with a justified escape.

pub fn parse(s: &str) -> f64 {
    s.parse().expect("caller passes digits") // lint: allow(HYG002): input validated upstream
}
