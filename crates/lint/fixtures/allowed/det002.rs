//! Allowed counterpart: DET002 suppressed with a justified escape.

pub fn ambient_draw() -> u64 {
    let mut rng = rand::thread_rng(); // lint: allow(DET002): demo path, results unrecorded
    rng.gen()
}
