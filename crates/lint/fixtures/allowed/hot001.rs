//! Allowed counterpart: HOT001 suppressed with a justified escape.

pub fn residual_labels(rows: usize) -> Vec<f64> {
    // lint: hot-loop
    let out = Vec::new(); // lint: allow(HOT001): one-time setup hoisted next refactor
    let label = format!("rows = {rows}"); // lint: allow(HOT001): cold error path
    // lint: end-hot-loop
    drop(label);
    out
}
