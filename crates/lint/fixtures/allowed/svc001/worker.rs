//! Allowed counterpart: SVC001 — the worker module is the sanctioned
//! engine-call site (matched by file name), and elsewhere a justified
//! escape silences the rule.

use samurai_core::ensemble::{run_ensemble_resilient, IndexedResults};

pub fn execute_ticket(jobs: usize) -> usize {
    let report = run_ensemble_resilient(jobs, 1, &Default::default(), IndexedResults::new, job);
    report.len()
}
