//! Allowed counterpart: SVC001 suppressed with a justified escape in a
//! non-worker serve module.

use samurai_core::ensemble::{run_ensemble_resilient, IndexedResults};

pub fn warmup_probe(jobs: usize) -> usize {
    let report = run_ensemble_resilient(jobs, 1, &Default::default(), IndexedResults::new, job); // lint: allow(SVC001): one-job warmup probe at boot, before the listener opens
    report.len()
}
