//! Fixture-corpus integration tests: every rule fires where the
//! `//~ RULE` markers say it does, every rule is suppressible with an
//! inline allow, and the clean counterparts are silent.
//!
//! Fixtures are analysed with the full two-pass pipeline (token rules
//! plus the single-file call-graph pass), so the semantic families
//! (HOT10x, DRW, CG) are exercised exactly like `--self-check` does.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use samurai_lint::{analyze_source, analyze_source_full, FileClass, Finding, RULES};

const STRICT: FileClass = FileClass::Library { numeric: true };

fn fixture_dir(sub: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(sub)
}

/// All `.rs` files under a fixture subtree, recursively — the DRW
/// fixtures live in per-rule directories because their scope keys on
/// the file name (`scenario.rs`).
fn fixture_files(sub: &str) -> Vec<PathBuf> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
        for entry in fs::read_dir(dir).unwrap_or_else(|e| panic!("{}: {e}", dir.display())) {
            let p = entry.unwrap().path();
            if p.is_dir() {
                walk(&p, out);
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    let dir = fixture_dir(sub);
    let mut files = Vec::new();
    walk(&dir, &mut files);
    files.sort();
    assert!(!files.is_empty(), "no fixtures in {}", dir.display());
    files
}

fn analyze_fixture(path: &Path) -> Vec<Finding> {
    let src = fs::read_to_string(path).unwrap();
    analyze_source_full(&path.display().to_string(), &src, STRICT)
}

/// Parses the `//~ RULE` markers of a fixture into the expected
/// multiset of `(line, rule)` findings.
fn expected_markers(src: &str) -> Vec<(usize, String)> {
    let mut expected = Vec::new();
    for (i, line) in src.lines().enumerate() {
        for piece in line.split("//~").skip(1) {
            let rule = piece
                .split_whitespace()
                .next()
                .expect("marker names a rule")
                .to_string();
            expected.push((i + 1, rule));
        }
    }
    expected.sort();
    expected
}

#[test]
fn violation_fixtures_fire_exactly_the_marked_findings() {
    for path in fixture_files("violations") {
        let src = fs::read_to_string(&path).unwrap();
        let expected = expected_markers(&src);
        assert!(
            !expected.is_empty(),
            "{}: violation fixture carries no //~ markers",
            path.display()
        );
        let mut got: Vec<(usize, String)> = analyze_fixture(&path)
            .into_iter()
            .map(|f| (f.line, f.rule.to_string()))
            .collect();
        got.sort();
        assert_eq!(
            got,
            expected,
            "{}: findings do not match the //~ markers",
            path.display()
        );
    }
}

#[test]
fn every_rule_in_the_catalog_has_a_firing_fixture() {
    let mut fired = BTreeSet::new();
    for path in fixture_files("violations") {
        for f in analyze_fixture(&path) {
            fired.insert(f.rule);
        }
    }
    for rule in RULES {
        assert!(
            fired.contains(rule.id),
            "rule {} has no violation fixture that trips it",
            rule.id
        );
    }
}

#[test]
fn allowed_fixtures_are_fully_suppressed() {
    for path in fixture_files("allowed") {
        let findings = analyze_fixture(&path);
        assert!(
            findings.is_empty(),
            "{}: allow directives failed to suppress {:?}",
            path.display(),
            findings
        );
    }
}

#[test]
fn clean_fixtures_are_silent() {
    for path in fixture_files("clean") {
        let findings = analyze_fixture(&path);
        assert!(
            findings.is_empty(),
            "{}: clean fixture is not clean: {:?}",
            path.display(),
            findings
        );
    }
}

/// Allow-suppression round trip, mechanically: inserting a standalone
/// `// lint: allow(RULE)` line above each marked line of each
/// violation fixture silences exactly that fixture's findings.
#[test]
fn inserting_allows_suppresses_each_violation_fixture() {
    for path in fixture_files("violations") {
        let src = fs::read_to_string(&path).unwrap();
        let suppressed: String = src
            .lines()
            .map(|line| {
                let mut rules: Vec<&str> = line
                    .split("//~")
                    .skip(1)
                    .filter_map(|p| p.split_whitespace().next())
                    .collect();
                rules.dedup();
                if rules.is_empty() {
                    format!("{line}\n")
                } else {
                    format!("// lint: allow({}): fixture\n{line}\n", rules.join(", "))
                }
            })
            .collect();
        let findings = analyze_source_full(&path.display().to_string(), &suppressed, STRICT);
        assert!(
            findings.is_empty(),
            "{}: inserted allows left {:?}",
            path.display(),
            findings
        );
    }
}

/// The marker comments themselves must never produce findings (rule
/// names inside comments are not code).
#[test]
fn markers_alone_are_inert() {
    let findings = analyze_source(
        "markers.rs",
        "pub fn ok() {} //~ HYG001 //~ DET004\n",
        STRICT,
    );
    assert!(findings.is_empty(), "{findings:?}");
}
