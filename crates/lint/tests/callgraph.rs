//! Call-graph integration suite: pins the resolved edge set, the two
//! reachability frontiers and the exact witness-chain text over a
//! small synthetic multi-crate workspace.
//!
//! These are the contracts the semantic rule families stand on — an
//! edge that silently stops resolving, or a chain whose rendering
//! drifts, would make HOT101/CG001 diagnostics wrong without any unit
//! test noticing.

use std::collections::{BTreeMap, BTreeSet};

use samurai_lint::callgraph::{analyze_records, CallGraph, DepMap, Root};
use samurai_lint::context::FileContext;
use samurai_lint::parser::{parse_file, FileRecord};
use samurai_lint::tokenizer::tokenize;
use samurai_lint::FileClass;

const NUM: FileClass = FileClass::Library { numeric: true };

fn rec(path: &str, src: &str) -> FileRecord {
    let (toks, comments) = tokenize(src);
    let ctx = FileContext::build(&toks, &comments);
    parse_file(path, NUM, &toks, &ctx)
}

/// A three-crate workspace: `core` depends on `spice`, `trap` is
/// independent. `core::drive` runs a hot loop over `spice`'s stamping
/// kernel; `trap` has an identically named free fn that must NOT be
/// reached because `core` does not depend on `trap`.
fn workspace() -> Vec<FileRecord> {
    vec![
        rec(
            "crates/core/src/run.rs",
            "pub fn drive(m: &mut M) {\n\
             \x20   // lint: hot-loop\n\
             \x20   stamp(m);\n\
             \x20   // lint: end-hot-loop\n\
             }\n\
             pub fn run_ensemble(jobs: usize) { for j in 0..jobs { worker(j); } }\n\
             fn worker(j: usize) { samurai_bench::probe::record(j); }\n",
        ),
        rec(
            "crates/spice/src/stamp.rs",
            "pub fn stamp(m: &mut M) { scratch(m); }\n\
             fn scratch(m: &mut M) { let v = m.values.to_vec(); drop(v); }\n",
        ),
        rec(
            "crates/trap/src/lib.rs",
            "pub fn stamp(m: &mut M) { let v = vec![0.0; 8]; drop(v); }\n",
        ),
    ]
}

fn deps() -> DepMap {
    let mut d: DepMap = BTreeMap::new();
    d.insert(
        "core".into(),
        ["core", "spice"].iter().map(|s| s.to_string()).collect(),
    );
    d.insert("spice".into(), BTreeSet::from(["spice".to_string()]));
    d.insert("trap".into(), BTreeSet::from(["trap".to_string()]));
    d
}

fn name(g: &CallGraph<'_>, n: usize) -> String {
    // Round-trip through node_by_name to keep the helper honest.
    for cand in ["drive", "run_ensemble", "worker", "stamp", "scratch"] {
        if g.node_by_name(cand) == Some(n) {
            return cand.to_string();
        }
    }
    format!("#{n}")
}

#[test]
fn edge_set_is_exactly_the_dep_visible_calls() {
    let records = workspace();
    let deps = deps();
    let g = CallGraph::build(&records, Some(&deps));

    let mut edges: Vec<(String, String, usize)> = g
        .edges
        .iter()
        .map(|e| (name(&g, e.from), name(&g, e.to), e.line))
        .collect();
    edges.sort();
    assert_eq!(
        edges,
        vec![
            ("drive".to_string(), "stamp".to_string(), 3),
            ("run_ensemble".to_string(), "worker".to_string(), 6),
            ("stamp".to_string(), "scratch".to_string(), 1),
        ],
        "resolved edge set drifted"
    );

    // Dep pruning: `drive`'s bare `stamp(` call has two workspace
    // candidates; only the one in a crate `core` depends on resolves.
    // trap's `stamp` (file index 2) must take no incoming edges.
    let trap_nodes: BTreeSet<usize> = (0..g.nodes.len())
        .filter(|&n| g.nodes[n].file == 2)
        .collect();
    assert!(!trap_nodes.is_empty(), "trap's stamp is indexed as a node");
    assert!(
        g.edges.iter().all(|e| !trap_nodes.contains(&e.to)),
        "an edge crossed into a crate outside the caller's dep closure"
    );
}

#[test]
fn reachability_sets_are_pinned() {
    let records = workspace();
    let deps = deps();
    let g = CallGraph::build(&records, Some(&deps));

    // Hot frontier: the hot-loop region's callee and everything below
    // it — not the ensemble-only fns, not the unrelated trap fn.
    let hot: BTreeSet<String> = (0..g.nodes.len())
        .filter(|&n| g.hot_reachable(n))
        .map(|n| name(&g, n))
        .collect();
    assert_eq!(
        hot,
        ["scratch", "stamp"].iter().map(|s| s.to_string()).collect(),
        "hot-reachable set drifted"
    );

    // Ensemble frontier: entry point plus its worker.
    let ens: BTreeSet<String> = (0..g.nodes.len())
        .filter(|&n| g.ensemble_reachable(n))
        .map(|n| name(&g, n))
        .collect();
    assert_eq!(
        ens,
        ["run_ensemble", "worker"]
            .iter()
            .map(|s| s.to_string())
            .collect::<BTreeSet<String>>(),
        "ensemble-reachable set drifted"
    );

    // Root inventory: one hot-loop root targeting `stamp`.
    assert_eq!(g.roots.len(), 1);
    match &g.roots[0] {
        Root::HotLoop { path, line, target } => {
            assert_eq!(path.as_str(), "crates/core/src/run.rs");
            // The root pins the call *site* inside the region, not the
            // region-opening comment.
            assert_eq!(*line, 3);
            assert_eq!(name(&g, *target), "stamp");
        }
        other => panic!("expected a hot-loop root, got {other:?}"),
    }
    assert_eq!(g.ensemble_roots.len(), 1);
    assert_eq!(name(&g, g.ensemble_roots[0]), "run_ensemble");
}

#[test]
fn hot101_diagnostic_pins_the_full_chain_text() {
    let records = workspace();
    let deps = deps();
    let findings = analyze_records(&records, Some(&deps));

    let hot: Vec<_> = findings.iter().filter(|f| f.rule == "HOT102").collect();
    assert_eq!(hot.len(), 1, "{findings:?}");
    assert_eq!(hot[0].path, "crates/spice/src/stamp.rs");
    assert_eq!(hot[0].line, 2);
    assert_eq!(
        hot[0].message,
        "`.to_vec()` copies a buffer in `scratch` on a hot path: \
         hot-loop at crates/core/src/run.rs:3 -> `stamp` -> `scratch`",
        "chain text drifted: {}",
        hot[0].message
    );
}

#[test]
fn cg001_diagnostic_pins_the_ensemble_chain_text() {
    let records = workspace();
    let deps = deps();
    let findings = analyze_records(&records, Some(&deps));

    let cg: Vec<_> = findings.iter().filter(|f| f.rule == "CG001").collect();
    assert_eq!(cg.len(), 1, "{findings:?}");
    assert_eq!(cg[0].path, "crates/core/src/run.rs");
    assert_eq!(cg[0].line, 7);
    assert!(
        cg[0]
            .message
            .contains("ensemble path `run_ensemble` -> `worker`"),
        "{}",
        cg[0].message
    );
    assert!(cg[0].message.starts_with("`samurai_bench::probe::record`"));
}

#[test]
fn hot_fn_annotation_roots_its_own_subgraph() {
    let records = vec![rec(
        "crates/sram/src/kernel.rs",
        "// lint: hot-fn\n\
         pub fn eval(x: f64) -> f64 { helper(x) }\n\
         fn helper(x: f64) -> f64 { let s = x.to_string(); s.len() as f64 }\n",
    )];
    let findings = analyze_records(&records, None);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "HOT101");
    assert!(
        findings[0].message.ends_with("hot-fn `eval` -> `helper`"),
        "{}",
        findings[0].message
    );
}

#[test]
fn graph_json_round_trips_the_pinned_shape() {
    let records = workspace();
    let deps = deps();
    let g = CallGraph::build(&records, Some(&deps));
    let json = g.graph_json();

    assert!(json.contains("\"schema\": \"samurai-lint-graph-v1\""));
    assert!(json.contains("\"name\": \"run_ensemble\""));
    assert!(json.contains("\"kind\": \"hot-loop\""));
    // Reachability flags are materialised per node.
    assert!(json.contains("\"hot_reachable\": true"));
    assert!(json.contains("\"ensemble_reachable\": true"));
}
