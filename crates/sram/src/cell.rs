//! The 6T SRAM cell netlist (paper Fig 1).
//!
//! Transistor naming follows the paper: `M1`/`M2` are the pass
//! transistors on the `BL`/`BLB` sides, `M3`–`M6` form the
//! cross-coupled inverter pair. `M5` is the pull-down whose *gate is
//! `Q`* and `M6` the pull-down whose gate is `Q̄` — the pair whose
//! anti-correlated trap activity the paper plots in Fig 8(b, c).
//!
//! Every transistor gets a companion current source between its drain
//! and source (initially zero) through which the SAMURAI-generated
//! `I_RTN` is injected for the second pass of the methodology — the
//! `I_RTN` glitch model of Fig 4 (right).

use samurai_core::scenario::DeviceGeometry;
use samurai_spice::{Circuit, ElementId, MosfetParams, NodeId, Source};

/// The six transistors of the cell, in paper naming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transistor {
    /// Pass transistor between `BL` and `Q` (gate `WL`).
    M1,
    /// Pass transistor between `BLB` and `Q̄` (gate `WL`).
    M2,
    /// Pull-up PMOS driving `Q` (gate `Q̄`).
    M3,
    /// Pull-up PMOS driving `Q̄` (gate `Q`).
    M4,
    /// Pull-down NMOS on the `Q̄` side — gate is `Q` (Fig 8b).
    M5,
    /// Pull-down NMOS on the `Q` side — gate is `Q̄` (Fig 8c).
    M6,
}

impl Transistor {
    /// All six transistors, in naming order.
    pub const ALL: [Transistor; 6] = [
        Transistor::M1,
        Transistor::M2,
        Transistor::M3,
        Transistor::M4,
        Transistor::M5,
        Transistor::M6,
    ];

    /// Stable index 0–5.
    pub fn index(self) -> usize {
        match self {
            Self::M1 => 0,
            Self::M2 => 1,
            Self::M3 => 2,
            Self::M4 => 3,
            Self::M5 => 4,
            Self::M6 => 5,
        }
    }

    /// The paper's label.
    pub fn label(self) -> &'static str {
        match self {
            Self::M1 => "M1",
            Self::M2 => "M2",
            Self::M3 => "M3",
            Self::M4 => "M4",
            Self::M5 => "M5",
            Self::M6 => "M6",
        }
    }
}

/// Electrical parameters of the cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramCellParams {
    /// Supply voltage.
    pub vdd: f64,
    /// Width multiplier of the pass transistors (`M1`, `M2`).
    pub pass_w: f64,
    /// Width multiplier of the pull-down NMOS (`M5`, `M6`).
    pub pulldown_w: f64,
    /// Width multiplier of the pull-up PMOS (`M3`, `M4`).
    pub pullup_w: f64,
    /// Extra storage-node capacitance on `Q` and `Q̄`, in farads.
    pub node_cap: f64,
    /// Per-transistor threshold-voltage shifts (Monte-Carlo variation),
    /// indexed by [`Transistor::index`].
    pub vth_shift: [f64; 6],
}

impl Default for SramCellParams {
    fn default() -> Self {
        Self {
            vdd: 1.1,
            // Classic read-stable sizing: pull-down > pass > pull-up.
            pass_w: 1.5,
            pulldown_w: 2.5,
            pullup_w: 1.0,
            node_cap: 0.4e-15,
            vth_shift: [0.0; 6],
        }
    }
}

/// The nominal (shift-free) parameters of cell transistor `t`, in
/// [`Transistor::index`] order — the single source of truth for cell
/// device sizing, shared by the cell and column generators and the
/// scenario layer's geometry inputs.
pub(crate) fn cell_mosfet_params(params: &SramCellParams, t: usize) -> MosfetParams {
    match t {
        0 | 1 => MosfetParams::nmos_90nm(params.pass_w),
        2 | 3 => MosfetParams::pmos_90nm(params.pullup_w),
        _ => MosfetParams::nmos_90nm(params.pulldown_w),
    }
}

/// Geometry of the six cell transistors, in [`Transistor::index`]
/// order — the Pelgrom-area input of the scenario sampler for
/// cell-level workloads. The column generator tiles this sextet once
/// per row, so cell- and column-level scenario draws agree on device
/// areas.
#[must_use]
pub fn cell_geometries(params: &SramCellParams) -> Vec<DeviceGeometry> {
    (0..6)
        .map(|t| {
            let p = cell_mosfet_params(params, t);
            DeviceGeometry {
                width: p.width,
                length: p.length,
            }
        })
        .collect()
}

/// A built 6T cell: the circuit plus handles to every node and element
/// the methodology needs.
#[derive(Debug, Clone)]
pub struct SramCell {
    /// The netlist (mutated between methodology passes through
    /// [`SramCell::set_rtn_source`] and the waveform setters).
    pub circuit: Circuit,
    /// Cell parameters used at construction.
    pub params: SramCellParams,
    /// Storage node `Q`.
    pub q: NodeId,
    /// Storage node `Q̄`.
    pub qb: NodeId,
    /// Bit line.
    pub bl: NodeId,
    /// Complement bit line.
    pub blb: NodeId,
    /// Word line.
    pub wl: NodeId,
    /// Supply node.
    pub vdd_node: NodeId,
    transistors: [ElementId; 6],
    rtn_sources: [ElementId; 6],
    wl_source: ElementId,
    bl_source: ElementId,
    blb_source: ElementId,
}

impl SramCell {
    /// Builds the cell with driven `WL`/`BL`/`BLB` (all initially 0 V)
    /// and zeroed RTN sources.
    pub fn new(params: SramCellParams) -> Self {
        let mut ckt = Circuit::new();
        let vdd_node = ckt.node("vdd");
        let q = ckt.node("q");
        let qb = ckt.node("qb");
        let bl = ckt.node("bl");
        let blb = ckt.node("blb");
        let wl = ckt.node("wl");

        ckt.vsource(vdd_node, Circuit::GROUND, Source::Dc(params.vdd));
        let wl_source = ckt.vsource(wl, Circuit::GROUND, Source::Dc(0.0));
        let bl_source = ckt.vsource(bl, Circuit::GROUND, Source::Dc(0.0));
        let blb_source = ckt.vsource(blb, Circuit::GROUND, Source::Dc(0.0));

        let nmos = |w: f64, dv: f64| MosfetParams::nmos_90nm(w).with_vth_shift(dv);
        let pmos = |w: f64, dv: f64| MosfetParams::pmos_90nm(w).with_vth_shift(dv);
        let shift = params.vth_shift;

        // Pass transistors: drain on the bit line, source on the cell
        // node (the device is symmetric; current direction varies).
        let m1 = ckt.mosfet(bl, wl, q, nmos(params.pass_w, shift[0]));
        let m2 = ckt.mosfet(blb, wl, qb, nmos(params.pass_w, shift[1]));
        // Cross-coupled pair. M3/M6 drive Q (gates on Q̄), M4/M5 drive
        // Q̄ (gates on Q).
        let m3 = ckt.mosfet(q, qb, vdd_node, pmos(params.pullup_w, shift[2]));
        let m4 = ckt.mosfet(qb, q, vdd_node, pmos(params.pullup_w, shift[3]));
        let m5 = ckt.mosfet(qb, q, Circuit::GROUND, nmos(params.pulldown_w, shift[4]));
        let m6 = ckt.mosfet(q, qb, Circuit::GROUND, nmos(params.pulldown_w, shift[5]));

        ckt.capacitor(q, Circuit::GROUND, params.node_cap);
        ckt.capacitor(qb, Circuit::GROUND, params.node_cap);

        // One RTN injection source per transistor, initially silent.
        // Injecting from source-terminal to drain-terminal *opposes*
        // the nominal channel current when fed the (signed) Eq (3)
        // trace — the glitch model of Fig 4.
        let transistors = [m1, m2, m3, m4, m5, m6];
        let terminal_pairs = [
            (q, bl),               // M1: source=q (cell side), drain=bl
            (qb, blb),             // M2
            (vdd_node, q),         // M3: PMOS source=vdd, drain=q
            (vdd_node, qb),        // M4
            (Circuit::GROUND, qb), // M5: NMOS source=gnd, drain=qb
            (Circuit::GROUND, q),  // M6
        ];
        let mut rtn_sources = [m1; 6];
        for (i, (s_node, d_node)) in terminal_pairs.into_iter().enumerate() {
            rtn_sources[i] = ckt.isource(s_node, d_node, Source::Dc(0.0));
        }

        Self {
            circuit: ckt,
            params,
            q,
            qb,
            bl,
            blb,
            wl,
            vdd_node,
            transistors,
            rtn_sources,
            wl_source,
            bl_source,
            blb_source,
        }
    }

    /// The element id of a transistor.
    pub fn transistor(&self, t: Transistor) -> ElementId {
        self.transistors[t.index()]
    }

    /// The element id of a transistor's RTN injection source.
    pub fn rtn_source(&self, t: Transistor) -> ElementId {
        self.rtn_sources[t.index()]
    }

    /// Drives the word line with a waveform.
    pub fn set_wl(&mut self, source: Source) {
        self.circuit
            .set_source(self.wl_source, source)
            .expect("wl source id is valid by construction"); // lint: allow(HYG002): source id minted by the constructor
    }

    /// Drives the bit line with a waveform.
    pub fn set_bl(&mut self, source: Source) {
        self.circuit
            .set_source(self.bl_source, source)
            .expect("bl source id is valid by construction"); // lint: allow(HYG002): source id minted by the constructor
    }

    /// Drives the complement bit line with a waveform.
    pub fn set_blb(&mut self, source: Source) {
        self.circuit
            .set_source(self.blb_source, source)
            .expect("blb source id is valid by construction"); // lint: allow(HYG002): source id minted by the constructor
    }

    /// Sets a transistor's RTN injection waveform.
    pub fn set_rtn_source(&mut self, t: Transistor, source: Source) {
        self.circuit
            .set_source(self.rtn_sources[t.index()], source)
            .expect("rtn source id is valid by construction"); // lint: allow(HYG002): source id minted by the constructor
    }

    /// Clears every RTN injection (back to the RTN-free first pass).
    pub fn clear_rtn_sources(&mut self) {
        for t in Transistor::ALL {
            self.set_rtn_source(t, Source::Dc(0.0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samurai_spice::{CompiledCircuit, DcConfig, NewtonWorkspace};

    #[test]
    fn cell_has_expected_structure() {
        let cell = SramCell::new(SramCellParams::default());
        // 6 nodes, 4 vsources, 6 mosfets + 2 caps + 6 isources.
        assert_eq!(cell.circuit.node_count(), 6);
        assert_eq!(cell.circuit.element_count(), 18);
        for t in Transistor::ALL {
            assert!(cell.circuit.mosfet_params(cell.transistor(t)).is_ok());
        }
        assert_eq!(Transistor::M5.label(), "M5");
    }

    #[test]
    fn m5_gate_is_q_and_m6_gate_is_qb() {
        let cell = SramCell::new(SramCellParams::default());
        let (_, g5, _) = cell
            .circuit
            .mosfet_nodes(cell.transistor(Transistor::M5))
            .unwrap();
        let (_, g6, _) = cell
            .circuit
            .mosfet_nodes(cell.transistor(Transistor::M6))
            .unwrap();
        assert_eq!(g5, cell.q, "paper: M5's gate voltage is Q");
        assert_eq!(g6, cell.qb, "paper: M6's gate voltage is Q-bar");
    }

    #[test]
    fn cell_holds_both_states_with_wl_low() {
        // DC with WL low and a nudge on the initial guess: bistable.
        // One compiled circuit and workspace solve both states.
        let cell = SramCell::new(SramCellParams::default());
        let compiled = CompiledCircuit::compile(&cell.circuit);
        let mut ws = NewtonWorkspace::new(&compiled);
        for (q0, expect_q_high) in [(1.1, true), (0.0, false)] {
            let mut guess = vec![0.0; cell.circuit.node_count()];
            guess[cell.vdd_node.unknown_index().unwrap()] = 1.1;
            guess[cell.q.unknown_index().unwrap()] = q0;
            guess[cell.qb.unknown_index().unwrap()] = 1.1 - q0;
            let config = DcConfig {
                initial_guess: Some(guess),
                ..DcConfig::default()
            };
            compiled.dc_operating_point(&mut ws, 0.0, &config).unwrap();
            let vq = ws.solution()[cell.q.unknown_index().unwrap()];
            if expect_q_high {
                assert!(vq > 1.0, "Q should hold high, got {vq}");
            } else {
                assert!(vq < 0.1, "Q should hold low, got {vq}");
            }
        }
    }

    #[test]
    fn vth_shifts_are_applied() {
        let mut params = SramCellParams::default();
        params.vth_shift[Transistor::M5.index()] = 0.05;
        let cell = SramCell::new(params);
        let m5 = cell
            .circuit
            .mosfet_params(cell.transistor(Transistor::M5))
            .unwrap();
        let m6 = cell
            .circuit
            .mosfet_params(cell.transistor(Transistor::M6))
            .unwrap();
        assert!((m5.vth - m6.vth - 0.05).abs() < 1e-12);
    }
}
