//! Read-disturb analysis (paper footnote 2).
//!
//! During a read both bit lines sit precharged at `V_dd` while the word
//! line opens the pass transistors. The storage node holding `0` is
//! briefly pulled up through the pass device; if the pull-down cannot
//! win the ratioed fight — and RTN can sap exactly that pull-down
//! current at exactly that moment — the cell flips. The paper notes
//! SAMURAI predicts these failures too; this module implements the
//! scenario.

use samurai_core::{BiasWaveforms, RtnGenerator, SeedStream};
use samurai_waveform::{Pwc, Pwl};

use samurai_spice::{CompiledCircuit, NewtonWorkspace, Source, TransientConfig};

use crate::harness::{pwc_to_source, trap_device, MethodologyConfig};
use crate::{SramCell, SramError, Transistor, WriteTiming};

/// Result of a read-disturb experiment.
#[derive(Debug, Clone)]
pub struct ReadDisturbReport {
    /// `Q` over the whole experiment (store phase then reads).
    pub q: Pwl,
    /// `Q̄` over the whole experiment.
    pub qb: Pwl,
    /// Was the stored value lost by the end?
    pub disturbed: bool,
    /// `Q` at the end of the run, volts.
    pub final_q: f64,
    /// Per-transistor RTN currents injected (unscaled), indexed by
    /// [`Transistor::index`].
    pub i_rtn: Vec<Pwc>,
}

/// Runs a store-then-read experiment: the cell is initialised holding
/// `bit`, then `reads` consecutive read cycles hammer it with both bit
/// lines at `V_dd`. RTN is generated with the two-pass methodology and
/// injected at `config.rtn_scale`.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run_read_disturb(
    bit: bool,
    reads: usize,
    config: &MethodologyConfig,
) -> Result<ReadDisturbReport, SramError> {
    if reads == 0 {
        return Err(SramError::InvalidConfig {
            reason: "need at least one read cycle",
        });
    }
    let timing = config.timing;
    let vdd = config.cell.vdd;
    let cycles = reads + 1; // cycle 0 writes the initial value
    let tf = timing.duration(cycles);

    let mut cell = SramCell::new(config.cell);
    cell.set_wl(Source::Pwl(read_wl(&timing, cycles)));
    let (bl, blb) = read_bitlines(&timing, bit, cycles, vdd);
    cell.set_bl(Source::Pwl(bl));
    cell.set_blb(Source::Pwl(blb));

    let spice_config = TransientConfig::default();

    // Compile once; both passes share the workspace.
    let mut compiled = CompiledCircuit::compile(&cell.circuit);
    let mut ws = NewtonWorkspace::new(&compiled);

    // Pass 1: RTN-free (bias extraction).
    let pass1 = compiled.run_transient(&mut ws, 0.0, tf, &spice_config)?;

    // SAMURAI per transistor, as in the write methodology.
    let seeds = SeedStream::new(config.seed);
    let mut injected = Vec::with_capacity(6);
    for t in Transistor::ALL {
        let element = cell.transistor(t);
        let v_gs = pass1.mosfet_gate_drive(&cell.circuit, element)?;
        let i_d = pass1.mosfet_current(&cell.circuit, element)?;
        let bias = BiasWaveforms::new(v_gs, i_d);

        let device = trap_device(&cell, t, &config.technology);
        let mut tech = config.technology.clone();
        tech.device = device;
        tech.trap_density *= config.density_scale;
        let profile_seeds = seeds.substream(t.index() as u64);
        let traps = match &config.traps {
            Some(explicit) => explicit[t.index()].clone(),
            None => samurai_trap::TrapProfiler::new(tech).sample(&mut profile_seeds.rng(0)),
        };
        let generator = RtnGenerator::new(device, traps)
            .with_seed(profile_seeds.substream(7).seed())
            .with_current_oversample(config.current_oversample);
        let rtn = generator.generate(&bias, 0.0, tf)?;
        compiled.set_source(
            cell.rtn_source(t),
            pwc_to_source(&rtn.i_rtn, config.rtn_scale),
        )?;
        injected.push(rtn.i_rtn);
    }

    // Pass 2: with RTN.
    let pass2 = compiled.run_transient(&mut ws, 0.0, tf, &spice_config)?;
    let q = pass2.voltage(&cell.circuit, "q")?;
    let qb = pass2.voltage(&cell.circuit, "qb")?;
    let final_q = q.eval(tf * (1.0 - 1e-6));
    let held = if bit {
        final_q > 0.7 * vdd
    } else {
        final_q < 0.3 * vdd
    };

    Ok(ReadDisturbReport {
        q,
        qb,
        disturbed: !held,
        final_q,
        i_rtn: injected,
    })
}

/// WL strobed every cycle (write in cycle 0, reads after).
fn read_wl(timing: &WriteTiming, cycles: usize) -> Pwl {
    let digital = samurai_waveform::DigitalTiming::new(timing.period, timing.edge, 0.0, timing.vdd)
        .expect("write timing was validated by the caller"); // lint: allow(HYG002): timing validated by the public entry point
    digital.strobe(0.0, cycles, timing.wl_on_frac, timing.wl_off_frac)
}

/// BL/BLB: drive the stored value in cycle 0, both precharged high
/// afterwards.
fn read_bitlines(timing: &WriteTiming, bit: bool, cycles: usize, vdd: f64) -> (Pwl, Pwl) {
    let t1 = timing.period;
    let e = timing.edge;
    let level = |b: bool| if b { vdd } else { 0.0 };
    let mk = |v0: f64| {
        let mut pts = vec![(0.0, v0)];
        if (v0 - vdd).abs() > 1e-12 {
            pts.push((t1, v0));
            pts.push((t1 + e, vdd));
        } else {
            pts.push((t1 + e, vdd));
        }
        pts.push((cycles as f64 * timing.period, vdd));
        Pwl::new(pts).expect("times are strictly increasing") // lint: allow(HYG002): breakpoints are built strictly increasing here
    };
    (mk(level(bit)), mk(level(!bit)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_cell_survives_reads_of_both_values() {
        for bit in [false, true] {
            let config = MethodologyConfig {
                traps: Some(Default::default()), // no RTN at all
                ..MethodologyConfig::default()
            };
            let report = run_read_disturb(bit, 3, &config).unwrap();
            assert!(
                !report.disturbed,
                "clean cell lost bit {bit}: final Q = {}",
                report.final_q
            );
        }
    }

    #[test]
    fn unscaled_rtn_does_not_flip_reads() {
        let config = MethodologyConfig {
            seed: 4,
            rtn_scale: 1.0,
            ..MethodologyConfig::default()
        };
        let report = run_read_disturb(false, 3, &config).unwrap();
        assert!(!report.disturbed, "final Q = {}", report.final_q);
        assert_eq!(report.i_rtn.len(), 6);
    }

    #[test]
    fn zero_reads_is_rejected() {
        let config = MethodologyConfig::default();
        assert!(matches!(
            run_read_disturb(true, 0, &config),
            Err(SramError::InvalidConfig { .. })
        ));
    }
}
