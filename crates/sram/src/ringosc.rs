//! Ring-oscillator RTN analysis (paper future work, item 4).
//!
//! RTN is known to modulate ring-oscillator periods \[3\]; the paper
//! proposes extending SAMURAI beyond SRAM, and this module does so: an
//! N-stage CMOS ring is simulated, per-transistor RTN is generated with
//! the usual two-pass flow, and the cycle-by-cycle period sequence is
//! compared with and without RTN.

use samurai_core::{BiasWaveforms, RtnGenerator, SeedStream};
use samurai_waveform::Pwl;

use samurai_spice::{
    Circuit, CompiledCircuit, ElementId, MosfetParams, NewtonWorkspace, Source, TransientConfig,
};

use crate::harness::pwc_to_source;
use crate::SramError;

/// Configuration of the ring experiment.
#[derive(Debug, Clone)]
pub struct RingConfig {
    /// Odd number of inverter stages.
    pub stages: usize,
    /// Supply voltage.
    pub vdd: f64,
    /// Per-stage load capacitance in farads (sets the period).
    pub load_cap: f64,
    /// Simulation horizon in seconds.
    pub horizon: f64,
    /// Technology for trap profiling.
    pub technology: samurai_trap::Technology,
    /// RTN scale factor.
    pub rtn_scale: f64,
    /// Multiplier on trap density.
    pub density_scale: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for RingConfig {
    fn default() -> Self {
        Self {
            stages: 5,
            vdd: 1.1,
            load_cap: 2e-15,
            horizon: 30e-9,
            technology: samurai_trap::Technology::node_90nm(),
            rtn_scale: 1.0,
            density_scale: 1.0,
            seed: 0,
        }
    }
}

/// Result of the ring experiment.
#[derive(Debug, Clone)]
pub struct RingReport {
    /// Observed rising-edge periods without RTN, seconds.
    pub periods_clean: Vec<f64>,
    /// Observed rising-edge periods with RTN injected.
    pub periods_rtn: Vec<f64>,
    /// The observed stage-0 waveform with RTN.
    pub v0: Pwl,
}

impl RingReport {
    fn mean(periods: &[f64]) -> f64 {
        periods.iter().sum::<f64>() / periods.len().max(1) as f64
    }

    /// Mean period of the clean ring.
    pub fn mean_period_clean(&self) -> f64 {
        Self::mean(&self.periods_clean)
    }

    /// Mean period with RTN.
    pub fn mean_period_rtn(&self) -> f64 {
        Self::mean(&self.periods_rtn)
    }

    /// RMS cycle-to-cycle jitter of the RTN run, seconds.
    pub fn rtn_jitter(&self) -> f64 {
        let m = self.mean_period_rtn();
        let n = self.periods_rtn.len().max(1) as f64;
        (self
            .periods_rtn
            .iter()
            .map(|p| (p - m) * (p - m))
            .sum::<f64>()
            / n)
            .sqrt()
    }
}

struct Ring {
    circuit: Circuit,
    transistors: Vec<ElementId>,
    rtn_sources: Vec<ElementId>,
}

/// Builds the ring with a kick-start current pulse on stage 0.
fn build_ring(config: &RingConfig) -> Ring {
    assert!(
        config.stages >= 3 && config.stages % 2 == 1,
        "stages must be odd and >= 3"
    );
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.vsource(vdd, Circuit::GROUND, Source::Dc(config.vdd));

    let nodes: Vec<_> = (0..config.stages)
        .map(|i| ckt.node(&format!("n{i}")))
        .collect();
    let mut transistors = Vec::with_capacity(2 * config.stages);
    let mut rtn_sources = Vec::with_capacity(2 * config.stages);
    for i in 0..config.stages {
        let input = nodes[i];
        let output = nodes[(i + 1) % config.stages];
        let mn = ckt.mosfet(output, input, Circuit::GROUND, MosfetParams::nmos_90nm(2.0));
        let mp = ckt.mosfet(output, input, vdd, MosfetParams::pmos_90nm(4.0));
        rtn_sources.push(ckt.isource(Circuit::GROUND, output, Source::Dc(0.0)));
        rtn_sources.push(ckt.isource(vdd, output, Source::Dc(0.0)));
        transistors.push(mn);
        transistors.push(mp);
        ckt.capacitor(output, Circuit::GROUND, config.load_cap);
    }

    // Kick-start: a brief current pulse knocks stage 0 off the
    // metastable all-at-Vm equilibrium.
    let kick = Pwl::pulse(0.0, 50e-6, 0.05e-9, 0.3e-9, 0.02e-9, 0.02e-9)
        .expect("kick pulse parameters are static"); // lint: allow(HYG002): static pulse parameters are known-valid
    ckt.isource(Circuit::GROUND, nodes[0], Source::Pwl(kick));

    Ring {
        circuit: ckt,
        transistors,
        rtn_sources,
    }
}

/// Extracts rising-edge crossing times of `v` through `level`,
/// scanning with resolution `dt`, skipping the first `settle` seconds.
fn rising_crossings(v: &Pwl, level: f64, t0: f64, tf: f64, dt: f64, settle: f64) -> Vec<f64> {
    let mut crossings = Vec::new();
    let mut prev = v.eval(t0 + settle);
    let mut t = t0 + settle + dt;
    while t <= tf {
        let cur = v.eval(t);
        if prev < level && cur >= level {
            // Linear refinement inside the step.
            let frac = (level - prev) / (cur - prev);
            crossings.push(t - dt + frac * dt);
        }
        prev = cur;
        t += dt;
    }
    crossings
}

fn periods_from_crossings(crossings: &[f64]) -> Vec<f64> {
    crossings.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Runs the ring-oscillator RTN experiment.
///
/// # Errors
///
/// Propagates simulation failures.
pub fn run_ring(config: &RingConfig) -> Result<RingReport, SramError> {
    let ring = build_ring(config);
    let spice_config = TransientConfig {
        dt_max: Some(config.horizon / 600.0),
        ..TransientConfig::default()
    };

    // Compile once; both passes share the workspace and only the RTN
    // sources change in between.
    let mut compiled = CompiledCircuit::compile(&ring.circuit);
    let mut ws = NewtonWorkspace::new(&compiled);

    // Pass 1: clean ring.
    let pass1 = compiled.run_transient(&mut ws, 0.0, config.horizon, &spice_config)?;
    let v0_clean = pass1.voltage(&ring.circuit, "n0")?;
    let level = config.vdd / 2.0;
    let scan_dt = config.horizon / 20_000.0;
    let settle = config.horizon * 0.2;
    let crossings_clean = rising_crossings(&v0_clean, level, 0.0, config.horizon, scan_dt, settle);
    let periods_clean = periods_from_crossings(&crossings_clean);

    // RTN per transistor from the extracted biases.
    let seeds = SeedStream::new(config.seed);
    for (idx, (&element, &source_id)) in ring.transistors.iter().zip(&ring.rtn_sources).enumerate()
    {
        let params = *ring.circuit.mosfet_params(element)?;
        let v_gs = pass1.mosfet_gate_drive(&ring.circuit, element)?;
        let i_d = pass1.mosfet_current(&ring.circuit, element)?;
        let bias = BiasWaveforms::new(v_gs, i_d);

        let mut tech = config.technology.clone();
        tech.device.width = samurai_units::Length::from_metres(params.width);
        tech.device.length = samurai_units::Length::from_metres(params.length);
        tech.device.v_th = samurai_units::Voltage::from_volts(params.vth);
        tech.trap_density *= config.density_scale;
        let stream = seeds.substream(idx as u64);
        let traps = samurai_trap::TrapProfiler::new(tech.clone()).sample(&mut stream.rng(0));
        let generator = RtnGenerator::new(tech.device, traps)
            .with_seed(stream.substream(7).seed())
            .with_current_oversample(64);
        let rtn = generator.generate(&bias, 0.0, config.horizon)?;
        compiled.set_source(source_id, pwc_to_source(&rtn.i_rtn, config.rtn_scale))?;
    }

    // Pass 2: ring with RTN.
    let pass2 = compiled.run_transient(&mut ws, 0.0, config.horizon, &spice_config)?;
    let v0 = pass2.voltage(&ring.circuit, "n0")?;
    let crossings_rtn = rising_crossings(&v0, level, 0.0, config.horizon, scan_dt, settle);
    let periods_rtn = periods_from_crossings(&crossings_rtn);

    Ok(RingReport {
        periods_clean,
        periods_rtn,
        v0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_ring_oscillates_with_a_stable_period() {
        let config = RingConfig {
            rtn_scale: 0.0,
            ..RingConfig::default()
        };
        let report = run_ring(&config).unwrap();
        assert!(
            report.periods_clean.len() >= 3,
            "expected several cycles, got {:?}",
            report.periods_clean
        );
        let mean = report.mean_period_clean();
        assert!(mean > 0.0);
        for p in &report.periods_clean {
            assert!(
                (p - mean).abs() < 0.1 * mean,
                "clean ring period wobbles: {p} vs mean {mean}"
            );
        }
    }

    #[test]
    fn rtn_perturbs_the_period_sequence() {
        let config = RingConfig {
            rtn_scale: 100.0,
            density_scale: 2.0,
            seed: 5,
            ..RingConfig::default()
        };
        let report = run_ring(&config).unwrap();
        assert!(report.periods_rtn.len() >= 3);
        // With heavy RTN the period sequence differs from the clean one.
        let diff = (report.mean_period_rtn() - report.mean_period_clean()).abs();
        let jitter = report.rtn_jitter();
        assert!(
            diff > 0.0 || jitter > 0.0,
            "RTN should leave a measurable mark: diff {diff}, jitter {jitter}"
        );
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_stage_counts_are_rejected() {
        let config = RingConfig {
            stages: 4,
            ..RingConfig::default()
        };
        let _ = build_ring(&config);
    }
}
