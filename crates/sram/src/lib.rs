//! SRAM analysis under Random Telegraph Noise — the application layer
//! of the SAMURAI reproduction.
//!
//! This crate assembles the substrates (`samurai-spice`,
//! `samurai-trap`, `samurai-core`) into the paper's methodology and its
//! extensions:
//!
//! * [`SramCell`] — a 6T cell netlist (Fig 1) with per-transistor RTN
//!   current-source hooks;
//! * [`WriteTiming`] / [`build_write_waveforms`] — test patterns of
//!   writes (WL strobes, NRZ bit lines), including the paper's
//!   `[1,1,0,1,0,1,0,0,1]` demonstration pattern;
//! * [`analyze_writes`] — write-error / write-slowdown classification
//!   of a simulated `Q` waveform (the distinction of Fig 5);
//! * [`run_methodology`] — the full two-pass SPICE → SAMURAI → SPICE
//!   flow of Fig 8, with the paper's ×30 RTN scaling knob;
//! * extensions from the paper's future-work list: bi-directionally
//!   [`coupled`] RTN+circuit simulation (item 1), Monte-Carlo
//!   [`array`](mod@array)-level bit-error analysis with `V_T` variation (items 2
//!   and 3), generated SRAM [`column`](mod@column) arrays with shared bit lines
//!   and periphery, [`read`]-disturb analysis (footnote 2) and a
//!   ring-oscillator RTN study ([`ringosc`], item 4);
//! * [`margin`] — the parameterised design-margin model behind the
//!   Fig 2 reproduction.
//!
//! Per-job variability, supply/temperature corners, NBTI aging and
//! trap-count dispersion all flow through one deterministic sampling
//! surface: a [`samurai_core::scenario::ScenarioConfig`] attached to
//! the ensemble configurations ([`ColumnEnsembleConfig::scenario`],
//! [`array::ArrayConfig::scenario`], [`vrt::VrtConfig::scenario`]),
//! expanded per job from the master seed and applied to the compiled
//! circuits as allocation-free
//! [`ParamPatch`](samurai_spice::ParamPatch)es.
//!
//! # Example: is this cell compromised by RTN?
//!
//! ```no_run
//! use samurai_sram::{MethodologyConfig, run_methodology};
//! use samurai_waveform::BitPattern;
//!
//! let config = MethodologyConfig {
//!     rtn_scale: 30.0, // the paper's accelerated-RTN factor
//!     seed: 7,
//!     ..MethodologyConfig::default()
//! };
//! let report = run_methodology(&BitPattern::paper_fig8(), &config)?;
//! println!("write outcomes: {:?}", report.outcomes);
//! # Ok::<(), samurai_sram::SramError>(())
//! ```

pub mod accelerated;
pub mod array;
mod cell;
pub mod column;
pub mod coupled;
mod detect;
pub mod drv;
mod error;
mod harness;
pub mod margin;
mod pattern;
pub mod read;
pub mod ringosc;
pub mod sensitivity;
pub mod snm;
pub mod vrt;

pub use cell::{cell_geometries, SramCell, SramCellParams, Transistor};
pub use column::{
    run_column_ensemble, run_column_ensemble_observed, ColumnConfig, ColumnEnsembleConfig,
    ColumnMemberResult, ColumnStats, ColumnTiming, SramColumn,
};
pub use detect::{analyze_writes, CycleOutcome, WriteAnalysis};
pub use error::SramError;
pub use harness::{run_methodology, MethodologyConfig, MethodologyReport, TransistorRtn};
pub use pattern::{build_write_waveforms, WriteTiming, WriteWaveforms};
