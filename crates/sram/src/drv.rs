//! Data-retention voltage (DRV): how far the supply can droop before a
//! holding cell loses its state.
//!
//! Below the DRV the cross-coupled pair stops being bistable — the two
//! stored states collapse into one — which is the ultimate limit for
//! standby-power V_dd scaling. RTN enters the same way it enters the
//! SNM: trapped charges shift a transistor's threshold, skew the pair,
//! and raise the DRV. Together with [`crate::snm`] this quantifies, on
//! an actual cell, the Fig 2 claim that RTN eats the low-V_dd margin.

use samurai_spice::{CompiledCircuit, DcConfig, NewtonWorkspace};

use crate::{SramCell, SramCellParams, SramError};

/// Result of a bistability probe at one supply voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoldProbe {
    /// Supply used.
    pub vdd: f64,
    /// `Q` when seeded holding 1.
    pub q_from_one: f64,
    /// `Q` when seeded holding 0.
    pub q_from_zero: f64,
}

impl HoldProbe {
    /// The cell is bistable if the two seeds settle to distinct states
    /// separated by at least half the supply.
    pub fn bistable(&self) -> bool {
        (self.q_from_one - self.q_from_zero) > 0.5 * self.vdd
    }
}

/// Solves the hold state at `vdd` from both initial conditions.
///
/// # Errors
///
/// Propagates DC convergence failures.
pub fn probe_hold(params: &SramCellParams, vdd: f64) -> Result<HoldProbe, SramError> {
    // One cell, one compiled circuit, one workspace for both seeds.
    let mut p = *params;
    p.vdd = vdd;
    let cell = SramCell::new(p);
    let compiled = CompiledCircuit::compile(&cell.circuit);
    let mut ws = NewtonWorkspace::new(&compiled);
    let q_idx = cell.q.unknown_index().expect("q is not ground"); // lint: allow(HYG002): cell nodes are never ground by construction
    let mut solve = |q0: f64| -> Result<f64, SramError> {
        let mut guess = vec![0.0; cell.circuit.node_count()];
        guess[cell.vdd_node.unknown_index().expect("vdd is not ground")] = vdd; // lint: allow(HYG002): cell nodes are never ground by construction
        guess[q_idx] = q0;
        guess[cell.qb.unknown_index().expect("qb is not ground")] = vdd - q0; // lint: allow(HYG002): cell nodes are never ground by construction
        let config = DcConfig {
            initial_guess: Some(guess),
            ..DcConfig::default()
        };
        compiled.dc_operating_point(&mut ws, 0.0, &config)?;
        Ok(ws.solution()[q_idx])
    };
    Ok(HoldProbe {
        vdd,
        q_from_one: solve(vdd)?,
        q_from_zero: solve(0.0)?,
    })
}

/// Bisects the data-retention voltage: the lowest supply at which the
/// cell is still bistable, to `resolution` volts.
///
/// # Errors
///
/// Returns [`SramError::InvalidConfig`] if the cell is not even
/// bistable at `vdd_max`; propagates DC failures.
///
/// # Panics
///
/// Panics if `resolution` or `vdd_max` is not positive.
pub fn retention_voltage(
    params: &SramCellParams,
    vdd_max: f64,
    resolution: f64,
) -> Result<f64, SramError> {
    assert!(vdd_max > 0.0 && resolution > 0.0);
    if !probe_hold(params, vdd_max)?.bistable() {
        return Err(SramError::InvalidConfig {
            reason: "cell is not bistable even at the maximum supply",
        });
    }
    let (mut lo, mut hi) = (0.0f64, vdd_max);
    while hi - lo > resolution {
        let mid = 0.5 * (lo + hi);
        if mid <= 0.0 {
            break;
        }
        if probe_hold(params, mid)?.bistable() {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(hi)
}

/// DRV penalty of RTN: trapped charges shifting the given transistor's
/// threshold by `delta_vth` raise the retention voltage by the
/// returned amount (volts).
///
/// # Errors
///
/// Propagates failures from [`retention_voltage`].
pub fn drv_penalty(
    params: &SramCellParams,
    victim: crate::Transistor,
    delta_vth: f64,
    vdd_max: f64,
) -> Result<f64, SramError> {
    let clean = retention_voltage(params, vdd_max, 1e-3)?;
    let mut skewed = *params;
    skewed.vth_shift[victim.index()] += delta_vth;
    let with_rtn = retention_voltage(&skewed, vdd_max, 1e-3)?;
    Ok(with_rtn - clean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Transistor;

    #[test]
    fn cell_is_bistable_at_nominal_and_monostable_near_zero() {
        let params = SramCellParams::default();
        assert!(probe_hold(&params, 1.1).unwrap().bistable());
        assert!(!probe_hold(&params, 0.05).unwrap().bistable());
    }

    #[test]
    fn drv_is_a_small_fraction_of_nominal_vdd() {
        let params = SramCellParams::default();
        let drv = retention_voltage(&params, 1.1, 1e-3).unwrap();
        // Ideal matched cells hold state down to very low supplies;
        // the DRV must be positive but well below nominal.
        assert!(drv > 0.01 && drv < 0.6, "DRV = {drv}");
        // Consistency: bistable just above, not bistable just below.
        assert!(probe_hold(&params, drv + 5e-3).unwrap().bistable());
        assert!(!probe_hold(&params, (drv - 5e-3).max(1e-3))
            .unwrap()
            .bistable());
    }

    #[test]
    fn threshold_skew_raises_the_drv() {
        let params = SramCellParams::default();
        let penalty = drv_penalty(&params, Transistor::M5, 0.12, 1.1).unwrap();
        assert!(
            penalty > 0.0,
            "a skewed cell must lose retention margin: {penalty}"
        );
    }

    #[test]
    fn unbistable_configuration_is_reported() {
        // Absurd mismatch destroys bistability at any supply <= vdd_max.
        let mut params = SramCellParams::default();
        params.vth_shift[Transistor::M5.index()] = 1.2;
        params.vth_shift[Transistor::M3.index()] = -0.6;
        let result = retention_voltage(&params, 0.3, 1e-3);
        assert!(matches!(result, Err(SramError::InvalidConfig { .. })));
    }
}
