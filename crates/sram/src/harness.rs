//! The paper's simulation-driven methodology (Fig 8, left):
//! SPICE pass 1 → SAMURAI per transistor → SPICE pass 2 → verdict.

use rand::Rng;

use samurai_core::faults::{FaultPlan, FaultSite};
use samurai_core::{BiasWaveforms, Parallelism, RtnGenerator, SeedStream};
use samurai_trap::{DeviceParams, Technology, TrapParams, TrapProfiler, TrapState};
use samurai_waveform::{BitPattern, Pwc, Pwl};

use samurai_spice::{
    CompiledCircuit, MosfetAdjust, MosfetParams, NewtonWorkspace, ParamPatch, PatchUndo, Source,
    TransientConfig,
};
use samurai_telemetry::SolverStats;

use crate::{
    analyze_writes, build_write_waveforms, SramCell, SramCellParams, SramError, Transistor,
    WriteAnalysis, WriteTiming,
};

/// Configuration of the two-pass methodology.
#[derive(Debug, Clone)]
pub struct MethodologyConfig {
    /// Cell sizing and supply.
    pub cell: SramCellParams,
    /// Write-cycle timing.
    pub timing: WriteTiming,
    /// Technology whose trap statistics profile each transistor.
    pub technology: Technology,
    /// Multiplier on the sampled trap density (1.0 = the technology's
    /// nominal value).
    pub density_scale: f64,
    /// The paper's accelerated-RTN scale factor (×30 in Fig 8e; 1.0 for
    /// unscaled RTN).
    pub rtn_scale: f64,
    /// Master random seed (trap profiles and trap dynamics).
    pub seed: u64,
    /// Explicit per-transistor trap profiles; when `None` the profiles
    /// are sampled from the technology.
    pub traps: Option<[Vec<TrapParams>; 6]>,
    /// Draw each trap's initial state from its stationary distribution
    /// at the pass-1 initial bias (otherwise all traps start empty).
    pub equilibrate_initial_state: bool,
    /// Uniform refinement of the Eq (3) current between trap events.
    pub current_oversample: usize,
    /// Worker pool for the per-trap RTN simulations. Results are
    /// bit-identical at every setting (see [`samurai_core::ensemble`]);
    /// `Parallelism::Fixed(1)` is the legacy sequential path.
    pub parallelism: Parallelism,
    /// SPICE solver configuration for both transient passes (step
    /// control, Newton tolerances and the step-level rescue ladder).
    pub spice: TransientConfig,
    /// Deterministic fault plan armed on the shared SPICE workspace
    /// (solve- and step-site triggers). Empty in production.
    pub faults: FaultPlan,
    /// Per-transistor scenario adjustments (beta/geometry spread),
    /// indexed by [`Transistor::index`] and applied to the compiled
    /// cell as a [`ParamPatch`] before either pass. Identity by
    /// default.
    pub adjust: [MosfetAdjust; 6],
    /// Thermal-corner scale on every device's thermal voltage
    /// (`φ_t ∝ T / T_room`), applied with the same patch. `1.0` is the
    /// nominal corner.
    pub phi_t_scale: f64,
}

impl Default for MethodologyConfig {
    fn default() -> Self {
        Self {
            cell: SramCellParams::default(),
            timing: WriteTiming::default(),
            technology: Technology::node_90nm(),
            density_scale: 1.0,
            rtn_scale: 1.0,
            seed: 0,
            traps: None,
            equilibrate_initial_state: true,
            current_oversample: 64,
            parallelism: Parallelism::Auto,
            spice: TransientConfig::default(),
            faults: FaultPlan::none(),
            adjust: [MosfetAdjust::nominal(); 6],
            phi_t_scale: 1.0,
        }
    }
}

/// The RTN data generated for one transistor.
#[derive(Debug, Clone)]
pub struct TransistorRtn {
    /// Which transistor.
    pub transistor: Transistor,
    /// The bias extracted from pass 1 (gate overdrive magnitude and
    /// signed drain current).
    pub bias: BiasWaveforms,
    /// Trap parameters used.
    pub traps: Vec<TrapParams>,
    /// Per-trap occupancy staircases.
    pub occupancies: Vec<Pwc>,
    /// Filled-trap count `N_filled(t)` (paper Fig 8 b, c).
    pub n_filled: Pwc,
    /// The unscaled Eq (3) RTN current (paper Fig 8 d).
    pub i_rtn: Pwc,
}

/// Everything the methodology produced.
#[derive(Debug, Clone)]
pub struct MethodologyReport {
    /// `Q` from the RTN-free pass (paper Fig 8 a).
    pub q_clean: Pwl,
    /// `Q̄` from the RTN-free pass.
    pub qb_clean: Pwl,
    /// `Q` from the RTN-injected pass (paper Fig 8 e).
    pub q_rtn: Pwl,
    /// `Q̄` from the RTN-injected pass.
    pub qb_rtn: Pwl,
    /// Per-transistor RTN data, indexed by [`Transistor::index`].
    pub rtn: Vec<TransistorRtn>,
    /// Write analysis of the RTN-free pass (must be all clean for a
    /// meaningful experiment).
    pub outcomes_clean: WriteAnalysis,
    /// Write analysis of the RTN-injected pass — the verdict.
    pub outcomes: WriteAnalysis,
    /// Solver effort across both SPICE passes, read off the shared
    /// Newton workspace (attempts, iterations, step accept/reject and
    /// rescue-rung counts).
    pub solver: SolverStats,
}

impl MethodologyReport {
    /// Total capture/emission events across all transistors.
    pub fn total_events(&self) -> usize {
        self.rtn
            .iter()
            .flat_map(|t| t.occupancies.iter())
            .map(Pwc::transition_count)
            .sum()
    }

    /// `true` if RTN caused at least one write error that the clean
    /// pass did not have.
    pub fn rtn_induced_error(&self) -> bool {
        self.outcomes.error_count() > self.outcomes_clean.error_count()
    }
}

/// Builds the trap-physics device description for one transistor of
/// the cell, combining the cell's electrical sizing with the
/// technology's oxide/trap parameters.
pub(crate) fn trap_device(cell: &SramCell, t: Transistor, tech: &Technology) -> DeviceParams {
    let params = cell
        .circuit
        .mosfet_params(cell.transistor(t))
        .expect("cell transistor ids are valid"); // lint: allow(HYG002): transistor ids come from the same cell
    trap_device_from_params(params, tech)
}

/// Builds the trap-physics device description from explicit MOSFET
/// parameters: electrical sizing and threshold from the netlist
/// device, oxide/doping/temperature from the technology. Shared by
/// the cell harness, the column generator and the scenario layer's
/// trap pre-sampling.
pub(crate) fn trap_device_from_params(params: &MosfetParams, tech: &Technology) -> DeviceParams {
    DeviceParams {
        width: samurai_units::Length::from_metres(params.width),
        length: samurai_units::Length::from_metres(params.length),
        t_ox: tech.device.t_ox,
        v_th: samurai_units::Voltage::from_volts(params.vth),
        v_fb: tech.device.v_fb,
        doping: tech.device.doping,
        temperature: tech.device.temperature,
    }
}

/// Thins staircase steps closer than `min_gap` to their predecessor so
/// the PWL conversion always has room for its edges.
fn sanitize_steps(pwc: &Pwc, min_gap: f64) -> Pwc {
    let mut steps: Vec<(f64, f64)> = Vec::with_capacity(pwc.steps().len());
    for &(t, v) in pwc.steps() {
        match steps.last_mut() {
            Some(last) if t - last.0 < min_gap => last.1 = v,
            _ => steps.push((t, v)),
        }
    }
    Pwc::new(steps).expect("thinned steps remain strictly increasing") // lint: allow(HYG002): thinning preserves strict monotonicity
}

/// Converts an RTN staircase to a PWL source waveform.
pub(crate) fn pwc_to_source(pwc: &Pwc, scale: f64) -> Source {
    let clean = sanitize_steps(&pwc.scaled(scale), 1e-15);
    if clean.steps().len() < 2 {
        return Source::Dc(clean.steps()[0].1);
    }
    Source::Pwl(clean.to_pwl(0.9e-16))
}

/// Runs the full Fig 8 methodology for one cell and one bit pattern.
///
/// # Errors
///
/// Propagates simulation failures from either SPICE pass or from the
/// RTN generator.
pub fn run_methodology(
    pattern: &BitPattern,
    config: &MethodologyConfig,
) -> Result<MethodologyReport, SramError> {
    let mut cell = SramCell::new(config.cell);
    let waves = build_write_waveforms(pattern, &config.timing)?;
    cell.set_wl(Source::Pwl(waves.wl.clone()));
    cell.set_bl(Source::Pwl(waves.bl.clone()));
    cell.set_blb(Source::Pwl(waves.blb.clone()));

    let t0 = 0.0;
    let tf = config.timing.duration(pattern.len());
    let spice_config = &config.spice;

    // One compiled circuit and workspace serve both SPICE passes; only
    // the RTN sources are rewritten in between. The fault arms cover
    // the whole two-pass run: solve/step counters carry from pass 1
    // into pass 2.
    let mut compiled = CompiledCircuit::compile(&cell.circuit);
    // Scenario overlay: beta/geometry spread and the thermal corner
    // ride on the compiled workspace as a ParamPatch, so per-job
    // variation never recompiles. The nominal guard keeps the legacy
    // path bit-identical (nothing is touched at identity).
    let patch = ParamPatch {
        devices: Transistor::ALL
            .iter()
            .map(|&t| (cell.transistor(t), config.adjust[t.index()]))
            .collect(),
        vdd_scale: 1.0,
        phi_t_scale: config.phi_t_scale,
    };
    if !patch.is_nominal() {
        let mut undo = PatchUndo::new();
        compiled.apply_patch(&patch, &mut undo)?;
    }
    let mut ws = NewtonWorkspace::new(&compiled);
    ws.arm_faults(
        config.faults.arm(FaultSite::Solve),
        config.faults.arm(FaultSite::Step),
    );

    // Pass 1: RTN-free.
    let pass1 = compiled.run_transient(&mut ws, t0, tf, spice_config)?;
    let q_clean = pass1.voltage(&cell.circuit, "q")?;
    let qb_clean = pass1.voltage(&cell.circuit, "qb")?;
    let outcomes_clean = analyze_writes(&q_clean, pattern, &config.timing);

    // SAMURAI per transistor.
    let seeds = SeedStream::new(config.seed);
    let mut rtn_data = Vec::with_capacity(6);
    for t in Transistor::ALL {
        let element = cell.transistor(t);

        // Bias extraction: effective gate drive (relative to the
        // terminal currently acting as the source — pass transistors
        // conduct both ways) for the trap physics, signed drain
        // current for Eq (3).
        let v_gs = pass1.mosfet_gate_drive(&cell.circuit, element)?;
        let i_d = pass1.mosfet_current(&cell.circuit, element)?;
        let bias = BiasWaveforms::new(v_gs, i_d);

        // Trap profile.
        let device = trap_device(&cell, t, &config.technology);
        let mut tech = config.technology.clone();
        tech.device = device;
        tech.trap_density *= config.density_scale;
        let profile_seeds = seeds.substream(t.index() as u64);
        let mut traps = match &config.traps {
            Some(explicit) => explicit[t.index()].clone(),
            None => TrapProfiler::new(tech).sample(&mut profile_seeds.rng(0)),
        };

        // Optionally equilibrate initial occupancies at the t0 bias.
        if config.equilibrate_initial_state {
            let mut rng = profile_seeds.rng(1);
            let v0 = bias.v_gs.eval(t0);
            for trap in traps.iter_mut() {
                let model = samurai_trap::PropensityModel::new(device, *trap);
                if rng.gen::<f64>() < model.stationary_occupancy(v0) {
                    trap.initial_state = TrapState::Filled;
                }
            }
        }

        let generator = RtnGenerator::new(device, traps.clone())
            .with_seed(profile_seeds.substream(7).seed())
            .with_current_oversample(config.current_oversample)
            .with_parallelism(config.parallelism);
        let rtn = generator.generate(&bias, t0, tf)?;

        rtn_data.push(TransistorRtn {
            transistor: t,
            bias,
            traps,
            occupancies: rtn.occupancies,
            n_filled: rtn.n_filled,
            i_rtn: rtn.i_rtn,
        });
    }

    // Pass 2: inject the (scaled) RTN currents and re-simulate.
    for data in &rtn_data {
        compiled
            .set_source(
                cell.rtn_source(data.transistor),
                pwc_to_source(&data.i_rtn, config.rtn_scale),
            )
            .expect("rtn source id is valid by construction"); // lint: allow(HYG002): source id minted by the cell constructor
    }
    let pass2 = compiled.run_transient(&mut ws, t0, tf, spice_config)?;
    let q_rtn = pass2.voltage(&cell.circuit, "q")?;
    let qb_rtn = pass2.voltage(&cell.circuit, "qb")?;
    let outcomes = analyze_writes(&q_rtn, pattern, &config.timing);

    Ok(MethodologyReport {
        q_clean,
        qb_clean,
        q_rtn,
        qb_rtn,
        rtn: rtn_data,
        outcomes_clean,
        outcomes,
        solver: ws.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CycleOutcome;

    #[test]
    fn clean_pass_writes_the_paper_pattern() {
        let config = MethodologyConfig {
            // No traps at all: both passes must be identical and clean.
            traps: Some(Default::default()),
            ..MethodologyConfig::default()
        };
        let report = run_methodology(&BitPattern::paper_fig8(), &config).unwrap();
        assert!(
            report.outcomes_clean.all_clean(),
            "RTN-free pass must write cleanly: {:?} (final Q {:?})",
            report.outcomes_clean.outcomes,
            report.outcomes_clean.final_q
        );
        assert!(report.outcomes.all_clean());
        assert_eq!(report.total_events(), 0);
        assert!(!report.rtn_induced_error());
    }

    #[test]
    fn trap_activity_follows_the_stored_bit() {
        // With sampled traps, M5 (gate = Q) should be more active when
        // Q is high; M6 (gate = Q-bar) the opposite — Fig 8 b/c.
        let config = MethodologyConfig {
            seed: 3,
            density_scale: 2.0,
            ..MethodologyConfig::default()
        };
        let pattern = BitPattern::parse("111100001").unwrap();
        let report = run_methodology(&pattern, &config).unwrap();

        let timing = config.timing;
        let q_high_window = (0.2 * timing.period, 3.8 * timing.period);
        let q_low_window = (4.2 * timing.period, 7.8 * timing.period);

        let m5 = &report.rtn[Transistor::M5.index()].n_filled;
        let m6 = &report.rtn[Transistor::M6.index()].n_filled;
        let m5_high = m5.mean(q_high_window.0, q_high_window.1);
        let m5_low = m5.mean(q_low_window.0, q_low_window.1);
        let m6_high = m6.mean(q_high_window.0, q_high_window.1);
        let m6_low = m6.mean(q_low_window.0, q_low_window.1);

        // M5 sees gate high while Q is high; M6 while Q is low.
        assert!(
            m5_high >= m5_low,
            "M5 filled-trap mean should be higher while Q=1: {m5_high} vs {m5_low}"
        );
        assert!(
            m6_low >= m6_high,
            "M6 filled-trap mean should be higher while Q=0: {m6_low} vs {m6_high}"
        );
    }

    #[test]
    fn unscaled_rtn_rarely_upsets_the_cell() {
        let config = MethodologyConfig {
            seed: 1,
            rtn_scale: 1.0,
            ..MethodologyConfig::default()
        };
        let report = run_methodology(&BitPattern::parse("1010").unwrap(), &config).unwrap();
        assert!(report.outcomes_clean.all_clean());
        assert_eq!(
            report.outcomes.error_count(),
            0,
            "unscaled 90nm RTN should not flip writes: {:?}",
            report.outcomes.outcomes
        );
    }

    #[test]
    fn heavily_scaled_rtn_eventually_causes_errors() {
        // The paper needed x30 at 90 nm; our substrate differs in
        // absolute drive strengths, so scan upwards until the cell
        // breaks and check the factor is in a plausible band.
        let mut breaking_scale = None;
        for scale in [10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0] {
            let config = MethodologyConfig {
                seed: 12,
                rtn_scale: scale,
                density_scale: 2.0,
                ..MethodologyConfig::default()
            };
            let report = run_methodology(&BitPattern::paper_fig8(), &config).unwrap();
            assert!(
                report.outcomes_clean.all_clean(),
                "clean pass broke at x{scale}"
            );
            if !report.outcomes.all_clean() {
                breaking_scale = Some(scale);
                break;
            }
        }
        let scale = breaking_scale.expect("some scale must disturb the write");
        assert!(
            (10.0..=3000.0).contains(&scale),
            "breaking scale {scale} out of band"
        );
    }

    #[test]
    fn reports_are_reproducible_per_seed() {
        let config = MethodologyConfig {
            seed: 9,
            ..MethodologyConfig::default()
        };
        let a = run_methodology(&BitPattern::parse("101").unwrap(), &config).unwrap();
        let b = run_methodology(&BitPattern::parse("101").unwrap(), &config).unwrap();
        assert_eq!(a.total_events(), b.total_events());
        assert_eq!(a.outcomes.outcomes, b.outcomes.outcomes);
        for (x, y) in a.rtn.iter().zip(&b.rtn) {
            assert_eq!(x.n_filled, y.n_filled);
        }
    }

    #[test]
    fn explicit_trap_profiles_are_respected() {
        use samurai_units::{Energy, Length};
        let mut traps: [Vec<TrapParams>; 6] = Default::default();
        traps[Transistor::M1.index()] = vec![TrapParams::new(
            Length::from_nanometres(0.1),
            Energy::from_ev(0.2),
        )];
        let config = MethodologyConfig {
            traps: Some(traps),
            equilibrate_initial_state: false,
            ..MethodologyConfig::default()
        };
        let report = run_methodology(&BitPattern::parse("1010").unwrap(), &config).unwrap();
        assert_eq!(report.rtn[Transistor::M1.index()].traps.len(), 1);
        for t in [Transistor::M2, Transistor::M3, Transistor::M4] {
            assert!(report.rtn[t.index()].traps.is_empty());
        }
        // A 0.1 nm trap runs at lambda* ~ 3.7e9/s: it must actually
        // toggle during 8 ns.
        assert!(report.rtn[Transistor::M1.index()].occupancies[0].transition_count() > 0);
    }

    #[test]
    fn cycle_outcome_types_are_exposed() {
        // Compile-time surface check used by downstream crates.
        let o = CycleOutcome::Clean;
        assert_ne!(o, CycleOutcome::Error);
    }
}
