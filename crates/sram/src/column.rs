//! Generated SRAM column arrays (paper future work, items 2 and 3,
//! at circuit rather than Monte-Carlo granularity).
//!
//! A column is the natural unit above the single 6T cell: `N` cells
//! share one bit-line pair, loaded by the periphery that a real array
//! hangs off the column — precharge/equalise devices, a column mux, a
//! latch-type sense amplifier and a write driver. This module
//! generates that netlist from a [`ColumnConfig`], with every stage
//! individually optional, and exposes closed-form node/element counts
//! so tests can pin the generator's structure.
//!
//! The generated circuit reuses the exact per-cell topology of
//! [`SramCell`](crate::SramCell) — transistor order, node capacitors
//! and the six per-transistor RTN current-source hooks — so the
//! two-pass SAMURAI methodology applies unchanged: pass 1 simulates
//! the clean write, per-transistor biases are extracted from it, RTN
//! currents are generated trap-by-trap, and pass 2 re-simulates with
//! the RTN injected ([`run_column_ensemble`]).
//!
//! Columns are where the sparse MNA path earns its keep: a 64-row
//! column with full periphery is ~275 unknowns, far past
//! [`SPARSE_AUTO_THRESHOLD`](samurai_spice::SPARSE_AUTO_THRESHOLD), so
//! [`SramColumn::compile`] picks the sparse LU automatically (or
//! honours an explicit [`SolverChoice`] override for equivalence
//! testing).

use rand::Rng;

use samurai_core::checkpoint::{
    run_ensemble_checkpointed, CheckpointConfig, RunBudget, RunControls, Snapshot,
};
use samurai_core::ensemble::{
    Completion, ExecutionPolicy, FailurePolicy, FailureReport, IndexedResults, Parallelism,
};
use samurai_core::faults::{FaultPlan, FaultSite};
use samurai_core::scenario::{DeviceGeometry, ScenarioConfig, NOMINAL_TEMPERATURE};
use samurai_core::telemetry::JsonValue;
use samurai_core::{BiasWaveforms, RtnGenerator, SeedStream};
use samurai_spice::{
    Circuit, CompiledCircuit, DcConfig, ElementId, MosfetAdjust, MosfetParams, NewtonWorkspace,
    NodeId, ParamPatch, PatchUndo, SolverChoice, Source, TransientConfig,
};
use samurai_telemetry::{JobProbe, MetricsSink, Recorder};
use samurai_trap::{
    aging_vth_shift, DeviceParams, PropensityModel, Technology, TrapParams, TrapProfiler, TrapState,
};
use samurai_waveform::Pwl;

use crate::cell::cell_mosfet_params;
use crate::harness::{pwc_to_source, trap_device_from_params};
use crate::{SramCellParams, SramError};

/// Width of the precharge/equalise PMOS devices (µm-normalised, like
/// the cell widths).
const PRECHARGE_W: f64 = 2.0;
/// Width of the column-mux pass NMOS devices.
const MUX_W: f64 = 2.0;
/// Width of the sense-amplifier cross-coupled PMOS devices.
const SENSE_PMOS_W: f64 = 1.5;
/// Width of the sense-amplifier cross-coupled NMOS devices.
const SENSE_NMOS_W: f64 = 2.0;
/// Width of the sense-amplifier foot (enable) NMOS.
const SENSE_FOOT_W: f64 = 4.0;
/// Width of the write-driver pass NMOS devices.
const WRITE_W: f64 = 4.0;
/// Data-line capacitance behind the column mux, as a fraction of the
/// bit-line capacitance.
const DATALINE_CAP_RATIO: f64 = 0.25;

/// Configuration of a generated SRAM column.
#[derive(Debug, Clone)]
pub struct ColumnConfig {
    /// Number of 6T cells sharing the bit-line pair.
    pub rows: usize,
    /// Sizing and supply of every cell (per-row threshold shifts are
    /// applied on top via [`SramColumn::build_with_shifts`]).
    pub cell: SramCellParams,
    /// Capacitance of each shared bit line to ground, farads.
    pub bitline_cap: f64,
    /// Generate the precharge/equalise stage (one gate node, three
    /// PMOS devices).
    pub precharge: bool,
    /// Generate the column mux (select node, data-line pair, two pass
    /// NMOS devices).
    pub column_mux: bool,
    /// Generate the latch-type sense amplifier (enable node, tail
    /// node, five transistors). Senses the data lines when the mux is
    /// present, the bit lines otherwise.
    pub sense_amp: bool,
    /// Generate the write driver (enable and data nodes, two pass
    /// NMOS devices).
    pub write_driver: bool,
    /// The row targeted by [`SramColumn::drive_write`].
    pub selected_row: usize,
    /// Linear-solver backend for [`SramColumn::compile`].
    pub solver: SolverChoice,
}

impl Default for ColumnConfig {
    fn default() -> Self {
        Self {
            rows: 8,
            cell: SramCellParams::default(),
            bitline_cap: 4e-15,
            precharge: true,
            column_mux: true,
            sense_amp: true,
            write_driver: true,
            selected_row: 0,
            solver: SolverChoice::Auto,
        }
    }
}

impl ColumnConfig {
    /// Closed-form count of non-ground nodes the generator creates:
    /// `vdd`/`bl`/`blb` plus three per row (`wl`, `q`, `qb`) plus the
    /// enabled periphery stages.
    pub fn expected_nodes(&self) -> usize {
        3 + 3 * self.rows
            + usize::from(self.precharge)
            + 3 * usize::from(self.column_mux)
            + 2 * usize::from(self.sense_amp)
            + 3 * usize::from(self.write_driver)
    }

    /// Closed-form count of voltage sources (each adds one MNA branch
    /// unknown): supply, one word line per row, and one gate/control
    /// source per periphery stage (three for the write driver).
    pub fn expected_vsources(&self) -> usize {
        1 + self.rows
            + usize::from(self.precharge)
            + usize::from(self.column_mux)
            + usize::from(self.sense_amp)
            + 3 * usize::from(self.write_driver)
    }

    /// Closed-form count of circuit elements: the supply source and
    /// two bit-line capacitors, 15 per row (word-line source, six
    /// transistors, two node capacitors, six RTN hooks), plus the
    /// enabled periphery stages.
    pub fn expected_elements(&self) -> usize {
        3 + 15 * self.rows
            + 4 * usize::from(self.precharge)
            + 5 * usize::from(self.column_mux)
            + 6 * usize::from(self.sense_amp)
            + 5 * usize::from(self.write_driver)
    }

    /// Closed-form count of MNA unknowns: node voltages plus voltage-
    /// source branch currents.
    pub fn expected_unknowns(&self) -> usize {
        self.expected_nodes() + self.expected_vsources()
    }
}

/// Handles of one generated row: its word line, storage nodes and the
/// per-transistor element ids.
#[derive(Debug, Clone)]
pub struct ColumnRow {
    /// Word-line node of this row.
    pub wl: NodeId,
    /// Storage node `Q`.
    pub q: NodeId,
    /// Storage node `Q̄`.
    pub qb: NodeId,
    wl_source: ElementId,
    transistors: [ElementId; 6],
    rtn_sources: [ElementId; 6],
}

#[derive(Debug, Clone)]
struct MuxHandles {
    dl: NodeId,
    dlb: NodeId,
    csel_source: ElementId,
}

#[derive(Debug, Clone)]
struct SenseHandles {
    sae_source: ElementId,
}

#[derive(Debug, Clone)]
struct WriteHandles {
    we_source: ElementId,
    d_source: ElementId,
    db_source: ElementId,
}

/// A generated SRAM column: `rows` 6T cells on a shared bit-line pair
/// with optional precharge, column-mux, sense-amp and write-driver
/// periphery.
#[derive(Debug, Clone)]
pub struct SramColumn {
    /// The generated netlist.
    pub circuit: Circuit,
    /// The configuration the column was generated from.
    pub config: ColumnConfig,
    /// Supply node.
    pub vdd_node: NodeId,
    /// Shared bit line.
    pub bl: NodeId,
    /// Shared complementary bit line.
    pub blb: NodeId,
    rows: Vec<ColumnRow>,
    precharge_source: Option<ElementId>,
    mux: Option<MuxHandles>,
    sense: Option<SenseHandles>,
    write: Option<WriteHandles>,
}

impl SramColumn {
    /// Generates the column with every row at the configuration's base
    /// threshold shifts.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::InvalidConfig`] for a zero-row column, an
    /// out-of-range `selected_row` or a non-positive `bitline_cap`.
    pub fn build(config: &ColumnConfig) -> Result<Self, SramError> {
        let shifts = vec![config.cell.vth_shift; config.rows];
        Self::build_with_shifts(config, &shifts)
    }

    /// Generates the column with explicit per-row threshold-shift
    /// sextets (local-variation Monte-Carlo uses this).
    ///
    /// Since the scenario layer landed this is a thin wrapper: the
    /// nominal netlist is generated once and the shifts are applied as
    /// a circuit-level [`ParamPatch`], which is bit-identical to
    /// baking them into the builder (a threshold shift is one `+=` on
    /// the device either way).
    ///
    /// # Errors
    ///
    /// As [`SramColumn::build`], plus [`SramError::InvalidConfig`] if
    /// `shifts` does not provide exactly one sextet per row.
    pub fn build_with_shifts(
        config: &ColumnConfig,
        shifts: &[[f64; 6]],
    ) -> Result<Self, SramError> {
        if shifts.len() != config.rows {
            return Err(SramError::InvalidConfig {
                reason: "one vth-shift sextet per row is required",
            });
        }
        let mut column = Self::build_nominal(config)?;
        let mut patch = ParamPatch::nominal();
        for (r, sextet) in shifts.iter().enumerate() {
            for (t, &dv) in sextet.iter().enumerate() {
                patch
                    .devices
                    .push((column.transistor(r, t), MosfetAdjust::vth_shift(dv)));
            }
        }
        patch.apply_to_circuit(&mut column.circuit)?;
        Ok(column)
    }

    /// Generates the column netlist with every device at its nominal
    /// threshold; per-device variation is layered on afterwards as a
    /// [`ParamPatch`].
    fn build_nominal(config: &ColumnConfig) -> Result<Self, SramError> {
        if config.rows == 0 {
            return Err(SramError::InvalidConfig {
                reason: "column needs at least one row",
            });
        }
        if config.selected_row >= config.rows {
            return Err(SramError::InvalidConfig {
                reason: "selected_row must index an existing row",
            });
        }
        if !config.bitline_cap.is_finite() || config.bitline_cap <= 0.0 {
            return Err(SramError::InvalidConfig {
                reason: "bitline_cap must be positive",
            });
        }

        let p = config.cell;
        let nmos = |w: f64| MosfetParams::nmos_90nm(w);
        let pmos = |w: f64| MosfetParams::pmos_90nm(w);

        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let bl = ckt.node("bl");
        let blb = ckt.node("blb");
        ckt.vsource(vdd, Circuit::GROUND, Source::Dc(p.vdd));
        ckt.capacitor(bl, Circuit::GROUND, config.bitline_cap);
        ckt.capacitor(blb, Circuit::GROUND, config.bitline_cap);

        // Rows: the exact SramCell topology, with bl/blb shared.
        let mut rows = Vec::with_capacity(config.rows);
        for r in 0..config.rows {
            let wl = ckt.node(&format!("wl{r}"));
            let q = ckt.node(&format!("q{r}"));
            let qb = ckt.node(&format!("qb{r}"));
            let wl_source = ckt.vsource(wl, Circuit::GROUND, Source::Dc(0.0));
            let m1 = ckt.mosfet(bl, wl, q, cell_mosfet_params(&p, 0));
            let m2 = ckt.mosfet(blb, wl, qb, cell_mosfet_params(&p, 1));
            let m3 = ckt.mosfet(q, qb, vdd, cell_mosfet_params(&p, 2));
            let m4 = ckt.mosfet(qb, q, vdd, cell_mosfet_params(&p, 3));
            let m5 = ckt.mosfet(qb, q, Circuit::GROUND, cell_mosfet_params(&p, 4));
            let m6 = ckt.mosfet(q, qb, Circuit::GROUND, cell_mosfet_params(&p, 5));
            ckt.capacitor(q, Circuit::GROUND, p.node_cap);
            ckt.capacitor(qb, Circuit::GROUND, p.node_cap);
            let terminal_pairs = [
                (q, bl),
                (qb, blb),
                (vdd, q),
                (vdd, qb),
                (Circuit::GROUND, qb),
                (Circuit::GROUND, q),
            ];
            let rtn_sources = terminal_pairs.map(|(s, d)| ckt.isource(s, d, Source::Dc(0.0)));
            rows.push(ColumnRow {
                wl,
                q,
                qb,
                wl_source,
                transistors: [m1, m2, m3, m4, m5, m6],
                rtn_sources,
            });
        }

        // Precharge/equalise: active-low gate, three PMOS devices.
        let precharge_source = config.precharge.then(|| {
            let pc = ckt.node("pc");
            let src = ckt.vsource(pc, Circuit::GROUND, Source::Dc(0.0));
            ckt.mosfet(bl, pc, vdd, pmos(PRECHARGE_W));
            ckt.mosfet(blb, pc, vdd, pmos(PRECHARGE_W));
            ckt.mosfet(bl, pc, blb, pmos(PRECHARGE_W));
            src
        });

        // Column mux: NMOS pass pair onto a capacitive data-line pair.
        let mux = config.column_mux.then(|| {
            let csel = ckt.node("csel");
            let dl = ckt.node("dl");
            let dlb = ckt.node("dlb");
            let csel_source = ckt.vsource(csel, Circuit::GROUND, Source::Dc(p.vdd));
            ckt.mosfet(dl, csel, bl, nmos(MUX_W));
            ckt.mosfet(dlb, csel, blb, nmos(MUX_W));
            let dl_cap = DATALINE_CAP_RATIO * config.bitline_cap;
            ckt.capacitor(dl, Circuit::GROUND, dl_cap);
            ckt.capacitor(dlb, Circuit::GROUND, dl_cap);
            MuxHandles {
                dl,
                dlb,
                csel_source,
            }
        });

        // Latch-type sense amplifier on the data lines (bit lines when
        // no mux is generated), footed by an enable NMOS.
        let sense = config.sense_amp.then(|| {
            let (sl, sr) = match &mux {
                Some(m) => (m.dl, m.dlb),
                None => (bl, blb),
            };
            let sae = ckt.node("sae");
            let satail = ckt.node("satail");
            let sae_source = ckt.vsource(sae, Circuit::GROUND, Source::Dc(0.0));
            ckt.mosfet(sl, sr, vdd, pmos(SENSE_PMOS_W));
            ckt.mosfet(sr, sl, vdd, pmos(SENSE_PMOS_W));
            ckt.mosfet(sl, sr, satail, nmos(SENSE_NMOS_W));
            ckt.mosfet(sr, sl, satail, nmos(SENSE_NMOS_W));
            ckt.mosfet(satail, sae, Circuit::GROUND, nmos(SENSE_FOOT_W));
            SenseHandles { sae_source }
        });

        // Write driver: data sources passed onto the bit lines through
        // enable NMOS devices (the low side does the writing).
        let write = config.write_driver.then(|| {
            let we = ckt.node("we");
            let d = ckt.node("d");
            let db = ckt.node("db");
            let we_source = ckt.vsource(we, Circuit::GROUND, Source::Dc(0.0));
            let d_source = ckt.vsource(d, Circuit::GROUND, Source::Dc(0.0));
            let db_source = ckt.vsource(db, Circuit::GROUND, Source::Dc(0.0));
            ckt.mosfet(bl, we, d, nmos(WRITE_W));
            ckt.mosfet(blb, we, db, nmos(WRITE_W));
            WriteHandles {
                we_source,
                d_source,
                db_source,
            }
        });

        debug_assert_eq!(ckt.node_count(), config.expected_nodes());
        debug_assert_eq!(ckt.element_count(), config.expected_elements());
        debug_assert_eq!(ckt.unknown_count(), config.expected_unknowns());

        Ok(Self {
            circuit: ckt,
            config: config.clone(),
            vdd_node: vdd,
            bl,
            blb,
            rows,
            precharge_source,
            mux,
            sense,
            write,
        })
    }

    /// Compiles the column under the configured [`SolverChoice`].
    pub fn compile(&self) -> CompiledCircuit {
        CompiledCircuit::compile_with_solver(&self.circuit, self.config.solver)
    }

    /// Handles of row `r` (word line, storage nodes).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &ColumnRow {
        &self.rows[r]
    }

    /// Number of generated rows.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// The element id of transistor `t` (cell order `M1..M6`) of row
    /// `r` — the target for bias extraction.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `t` is out of range.
    pub fn transistor(&self, r: usize, t: usize) -> ElementId {
        self.rows[r].transistors[t]
    }

    /// The RTN current-source hook paired with transistor `t` of row
    /// `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `t` is out of range.
    pub fn rtn_source(&self, r: usize, t: usize) -> ElementId {
        self.rows[r].rtn_sources[t]
    }

    /// Drives the word line of row `r`.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::InvalidConfig`] if `r` is out of range.
    pub fn set_wl(&mut self, r: usize, source: Source) -> Result<(), SramError> {
        let row = self.rows.get(r).ok_or(SramError::InvalidConfig {
            reason: "word-line row index out of range",
        })?;
        self.circuit
            .set_source(row.wl_source, source)
            .expect("word-line source id minted by the builder"); // lint: allow(HYG002): source id minted by the builder
        Ok(())
    }

    /// Drives the (active-low) precharge gate.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::InvalidConfig`] if the precharge stage was
    /// not generated.
    pub fn set_precharge(&mut self, source: Source) -> Result<(), SramError> {
        let id = self.precharge_source.ok_or(SramError::InvalidConfig {
            reason: "precharge stage not generated",
        })?;
        self.circuit
            .set_source(id, source)
            .expect("precharge source id minted by the builder"); // lint: allow(HYG002): source id minted by the builder
        Ok(())
    }

    /// Drives the column-select gate.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::InvalidConfig`] if the column mux was not
    /// generated.
    pub fn set_mux_select(&mut self, source: Source) -> Result<(), SramError> {
        let id = self
            .mux
            .as_ref()
            .map(|m| m.csel_source)
            .ok_or(SramError::InvalidConfig {
                reason: "column mux not generated",
            })?;
        self.circuit
            .set_source(id, source)
            .expect("mux source id minted by the builder"); // lint: allow(HYG002): source id minted by the builder
        Ok(())
    }

    /// Drives the sense-amplifier enable.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::InvalidConfig`] if the sense amplifier was
    /// not generated.
    pub fn set_sense_enable(&mut self, source: Source) -> Result<(), SramError> {
        let id = self
            .sense
            .as_ref()
            .map(|s| s.sae_source)
            .ok_or(SramError::InvalidConfig {
                reason: "sense amplifier not generated",
            })?;
        self.circuit
            .set_source(id, source)
            .expect("sense source id minted by the builder"); // lint: allow(HYG002): source id minted by the builder
        Ok(())
    }

    /// Drives the write-driver enable and data inputs.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::InvalidConfig`] if the write driver was
    /// not generated.
    pub fn set_write_data(&mut self, we: Source, d: Source, db: Source) -> Result<(), SramError> {
        let w = self.write.as_ref().ok_or(SramError::InvalidConfig {
            reason: "write driver not generated",
        })?;
        let (we_id, d_id, db_id) = (w.we_source, w.d_source, w.db_source);
        for (id, src) in [(we_id, we), (d_id, d), (db_id, db)] {
            self.circuit
                .set_source(id, src)
                .expect("write-driver source id minted by the builder"); // lint: allow(HYG002): source id minted by the builder
        }
        Ok(())
    }

    /// Programs a full precharge-then-write cycle of `bit` into the
    /// configured `selected_row`: the precharge gate releases at the
    /// end of the precharge phase, the write driver and the selected
    /// word line strobe during the write phase, every other word line
    /// stays low.
    ///
    /// Requires the write driver; the precharge stage is driven when
    /// present and the sense amplifier (if any) is held disabled.
    ///
    /// # Errors
    ///
    /// Returns [`SramError::InvalidConfig`] if the write driver was
    /// not generated, or a waveform error for degenerate timings.
    pub fn drive_write(&mut self, timing: &ColumnTiming, bit: bool) -> Result<(), SramError> {
        if self.write.is_none() {
            return Err(SramError::InvalidConfig {
                reason: "drive_write needs the write driver stage",
            });
        }
        let vdd = self.config.cell.vdd;
        let e = timing.edge;
        let t_pc = timing.precharge;
        let wl_on = t_pc + 2.0 * e;
        let wl_off = wl_on + timing.write;

        if self.config.precharge {
            self.set_precharge(Source::Pwl(Pwl::step(0.0, vdd, t_pc, e)?))?;
        }
        if self.config.sense_amp {
            self.set_sense_enable(Source::Dc(0.0))?;
        }
        let (d_level, db_level) = if bit { (vdd, 0.0) } else { (0.0, vdd) };
        self.set_write_data(
            Source::Pwl(Pwl::pulse(0.0, vdd, t_pc + e, wl_off + e, e, e)?),
            Source::Dc(d_level),
            Source::Dc(db_level),
        )?;
        let selected = self.config.selected_row;
        for r in 0..self.rows.len() {
            let src = if r == selected {
                Source::Pwl(Pwl::pulse(0.0, vdd, wl_on, wl_off, e, e)?)
            } else {
                Source::Dc(0.0)
            };
            self.set_wl(r, src)?;
        }
        Ok(())
    }

    /// A DC initial guess for the pre-write state: supply, precharged
    /// bit/data lines and every `Q̄` high (all cells storing 0), the
    /// written data level on the driver inputs.
    pub fn initial_guess(&self, bit: bool) -> Vec<f64> {
        let vdd = self.config.cell.vdd;
        let mut guess = vec![0.0; self.circuit.node_count()];
        let mut set = |node: NodeId, v: f64| {
            if let Some(i) = node.unknown_index() {
                guess[i] = v;
            }
        };
        set(self.vdd_node, vdd);
        set(self.bl, vdd);
        set(self.blb, vdd);
        for row in &self.rows {
            set(row.qb, vdd);
        }
        if let Some(m) = &self.mux {
            set(m.dl, vdd);
            set(m.dlb, vdd);
        }
        if self.write.is_some() {
            // The `d`/`db` nodes sit right after `we` in creation
            // order; their sources pin them, the guess just matches.
            let d_level = if bit { vdd } else { 0.0 };
            let n = self.circuit.node_count();
            guess[n - 2] = d_level;
            guess[n - 1] = vdd - d_level;
        }
        guess
    }
}

/// Timing of the generated precharge-then-write cycle.
#[derive(Debug, Clone, Copy)]
pub struct ColumnTiming {
    /// Duration of the precharge phase, seconds.
    pub precharge: f64,
    /// Duration of the word-line strobe, seconds.
    pub write: f64,
    /// Post-strobe settling time, seconds.
    pub settle: f64,
    /// Rise/fall time of every generated edge, seconds.
    pub edge: f64,
}

impl Default for ColumnTiming {
    fn default() -> Self {
        Self {
            precharge: 0.3e-9,
            write: 1.2e-9,
            settle: 0.5e-9,
            edge: 0.05e-9,
        }
    }
}

impl ColumnTiming {
    /// Total simulated horizon of one write cycle.
    pub fn duration(&self) -> f64 {
        self.precharge + self.write + self.settle
    }
}

/// Configuration of a column-level Monte-Carlo ensemble: `members`
/// independently varied columns, each written once through the full
/// two-pass (clean → RTN-injected) methodology.
#[derive(Debug, Clone)]
pub struct ColumnEnsembleConfig {
    /// Column topology and sizing (its `solver` choice carries through
    /// to every member's compile).
    pub column: ColumnConfig,
    /// Write-cycle timing.
    pub timing: ColumnTiming,
    /// The bit written into the selected row (cells start storing 0,
    /// so `true` exercises a real flip).
    pub bit: bool,
    /// Number of column instances to simulate.
    pub members: usize,
    /// Standard deviation of the per-transistor threshold shift,
    /// volts, applied independently to every transistor of every row.
    /// Ignored when `scenario` is set.
    pub vth_sigma: f64,
    /// Unified per-member scenario distribution: mismatch (with
    /// Pelgrom area scaling), beta/geometry spread, supply and
    /// temperature corners, NBTI stress time and trap-density
    /// dispersion, expanded deterministically from the master seed.
    /// `None` routes the legacy `vth_sigma` knob through
    /// [`ScenarioConfig::fixed_vth_sigma`], reproducing the historical
    /// draw sequence bit-for-bit.
    pub scenario: Option<ScenarioConfig>,
    /// Technology whose trap statistics profile each cell transistor.
    pub technology: Technology,
    /// Multiplier on the sampled trap density (0 disables RTN).
    pub density_scale: f64,
    /// The paper's accelerated-RTN scale factor.
    pub rtn_scale: f64,
    /// Uniform refinement of the Eq (3) current between trap events.
    pub current_oversample: usize,
    /// Master random seed (threshold shifts and trap physics).
    pub seed: u64,
    /// Worker pool over members; results are bit-identical at every
    /// setting.
    pub parallelism: Parallelism,
    /// SPICE solver configuration for both transient passes.
    pub spice: TransientConfig,
    /// What to do when a member's simulation fails.
    pub failure: FailurePolicy,
    /// Deterministic fault plan for the sweep. Empty in production.
    pub faults: FaultPlan,
    /// Crash-safe snapshotting of the ensemble (see
    /// [`samurai_core::checkpoint`]). Off by default.
    pub checkpoint: CheckpointConfig,
    /// Deterministic work ceilings; an exhausted budget truncates the
    /// ensemble cleanly ([`ColumnStats::completion`]). Unlimited by
    /// default.
    pub budget: RunBudget,
}

impl Default for ColumnEnsembleConfig {
    fn default() -> Self {
        Self {
            column: ColumnConfig::default(),
            timing: ColumnTiming::default(),
            bit: true,
            members: 4,
            vth_sigma: 0.02,
            scenario: None,
            technology: Technology::node_90nm(),
            density_scale: 1.0,
            rtn_scale: 1.0,
            current_oversample: 16,
            seed: 0,
            parallelism: Parallelism::Auto,
            spice: TransientConfig::default(),
            failure: FailurePolicy::FailFast,
            faults: FaultPlan::none(),
            checkpoint: CheckpointConfig::default(),
            budget: RunBudget::default(),
        }
    }
}

/// Outcome of one ensemble member.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMemberResult {
    /// Member index.
    pub member: usize,
    /// Did the clean (RTN-free) pass write the selected row correctly?
    pub write_ok_clean: bool,
    /// Did the RTN-injected pass write the selected row correctly?
    pub write_ok: bool,
    /// Half-selected rows flipped in the clean pass (variation alone).
    pub disturbed_clean: usize,
    /// Half-selected rows flipped in the RTN pass.
    pub disturbed: usize,
    /// Total capture/emission events across all row transistors.
    pub rtn_events: usize,
    /// Final `Q` voltage of the selected row in the RTN pass.
    pub q_selected: f64,
}

impl Snapshot for ColumnMemberResult {
    fn to_snapshot(&self) -> JsonValue {
        JsonValue::Arr(vec![
            JsonValue::U64(self.member as u64),
            JsonValue::Bool(self.write_ok_clean),
            JsonValue::Bool(self.write_ok),
            JsonValue::U64(self.disturbed_clean as u64),
            JsonValue::U64(self.disturbed as u64),
            JsonValue::U64(self.rtn_events as u64),
            // IEEE-754 bit pattern: the resumed run is bit-identical.
            JsonValue::U64(self.q_selected.to_bits()),
        ])
    }

    fn from_snapshot(v: &JsonValue) -> Option<Self> {
        let JsonValue::Arr(items) = v else {
            return None;
        };
        if items.len() != 7 {
            return None;
        }
        let usize_at = |i: usize| usize::try_from(items[i].as_u64()?).ok();
        let bool_at = |i: usize| match items[i] {
            JsonValue::Bool(b) => Some(b),
            _ => None,
        };
        Some(Self {
            member: usize_at(0)?,
            write_ok_clean: bool_at(1)?,
            write_ok: bool_at(2)?,
            disturbed_clean: usize_at(3)?,
            disturbed: usize_at(4)?,
            rtn_events: usize_at(5)?,
            q_selected: f64::from_bits(items[6].as_u64()?),
        })
    }
}

/// Aggregated ensemble statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Per-member outcomes, in member order. Under `Quarantine` this
    /// holds only the members that completed.
    pub members: Vec<ColumnMemberResult>,
    /// Rows per column.
    pub rows: usize,
    /// Rescue/quarantine accounting; clean runs carry an empty report.
    pub report: FailureReport<SramError>,
    /// Whether the ensemble ran to completion or a budget/deadline
    /// truncated it at a job boundary.
    pub completion: Completion,
}

impl ColumnStats {
    /// Members whose RTN pass failed the write.
    pub fn write_failures(&self) -> usize {
        self.members.iter().filter(|m| !m.write_ok).count()
    }

    /// Total disturbed half-selected rows across the ensemble (RTN
    /// pass).
    pub fn total_disturbs(&self) -> usize {
        self.members.iter().map(|m| m.disturbed).sum()
    }

    /// Total RTN events across the ensemble.
    pub fn total_rtn_events(&self) -> usize {
        self.members.iter().map(|m| m.rtn_events).sum()
    }

    /// Members that contributed statistics.
    pub fn effective_members(&self) -> usize {
        self.members.len()
    }
}

/// Builds the trap-physics device description for one column
/// transistor (the column-generator counterpart of the cell-level
/// helper in the harness).
fn column_trap_device(ckt: &Circuit, id: ElementId, tech: &Technology) -> DeviceParams {
    let params = ckt
        .mosfet_params(id)
        .expect("row transistor ids are minted by the builder"); // lint: allow(HYG002): transistor ids minted by the builder
    trap_device_from_params(params, tech)
}

/// Geometry of every row transistor, in scenario device order
/// (`r * 6 + t`) — the Pelgrom-area input of the scenario sampler.
fn column_geometries(config: &ColumnConfig) -> Vec<DeviceGeometry> {
    let sextet = crate::cell::cell_geometries(&config.cell);
    (0..config.rows)
        .flat_map(|_| sextet.iter().copied())
        .collect()
}

/// Runs the column Monte-Carlo ensemble.
///
/// Members are sharded over the ensemble engine; each member's seeds
/// derive from the master seed by member index, so the statistics are
/// bit-identical at every worker count. Each member runs the full
/// two-pass methodology on its own column instance: a clean write, a
/// per-transistor bias extraction over every row, trap-by-trap RTN
/// generation, and an RTN-injected re-simulation on the same compiled
/// circuit and workspace.
///
/// # Errors
///
/// Propagates the per-member simulation failure with the lowest index
/// once the failure policy is exhausted.
pub fn run_column_ensemble(config: &ColumnEnsembleConfig) -> Result<ColumnStats, SramError> {
    run_column_ensemble_observed(config, &mut Recorder::noop())
}

/// [`run_column_ensemble`] reporting per-member solver effort into a
/// telemetry [`Recorder`]. The statistics are bit-identical to
/// [`run_column_ensemble`] for every worker count and sink.
///
/// # Errors
///
/// As [`run_column_ensemble`].
pub fn run_column_ensemble_observed<S: MetricsSink>(
    config: &ColumnEnsembleConfig,
    recorder: &mut Recorder<S>,
) -> Result<ColumnStats, SramError> {
    let seeds = SeedStream::new(config.seed);
    let policy = ExecutionPolicy {
        failure: config.failure,
        faults: config.faults.clone(),
        seed: config.seed,
    };
    let controls = RunControls {
        checkpoint: config.checkpoint.clone(),
        budget: config.budget,
        deadline: None,
    };
    let outcome = run_ensemble_checkpointed(
        config.members,
        config.parallelism,
        &policy,
        &controls,
        recorder,
        IndexedResults::new,
        |member, rung, probe: &mut JobProbe| -> Result<ColumnMemberResult, SramError> {
            let member_seeds = seeds.substream(member as u64);
            // One deterministic sampling surface for every variation
            // axis: the legacy fixed-sigma knob routes through the
            // same layer and reproduces its historical draw sequence
            // bit-for-bit.
            let scenario = config
                .scenario
                .unwrap_or_else(|| ScenarioConfig::fixed_vth_sigma(config.vth_sigma));
            let geometries = column_geometries(&config.column);
            let sample = scenario.sample(&mut member_seeds.rng(0), &geometries);

            // Corner-scaled supply goes into the config *before* the
            // drive waveforms are built, so the PWL drives track it.
            let mut column_config = config.column.clone();
            column_config.cell.vdd *= sample.vdd_scale;

            // Base technology under this scenario: corner temperature
            // plus dispersed trap density.
            let mut base_tech = config.technology.clone();
            base_tech.device.temperature =
                samurai_units::Temperature::from_kelvin(sample.temperature);
            base_tech.trap_density *= config.density_scale;
            base_tech.trap_density *= sample.density_scale;

            // Mismatch shifts, then trap profiles. Profiles are
            // pre-sampled from the same per-transistor substreams the
            // RTN loop always used — trap sampling reads only the
            // device geometry, never its threshold — so NBTI aging
            // and RTN generation share one trap population per
            // device: the common-root-cause correlation of paper
            // §I-B. Aging deepens the pull-up PMOS |Vt| before the
            // column is built.
            let mut shifts = vec![config.column.cell.vth_shift; config.column.rows];
            for (idx, slot) in shifts.iter_mut().flatten().enumerate() {
                *slot += sample.device(idx).vth_delta;
            }
            let mut trap_profiles: Vec<Vec<TrapParams>> =
                Vec::with_capacity(6 * config.column.rows);
            for (r, row_shifts) in shifts.iter_mut().enumerate() {
                for (t, slot) in row_shifts.iter_mut().enumerate() {
                    let adj = sample.device(r * 6 + t);
                    let mut params =
                        cell_mosfet_params(&column_config.cell, t).with_vth_shift(*slot);
                    // lint: allow(HYG004): exact-unit sentinel keeps nominal devices bit-identical
                    if adj.geom_scale != 1.0 {
                        params.width *= adj.geom_scale;
                    }
                    let device = trap_device_from_params(&params, &base_tech);
                    let mut tech = base_tech.clone();
                    tech.device = device;
                    let profile_seeds = member_seeds.substream(1 + (r * 6 + t) as u64);
                    let traps = TrapProfiler::new(tech).sample(&mut profile_seeds.rng(0));
                    if matches!(t, 2 | 3) {
                        *slot += aging_vth_shift(
                            &device,
                            &traps,
                            column_config.cell.vdd,
                            sample.stress_time,
                        );
                    }
                    trap_profiles.push(traps);
                }
            }

            let mut column = SramColumn::build_with_shifts(&column_config, &shifts)?;
            // Beta/geometry spread rides on the same patch layer the
            // threshold shifts went through (identity at nominal).
            let mut variation = ParamPatch::nominal();
            for r in 0..column.rows() {
                for t in 0..6 {
                    let adj = sample.device(r * 6 + t);
                    variation.devices.push((
                        column.transistor(r, t),
                        MosfetAdjust {
                            vth_delta: 0.0,
                            beta_scale: adj.beta_scale,
                            geom_scale: adj.geom_scale,
                        },
                    ));
                }
            }
            variation.apply_to_circuit(&mut column.circuit)?;
            column.drive_write(&config.timing, config.bit)?;

            let t0 = 0.0;
            let tf = config.timing.duration();
            let spice = if rung == 0 {
                config.spice.clone()
            } else {
                config.spice.rescue_rung(rung)
            };
            let spice = TransientConfig {
                dc: DcConfig {
                    initial_guess: Some(column.initial_guess(config.bit)),
                    ..spice.dc
                },
                ..spice
            };

            let mut compiled = column.compile();
            // Thermal corner: the temperature enters the electrical
            // model through the thermal voltage, patched on the
            // compiled workspace (identity at the nominal corner, so
            // the guard keeps the legacy path untouched).
            let thermal = ParamPatch {
                phi_t_scale: sample.temperature / NOMINAL_TEMPERATURE,
                ..ParamPatch::nominal()
            };
            if !thermal.is_nominal() {
                let mut undo = PatchUndo::new();
                compiled.apply_patch(&thermal, &mut undo)?;
            }
            let mut ws = NewtonWorkspace::new(&compiled);
            let plan = config.faults.for_job(member, rung);
            ws.arm_faults(plan.arm(FaultSite::Solve), plan.arm(FaultSite::Step));

            // Pass 1: RTN-free.
            let pass1 = compiled.run_transient(&mut ws, t0, tf, &spice)?;

            // SAMURAI per transistor of every row, biased by pass 1.
            let mut rtn_events = 0;
            for r in 0..column.rows() {
                for t in 0..6 {
                    let element = column.transistor(r, t);
                    let v_gs = pass1.mosfet_gate_drive(&column.circuit, element)?;
                    let i_d = pass1.mosfet_current(&column.circuit, element)?;
                    let bias = BiasWaveforms::new(v_gs, i_d);

                    let device = column_trap_device(&column.circuit, element, &base_tech);
                    let profile_seeds = member_seeds.substream(1 + (r * 6 + t) as u64);
                    let mut traps = std::mem::take(&mut trap_profiles[r * 6 + t]);

                    // Equilibrate initial occupancies at the t0 bias.
                    let mut eq_rng = profile_seeds.rng(1);
                    let v0 = bias.v_gs.eval(t0);
                    for trap in traps.iter_mut() {
                        let model = PropensityModel::new(device, *trap);
                        if eq_rng.gen::<f64>() < model.stationary_occupancy(v0) {
                            trap.initial_state = TrapState::Filled;
                        }
                    }

                    let generator = RtnGenerator::new(device, traps)
                        .with_seed(profile_seeds.substream(7).seed())
                        .with_current_oversample(config.current_oversample)
                        .with_parallelism(Parallelism::Fixed(1));
                    let rtn = generator.generate(&bias, t0, tf)?;
                    rtn_events += rtn.event_count();
                    compiled
                        .set_source(
                            column.rtn_source(r, t),
                            pwc_to_source(&rtn.i_rtn, config.rtn_scale),
                        )
                        .expect("rtn source id minted by the builder"); // lint: allow(HYG002): source id minted by the builder
                }
            }

            // Pass 2: RTN-injected, same compiled circuit + workspace.
            let pass2 = compiled.run_transient(&mut ws, t0, tf, &spice)?;

            let vdd = column_config.cell.vdd;
            let half = 0.5 * vdd;
            let selected = config.column.selected_row;
            let q_final =
                |pass: &samurai_spice::TransientResult, r: usize| -> Result<f64, SramError> {
                    let q = pass.voltage(&column.circuit, &format!("q{r}"))?;
                    Ok(q.eval(tf))
                };
            let target_high = config.bit;
            let written = |q: f64| (q > half) == target_high;
            let mut disturbed_clean = 0;
            let mut disturbed = 0;
            for r in 0..column.rows() {
                if r == selected {
                    continue;
                }
                // All cells start storing 0: a high Q is a disturb.
                if q_final(&pass1, r)? > half {
                    disturbed_clean += 1;
                }
                if q_final(&pass2, r)? > half {
                    disturbed += 1;
                }
            }
            let q_sel_clean = q_final(&pass1, selected)?;
            let q_sel = q_final(&pass2, selected)?;
            probe.record_solver(ws.stats());
            // Stamp the job's scenario only when one was configured:
            // the legacy journal schema stays byte-identical.
            if config.scenario.is_some() {
                probe.record_scenario(sample.stamp());
            }
            Ok(ColumnMemberResult {
                member,
                write_ok_clean: written(q_sel_clean),
                write_ok: written(q_sel),
                disturbed_clean,
                disturbed,
                rtn_events,
                q_selected: q_sel,
            })
        },
    )?;
    Ok(ColumnStats {
        members: outcome.acc.into_vec(),
        rows: config.column.rows,
        report: outcome.report,
        completion: outcome.completion,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use samurai_spice::SolverKind;

    fn configs_under_test() -> Vec<ColumnConfig> {
        let base = ColumnConfig {
            rows: 3,
            precharge: false,
            column_mux: false,
            sense_amp: false,
            write_driver: false,
            ..ColumnConfig::default()
        };
        vec![
            ColumnConfig {
                rows: 1,
                ..base.clone()
            },
            base.clone(),
            ColumnConfig {
                precharge: true,
                ..base.clone()
            },
            ColumnConfig {
                column_mux: true,
                ..base.clone()
            },
            ColumnConfig {
                sense_amp: true,
                ..base.clone()
            },
            ColumnConfig {
                write_driver: true,
                ..base.clone()
            },
            ColumnConfig {
                sense_amp: true,
                column_mux: true,
                ..base
            },
            ColumnConfig {
                rows: 4,
                ..ColumnConfig::default()
            },
        ]
    }

    #[test]
    fn generated_structure_matches_the_closed_form() {
        for config in configs_under_test() {
            let column = SramColumn::build(&config).unwrap();
            assert_eq!(
                column.circuit.node_count(),
                config.expected_nodes(),
                "node count drifted for {config:?}"
            );
            assert_eq!(
                column.circuit.element_count(),
                config.expected_elements(),
                "element count drifted for {config:?}"
            );
            assert_eq!(
                column.circuit.unknown_count(),
                config.expected_unknowns(),
                "unknown count drifted for {config:?}"
            );
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let zero = ColumnConfig {
            rows: 0,
            ..ColumnConfig::default()
        };
        assert!(matches!(
            SramColumn::build(&zero),
            Err(SramError::InvalidConfig { .. })
        ));
        let out_of_range = ColumnConfig {
            rows: 2,
            selected_row: 2,
            ..ColumnConfig::default()
        };
        assert!(matches!(
            SramColumn::build(&out_of_range),
            Err(SramError::InvalidConfig { .. })
        ));
        let config = ColumnConfig::default();
        assert!(matches!(
            SramColumn::build_with_shifts(&config, &[[0.0; 6]]),
            Err(SramError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn dcop_agrees_between_dense_and_sparse_backends() {
        let config = ColumnConfig {
            rows: 4,
            ..ColumnConfig::default()
        };
        let column = SramColumn::build(&config).unwrap();
        let dc = DcConfig {
            initial_guess: Some(column.initial_guess(true)),
            ..DcConfig::default()
        };
        let mut solutions = Vec::new();
        for choice in [SolverChoice::Dense, SolverChoice::Sparse] {
            let compiled = CompiledCircuit::compile_with_solver(&column.circuit, choice);
            let mut ws = NewtonWorkspace::new(&compiled);
            compiled.dc_operating_point(&mut ws, 0.0, &dc).unwrap();
            solutions.push(ws.solution().to_vec());
        }
        for (a, b) in solutions[0].iter().zip(&solutions[1]) {
            assert!(
                (a - b).abs() <= 1e-9,
                "dense/sparse dcop disagree: {a} vs {b}"
            );
        }
    }

    #[test]
    fn large_columns_compile_to_the_sparse_backend() {
        let config = ColumnConfig {
            rows: 16,
            ..ColumnConfig::default()
        };
        assert!(config.expected_unknowns() >= samurai_spice::SPARSE_AUTO_THRESHOLD);
        let column = SramColumn::build(&config).unwrap();
        let compiled = column.compile();
        assert_eq!(compiled.solver_kind(), SolverKind::Sparse);
        assert!(compiled.nnz() > 0);
    }

    #[test]
    fn clean_write_flips_the_selected_row_only() {
        let config = ColumnEnsembleConfig {
            column: ColumnConfig {
                rows: 2,
                ..ColumnConfig::default()
            },
            members: 1,
            vth_sigma: 0.0,
            density_scale: 0.0, // RTN off: both passes identical.
            seed: 5,
            ..ColumnEnsembleConfig::default()
        };
        let stats = run_column_ensemble(&config).unwrap();
        assert_eq!(stats.effective_members(), 1);
        let m = &stats.members[0];
        assert!(m.write_ok_clean, "clean write failed: Q = {}", m.q_selected);
        assert!(m.write_ok);
        assert_eq!(m.disturbed, 0, "half-selected row flipped");
        assert_eq!(m.rtn_events, 0);
    }

    #[test]
    fn shifted_build_is_bitwise_identical_to_inline_shifts() {
        // The ParamPatch-backed wrapper must reproduce the devices the
        // retired inline builder produced: nominal params plus one
        // unconditional `vth +=` per transistor.
        let config = ColumnConfig {
            rows: 2,
            ..ColumnConfig::default()
        };
        let shifts = [
            [0.011, -0.007, 0.003, 0.0, -0.021, 0.014],
            [-0.002, 0.009, -0.013, 0.024, 0.0, -0.006],
        ];
        let column = SramColumn::build_with_shifts(&config, &shifts).unwrap();
        for (r, sextet) in shifts.iter().enumerate() {
            for (t, &dv) in sextet.iter().enumerate() {
                let got = column
                    .circuit
                    .mosfet_params(column.transistor(r, t))
                    .unwrap();
                let want = cell_mosfet_params(&config.cell, t).with_vth_shift(dv);
                assert_eq!(got.vth.to_bits(), want.vth.to_bits(), "row {r} t {t}");
                assert_eq!(got.width.to_bits(), want.width.to_bits(), "row {r} t {t}");
            }
        }
    }

    #[test]
    fn scenario_routing_is_bit_identical_to_the_legacy_knobs() {
        let base = ColumnEnsembleConfig {
            column: ColumnConfig {
                rows: 2,
                ..ColumnConfig::default()
            },
            members: 2,
            density_scale: 0.5,
            seed: 9,
            ..ColumnEnsembleConfig::default()
        };
        // `Some(fixed_vth_sigma)` is the explicit form of the legacy
        // `vth_sigma` knob.
        let legacy = run_column_ensemble(&base).unwrap();
        let routed = run_column_ensemble(&ColumnEnsembleConfig {
            scenario: Some(ScenarioConfig::fixed_vth_sigma(base.vth_sigma)),
            ..base.clone()
        })
        .unwrap();
        assert_eq!(legacy.members, routed.members);
        // `Some(nominal)` equals no variation at all.
        let plain = run_column_ensemble(&ColumnEnsembleConfig {
            vth_sigma: 0.0,
            ..base.clone()
        })
        .unwrap();
        let nominal = run_column_ensemble(&ColumnEnsembleConfig {
            vth_sigma: 0.0,
            scenario: Some(ScenarioConfig::nominal()),
            ..base
        })
        .unwrap();
        assert_eq!(plain.members, nominal.members);
    }

    #[test]
    fn ensemble_is_worker_count_independent() {
        let base = ColumnEnsembleConfig {
            column: ColumnConfig {
                rows: 2,
                ..ColumnConfig::default()
            },
            members: 3,
            density_scale: 0.5,
            seed: 9,
            ..ColumnEnsembleConfig::default()
        };
        let runs: Vec<ColumnStats> = [1, 2, 8]
            .into_iter()
            .map(|w| {
                let config = ColumnEnsembleConfig {
                    parallelism: Parallelism::Fixed(w),
                    ..base.clone()
                };
                run_column_ensemble(&config).unwrap()
            })
            .collect();
        assert_eq!(runs[0].members, runs[1].members, "1 vs 2 workers drifted");
        assert_eq!(runs[0].members, runs[2].members, "1 vs 8 workers drifted");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use samurai_spice::SolverKind;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Every generated column matches the closed-form structure
        /// counts, compiles without panicking under both backends, and
        /// has a solvable DC operating point (a structurally sound,
        /// connected netlist).
        #[test]
        fn generated_columns_are_well_formed(
            rows in 1usize..5,
            stages in 0usize..16,
            selected in any::<usize>(),
        ) {
            let config = ColumnConfig {
                rows,
                precharge: stages & 1 != 0,
                column_mux: stages & 2 != 0,
                sense_amp: stages & 4 != 0,
                write_driver: stages & 8 != 0,
                selected_row: selected % rows,
                ..ColumnConfig::default()
            };
            let column = SramColumn::build(&config).unwrap();
            prop_assert_eq!(column.circuit.node_count(), config.expected_nodes());
            prop_assert_eq!(column.circuit.element_count(), config.expected_elements());
            prop_assert_eq!(column.circuit.unknown_count(), config.expected_unknowns());

            let dc = DcConfig {
                initial_guess: Some(column.initial_guess(true)),
                ..DcConfig::default()
            };
            for choice in [SolverChoice::Dense, SolverChoice::Sparse] {
                let compiled = CompiledCircuit::compile_with_solver(&column.circuit, choice);
                let expected = match choice {
                    SolverChoice::Dense => SolverKind::Dense,
                    _ => SolverKind::Sparse,
                };
                prop_assert_eq!(compiled.solver_kind(), expected);
                let mut ws = NewtonWorkspace::new(&compiled);
                compiled.dc_operating_point(&mut ws, 0.0, &dc).unwrap();
            }
        }
    }
}
