//! Static noise margin (SNM) of the 6T cell — butterfly curves and the
//! largest-square criterion.
//!
//! The Fig 2 margin story quantifies RTN as an equivalent `V_T` shift;
//! this module closes the loop by computing the *actual* SNM of the
//! cell from its voltage transfer curves:
//!
//! * **hold SNM** — word line low, the cross-coupled pair on its own;
//! * **read SNM** — word line high with both bit lines precharged to
//!   `V_dd`, the classic worst case (the pass transistor fights the
//!   pull-down at the `0` node);
//! * RTN enters as a threshold shift on a chosen transistor, so the
//!   SNM degradation of a trapped charge can be read off directly.
//!
//! SNM is computed as the side of the largest square that fits inside
//! each butterfly lobe (the standard 45°-rotation construction), taking
//! the smaller lobe.

use samurai_spice::{Circuit, CompiledCircuit, DcConfig, MosfetParams, NewtonWorkspace, Source};

use crate::{SramCellParams, SramError, Transistor};

/// Which SNM scenario to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnmMode {
    /// Word line low: storage loop only.
    Hold,
    /// Word line high, both bit lines at `V_dd` (read condition).
    Read,
}

/// A voltage transfer curve: `out[i]` is the inverter output at
/// `input[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferCurve {
    /// Swept input voltages.
    pub input: Vec<f64>,
    /// Corresponding outputs.
    pub output: Vec<f64>,
}

impl TransferCurve {
    /// Linear interpolation of the output at `x` (clamped).
    // lint: hot-fn
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.input.len();
        if x <= self.input[0] {
            return self.output[0];
        }
        if x >= self.input[n - 1] {
            return self.output[n - 1];
        }
        let hi = self.input.partition_point(|&v| v <= x);
        let (x0, x1) = (self.input[hi - 1], self.input[hi]);
        let (y0, y1) = (self.output[hi - 1], self.output[hi]);
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }
}

/// The butterfly plot and its noise margins.
#[derive(Debug, Clone, PartialEq)]
pub struct SnmResult {
    /// VTC of the `Q → Q̄` inverter (input on `Q`).
    pub vtc_forward: TransferCurve,
    /// VTC of the `Q̄ → Q` inverter (input on `Q̄`).
    pub vtc_reverse: TransferCurve,
    /// Largest-square side of the upper-left lobe, volts.
    pub lobe_high: f64,
    /// Largest-square side of the lower-right lobe, volts.
    pub lobe_low: f64,
}

impl SnmResult {
    /// The cell's SNM: the smaller lobe.
    pub fn snm(&self) -> f64 {
        self.lobe_high.min(self.lobe_low)
    }

    /// Lobe asymmetry (0 for a perfectly balanced cell).
    pub fn asymmetry(&self) -> f64 {
        (self.lobe_high - self.lobe_low).abs()
    }
}

/// Builds one half-cell (an inverter, optionally loaded by its pass
/// transistor in read mode) and sweeps its VTC.
///
/// The half-cell corresponding to the forward curve drives `Q̄` from
/// `Q` through M4 (PMOS pull-up) and M5 (NMOS pull-down); the reverse
/// one drives `Q` through M3/M6. Threshold shifts from
/// `params.vth_shift` apply to the matching transistors.
fn sweep_vtc(
    params: &SramCellParams,
    mode: SnmMode,
    forward: bool,
    points: usize,
) -> Result<TransferCurve, SramError> {
    let vdd_v = params.vdd;
    let shift = params.vth_shift;
    // Transistor roles per direction (see `cell.rs` for the naming).
    let (pu_shift, pd_shift, pass_shift) = if forward {
        (
            shift[Transistor::M4.index()],
            shift[Transistor::M5.index()],
            shift[Transistor::M2.index()],
        )
    } else {
        (
            shift[Transistor::M3.index()],
            shift[Transistor::M6.index()],
            shift[Transistor::M1.index()],
        )
    };

    // Build the half-cell once; the sweep rewrites only the input
    // source on the compiled circuit and warm-starts each point from
    // the previous solution in one shared workspace.
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    ckt.vsource(vdd, Circuit::GROUND, Source::Dc(vdd_v));
    let a = ckt.node("in");
    let vin_src = ckt.vsource(a, Circuit::GROUND, Source::Dc(0.0));
    let y = ckt.node("out");
    ckt.mosfet(
        y,
        a,
        Circuit::GROUND,
        MosfetParams::nmos_90nm(params.pulldown_w).with_vth_shift(pd_shift),
    );
    ckt.mosfet(
        y,
        a,
        vdd,
        MosfetParams::pmos_90nm(params.pullup_w).with_vth_shift(pu_shift),
    );
    if mode == SnmMode::Read {
        // Pass transistor to a V_dd-precharged bit line, gate high.
        let bl = ckt.node("bl");
        ckt.vsource(bl, Circuit::GROUND, Source::Dc(vdd_v));
        let wl = ckt.node("wl");
        ckt.vsource(wl, Circuit::GROUND, Source::Dc(vdd_v));
        ckt.mosfet(
            bl,
            wl,
            y,
            MosfetParams::nmos_90nm(params.pass_w).with_vth_shift(pass_shift),
        );
    }
    let out_idx = ckt
        .find_node("out")?
        .unknown_index()
        .expect("out is not ground"); // lint: allow(HYG002): `out` was created above and is never ground

    let mut compiled = CompiledCircuit::compile(&ckt);
    let mut ws = NewtonWorkspace::new(&compiled);
    let mut input = Vec::with_capacity(points);
    let mut output = Vec::with_capacity(points);
    let mut guess: Option<Vec<f64>> = None;
    for i in 0..points {
        let vin = vdd_v * i as f64 / (points - 1) as f64;
        compiled.set_source(vin_src, Source::Dc(vin))?;
        let config = DcConfig {
            initial_guess: guess.clone(),
            ..DcConfig::default()
        };
        compiled.dc_operating_point(&mut ws, 0.0, &config)?;
        let x = ws.solution();
        let vy = x[out_idx];
        // Warm-start the next sweep point for monotone convergence.
        guess = Some(x[..ckt.node_count()].to_vec());
        input.push(vin);
        output.push(vy);
    }
    Ok(TransferCurve { input, output })
}

/// Computes the butterfly curves and SNM of a cell.
///
/// # Errors
///
/// Propagates DC convergence failures.
///
/// # Panics
///
/// Panics if `points < 8`.
pub fn compute_snm(
    params: &SramCellParams,
    mode: SnmMode,
    points: usize,
) -> Result<SnmResult, SramError> {
    assert!(points >= 8, "need a reasonable sweep resolution");
    let vtc_forward = sweep_vtc(params, mode, true, points)?;
    let vtc_reverse = sweep_vtc(params, mode, false, points)?;

    // The butterfly consists of A(x) = forward VTC and B(x) = inverse
    // of the reverse VTC (both monotone decreasing, crossing three
    // times). The inverse exists because a static CMOS VTC is strictly
    // decreasing; numerically we build it by swapping the columns of
    // the reverse curve and re-sorting by the new abscissa.
    let a_curve = vtc_forward.clone();
    let mut inv: Vec<(f64, f64)> = vtc_reverse
        .input
        .iter()
        .zip(&vtc_reverse.output)
        .map(|(&x, &y)| (y, x))
        .collect();
    inv.sort_by(|p, q| p.0.total_cmp(&q.0));
    inv.dedup_by(|p, q| (p.0 - q.0).abs() < 1e-12);
    let b_curve = TransferCurve {
        input: inv.iter().map(|p| p.0).collect(),
        output: inv.iter().map(|p| p.1).collect(),
    };

    // Largest axis-aligned square between an upper curve U and a lower
    // curve L (both decreasing): the square [x, x+s] x [y, y+s] fits
    // iff  U(x+s) - L(x) >= s  (U's minimum over the span is at x+s,
    // L's maximum at x). For each anchor x bisect the largest s.
    let largest_square = |upper: &TransferCurve, lower: &TransferCurve| -> f64 {
        let vdd = params.vdd;
        let grid = 4 * points;
        let mut best = 0.0f64;
        for i in 0..=grid {
            let x = vdd * i as f64 / grid as f64;
            let fits = |s: f64| upper.eval(x + s) - lower.eval(x) >= s;
            if !fits(1e-6) {
                continue;
            }
            let (mut lo, mut hi) = (0.0, vdd);
            for _ in 0..40 {
                let mid = 0.5 * (lo + hi);
                if fits(mid) {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            best = best.max(lo);
        }
        best
    };

    // Upper-left lobe: A above B. Lower-right lobe: B above A.
    let lobe_high = largest_square(&a_curve, &b_curve);
    let lobe_low = largest_square(&b_curve, &a_curve);
    Ok(SnmResult {
        vtc_forward,
        vtc_reverse,
        lobe_high,
        lobe_low,
    })
}

/// SNM degradation caused by `n_filled` trapped charges on the given
/// transistor, each shifting its threshold by `dvt_per_trap` — the
/// charge-sheet link between the RTN simulation and the margin model.
///
/// Returns `(snm_clean, snm_with_rtn)`.
///
/// # Errors
///
/// Propagates DC convergence failures.
pub fn snm_under_rtn(
    params: &SramCellParams,
    mode: SnmMode,
    victim: Transistor,
    n_filled: f64,
    dvt_per_trap: f64,
) -> Result<(f64, f64), SramError> {
    let clean = compute_snm(params, mode, 48)?.snm();
    let mut shifted = *params;
    shifted.vth_shift[victim.index()] += n_filled * dvt_per_trap;
    let with_rtn = compute_snm(&shifted, mode, 48)?.snm();
    Ok((clean, with_rtn))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vtc_is_monotone_and_rail_to_rail_in_hold() {
        let params = SramCellParams::default();
        let vtc = sweep_vtc(&params, SnmMode::Hold, true, 32).unwrap();
        assert!(vtc.output[0] > 0.95 * params.vdd, "output high at input 0");
        assert!(
            vtc.output[vtc.output.len() - 1] < 0.05 * params.vdd,
            "output low at input vdd"
        );
        for w in vtc.output.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "VTC must fall monotonically");
        }
        // Interpolation sanity.
        assert!(vtc.eval(-1.0) == vtc.output[0]);
        assert!(vtc.eval(10.0) == *vtc.output.last().unwrap());
    }

    #[test]
    fn hold_snm_is_healthy_and_balanced() {
        let params = SramCellParams::default();
        let result = compute_snm(&params, SnmMode::Hold, 48).unwrap();
        let snm = result.snm();
        // A balanced 1.1 V cell typically holds 0.25-0.5 V of SNM.
        assert!(snm > 0.2 && snm < 0.6, "hold SNM {snm}");
        assert!(
            result.asymmetry() < 0.02,
            "symmetric cell must have equal lobes: {} vs {}",
            result.lobe_high,
            result.lobe_low
        );
    }

    #[test]
    fn read_snm_is_smaller_than_hold_snm() {
        let params = SramCellParams::default();
        let hold = compute_snm(&params, SnmMode::Hold, 48).unwrap().snm();
        let read = compute_snm(&params, SnmMode::Read, 48).unwrap().snm();
        assert!(
            read < hold,
            "the pass transistor degrades the read margin: read {read} vs hold {hold}"
        );
        assert!(
            read > 0.02,
            "a read-stable sizing keeps a positive margin: {read}"
        );
    }

    #[test]
    fn vth_mismatch_degrades_and_unbalances_the_snm() {
        let mut params = SramCellParams::default();
        let balanced = compute_snm(&params, SnmMode::Hold, 48).unwrap();
        params.vth_shift[Transistor::M5.index()] = 0.1;
        let skewed = compute_snm(&params, SnmMode::Hold, 48).unwrap();
        assert!(
            skewed.snm() < balanced.snm(),
            "{} vs {}",
            skewed.snm(),
            balanced.snm()
        );
        assert!(skewed.asymmetry() > balanced.asymmetry());
    }

    #[test]
    fn rtn_charges_shrink_the_read_margin() {
        let params = SramCellParams::default();
        // Three trapped charges at 10 mV each on the critical pull-down.
        let (clean, with_rtn) =
            snm_under_rtn(&params, SnmMode::Read, Transistor::M5, 3.0, 0.010).unwrap();
        assert!(
            with_rtn < clean,
            "RTN must cost margin: {with_rtn} vs {clean}"
        );
        assert!(
            clean - with_rtn < 0.1,
            "but a few traps cost tens of mV, not the cell"
        );
    }
}
