//! Error type for SRAM analysis.

use core::fmt;

use samurai_core::faults::InjectedFault;
use samurai_core::telemetry::JsonValue;
use samurai_core::{CheckpointCodec, CoreError, JobPanic};
use samurai_spice::SpiceError;
use samurai_waveform::WaveformError;

/// Errors from the SRAM methodology and its extensions.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SramError {
    /// The circuit simulator failed.
    Spice(SpiceError),
    /// RTN trace generation failed.
    Rtn(CoreError),
    /// Waveform construction failed (usually a timing misconfiguration).
    Waveform(WaveformError),
    /// A configuration value is out of its valid domain.
    InvalidConfig {
        /// Explanation of the problem.
        reason: &'static str,
    },
}

impl fmt::Display for SramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Spice(e) => write!(f, "circuit simulation failed: {e}"),
            Self::Rtn(e) => write!(f, "rtn generation failed: {e}"),
            Self::Waveform(e) => write!(f, "waveform construction failed: {e}"),
            Self::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl std::error::Error for SramError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Spice(e) => Some(e),
            Self::Rtn(e) => Some(e),
            Self::Waveform(e) => Some(e),
            Self::InvalidConfig { .. } => None,
        }
    }
}

impl From<SpiceError> for SramError {
    fn from(e: SpiceError) -> Self {
        Self::Spice(e)
    }
}

impl From<CoreError> for SramError {
    fn from(e: CoreError) -> Self {
        Self::Rtn(e)
    }
}

impl From<WaveformError> for SramError {
    fn from(e: WaveformError) -> Self {
        Self::Waveform(e)
    }
}

impl From<InjectedFault> for SramError {
    fn from(e: InjectedFault) -> Self {
        Self::Rtn(CoreError::Injected(e))
    }
}

impl From<JobPanic> for SramError {
    fn from(p: JobPanic) -> Self {
        Self::Rtn(CoreError::from(p))
    }
}

/// Serialises a [`SpiceError`] for a checkpoint snapshot. A free
/// function (not a [`CheckpointCodec`] impl) because both the trait
/// and the type are foreign here; [`SramError`]'s own codec is the
/// only caller. Floats travel as IEEE-754 bit patterns so the
/// round-trip is `Debug`-exact.
fn encode_spice_error(e: &SpiceError) -> JsonValue {
    match e {
        SpiceError::SingularMatrix { col } => JsonValue::obj(vec![
            ("v", JsonValue::Str("singular_matrix".to_owned())),
            ("col", JsonValue::U64(*col as u64)),
        ]),
        SpiceError::NonConvergence {
            time,
            iterations,
            max_delta,
            max_residual,
        } => JsonValue::obj(vec![
            ("v", JsonValue::Str("non_convergence".to_owned())),
            ("time", JsonValue::U64(time.to_bits())),
            ("iterations", JsonValue::U64(*iterations as u64)),
            ("max_delta", JsonValue::U64(max_delta.to_bits())),
            ("max_residual", JsonValue::U64(max_residual.to_bits())),
        ]),
        SpiceError::StepUnderflow {
            time,
            dt,
            rescue_rungs,
        } => JsonValue::obj(vec![
            ("v", JsonValue::Str("step_underflow".to_owned())),
            ("time", JsonValue::U64(time.to_bits())),
            ("dt", JsonValue::U64(dt.to_bits())),
            ("rescue_rungs", JsonValue::U64(*rescue_rungs as u64)),
        ]),
        SpiceError::NumericalBreakdown { time, iteration } => JsonValue::obj(vec![
            ("v", JsonValue::Str("numerical_breakdown".to_owned())),
            ("time", JsonValue::U64(time.to_bits())),
            ("iteration", JsonValue::U64(*iteration as u64)),
        ]),
        SpiceError::UnknownNode { name } => JsonValue::obj(vec![
            ("v", JsonValue::Str("unknown_node".to_owned())),
            ("name", JsonValue::Str(name.clone())),
        ]),
        SpiceError::InvalidElement { reason } => JsonValue::obj(vec![
            ("v", JsonValue::Str("invalid_element".to_owned())),
            ("reason", JsonValue::Str((*reason).to_owned())),
        ]),
        SpiceError::InvalidParameter { name, value } => JsonValue::obj(vec![
            ("v", JsonValue::Str("invalid_parameter".to_owned())),
            ("name", JsonValue::Str((*name).to_owned())),
            ("value", JsonValue::U64(value.to_bits())),
        ]),
        SpiceError::Waveform(e) => JsonValue::obj(vec![
            ("v", JsonValue::Str("waveform".to_owned())),
            ("e", e.encode()),
        ]),
        // `SpiceError` is non-exhaustive; an unknown future variant
        // decodes to `None` and the checkpoint loader cold-starts.
        other => JsonValue::obj(vec![
            ("v", JsonValue::Str("unknown".to_owned())),
            ("debug", JsonValue::Str(format!("{other:?}"))),
        ]),
    }
}

/// Rebuilds a [`SpiceError`] written by [`encode_spice_error`].
/// `&'static str` diagnostics are restored by leaking the decoded
/// string — bounded by the (tiny) quarantine list of a resumed run.
fn decode_spice_error(v: &JsonValue) -> Option<SpiceError> {
    let f64_field = |key: &str| Some(f64::from_bits(v.get(key)?.as_u64()?));
    let usize_field = |key: &str| usize::try_from(v.get(key)?.as_u64().unwrap_or(u64::MAX)).ok();
    let leaked = |key: &str| -> Option<&'static str> {
        Some(Box::leak(v.get(key)?.as_str()?.to_owned().into_boxed_str()))
    };
    Some(match v.get("v")?.as_str()? {
        "singular_matrix" => SpiceError::SingularMatrix {
            col: usize_field("col")?,
        },
        "non_convergence" => SpiceError::NonConvergence {
            time: f64_field("time")?,
            iterations: usize_field("iterations")?,
            max_delta: f64_field("max_delta")?,
            max_residual: f64_field("max_residual")?,
        },
        "step_underflow" => SpiceError::StepUnderflow {
            time: f64_field("time")?,
            dt: f64_field("dt")?,
            rescue_rungs: usize_field("rescue_rungs")?,
        },
        "numerical_breakdown" => SpiceError::NumericalBreakdown {
            time: f64_field("time")?,
            iteration: usize_field("iteration")?,
        },
        "unknown_node" => SpiceError::UnknownNode {
            name: v.get("name")?.as_str()?.to_owned(),
        },
        "invalid_element" => SpiceError::InvalidElement {
            reason: leaked("reason")?,
        },
        "invalid_parameter" => SpiceError::InvalidParameter {
            name: leaked("name")?,
            value: f64_field("value")?,
        },
        "waveform" => SpiceError::Waveform(WaveformError::decode(v.get("e")?)?),
        _ => return None,
    })
}

impl CheckpointCodec for SramError {
    fn encode(&self) -> JsonValue {
        match self {
            Self::Spice(e) => JsonValue::obj(vec![
                ("v", JsonValue::Str("spice".to_owned())),
                ("e", encode_spice_error(e)),
            ]),
            Self::Rtn(e) => JsonValue::obj(vec![
                ("v", JsonValue::Str("rtn".to_owned())),
                ("e", e.encode()),
            ]),
            Self::Waveform(e) => JsonValue::obj(vec![
                ("v", JsonValue::Str("waveform".to_owned())),
                ("e", e.encode()),
            ]),
            Self::InvalidConfig { reason } => JsonValue::obj(vec![
                ("v", JsonValue::Str("invalid_config".to_owned())),
                ("reason", JsonValue::Str((*reason).to_owned())),
            ]),
        }
    }

    fn decode(v: &JsonValue) -> Option<Self> {
        Some(match v.get("v")?.as_str()? {
            "spice" => Self::Spice(decode_spice_error(v.get("e")?)?),
            "rtn" => Self::Rtn(CoreError::decode(v.get("e")?)?),
            "waveform" => Self::Waveform(WaveformError::decode(v.get("e")?)?),
            "invalid_config" => Self::InvalidConfig {
                reason: Box::leak(v.get("reason")?.as_str()?.to_owned().into_boxed_str()),
            },
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn conversions_and_sources() {
        let e: SramError = SpiceError::SingularMatrix { col: 1 }.into();
        assert!(e.to_string().contains("singular"));
        assert!(e.source().is_some());
        let e: SramError = CoreError::EmptyHorizon { t0: 0.0, tf: 0.0 }.into();
        assert!(matches!(e, SramError::Rtn(_)));
        let e = SramError::InvalidConfig { reason: "bad" };
        assert!(e.source().is_none());
    }

    #[test]
    fn checkpoint_codec_round_trips_debug_exactly() {
        let errors = [
            SramError::Spice(SpiceError::SingularMatrix { col: 4 }),
            SramError::Spice(SpiceError::NonConvergence {
                time: 1.5e-9,
                iterations: 40,
                max_delta: 0.25,
                max_residual: 1e-3,
            }),
            SramError::Spice(SpiceError::StepUnderflow {
                time: 2e-9,
                dt: 1e-18,
                rescue_rungs: 3,
            }),
            SramError::Spice(SpiceError::NumericalBreakdown {
                time: f64::NAN,
                iteration: 7,
            }),
            SramError::Spice(SpiceError::UnknownNode {
                name: "blx".to_owned(),
            }),
            SramError::Spice(SpiceError::InvalidElement { reason: "loop" }),
            SramError::Spice(SpiceError::InvalidParameter {
                name: "w",
                value: -1.0,
            }),
            SramError::Spice(SpiceError::Waveform(WaveformError::Empty)),
            SramError::Rtn(CoreError::Panicked {
                message: "poisoned sample".to_owned(),
            }),
            SramError::Rtn(CoreError::Injected(InjectedFault {
                kind: samurai_core::FaultKind::TimestepFloor,
                site: samurai_core::FaultSite::Job,
            })),
            SramError::Waveform(WaveformError::NonFinite { index: 2 }),
            SramError::InvalidConfig { reason: "bad" },
        ];
        for e in errors {
            let decoded = SramError::decode(&e.encode()).expect("decodes");
            // Debug-exact round-trip is what checkpoint/resume journal
            // byte-identity rests on (NaN prints as NaN either way).
            assert_eq!(format!("{decoded:?}"), format!("{e:?}"));
        }
    }

    #[test]
    fn a_job_panic_lands_in_the_rtn_arm() {
        let e = SramError::from(JobPanic {
            message: "boom".to_owned(),
        });
        assert!(matches!(
            e,
            SramError::Rtn(CoreError::Panicked { ref message }) if message == "boom"
        ));
    }
}
