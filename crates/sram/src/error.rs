//! Error type for SRAM analysis.

use core::fmt;

use samurai_core::faults::InjectedFault;
use samurai_core::CoreError;
use samurai_spice::SpiceError;
use samurai_waveform::WaveformError;

/// Errors from the SRAM methodology and its extensions.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SramError {
    /// The circuit simulator failed.
    Spice(SpiceError),
    /// RTN trace generation failed.
    Rtn(CoreError),
    /// Waveform construction failed (usually a timing misconfiguration).
    Waveform(WaveformError),
    /// A configuration value is out of its valid domain.
    InvalidConfig {
        /// Explanation of the problem.
        reason: &'static str,
    },
}

impl fmt::Display for SramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Spice(e) => write!(f, "circuit simulation failed: {e}"),
            Self::Rtn(e) => write!(f, "rtn generation failed: {e}"),
            Self::Waveform(e) => write!(f, "waveform construction failed: {e}"),
            Self::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
        }
    }
}

impl std::error::Error for SramError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Spice(e) => Some(e),
            Self::Rtn(e) => Some(e),
            Self::Waveform(e) => Some(e),
            Self::InvalidConfig { .. } => None,
        }
    }
}

impl From<SpiceError> for SramError {
    fn from(e: SpiceError) -> Self {
        Self::Spice(e)
    }
}

impl From<CoreError> for SramError {
    fn from(e: CoreError) -> Self {
        Self::Rtn(e)
    }
}

impl From<WaveformError> for SramError {
    fn from(e: WaveformError) -> Self {
        Self::Waveform(e)
    }
}

impl From<InjectedFault> for SramError {
    fn from(e: InjectedFault) -> Self {
        Self::Rtn(CoreError::Injected(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn conversions_and_sources() {
        let e: SramError = SpiceError::SingularMatrix { col: 1 }.into();
        assert!(e.to_string().contains("singular"));
        assert!(e.source().is_some());
        let e: SramError = CoreError::EmptyHorizon { t0: 0.0, tf: 0.0 }.into();
        assert!(matches!(e, SramError::Rtn(_)));
        let e = SramError::InvalidConfig { reason: "bad" };
        assert!(e.source().is_none());
    }
}
