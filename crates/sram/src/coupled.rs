//! Bi-directionally coupled RTN + circuit simulation (paper future
//! work, item 1).
//!
//! The two-pass methodology pre-computes the bias waveforms, so RTN
//! cannot feed back into the propensities it is generated from. Here
//! the loop is closed: the circuit advances one backward-Euler step at
//! a time, and between steps each trap's Markov chain is propagated
//! under the *live* gate bias, the filled-trap counts converted to
//! Eq (3) currents and written back into the netlist. Within one step
//! the rates are constant, so the trap propagation uses exact
//! exponential jump sampling (no thinning needed at this granularity).

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use samurai_core::{exp_rand, SeedStream};
use samurai_trap::{PropensityModel, TrapParams, TrapState};
use samurai_waveform::{BitPattern, Pwc, Pwl};

use samurai_spice::{DcConfig, MosType, Source, TransientStepper};

use crate::harness::MethodologyConfig;
use crate::{
    analyze_writes, build_write_waveforms, SramCell, SramError, Transistor, WriteAnalysis,
};

/// Configuration of the coupled simulation.
#[derive(Debug, Clone)]
pub struct CoupledConfig {
    /// The shared methodology settings (cell, timing, technology, trap
    /// profiles, scaling, seed).
    pub base: MethodologyConfig,
    /// Outer co-simulation step (circuit step = trap update interval).
    pub dt: f64,
}

impl Default for CoupledConfig {
    fn default() -> Self {
        Self {
            base: MethodologyConfig::default(),
            dt: 5e-12,
        }
    }
}

/// Result of a coupled run.
#[derive(Debug, Clone)]
pub struct CoupledReport {
    /// The stored-bit waveform.
    pub q: Pwl,
    /// The complement waveform.
    pub qb: Pwl,
    /// Filled-trap staircases per transistor (sampled at the outer
    /// step), indexed by [`Transistor::index`].
    pub n_filled: Vec<Pwc>,
    /// Write classification of `q`.
    pub outcomes: WriteAnalysis,
}

struct TrapRuntime {
    model: PropensityModel,
    state: TrapState,
}

/// Propagates one trap over `[0, dt]` with rates frozen at the live
/// bias (exact for constant rates).
fn propagate<R: Rng + ?Sized>(trap: &mut TrapRuntime, v_gs: f64, dt: f64, rng: &mut R) {
    let (lc, le) = trap.model.propensities(v_gs);
    let mut remaining = dt;
    loop {
        let rate = match trap.state {
            TrapState::Filled => le,
            TrapState::Empty => lc,
        };
        if rate <= 0.0 {
            return;
        }
        let wait = exp_rand(rng, 1.0 / rate);
        if wait > remaining {
            return;
        }
        remaining -= wait;
        trap.state = trap.state.toggled();
    }
}

/// Runs the bi-directionally coupled simulation for one bit pattern.
///
/// # Errors
///
/// Propagates circuit-stepping failures.
pub fn run_coupled(
    pattern: &BitPattern,
    config: &CoupledConfig,
) -> Result<CoupledReport, SramError> {
    let base = &config.base;
    let mut cell = SramCell::new(base.cell);
    let waves = build_write_waveforms(pattern, &base.timing)?;
    cell.set_wl(Source::Pwl(waves.wl));
    cell.set_bl(Source::Pwl(waves.bl));
    cell.set_blb(Source::Pwl(waves.blb));

    // Per-transistor trap populations (same sampling scheme as the
    // two-pass harness so results are comparable).
    let seeds = SeedStream::new(base.seed);
    let mut runtimes: Vec<Vec<TrapRuntime>> = Vec::with_capacity(6);
    let mut rngs: Vec<ChaCha8Rng> = Vec::with_capacity(6);
    for t in Transistor::ALL {
        let device = crate::harness::trap_device(&cell, t, &base.technology);
        let mut tech = base.technology.clone();
        tech.device = device;
        tech.trap_density *= base.density_scale;
        let profile_seeds = seeds.substream(t.index() as u64);
        let traps: Vec<TrapParams> = match &base.traps {
            Some(explicit) => explicit[t.index()].clone(),
            None => samurai_trap::TrapProfiler::new(tech).sample(&mut profile_seeds.rng(0)),
        };
        runtimes.push(
            traps
                .into_iter()
                .map(|p| TrapRuntime {
                    state: p.initial_state,
                    model: PropensityModel::new(device, p),
                })
                .collect(),
        );
        rngs.push(profile_seeds.substream(7).rng(0));
    }

    let tf = base.timing.duration(pattern.len());
    let mut stepper = TransientStepper::new(&cell.circuit, 0.0, &DcConfig::default())?;

    // Draw initial trap states from the stationary distribution at the
    // DC operating point (mirrors the two-pass harness).
    if base.equilibrate_initial_state {
        for tr in Transistor::ALL {
            let element = cell.transistor(tr);
            let (d, g, s) = cell.circuit.mosfet_nodes(element)?;
            let params = *cell.circuit.mosfet_params(element)?;
            let (vd, vg, vs) = (stepper.voltage(d), stepper.voltage(g), stepper.voltage(s));
            let v0 = match params.mos_type {
                MosType::Nmos => vg - vd.min(vs),
                MosType::Pmos => vd.max(vs) - vg,
            };
            let rng = &mut rngs[tr.index()];
            for trap in runtimes[tr.index()].iter_mut() {
                if rng.gen::<f64>() < trap.model.stationary_occupancy(v0) {
                    trap.state = TrapState::Filled;
                }
            }
        }
    }

    let n_steps = (tf / config.dt).ceil() as usize;
    let mut q_points = Vec::with_capacity(n_steps + 1);
    let mut qb_points = Vec::with_capacity(n_steps + 1);
    let mut filled_steps: Vec<Vec<(f64, f64)>> =
        (0..6).map(|_| Vec::with_capacity(n_steps + 1)).collect();
    q_points.push((0.0, stepper.voltage(cell.q)));
    qb_points.push((0.0, stepper.voltage(cell.qb)));

    for step in 0..n_steps {
        let t = step as f64 * config.dt;
        // 1. Read the live biases and update every trap + its RTN
        //    injection before the circuit moves on.
        for tr in Transistor::ALL {
            let element = cell.transistor(tr);
            let (d, g, s) = cell.circuit.mosfet_nodes(element)?;
            let params = *cell.circuit.mosfet_params(element)?;
            // Effective gate drive: relative to whichever terminal is
            // acting as the source right now (pass transistors conduct
            // both ways).
            let (vd, vg, vs) = (stepper.voltage(d), stepper.voltage(g), stepper.voltage(s));
            let v_gs = match params.mos_type {
                MosType::Nmos => vg - vd.min(vs),
                MosType::Pmos => vd.max(vs) - vg,
            };
            let i_d = stepper.mosfet_current(element)?;

            let rng = &mut rngs[tr.index()];
            let mut filled = 0.0;
            for trap in runtimes[tr.index()].iter_mut() {
                propagate(trap, v_gs, config.dt, rng);
                filled += trap.state.occupancy();
            }
            filled_steps[tr.index()].push((t, filled));

            let device = runtimes[tr.index()]
                .first()
                .map(|r| *r.model.device())
                .unwrap_or_else(|| crate::harness::trap_device(&cell, tr, &base.technology));
            let n_tot = device.carrier_count(v_gs).max(1.0);
            let fraction = (filled / n_tot).min(1.0);
            let i_rtn = i_d * fraction * base.rtn_scale;
            // Write into the stepper's compiled circuit: the stepper
            // owns its own lowered copy of the netlist.
            stepper.set_source(cell.rtn_source(tr), Source::Dc(i_rtn))?;
        }

        // 2. Advance the circuit.
        stepper.step(config.dt)?;
        q_points.push((stepper.time(), stepper.voltage(cell.q)));
        qb_points.push((stepper.time(), stepper.voltage(cell.qb)));
    }

    let q = Pwl::new(q_points)?;
    let qb = Pwl::new(qb_points)?;
    let mut n_filled = Vec::with_capacity(filled_steps.len());
    for steps in filled_steps {
        n_filled.push(if steps.is_empty() {
            Pwc::constant(0.0)
        } else {
            Pwc::new(steps)?
        });
    }
    let outcomes = analyze_writes(&q, pattern, &base.timing);
    Ok(CoupledReport {
        q,
        qb,
        n_filled,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coupled_clean_cell_writes_the_pattern() {
        let config = CoupledConfig {
            base: MethodologyConfig {
                traps: Some(Default::default()),
                ..MethodologyConfig::default()
            },
            dt: 10e-12,
        };
        let report = run_coupled(&BitPattern::parse("101").unwrap(), &config).unwrap();
        assert!(
            report.outcomes.all_clean(),
            "coupled trap-free run must write cleanly: {:?}",
            report.outcomes.outcomes
        );
        for nf in &report.n_filled {
            assert_eq!(nf.max_value(), 0.0);
        }
    }

    #[test]
    fn coupled_run_with_traps_still_tracks_the_pattern_at_unit_scale() {
        let config = CoupledConfig {
            base: MethodologyConfig {
                seed: 5,
                ..MethodologyConfig::default()
            },
            dt: 10e-12,
        };
        let report = run_coupled(&BitPattern::parse("10").unwrap(), &config).unwrap();
        assert_eq!(report.outcomes.error_count(), 0);
        // Trap state trajectories were recorded for all 6 transistors.
        assert_eq!(report.n_filled.len(), 6);
    }

    #[test]
    fn trap_propagation_reaches_stationarity() {
        use samurai_trap::DeviceParams;
        use samurai_units::{Energy, Length};
        let device = DeviceParams::nominal_90nm();
        let model = PropensityModel::new(
            device,
            TrapParams::new(Length::from_nanometres(1.0), Energy::from_ev(0.3)),
        );
        // Find a balanced bias, propagate many steps, compare duty.
        let (mut lo, mut hi) = (-2.0, 3.0);
        for _ in 0..100 {
            let mid = 0.5 * (lo + hi);
            if model.stationary_occupancy(mid) < 0.5 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let v = 0.5 * (lo + hi);
        let mut rt = TrapRuntime {
            model,
            state: TrapState::Empty,
        };
        let dt = 0.3 / model.rate_sum();
        let mut rng = SeedStream::new(3).rng(0);
        let mut filled = 0usize;
        let n = 40_000;
        for _ in 0..n {
            propagate(&mut rt, v, dt, &mut rng);
            if rt.state == TrapState::Filled {
                filled += 1;
            }
        }
        let duty = filled as f64 / n as f64;
        assert!((duty - 0.5).abs() < 0.05, "duty {duty}");
    }
}
