//! The design-margin model behind the Fig 2 reproduction.
//!
//! Fig 2 of the paper is measurement data (courtesy Renesas) showing,
//! per technology node, the minimum supply voltage needed once static
//! noise, parameter variation, NBTI and RTN are stacked — with the RTN
//! increment poised to cross the V_dd-scaling line at deeply scaled
//! nodes. The data is proprietary, so per DESIGN.md §3 this module
//! reproduces the *shape* from a parameterised first-principles model:
//!
//! * static noise margin — a fixed fraction of the nominal `V_dd`;
//! * local variation — Pelgrom scaling, `ΔV_var = k_σ·A_VT/√(W·L)`;
//! * NBTI — an end-of-life `V_T` shift growing mildly with scaling
//!   (thinner oxides, higher fields);
//! * RTN — `ΔV_RTN = k_tail·(q/(C_ox·W·L))·√(N_traps)`: a single
//!   trapped charge shifts `V_T` by `q/(C_ox·A)` (charge-sheet
//!   approximation), multi-trap devices add in quadrature, and the
//!   `k_tail` factor accounts for the array-tail statistics.
//!
//! Because `q/(C_ox·A)` grows roughly quadratically as area shrinks
//! while variation grows only as `1/√A`, the RTN share of the margin
//! rises with scaling — exactly the paper's point.

use samurai_core::scenario::ScenarioConfig;
use samurai_trap::Technology;
use samurai_units::constants::ELEMENTARY_CHARGE;

/// Ten-year end-of-life stress horizon the default NBTI margin
/// coefficient is calibrated to, seconds.
pub const EOL_STRESS_SECONDS: f64 = 3.2e8;

/// One stacked bar of the Fig 2 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct MarginRow {
    /// Technology name (e.g. `"90nm"`).
    pub node: String,
    /// Nominal supply of the node — the V_dd-scaling line.
    pub vdd_scaling: f64,
    /// Base supply needed against static noise, volts.
    pub static_noise: f64,
    /// Increment for local/global parameter variation, volts.
    pub variation: f64,
    /// Increment for NBTI, volts.
    pub nbti: f64,
    /// Increment for RTN, volts.
    pub rtn: f64,
}

impl MarginRow {
    /// The stacked total: minimum workable supply voltage.
    pub fn total(&self) -> f64 {
        self.static_noise + self.variation + self.nbti + self.rtn
    }

    /// Total when the RTN–NBTI correlation is exploited: the two
    /// same-root-cause contributions add in quadrature instead of
    /// linearly (the paper's §I-B observation, `ρ → 1` recovers the
    /// linear sum, `ρ = 0` full independence).
    pub fn total_with_correlation(&self, rho: f64) -> f64 {
        let combined =
            (self.nbti * self.nbti + self.rtn * self.rtn + 2.0 * rho * self.nbti * self.rtn).sqrt();
        self.static_noise + self.variation + combined
    }

    /// RTN's share of the total margin.
    pub fn rtn_share(&self) -> f64 {
        self.rtn / self.total()
    }

    /// Standard error of the RTN increment when it is calibrated from
    /// `effective_samples` Monte-Carlo cells (e.g. the survivor count
    /// of a quarantined array sweep, [`crate::array::ArrayStats::effective_cells`]).
    /// Uses the finite-sample standard-deviation estimator error
    /// `σ/√(2(N−1))`; with fewer than two samples the increment is
    /// pure prior, so the whole increment is returned as uncertainty.
    pub fn rtn_uncertainty(&self, effective_samples: usize) -> f64 {
        if effective_samples < 2 {
            return self.rtn;
        }
        self.rtn / (2.0 * (effective_samples as f64 - 1.0)).sqrt()
    }
}

/// Model coefficients (documented synthetic stand-ins for the Renesas
/// measurements).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginModel {
    /// Static-noise fraction of nominal V_dd.
    pub snm_fraction: f64,
    /// Pelgrom coefficient `A_VT` in V·m.
    pub a_vt: f64,
    /// Sigma multiplier for the variation tail.
    pub k_sigma: f64,
    /// NBTI end-of-life shift at the 180 nm node, volts.
    pub nbti_180: f64,
    /// NBTI growth factor per node step.
    pub nbti_growth: f64,
    /// Tail multiplier on the RMS multi-trap RTN shift.
    pub k_tail: f64,
}

impl Default for MarginModel {
    fn default() -> Self {
        Self {
            snm_fraction: 0.55,
            a_vt: 1.8e-9, // 1.8 mV·µm
            k_sigma: 4.5,
            nbti_180: 0.02,
            nbti_growth: 1.25,
            k_tail: 6.0,
        }
    }
}

impl MarginModel {
    /// Derives margin coefficients from a scenario distribution, so
    /// the Fig 2 stack and the Monte-Carlo ensembles share one
    /// parameter surface: the scenario's Pelgrom coefficient (when
    /// set) replaces the default `A_VT`, and the NBTI increment is
    /// rescaled from the default ten-year end-of-life calibration to
    /// the scenario's stress time with the standard `t^(1/6)` power
    /// law (zero stress zeroes the increment).
    pub fn from_scenario(scenario: &ScenarioConfig) -> Self {
        let mut model = Self::default();
        if scenario.a_vt > 0.0 {
            model.a_vt = scenario.a_vt;
        }
        model.nbti_180 = if scenario.stress_time > 0.0 {
            model.nbti_180 * (scenario.stress_time / EOL_STRESS_SECONDS).powf(1.0 / 6.0)
        } else {
            0.0
        };
        model
    }

    /// Evaluates the model for one technology (`step` = how many node
    /// generations past 180 nm, for the NBTI growth).
    pub fn row(&self, tech: &Technology, step: usize) -> MarginRow {
        let area = tech.device.area();
        let vdd = tech.vdd.volts();
        let static_noise = self.snm_fraction * vdd;
        let variation = self.k_sigma * self.a_vt / area.sqrt();
        let nbti = self.nbti_180 * self.nbti_growth.powi(step as i32);
        let dvt_single = ELEMENTARY_CHARGE / (tech.device.c_ox() * area);
        let rtn = self.k_tail * dvt_single * tech.mean_trap_count().sqrt();
        MarginRow {
            node: tech.name.clone(),
            vdd_scaling: vdd,
            static_noise,
            variation,
            nbti,
            rtn,
        }
    }

    /// Evaluates the model across all preset nodes (oldest first).
    pub fn rows(&self) -> Vec<MarginRow> {
        Technology::all_nodes()
            .iter()
            .enumerate()
            .map(|(i, tech)| self.row(tech, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtn_contribution_grows_under_scaling() {
        let rows = MarginModel::default().rows();
        assert_eq!(rows.len(), 7);
        for pair in rows.windows(2) {
            assert!(
                pair[1].rtn > pair[0].rtn,
                "RTN increment must grow: {} ({}) -> {} ({})",
                pair[0].rtn,
                pair[0].node,
                pair[1].rtn,
                pair[1].node
            );
            assert!(
                pair[1].rtn_share() > pair[0].rtn_share(),
                "RTN share must grow with scaling"
            );
        }
    }

    #[test]
    fn margins_cross_the_scaling_line_only_at_deep_nodes() {
        let rows = MarginModel::default().rows();
        let first = &rows[0];
        let last = &rows[rows.len() - 1];
        assert!(
            first.total() < first.vdd_scaling,
            "180 nm must have healthy margin: total {} vs vdd {}",
            first.total(),
            first.vdd_scaling
        );
        assert!(
            last.total() > last.vdd_scaling,
            "22 nm margin must be exhausted: total {} vs vdd {}",
            last.total(),
            last.vdd_scaling
        );
        // Without the RTN increment, even the last node survives — the
        // paper's 'incremental contribution of RTN' point.
        assert!(
            last.total() - last.rtn < last.vdd_scaling,
            "RTN must be the increment that breaks the margin"
        );
    }

    #[test]
    fn correlation_recovers_design_room() {
        let rows = MarginModel::default().rows();
        let last = &rows[rows.len() - 1];
        // Exploiting the correlation shrinks the stack (quadrature sum
        // is below the linear sum)...
        assert!(last.total_with_correlation(0.0) < last.total());
        // ...and full correlation recovers the linear sum.
        assert!((last.total_with_correlation(1.0) - last.total()).abs() < 1e-12);
        // Monotone in rho.
        assert!(last.total_with_correlation(0.3) < last.total_with_correlation(0.8));
    }

    #[test]
    fn rtn_uncertainty_shrinks_with_effective_samples() {
        let rows = MarginModel::default().rows();
        let row = &rows[0];
        // Degenerate sample counts return the full increment.
        assert_eq!(row.rtn_uncertainty(0), row.rtn);
        assert_eq!(row.rtn_uncertainty(1), row.rtn);
        // More surviving cells → tighter margin bars, at the 1/√N rate.
        let coarse = row.rtn_uncertainty(17);
        let fine = row.rtn_uncertainty(65);
        assert!(fine < coarse);
        assert!((coarse / fine - 2.0).abs() < 1e-12, "{coarse} vs {fine}");
    }

    #[test]
    fn scenario_derived_margins_track_stress_and_pelgrom() {
        // Zero stress: no NBTI increment at all.
        let fresh = MarginModel::from_scenario(&ScenarioConfig::nominal());
        assert_eq!(fresh.nbti_180, 0.0);
        // End-of-life stress recovers the default calibration exactly.
        let eol = MarginModel::from_scenario(&ScenarioConfig {
            stress_time: EOL_STRESS_SECONDS,
            ..ScenarioConfig::nominal()
        });
        assert_eq!(eol.nbti_180, MarginModel::default().nbti_180);
        // Intermediate stress follows the t^(1/6) power law.
        let mid = MarginModel::from_scenario(&ScenarioConfig {
            stress_time: EOL_STRESS_SECONDS / 64.0,
            ..ScenarioConfig::nominal()
        });
        let expected = MarginModel::default().nbti_180 * (1.0f64 / 64.0).powf(1.0 / 6.0);
        assert!((mid.nbti_180 - expected).abs() < 1e-15);
        // A configured Pelgrom coefficient replaces the default.
        let pelgrom = MarginModel::from_scenario(&ScenarioConfig {
            a_vt: 2.5e-9,
            ..ScenarioConfig::nominal()
        });
        assert_eq!(pelgrom.a_vt, 2.5e-9);
        assert_eq!(
            MarginModel::from_scenario(&ScenarioConfig::nominal()).a_vt,
            MarginModel::default().a_vt
        );
    }

    #[test]
    fn variation_follows_pelgrom() {
        let model = MarginModel::default();
        let rows = model.rows();
        // Variation grows as area shrinks.
        for pair in rows.windows(2) {
            assert!(pair[1].variation > pair[0].variation);
        }
        // Spot check the Pelgrom formula at 90 nm.
        let tech = Technology::node_90nm();
        let expected = model.k_sigma * model.a_vt / tech.device.area().sqrt();
        let row = model.row(&tech, 2);
        assert!((row.variation - expected).abs() < 1e-12);
    }
}
