//! Small-signal RTN sensitivity of the cell: which transistor's traps
//! matter most?
//!
//! Every transistor carries an RTN injection port (drain–source current
//! source). Linearising the holding cell at its DC operating point and
//! driving each port with a unit AC current gives the transfer
//! impedance `|V_q / I_RTN|(f)` — the per-transistor *sensitivity* of
//! the stored node to that transistor's trap noise, and the bandwidth
//! over which glitches couple. This ranks the six devices the way a
//! designer would ask for ("harden M5 first"), complementing the
//! transient methodology's pass/fail verdicts.

use samurai_spice::ac::Phasor;
use samurai_spice::{CompiledCircuit, DcConfig, NewtonWorkspace};

use crate::{SramCell, SramCellParams, SramError, Transistor};

/// Sensitivity of the stored node to one transistor's RTN port.
#[derive(Debug, Clone, PartialEq)]
pub struct PortSensitivity {
    /// The transistor whose injection port was driven.
    pub transistor: Transistor,
    /// Low-frequency transfer impedance `|V_q / I|`, ohms.
    pub dc_transimpedance: f64,
    /// −3 dB bandwidth of the coupling, Hz (`None` = flat over the
    /// probed span).
    pub bandwidth: Option<f64>,
    /// The full transfer function over the probed frequencies.
    pub transfer: Vec<Phasor>,
}

/// Result of the sensitivity analysis for one held state.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityReport {
    /// The stored bit during the analysis.
    pub stored_bit: bool,
    /// Probed frequencies, Hz.
    pub freqs: Vec<f64>,
    /// One entry per transistor, in [`Transistor::ALL`] order.
    pub ports: Vec<PortSensitivity>,
}

impl SensitivityReport {
    /// Transistors ranked from most to least sensitive (by
    /// low-frequency transimpedance).
    pub fn ranking(&self) -> Vec<Transistor> {
        let mut order: Vec<&PortSensitivity> = self.ports.iter().collect();
        order.sort_by(|a, b| b.dc_transimpedance.total_cmp(&a.dc_transimpedance));
        order.iter().map(|p| p.transistor).collect()
    }
}

/// Computes the per-transistor RTN sensitivity of a cell holding
/// `bit`, over a logarithmic frequency grid `[f_min, f_max]` of `n`
/// points.
///
/// # Errors
///
/// Propagates DC/AC solver failures.
///
/// # Panics
///
/// Panics unless `0 < f_min < f_max` and `n >= 2`.
pub fn rtn_sensitivity(
    params: &SramCellParams,
    bit: bool,
    f_min: f64,
    f_max: f64,
    n: usize,
) -> Result<SensitivityReport, SramError> {
    assert!(f_min > 0.0 && f_max > f_min && n >= 2);
    let cell = SramCell::new(*params);
    let vdd = params.vdd;

    // DC operating point of the holding cell, seeded at the stored bit
    // (WL/BL/BLB are at their constructed 0 V defaults; the loop holds
    // the state on its own).
    let q0 = if bit { vdd } else { 0.0 };
    let mut guess = vec![0.0; cell.circuit.node_count()];
    guess[cell.vdd_node.unknown_index().expect("vdd is not ground")] = vdd; // lint: allow(HYG002): cell nodes are never ground by construction
    guess[cell.q.unknown_index().expect("q is not ground")] = q0; // lint: allow(HYG002): cell nodes are never ground by construction
    guess[cell.qb.unknown_index().expect("qb is not ground")] = vdd - q0; // lint: allow(HYG002): cell nodes are never ground by construction
    let dc = DcConfig {
        initial_guess: Some(guess),
        ..DcConfig::default()
    };

    let freqs: Vec<f64> = (0..n)
        .map(|i| f_min * (f_max / f_min).powf(i as f64 / (n - 1) as f64))
        .collect();

    // One compiled circuit and workspace serve all six port sweeps.
    let compiled = CompiledCircuit::compile(&cell.circuit);
    let mut ws = NewtonWorkspace::new(&compiled);
    let mut ports = Vec::with_capacity(6);
    for t in Transistor::ALL {
        let ac = compiled.run_ac(&mut ws, cell.rtn_source(t), &freqs, &dc)?;
        let transfer = ac.transfer(&cell.circuit, "q")?;
        let dc_transimpedance = transfer[0].magnitude();
        let bandwidth = ac.bandwidth(&cell.circuit, "q")?;
        ports.push(PortSensitivity {
            transistor: t,
            dc_transimpedance,
            bandwidth,
            transfer,
        });
    }
    Ok(SensitivityReport {
        stored_bit: bit,
        freqs,
        ports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ports_have_finite_nonnegative_sensitivity() {
        let report = rtn_sensitivity(&SramCellParams::default(), true, 1e6, 1e12, 25).unwrap();
        assert_eq!(report.ports.len(), 6);
        assert!(report.ports.iter().all(|p| p.dc_transimpedance.is_finite()));
        assert!(report.ports.iter().any(|p| p.dc_transimpedance > 1.0));
        assert_eq!(report.ranking().len(), 6);
    }

    #[test]
    fn coupling_rolls_off_at_high_frequency() {
        let report = rtn_sensitivity(&SramCellParams::default(), true, 1e6, 1e13, 30).unwrap();
        for p in &report.ports {
            let low = p.transfer[0].magnitude();
            let high = p.transfer[p.transfer.len() - 1].magnitude();
            if low > 1.0 {
                assert!(
                    high < low,
                    "{}: capacitances must shunt fast glitches ({high} vs {low})",
                    p.transistor.label()
                );
            }
        }
    }

    #[test]
    fn ports_on_the_high_node_dominate_when_holding_one() {
        // Holding Q=1: node Q floats high behind the triode pull-up
        // (finite output impedance), so injections into Q — M6's port —
        // move the stored voltage directly. Node Q-bar is clamped hard
        // by the strongly-ON pull-down M5 (impedance ~1/gm), so M5's
        // port barely couples.
        let report = rtn_sensitivity(&SramCellParams::default(), true, 1e6, 1e10, 10).unwrap();
        let z = |t: Transistor| report.ports[t.index()].dc_transimpedance;
        assert!(
            z(Transistor::M6) > 100.0 * z(Transistor::M5),
            "M6 {} should dwarf M5 {}",
            z(Transistor::M6),
            z(Transistor::M5)
        );
        // The designer-facing ranking puts an M6-side port first.
        let top = report.ranking()[0];
        assert!(
            report.ports[top.index()].dc_transimpedance >= z(Transistor::M6),
            "ranking must lead with the most sensitive port"
        );
    }

    #[test]
    fn only_same_node_ports_couple_to_the_observed_node() {
        // Around a settled state the receiving devices sit in deep
        // triode or cutoff, where their gm vanishes — so cross-node
        // coupling (Q-bar port -> Q) is orders of magnitude below the
        // direct node impedance, for either stored value. The Q-side
        // ports are M1 (pass), M3 (pull-up) and M6 (pull-down).
        for bit in [true, false] {
            let r = rtn_sensitivity(&SramCellParams::default(), bit, 1e6, 1e10, 8).unwrap();
            let z = |t: Transistor| r.ports[t.index()].dc_transimpedance;
            let direct = z(Transistor::M6)
                .min(z(Transistor::M3))
                .min(z(Transistor::M1));
            let cross = z(Transistor::M5)
                .max(z(Transistor::M4))
                .max(z(Transistor::M2));
            assert!(
                direct > 100.0 * cross,
                "bit={bit}: direct {direct} vs cross {cross}"
            );
        }
    }

    #[test]
    fn the_low_held_node_is_stiffer_than_the_high_held_node() {
        // Holding 1: Q floats high behind the triode PMOS (high Z).
        // Holding 0: Q is clamped low by the strong triode pull-down
        // (low Z). The RTN sensitivity of the stored node is therefore
        // state dependent — the '1' is the fragile value.
        let one = rtn_sensitivity(&SramCellParams::default(), true, 1e6, 1e10, 8).unwrap();
        let zero = rtn_sensitivity(&SramCellParams::default(), false, 1e6, 1e10, 8).unwrap();
        let z1 = one.ports[Transistor::M6.index()].dc_transimpedance;
        let z0 = zero.ports[Transistor::M6.index()].dc_transimpedance;
        assert!(
            z1 > 2.0 * z0,
            "holding a 1 must be more RTN-sensitive: {z1} vs {z0}"
        );
    }
}
