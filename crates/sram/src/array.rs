//! Array-level Monte-Carlo bit-error analysis (paper future work,
//! items 2 and 3).
//!
//! An SRAM array is thousands of cells, each with its own random trap
//! population *and* its own random threshold-voltage offsets. The
//! paper's single-cell study (with its ×30 acceleration) is the
//! building block; this module iterates it over sampled cells and
//! aggregates write-error statistics — the "bit-error impact of RTN on
//! entire SRAM arrays" the authors name as the next step.

use samurai_core::checkpoint::{
    run_ensemble_checkpointed, CheckpointConfig, RunBudget, RunControls, Snapshot,
};
use samurai_core::ensemble::{
    Completion, ExecutionPolicy, FailurePolicy, FailureReport, IndexedResults, Parallelism,
};
use samurai_core::faults::FaultPlan;
use samurai_core::scenario::{DeviceGeometry, ScenarioConfig, NOMINAL_TEMPERATURE};
use samurai_core::telemetry::JsonValue;
use samurai_core::SeedStream;
use samurai_spice::MosfetAdjust;
use samurai_telemetry::{JobProbe, MetricsSink, Recorder};
use samurai_trap::{aging_vth_shift, TrapParams, TrapProfiler};
use samurai_waveform::BitPattern;

use crate::cell::cell_mosfet_params;
use crate::harness::trap_device_from_params;
use crate::{run_methodology, MethodologyConfig, SramError};

/// Configuration of the Monte-Carlo sweep.
#[derive(Debug, Clone)]
pub struct ArrayConfig {
    /// Base per-cell methodology settings (the per-cell seed,
    /// `vth_shift`, `spice` rescue rung and `faults` fields are
    /// overwritten per sample).
    pub base: MethodologyConfig,
    /// Number of cells to simulate.
    pub cells: usize,
    /// Standard deviation of the per-transistor threshold shift, volts.
    /// Ignored when `scenario` is set.
    pub vth_sigma: f64,
    /// Unified per-cell scenario distribution (mismatch with Pelgrom
    /// scaling, beta/geometry spread, supply/temperature corners,
    /// NBTI stress and trap-density dispersion). `None` routes the
    /// legacy `vth_sigma` knob through
    /// [`ScenarioConfig::fixed_vth_sigma`], reproducing the historical
    /// draw sequence bit-for-bit.
    pub scenario: Option<ScenarioConfig>,
    /// Master seed for the sweep.
    pub seed: u64,
    /// What to do when a cell's simulation fails (see
    /// [`samurai_core::ensemble::FailurePolicy`]). The default,
    /// `FailFast`, aborts the sweep on the lowest-indexed failure.
    pub failure: FailurePolicy,
    /// Deterministic fault plan for the sweep: `fail_job` targets whole
    /// cells, `in_job`-scoped solve/step triggers reach into one cell's
    /// SPICE passes. Overrides `base.faults`. Empty in production.
    pub faults: FaultPlan,
    /// Crash-safe snapshotting of the sweep (see
    /// [`samurai_core::checkpoint`]). Off by default.
    pub checkpoint: CheckpointConfig,
    /// Deterministic work ceilings; an exhausted budget truncates the
    /// sweep cleanly ([`ArrayStats::completion`]). Unlimited by
    /// default.
    pub budget: RunBudget,
}

impl Default for ArrayConfig {
    fn default() -> Self {
        Self {
            base: MethodologyConfig::default(),
            cells: 16,
            vth_sigma: 0.02,
            scenario: None,
            seed: 0,
            failure: FailurePolicy::FailFast,
            faults: FaultPlan::none(),
            checkpoint: CheckpointConfig::default(),
            budget: RunBudget::default(),
        }
    }
}

/// Per-cell result of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Cell index.
    pub cell: usize,
    /// Write errors in the RTN pass.
    pub errors: usize,
    /// Slow writes in the RTN pass.
    pub slow: usize,
    /// Write errors already present without RTN (variation alone).
    pub baseline_errors: usize,
    /// Total capture/emission events.
    pub rtn_events: usize,
}

impl Snapshot for CellResult {
    fn to_snapshot(&self) -> JsonValue {
        JsonValue::Arr(
            [
                self.cell,
                self.errors,
                self.slow,
                self.baseline_errors,
                self.rtn_events,
            ]
            .iter()
            .map(|&n| JsonValue::U64(n as u64))
            .collect(),
        )
    }

    fn from_snapshot(v: &JsonValue) -> Option<Self> {
        let JsonValue::Arr(items) = v else {
            return None;
        };
        if items.len() != 5 {
            return None;
        }
        let mut n = items
            .iter()
            .map(|item| usize::try_from(item.as_u64()?).ok());
        Some(Self {
            cell: n.next()??,
            errors: n.next()??,
            slow: n.next()??,
            baseline_errors: n.next()??,
            rtn_events: n.next()??,
        })
    }
}

/// Aggregated statistics of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayStats {
    /// Per-cell outcomes. Under `Quarantine` this holds only the cells
    /// that completed; quarantined cells are in [`ArrayStats::report`].
    pub cells: Vec<CellResult>,
    /// Number of write attempts per cell (pattern length).
    pub writes_per_cell: usize,
    /// Rescue/quarantine accounting for the sweep; clean runs carry an
    /// empty report.
    pub report: FailureReport<SramError>,
    /// Whether the sweep covered every cell or was budget-truncated at
    /// a deterministic boundary.
    pub completion: Completion,
}

impl ArrayStats {
    /// Total RTN-pass write errors across the array.
    pub fn total_errors(&self) -> usize {
        self.cells.iter().map(|c| c.errors).sum()
    }

    /// Total variation-only (RTN-free) write errors.
    pub fn total_baseline_errors(&self) -> usize {
        self.cells.iter().map(|c| c.baseline_errors).sum()
    }

    /// Cells that actually contributed statistics (requested cells
    /// minus quarantined ones).
    pub fn effective_cells(&self) -> usize {
        self.cells.len()
    }

    /// Write-bit-error rate under RTN: errors / *effective* writes, so
    /// quarantined cells do not dilute the estimate.
    pub fn error_rate(&self) -> f64 {
        let writes = self.effective_cells() * self.writes_per_cell;
        if writes == 0 {
            return 0.0;
        }
        self.total_errors() as f64 / writes as f64
    }

    /// Number of cells with at least one RTN-pass error.
    pub fn failing_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.errors > 0).count()
    }
}

/// Runs the Monte-Carlo array sweep.
///
/// Cells are sharded over the ensemble engine according to
/// `config.base.parallelism`; each cell's seeds derive from the master
/// seed by cell index, so the statistics are bit-identical at every
/// worker count. Inside each cell the per-trap simulations run
/// sequentially (the cell level is the natural grain — nesting pools
/// would only oversubscribe).
///
/// Failed cells are handled per `config.failure`: `FailFast`
/// propagates the failure with the lowest cell index; `Retry` re-runs
/// a failing cell up the rescue ladder (each rung re-simulates under
/// `TransientConfig::rescue_rung(rung)`); `Quarantine` additionally
/// drops irrecoverable cells — their identities and errors are in
/// [`ArrayStats::report`] — as long as no more than `max_failures`
/// drop out.
///
/// # Errors
///
/// Propagates the per-cell simulation failure with the lowest cell
/// index once the failure policy is exhausted.
pub fn run_array(pattern: &BitPattern, config: &ArrayConfig) -> Result<ArrayStats, SramError> {
    run_array_observed(pattern, config, &mut Recorder::noop())
}

/// [`run_array`] reporting per-cell solver effort, timings, rescues and
/// quarantines into a telemetry [`Recorder`].
///
/// Each finished cell contributes its two-pass SPICE solver counters
/// (from [`MethodologyReport::solver`](crate::MethodologyReport)) to the
/// journal and metric sinks; the array statistics themselves are
/// bit-identical to [`run_array`] for every worker count and sink.
///
/// # Errors
///
/// As [`run_array`].
pub fn run_array_observed<S: MetricsSink>(
    pattern: &BitPattern,
    config: &ArrayConfig,
    recorder: &mut Recorder<S>,
) -> Result<ArrayStats, SramError> {
    let seeds = SeedStream::new(config.seed);
    let policy = ExecutionPolicy {
        failure: config.failure,
        faults: config.faults.clone(),
        seed: config.seed,
    };
    let controls = RunControls {
        checkpoint: config.checkpoint.clone(),
        budget: config.budget,
        deadline: None,
    };
    let outcome = run_ensemble_checkpointed(
        config.cells,
        config.base.parallelism,
        &policy,
        &controls,
        recorder,
        IndexedResults::new,
        |cell_idx, rung, probe: &mut JobProbe| -> Result<CellResult, SramError> {
            let cell_seeds = seeds.substream(cell_idx as u64);
            // One deterministic sampling surface for every variation
            // axis: the legacy fixed-sigma knob routes through the
            // same layer and reproduces its historical draw sequence
            // bit-for-bit.
            let scenario = config
                .scenario
                .unwrap_or_else(|| ScenarioConfig::fixed_vth_sigma(config.vth_sigma));
            let geometries: Vec<DeviceGeometry> = (0..6)
                .map(|t| {
                    let p = cell_mosfet_params(&config.base.cell, t);
                    DeviceGeometry {
                        width: p.width,
                        length: p.length,
                    }
                })
                .collect();
            let sample = scenario.sample(&mut cell_seeds.rng(0), &geometries);

            let mut cell_params = config.base.cell;
            cell_params.vdd *= sample.vdd_scale;
            for (t, slot) in cell_params.vth_shift.iter_mut().enumerate() {
                *slot += sample.device(t).vth_delta;
            }
            let mut timing = config.base.timing;
            timing.vdd *= sample.vdd_scale;
            let mut technology = config.base.technology.clone();
            technology.device.temperature =
                samurai_units::Temperature::from_kelvin(sample.temperature);
            let density_scale = config.base.density_scale * sample.density_scale;
            let methodology_seed = cell_seeds.rng(1).seed_u64();

            // Scenario path: pre-sample each transistor's trap
            // profile from the exact substream the methodology would
            // use (trap sampling reads only the device geometry), age
            // the pull-up PMOS pair from those same traps — the
            // common-root-cause correlation of paper §I-B — and hand
            // both to the methodology.
            let mut traps = None;
            let mut adjust = [MosfetAdjust::nominal(); 6];
            if config.scenario.is_some() {
                let inner_seeds = SeedStream::new(methodology_seed);
                let mut profiles: [Vec<TrapParams>; 6] = Default::default();
                for (t, profile) in profiles.iter_mut().enumerate() {
                    let d = sample.device(t);
                    adjust[t] = MosfetAdjust {
                        vth_delta: 0.0,
                        beta_scale: d.beta_scale,
                        geom_scale: d.geom_scale,
                    };
                    let mut params = cell_mosfet_params(&cell_params, t)
                        .with_vth_shift(cell_params.vth_shift[t]);
                    // lint: allow(HYG004): exact-unit sentinel keeps nominal devices bit-identical
                    if d.geom_scale != 1.0 {
                        params.width *= d.geom_scale;
                    }
                    let device = trap_device_from_params(&params, &technology);
                    let mut tech = technology.clone();
                    tech.device = device;
                    tech.trap_density *= density_scale;
                    *profile =
                        TrapProfiler::new(tech).sample(&mut inner_seeds.substream(t as u64).rng(0));
                    if matches!(t, 2 | 3) {
                        cell_params.vth_shift[t] +=
                            aging_vth_shift(&device, profile, cell_params.vdd, sample.stress_time);
                    }
                }
                traps = Some(profiles);
            }

            let spice = if rung == 0 {
                config.base.spice.clone()
            } else {
                config.base.spice.rescue_rung(rung)
            };
            let mut cell_config = MethodologyConfig {
                cell: cell_params,
                timing,
                technology,
                density_scale,
                seed: methodology_seed,
                traps,
                parallelism: Parallelism::Fixed(1),
                spice,
                faults: config.faults.for_job(cell_idx, rung),
                ..config.base.clone()
            };
            if config.scenario.is_some() {
                cell_config.adjust = adjust;
                cell_config.phi_t_scale = sample.temperature / NOMINAL_TEMPERATURE;
            }
            let report = run_methodology(pattern, &cell_config)?;
            probe.record_solver(report.solver);
            if config.scenario.is_some() {
                probe.record_scenario(sample.stamp());
            }
            Ok(CellResult {
                cell: cell_idx,
                errors: report.outcomes.error_count(),
                slow: report.outcomes.slow_count(),
                baseline_errors: report.outcomes_clean.error_count(),
                rtn_events: report.total_events(),
            })
        },
    )?;
    Ok(ArrayStats {
        cells: outcome.acc.into_vec(),
        writes_per_cell: pattern.len(),
        report: outcome.report,
        completion: outcome.completion,
    })
}

/// Helper extension: derive a `u64` seed from an RNG stream.
trait SeedU64 {
    fn seed_u64(&mut self) -> u64;
}

impl SeedU64 for rand_chacha::ChaCha8Rng {
    fn seed_u64(&mut self) -> u64 {
        use rand::Rng;
        self.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_array_sweep_runs_and_aggregates() {
        let config = ArrayConfig {
            cells: 4,
            vth_sigma: 0.01,
            seed: 2,
            base: MethodologyConfig {
                rtn_scale: 1.0,
                ..MethodologyConfig::default()
            },
            ..ArrayConfig::default()
        };
        let pattern = BitPattern::parse("10").unwrap();
        let stats = run_array(&pattern, &config).unwrap();
        assert_eq!(stats.cells.len(), 4);
        assert_eq!(stats.writes_per_cell, 2);
        // Mild variation + unscaled RTN: healthy cells.
        assert_eq!(stats.total_errors(), 0, "{:?}", stats.cells);
        assert_eq!(stats.error_rate(), 0.0);
        assert_eq!(stats.failing_cells(), 0);
    }

    #[test]
    fn sweeps_are_reproducible() {
        let config = ArrayConfig {
            cells: 2,
            seed: 7,
            ..ArrayConfig::default()
        };
        let pattern = BitPattern::parse("1").unwrap();
        let a = run_array(&pattern, &config).unwrap();
        let b = run_array(&pattern, &config).unwrap();
        assert_eq!(a.cells, b.cells);
    }

    #[test]
    fn heavy_scaling_and_variation_break_some_cells() {
        let config = ArrayConfig {
            cells: 6,
            vth_sigma: 0.05,
            seed: 11,
            base: MethodologyConfig {
                rtn_scale: 2000.0,
                density_scale: 2.0,
                ..MethodologyConfig::default()
            },
            ..ArrayConfig::default()
        };
        let pattern = BitPattern::parse("1010").unwrap();
        let stats = run_array(&pattern, &config).unwrap();
        assert!(
            stats.total_errors() > 0 || stats.cells.iter().any(|c| c.slow > 0),
            "extreme stress should disturb at least one write: {:?}",
            stats.cells
        );
    }
}
