//! Array-level Monte-Carlo bit-error analysis (paper future work,
//! items 2 and 3).
//!
//! An SRAM array is thousands of cells, each with its own random trap
//! population *and* its own random threshold-voltage offsets. The
//! paper's single-cell study (with its ×30 acceleration) is the
//! building block; this module iterates it over sampled cells and
//! aggregates write-error statistics — the "bit-error impact of RTN on
//! entire SRAM arrays" the authors name as the next step.

use samurai_core::ensemble::{
    run_ensemble_resilient_observed, ExecutionPolicy, FailurePolicy, FailureReport, IndexedResults,
    Parallelism,
};
use samurai_core::faults::FaultPlan;
use samurai_core::SeedStream;
use samurai_telemetry::{JobProbe, MetricsSink, Recorder};
use samurai_trap::standard_normal;
use samurai_waveform::BitPattern;

use crate::{run_methodology, MethodologyConfig, SramError};

/// Configuration of the Monte-Carlo sweep.
#[derive(Debug, Clone)]
pub struct ArrayConfig {
    /// Base per-cell methodology settings (the per-cell seed,
    /// `vth_shift`, `spice` rescue rung and `faults` fields are
    /// overwritten per sample).
    pub base: MethodologyConfig,
    /// Number of cells to simulate.
    pub cells: usize,
    /// Standard deviation of the per-transistor threshold shift, volts.
    pub vth_sigma: f64,
    /// Master seed for the sweep.
    pub seed: u64,
    /// What to do when a cell's simulation fails (see
    /// [`samurai_core::ensemble::FailurePolicy`]). The default,
    /// `FailFast`, aborts the sweep on the lowest-indexed failure.
    pub failure: FailurePolicy,
    /// Deterministic fault plan for the sweep: `fail_job` targets whole
    /// cells, `in_job`-scoped solve/step triggers reach into one cell's
    /// SPICE passes. Overrides `base.faults`. Empty in production.
    pub faults: FaultPlan,
}

impl Default for ArrayConfig {
    fn default() -> Self {
        Self {
            base: MethodologyConfig::default(),
            cells: 16,
            vth_sigma: 0.02,
            seed: 0,
            failure: FailurePolicy::FailFast,
            faults: FaultPlan::none(),
        }
    }
}

/// Per-cell result of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// Cell index.
    pub cell: usize,
    /// Write errors in the RTN pass.
    pub errors: usize,
    /// Slow writes in the RTN pass.
    pub slow: usize,
    /// Write errors already present without RTN (variation alone).
    pub baseline_errors: usize,
    /// Total capture/emission events.
    pub rtn_events: usize,
}

/// Aggregated statistics of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayStats {
    /// Per-cell outcomes. Under `Quarantine` this holds only the cells
    /// that completed; quarantined cells are in [`ArrayStats::report`].
    pub cells: Vec<CellResult>,
    /// Number of write attempts per cell (pattern length).
    pub writes_per_cell: usize,
    /// Rescue/quarantine accounting for the sweep; clean runs carry an
    /// empty report.
    pub report: FailureReport<SramError>,
}

impl ArrayStats {
    /// Total RTN-pass write errors across the array.
    pub fn total_errors(&self) -> usize {
        self.cells.iter().map(|c| c.errors).sum()
    }

    /// Total variation-only (RTN-free) write errors.
    pub fn total_baseline_errors(&self) -> usize {
        self.cells.iter().map(|c| c.baseline_errors).sum()
    }

    /// Cells that actually contributed statistics (requested cells
    /// minus quarantined ones).
    pub fn effective_cells(&self) -> usize {
        self.cells.len()
    }

    /// Write-bit-error rate under RTN: errors / *effective* writes, so
    /// quarantined cells do not dilute the estimate.
    pub fn error_rate(&self) -> f64 {
        let writes = self.effective_cells() * self.writes_per_cell;
        if writes == 0 {
            return 0.0;
        }
        self.total_errors() as f64 / writes as f64
    }

    /// Number of cells with at least one RTN-pass error.
    pub fn failing_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.errors > 0).count()
    }
}

/// Runs the Monte-Carlo array sweep.
///
/// Cells are sharded over the ensemble engine according to
/// `config.base.parallelism`; each cell's seeds derive from the master
/// seed by cell index, so the statistics are bit-identical at every
/// worker count. Inside each cell the per-trap simulations run
/// sequentially (the cell level is the natural grain — nesting pools
/// would only oversubscribe).
///
/// Failed cells are handled per `config.failure`: `FailFast`
/// propagates the failure with the lowest cell index; `Retry` re-runs
/// a failing cell up the rescue ladder (each rung re-simulates under
/// `TransientConfig::rescue_rung(rung)`); `Quarantine` additionally
/// drops irrecoverable cells — their identities and errors are in
/// [`ArrayStats::report`] — as long as no more than `max_failures`
/// drop out.
///
/// # Errors
///
/// Propagates the per-cell simulation failure with the lowest cell
/// index once the failure policy is exhausted.
pub fn run_array(pattern: &BitPattern, config: &ArrayConfig) -> Result<ArrayStats, SramError> {
    run_array_observed(pattern, config, &mut Recorder::noop())
}

/// [`run_array`] reporting per-cell solver effort, timings, rescues and
/// quarantines into a telemetry [`Recorder`].
///
/// Each finished cell contributes its two-pass SPICE solver counters
/// (from [`MethodologyReport::solver`](crate::MethodologyReport)) to the
/// journal and metric sinks; the array statistics themselves are
/// bit-identical to [`run_array`] for every worker count and sink.
///
/// # Errors
///
/// As [`run_array`].
pub fn run_array_observed<S: MetricsSink>(
    pattern: &BitPattern,
    config: &ArrayConfig,
    recorder: &mut Recorder<S>,
) -> Result<ArrayStats, SramError> {
    let seeds = SeedStream::new(config.seed);
    let policy = ExecutionPolicy {
        failure: config.failure,
        faults: config.faults.clone(),
        seed: config.seed,
    };
    let outcome = run_ensemble_resilient_observed(
        config.cells,
        config.base.parallelism,
        &policy,
        recorder,
        IndexedResults::new,
        |cell_idx, rung, probe: &mut JobProbe| -> Result<CellResult, SramError> {
            let cell_seeds = seeds.substream(cell_idx as u64);
            let mut rng = cell_seeds.rng(0);
            let mut cell_params = config.base.cell;
            for slot in cell_params.vth_shift.iter_mut() {
                *slot += config.vth_sigma * standard_normal(&mut rng);
            }
            let spice = if rung == 0 {
                config.base.spice.clone()
            } else {
                config.base.spice.rescue_rung(rung)
            };
            let cell_config = MethodologyConfig {
                cell: cell_params,
                seed: cell_seeds.rng(1).seed_u64(),
                traps: None,
                parallelism: Parallelism::Fixed(1),
                spice,
                faults: config.faults.for_job(cell_idx, rung),
                ..config.base.clone()
            };
            let report = run_methodology(pattern, &cell_config)?;
            probe.record_solver(report.solver);
            Ok(CellResult {
                cell: cell_idx,
                errors: report.outcomes.error_count(),
                slow: report.outcomes.slow_count(),
                baseline_errors: report.outcomes_clean.error_count(),
                rtn_events: report.total_events(),
            })
        },
    )?;
    Ok(ArrayStats {
        cells: outcome.acc.into_vec(),
        writes_per_cell: pattern.len(),
        report: outcome.report,
    })
}

/// Helper extension: derive a `u64` seed from an RNG stream.
trait SeedU64 {
    fn seed_u64(&mut self) -> u64;
}

impl SeedU64 for rand_chacha::ChaCha8Rng {
    fn seed_u64(&mut self) -> u64 {
        use rand::Rng;
        self.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_array_sweep_runs_and_aggregates() {
        let config = ArrayConfig {
            cells: 4,
            vth_sigma: 0.01,
            seed: 2,
            base: MethodologyConfig {
                rtn_scale: 1.0,
                ..MethodologyConfig::default()
            },
            ..ArrayConfig::default()
        };
        let pattern = BitPattern::parse("10").unwrap();
        let stats = run_array(&pattern, &config).unwrap();
        assert_eq!(stats.cells.len(), 4);
        assert_eq!(stats.writes_per_cell, 2);
        // Mild variation + unscaled RTN: healthy cells.
        assert_eq!(stats.total_errors(), 0, "{:?}", stats.cells);
        assert_eq!(stats.error_rate(), 0.0);
        assert_eq!(stats.failing_cells(), 0);
    }

    #[test]
    fn sweeps_are_reproducible() {
        let config = ArrayConfig {
            cells: 2,
            seed: 7,
            ..ArrayConfig::default()
        };
        let pattern = BitPattern::parse("1").unwrap();
        let a = run_array(&pattern, &config).unwrap();
        let b = run_array(&pattern, &config).unwrap();
        assert_eq!(a.cells, b.cells);
    }

    #[test]
    fn heavy_scaling_and_variation_break_some_cells() {
        let config = ArrayConfig {
            cells: 6,
            vth_sigma: 0.05,
            seed: 11,
            base: MethodologyConfig {
                rtn_scale: 2000.0,
                density_scale: 2.0,
                ..MethodologyConfig::default()
            },
            ..ArrayConfig::default()
        };
        let pattern = BitPattern::parse("1010").unwrap();
        let stats = run_array(&pattern, &config).unwrap();
        assert!(
            stats.total_errors() > 0 || stats.cells.iter().any(|c| c.slow > 0),
            "extreme stress should disturb at least one write: {:?}",
            stats.cells
        );
    }
}
