//! Accelerated RTN testing (the paper's pointer to Toh et al. \[14\]).
//!
//! Instead of scaling `I_RTN` artificially, accelerated testing
//! stresses the *timing*: the word-line pulse is shortened until the
//! write barely succeeds, which is exactly where the paper's "critical
//! moments" live. The RTN-induced **timing margin loss** is the
//! difference between the minimum word-line window of the clean cell
//! and that of the cell with RTN injected — a margin statement that
//! needs no artificial current scaling.
//!
//! The paper remarks that SAMURAI "should be run on the SPICE response
//! predicted for the SRAM cell under the biasses suggested by
//! accelerated testing techniques"; [`timing_margin`] does precisely
//! that, re-running the full two-pass methodology at each probed
//! word-line width.

use samurai_waveform::BitPattern;

use crate::{run_methodology, MethodologyConfig, SramError};

/// Result of the timing-margin bisection.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingMargin {
    /// Minimum word-line duty (fraction of the cycle between WL rise
    /// and fall) at which the *clean* cell still writes every bit.
    pub min_window_clean: f64,
    /// The same minimum with RTN injected.
    pub min_window_rtn: f64,
    /// Resolution of the bisection (fraction of the cycle).
    pub resolution: f64,
}

impl TimingMargin {
    /// RTN's cost in word-line window, as a fraction of the cycle
    /// (positive = RTN needs a longer window).
    pub fn rtn_penalty(&self) -> f64 {
        self.min_window_rtn - self.min_window_clean
    }
}

/// Whether every write of `pattern` succeeds with the word line
/// asserted for `window` (fraction of the cycle), in the clean or the
/// RTN-injected pass.
fn writes_ok(
    pattern: &BitPattern,
    base: &MethodologyConfig,
    window: f64,
    with_rtn: bool,
) -> Result<bool, SramError> {
    let mut config = base.clone();
    config.timing.wl_off_frac = (config.timing.wl_on_frac + window).min(0.97);
    let report = run_methodology(pattern, &config)?;
    Ok(if with_rtn {
        report.outcomes.error_count() == 0
    } else {
        report.outcomes_clean.error_count() == 0
    })
}

/// Bisects the minimum word-line window (fraction of the cycle) for
/// error-free writes, for both the clean and the RTN-injected cell.
///
/// # Errors
///
/// Returns [`SramError::InvalidConfig`] if even the widest window
/// fails, and propagates simulation failures.
pub fn timing_margin(
    pattern: &BitPattern,
    base: &MethodologyConfig,
    iterations: usize,
) -> Result<TimingMargin, SramError> {
    let window_max = 0.97 - base.timing.wl_on_frac;
    // The narrowest representable strobe: the rise and fall edges must
    // fit inside the assertion window.
    let window_min = 2.5 * base.timing.edge / base.timing.period;
    let bisect = |with_rtn: bool| -> Result<f64, SramError> {
        if !writes_ok(pattern, base, window_max, with_rtn)? {
            return Err(SramError::InvalidConfig {
                reason: "cell fails even with the widest word-line window",
            });
        }
        let (mut bad, mut good) = (window_min, window_max);
        // Ensure the lower bracket actually fails; if the cell writes
        // with a sliver of a window, report that sliver.
        if writes_ok(pattern, base, bad, with_rtn)? {
            return Ok(bad);
        }
        for _ in 0..iterations {
            let mid = 0.5 * (bad + good);
            if writes_ok(pattern, base, mid, with_rtn)? {
                good = mid;
            } else {
                bad = mid;
            }
        }
        Ok(good)
    };
    let min_window_clean = bisect(false)?;
    let min_window_rtn = bisect(true)?;
    Ok(TimingMargin {
        min_window_clean,
        min_window_rtn,
        resolution: (window_max - window_min) / (1 << iterations) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_cell_has_a_positive_minimum_window() {
        let base = MethodologyConfig {
            traps: Some(Default::default()),
            ..MethodologyConfig::default()
        };
        let pattern = BitPattern::parse("10").expect("valid pattern");
        let margin = timing_margin(&pattern, &base, 6).unwrap();
        // Without traps both bisections see the same cell.
        assert!(
            (margin.rtn_penalty()).abs() <= margin.resolution + 1e-9,
            "no-trap penalty should vanish: {margin:?}"
        );
        assert!(margin.min_window_clean > 0.01 && margin.min_window_clean < 0.5);
    }

    #[test]
    fn heavy_rtn_costs_word_line_window() {
        // The first acceleration factor at which the cell still writes
        // with the widest window but needs more window than the clean
        // cell is the interesting operating point; scan for it.
        let pattern = BitPattern::parse("10").expect("valid pattern");
        let mut found = None;
        for scale in [300.0, 800.0, 1500.0, 2200.0] {
            let base = MethodologyConfig {
                seed: 12,
                density_scale: 2.0,
                rtn_scale: scale,
                ..MethodologyConfig::default()
            };
            match timing_margin(&pattern, &base, 6) {
                Ok(margin) if margin.rtn_penalty() > 0.0 => {
                    found = Some((scale, margin));
                    break;
                }
                Ok(_) => continue,           // RTN too weak at this scale
                Err(SramError::InvalidConfig { .. }) => break, // too strong
                Err(e) => panic!("unexpected failure: {e}"),
            }
        }
        let (scale, margin) = found.expect("some scale must cost window without killing the cell");
        assert!(
            margin.rtn_penalty() > 0.0 && margin.min_window_rtn < 0.97,
            "scale x{scale}: {margin:?}"
        );
    }
}
