//! Accelerated RTN testing (the paper's pointer to Toh et al. \[14\]).
//!
//! Instead of scaling `I_RTN` artificially, accelerated testing
//! stresses the *timing*: the word-line pulse is shortened until the
//! write barely succeeds, which is exactly where the paper's "critical
//! moments" live. The RTN-induced **timing margin loss** is the
//! difference between the minimum word-line window of the clean cell
//! and that of the cell with RTN injected — a margin statement that
//! needs no artificial current scaling.
//!
//! The paper remarks that SAMURAI "should be run on the SPICE response
//! predicted for the SRAM cell under the biasses suggested by
//! accelerated testing techniques"; [`timing_margin`] does precisely
//! that, re-running the full two-pass methodology at each probed
//! word-line width.

use samurai_core::ensemble::{run_ensemble_observed, FailurePolicy, IndexedResults, Parallelism};
use samurai_telemetry::{JobProbe, MetricsSink, Recorder};
use samurai_waveform::BitPattern;

use crate::{run_methodology, MethodologyConfig, SramError};

/// Interior probes evaluated per multisection round. Fixed (not a
/// function of the worker count) so the search visits the same windows
/// — and lands on the same margins — at every [`Parallelism`].
const PROBES_PER_ROUND: usize = 4;

/// Result of the timing-margin bisection.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingMargin {
    /// Minimum word-line duty (fraction of the cycle between WL rise
    /// and fall) at which the *clean* cell still writes every bit.
    pub min_window_clean: f64,
    /// The same minimum with RTN injected.
    pub min_window_rtn: f64,
    /// Resolution of the bisection (fraction of the cycle).
    pub resolution: f64,
}

impl TimingMargin {
    /// RTN's cost in word-line window, as a fraction of the cycle
    /// (positive = RTN needs a longer window).
    pub fn rtn_penalty(&self) -> f64 {
        self.min_window_rtn - self.min_window_clean
    }
}

/// Whether every write of `pattern` succeeds with the word line
/// asserted for `window` (fraction of the cycle), in the clean or the
/// RTN-injected pass. `rungs > 0` retries a *failing* probe up the
/// rescue ladder (each rung re-simulates under
/// `TransientConfig::rescue_rung`) before propagating the error; the
/// probe's verdict is unchanged whenever rung 0 succeeds.
fn writes_ok(
    pattern: &BitPattern,
    base: &MethodologyConfig,
    window: f64,
    with_rtn: bool,
    rungs: usize,
    probe: &mut JobProbe,
) -> Result<bool, SramError> {
    let mut rung = 0;
    loop {
        let mut config = base.clone();
        if rung > 0 {
            config.spice = base.spice.rescue_rung(rung);
            config.faults = config.faults.for_job(0, rung);
        }
        config.timing.wl_off_frac = (config.timing.wl_on_frac + window).min(0.97);
        match run_methodology(pattern, &config) {
            Ok(report) => {
                probe.record_solver(report.solver);
                return Ok(if with_rtn {
                    report.outcomes.error_count() == 0
                } else {
                    report.outcomes_clean.error_count() == 0
                });
            }
            Err(e) if rung >= rungs => return Err(e),
            Err(_) => rung += 1,
        }
    }
}

/// Multisects the minimum word-line window (fraction of the cycle) for
/// error-free writes, for both the clean and the RTN-injected cell.
///
/// Each round places `PROBES_PER_ROUND` equispaced windows inside the
/// current bracket and evaluates them concurrently according to
/// `base.parallelism` — every probe is a full two-pass SPICE run, so
/// this is where the wall-clock goes. The probe grid depends only on
/// the bracket (never on the worker count), which keeps the returned
/// margins bit-identical at any [`Parallelism`]. `iterations` is the
/// requested *binary-search-equivalent* depth: the number of
/// multisection rounds is chosen so the final bracket is at least as
/// tight as `iterations` classic bisection steps.
///
/// # Errors
///
/// Returns [`SramError::InvalidConfig`] if even the widest window
/// fails, and propagates simulation failures.
pub fn timing_margin(
    pattern: &BitPattern,
    base: &MethodologyConfig,
    iterations: usize,
) -> Result<TimingMargin, SramError> {
    timing_margin_with_policy(pattern, base, iterations, FailurePolicy::FailFast)
}

/// [`timing_margin`] with an explicit [`FailurePolicy`].
///
/// `Retry { rungs }` makes each probe climb the rescue ladder before
/// its failure aborts the search; probes whose nominal run succeeds
/// are untouched, so the margins match `FailFast` whenever `FailFast`
/// would have succeeded. A bisection cannot tolerate a missing probe
/// verdict, so `Quarantine` degrades to `Retry` with the same rung
/// count here.
///
/// # Errors
///
/// As [`timing_margin`], once the rescue ladder is exhausted.
pub fn timing_margin_with_policy(
    pattern: &BitPattern,
    base: &MethodologyConfig,
    iterations: usize,
    policy: FailurePolicy,
) -> Result<TimingMargin, SramError> {
    timing_margin_observed(pattern, base, iterations, policy, &mut Recorder::noop())
}

/// [`timing_margin_with_policy`] reporting each probe's two-pass SPICE
/// solver effort and timing into a telemetry [`Recorder`].
///
/// The bracket-endpoint sanity probes run outside the ensemble and are
/// not journalled; every multisection probe is. The returned margins
/// are bit-identical to the unobserved search.
///
/// # Errors
///
/// As [`timing_margin`], once the rescue ladder is exhausted.
pub fn timing_margin_observed<S: MetricsSink>(
    pattern: &BitPattern,
    base: &MethodologyConfig,
    iterations: usize,
    policy: FailurePolicy,
    recorder: &mut Recorder<S>,
) -> Result<TimingMargin, SramError> {
    let rungs = policy.rungs();
    let window_max = 0.97 - base.timing.wl_on_frac;
    // The narrowest representable strobe: the rise and fall edges must
    // fit inside the assertion window.
    let window_min = 2.5 * base.timing.edge / base.timing.period;

    // Each round shrinks the bracket by (PROBES_PER_ROUND + 1)x; match
    // or beat the 2^iterations shrink of a classic bisection.
    let shrink = (PROBES_PER_ROUND + 1) as f64;
    let rounds = ((iterations as f64) * 2f64.ln() / shrink.ln()).ceil() as u32;

    // The probes themselves are the parallel grain; force each probe's
    // inner trap simulations sequential to avoid nested pools.
    let probe_base = MethodologyConfig {
        parallelism: Parallelism::Fixed(1),
        ..base.clone()
    };

    let search = |with_rtn: bool, recorder: &mut Recorder<S>| -> Result<f64, SramError> {
        if !writes_ok(
            pattern,
            &probe_base,
            window_max,
            with_rtn,
            rungs,
            &mut JobProbe::disabled(),
        )? {
            return Err(SramError::InvalidConfig {
                reason: "cell fails even with the widest word-line window",
            });
        }
        let (mut bad, mut good) = (window_min, window_max);
        // Ensure the lower bracket actually fails; if the cell writes
        // with a sliver of a window, report that sliver.
        if writes_ok(
            pattern,
            &probe_base,
            bad,
            with_rtn,
            rungs,
            &mut JobProbe::disabled(),
        )? {
            return Ok(bad);
        }
        for _ in 0..rounds {
            let step = (good - bad) / shrink;
            let ok: Vec<bool> = run_ensemble_observed(
                PROBES_PER_ROUND,
                base.parallelism,
                recorder,
                IndexedResults::new,
                |i, probe: &mut JobProbe| {
                    writes_ok(
                        pattern,
                        &probe_base,
                        bad + (i + 1) as f64 * step,
                        with_rtn,
                        rungs,
                        probe,
                    )
                },
            )?
            .into_vec();
            // The lowest passing probe bounds the minimum from above;
            // the probe just below it (or the old lower bracket) from
            // below — the same bracket a serial scan would keep.
            match ok.iter().position(|&w| w) {
                Some(first) => {
                    good = bad + (first + 1) as f64 * step;
                    bad += first as f64 * step;
                }
                None => bad += PROBES_PER_ROUND as f64 * step,
            }
        }
        Ok(good)
    };
    let min_window_clean = search(false, recorder)?;
    let min_window_rtn = search(true, recorder)?;
    recorder.note("margin.multisection_rounds", u64::from(rounds));
    Ok(TimingMargin {
        min_window_clean,
        min_window_rtn,
        resolution: (window_max - window_min) / shrink.powi(rounds as i32),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_cell_has_a_positive_minimum_window() {
        let base = MethodologyConfig {
            traps: Some(Default::default()),
            ..MethodologyConfig::default()
        };
        let pattern = BitPattern::parse("10").expect("valid pattern");
        let margin = timing_margin(&pattern, &base, 6).unwrap();
        // Without traps both bisections see the same cell.
        assert!(
            (margin.rtn_penalty()).abs() <= margin.resolution + 1e-9,
            "no-trap penalty should vanish: {margin:?}"
        );
        assert!(margin.min_window_clean > 0.01 && margin.min_window_clean < 0.5);
    }

    #[test]
    fn heavy_rtn_costs_word_line_window() {
        // The first acceleration factor at which the cell still writes
        // with the widest window but needs more window than the clean
        // cell is the interesting operating point; scan for it.
        let pattern = BitPattern::parse("10").expect("valid pattern");
        let mut found = None;
        for scale in [300.0, 800.0, 1500.0, 2200.0] {
            let base = MethodologyConfig {
                seed: 12,
                density_scale: 2.0,
                rtn_scale: scale,
                ..MethodologyConfig::default()
            };
            match timing_margin(&pattern, &base, 6) {
                Ok(margin) if margin.rtn_penalty() > 0.0 => {
                    found = Some((scale, margin));
                    break;
                }
                Ok(_) => continue, // RTN too weak at this scale
                Err(SramError::InvalidConfig { .. }) => break, // too strong
                Err(e) => panic!("unexpected failure: {e}"),
            }
        }
        let (scale, margin) = found.expect("some scale must cost window without killing the cell");
        assert!(
            margin.rtn_penalty() > 0.0 && margin.min_window_rtn < 0.97,
            "scale x{scale}: {margin:?}"
        );
    }
}
