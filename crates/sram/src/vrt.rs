//! DRAM Variable Retention Time (VRT) under RTN — the paper's
//! future-work item 4 (its refs \[22, 23\]).
//!
//! A DRAM cell stores charge on a capacitor behind an access
//! transistor. The cell leaks; the time until the stored level decays
//! to the sense threshold is the *retention time*. Measurements show
//! some cells toggling between two (or more) retention times over
//! minutes — Variable Retention Time — and the accepted explanation is
//! a single trap (the same defect that causes RTN) switching the
//! dominant junction/GIDL leakage between two levels.
//!
//! This module models exactly that: the cell's leakage current takes
//! the value `i_leak_base·(1 + contrast·occupancy)` where the occupancy
//! is a SAMURAI-simulated trap trajectory, and each refresh cycle's
//! retention time follows by integrating the charge decay. A slow trap
//! yields the characteristic *bimodal* retention-time histogram.

use samurai_core::checkpoint::RunBudget;
use samurai_core::scenario::{DeviceGeometry, ScenarioConfig};
use samurai_core::{simulate_trap_probed, CoreError, SeedStream, UniformisationConfig};
use samurai_telemetry::{JobProbe, JobRecord, MetricsSink, Recorder, Stopwatch};
use samurai_trap::{aging_vth_shift, DeviceParams, PropensityModel, TrapParams};
use samurai_waveform::{Pwc, Pwl};

use crate::SramError;

/// Parameters of the 1T1C retention experiment.
#[derive(Debug, Clone)]
pub struct VrtConfig {
    /// Storage capacitance, farads.
    pub c_storage: f64,
    /// Stored high level, volts.
    pub v_stored: f64,
    /// Sense threshold: the cell fails once it decays below this.
    pub v_sense: f64,
    /// Baseline (trap-empty) leakage current, amperes.
    pub i_leak_base: f64,
    /// Leakage multiplier contrast when the trap is filled
    /// (`i_filled = i_base·(1 + contrast)`).
    pub leak_contrast: f64,
    /// The trap controlling the leakage.
    pub trap: TrapParams,
    /// Device context of the trap (the access transistor).
    pub device: DeviceParams,
    /// Gate bias of the access transistor while holding (off state).
    pub v_hold: f64,
    /// Number of refresh cycles to measure.
    pub cycles: usize,
    /// Random seed.
    pub seed: u64,
    /// Unified scenario distribution: threshold mismatch, supply
    /// corner (scales the stored/sense/hold levels), temperature
    /// corner and NBTI stress of the access transistor, sampled from
    /// `substream(1)` of the seed so the legacy trap stream is
    /// untouched. `None` is the historical fixed configuration,
    /// bit-for-bit.
    pub scenario: Option<ScenarioConfig>,
    /// Cap on candidate trap events for the whole experiment; `None`
    /// uses the [`UniformisationConfig`] default. When the trap is too
    /// fast for the requested horizon, the experiment rescues itself by
    /// halving the cycle count until the budget suffices (see
    /// [`VrtReport::effective_cycles`]).
    pub event_budget: Option<usize>,
    /// Deterministic run budget: `max_jobs` caps the refresh-cycle
    /// count *before* the experiment starts (each cycle is one job of
    /// the retention sweep), so a capped run measures an exact prefix
    /// of the uncapped one. Unlimited by default.
    pub budget: RunBudget,
}

impl Default for VrtConfig {
    fn default() -> Self {
        Self {
            c_storage: 25e-15,
            v_stored: 1.1,
            v_sense: 0.55,
            i_leak_base: 40e-12,
            leak_contrast: 3.0,
            trap: TrapParams::new(
                samurai_units::Length::from_nanometres(1.9),
                samurai_units::Energy::from_ev(0.05),
            ),
            device: DeviceParams::nominal_90nm(),
            v_hold: 0.35,
            cycles: 200,
            seed: 0,
            scenario: None,
            event_budget: None,
            budget: RunBudget::default(),
        }
    }
}

/// Result of the retention experiment.
#[derive(Debug, Clone)]
pub struct VrtReport {
    /// Retention time of each refresh cycle, seconds.
    pub retention_times: Vec<f64>,
    /// The trap occupancy trajectory used.
    pub occupancy: Pwc,
    /// Retention time with the trap pinned empty (the "good" mode).
    pub t_good: f64,
    /// Retention time with the trap pinned filled (the "bad" mode).
    pub t_bad: f64,
    /// Cycles asked for in [`VrtConfig::cycles`].
    pub requested_cycles: usize,
}

impl VrtReport {
    /// Cycles actually measured — smaller than
    /// [`VrtReport::requested_cycles`] when the event-budget rescue
    /// had to shorten the experiment.
    pub fn effective_cycles(&self) -> usize {
        self.retention_times.len()
    }

    /// `true` when the event-budget rescue shortened the experiment.
    pub fn was_truncated(&self) -> bool {
        self.effective_cycles() < self.requested_cycles
    }

    /// Fraction of cycles whose retention is closer to the bad mode.
    pub fn bad_mode_fraction(&self) -> f64 {
        let mid = 0.5 * (self.t_good + self.t_bad);
        self.retention_times.iter().filter(|&&t| t < mid).count() as f64
            / self.retention_times.len().max(1) as f64
    }

    /// `true` when the retention-time population is visibly bimodal:
    /// both modes occupied and separated by more than `gap_factor`
    /// times the within-mode spread.
    pub fn is_bimodal(&self, gap_factor: f64) -> bool {
        let mid = 0.5 * (self.t_good + self.t_bad);
        let (low, high): (Vec<f64>, Vec<f64>) =
            self.retention_times.iter().partition(|&&t| t < mid);
        if low.len() < 3 || high.len() < 3 {
            return false;
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let spread = |v: &[f64]| {
            let m = mean(v);
            (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64).sqrt()
        };
        let gap = mean(&high) - mean(&low);
        gap > gap_factor * (spread(&low) + spread(&high)).max(1e-12)
    }
}

/// Retention time for a *constant* leakage current.
fn constant_retention(config: &VrtConfig, i_leak: f64) -> f64 {
    config.c_storage * (config.v_stored - config.v_sense) / i_leak
}

/// Runs the retention experiment: for each refresh cycle, the cell is
/// recharged to `v_stored` and the decay to `v_sense` is integrated
/// against the (trap-modulated) leakage.
///
/// # Errors
///
/// Propagates trap-simulation failures. An
/// [`CoreError::EventBudgetExceeded`] is first rescued by halving the
/// cycle count (each halving restarts the trap simulation from the
/// same seed, so the shortened trajectory is a prefix-deterministic
/// re-run); it only propagates once a single cycle still blows the
/// budget.
pub fn run_vrt(config: &VrtConfig) -> Result<VrtReport, SramError> {
    run_vrt_observed(config, &mut Recorder::noop())
}

/// [`run_vrt`] reporting trap event counts, wall time and budget-rescue
/// halvings into a telemetry [`Recorder`].
///
/// The report is bit-identical to [`run_vrt`]. Each halving of the
/// cycle count is journalled as a `vrt.budget_halvings` note, so
/// silently-truncated experiments are visible in the artifact trail.
///
/// # Errors
///
/// As [`run_vrt`].
pub fn run_vrt_observed<S: MetricsSink>(
    config: &VrtConfig,
    recorder: &mut Recorder<S>,
) -> Result<VrtReport, SramError> {
    // Expand the scenario (when configured) into an effective
    // experiment: corner-scaled levels, mismatch plus NBTI aging on
    // the access transistor's threshold, corner temperature. The
    // sample draws from `substream(1)`, so the trap-trajectory stream
    // below is exactly the legacy one.
    let mut effective = config.clone();
    let mut stamp = None;
    if let Some(scenario) = &config.scenario {
        let geometry = DeviceGeometry {
            width: config.device.width.metres(),
            length: config.device.length.metres(),
        };
        let sample = scenario.sample(
            &mut SeedStream::new(config.seed).substream(1).rng(0),
            &[geometry],
        );
        effective.v_stored *= sample.vdd_scale;
        effective.v_sense *= sample.vdd_scale;
        effective.v_hold *= sample.vdd_scale;
        let aging = aging_vth_shift(
            &effective.device,
            &[effective.trap],
            effective.v_hold,
            sample.stress_time,
        );
        effective.device.v_th = samurai_units::Voltage::from_volts(
            effective.device.v_th.volts() + sample.device(0).vth_delta + aging,
        );
        effective.device.temperature = samurai_units::Temperature::from_kelvin(sample.temperature);
        stamp = Some(sample.stamp());
    }
    let config = &effective;
    let t_good = constant_retention(config, config.i_leak_base);
    let t_bad = constant_retention(config, config.i_leak_base * (1.0 + config.leak_contrast));

    let model = PropensityModel::new(config.device, config.trap);
    let mut uniformisation = UniformisationConfig::default();
    if let Some(budget) = config.event_budget {
        uniformisation.max_candidate_events = budget;
    }

    // Simulate the trap over the whole experiment horizon (generously
    // bounded by all-good retention), halving the horizon while the
    // event budget does not suffice.
    let watch = recorder.live().then(Stopwatch::start);
    let mut probe = JobProbe::new(recorder.live());
    let mut halvings = 0usize;
    // The run budget truncates up front: a capped experiment simulates
    // the exact trajectory prefix of the uncapped one, so the first
    // `max_jobs` retention times agree bit-for-bit.
    let mut cycles = match config.budget.max_jobs {
        Some(max) => config.cycles.min(max),
        None => config.cycles,
    };
    let occupancy = loop {
        let horizon = (cycles + 1) as f64 * t_good;
        let mut rng = SeedStream::new(config.seed).rng(0);
        match simulate_trap_probed(
            &model,
            &Pwl::constant(config.v_hold),
            0.0,
            horizon,
            &mut rng,
            &uniformisation,
            &mut probe,
        ) {
            Ok(occ) => break occ,
            Err(CoreError::EventBudgetExceeded { .. }) if cycles > 1 => {
                cycles /= 2;
                halvings += 1;
            }
            Err(e) => return Err(e.into()),
        }
    };
    if recorder.live() {
        recorder.note("vrt.budget_halvings", halvings as u64);
        recorder.absorb_job(&JobRecord {
            job: 0,
            seconds: watch.map_or(0.0, |w| w.elapsed_seconds()),
            rescued: (halvings > 0).then_some(halvings),
            solver: probe.solver(),
            trap: probe.trap(),
            scenario: stamp,
        });
    }

    // Walk refresh cycles: integrate charge decay with the piecewise
    // constant leakage until the sense threshold.
    let dq_fail = config.c_storage * (config.v_stored - config.v_sense);
    let mut t = 0.0;
    let mut retention_times = Vec::with_capacity(cycles);
    for _ in 0..cycles {
        let mut charge_lost = 0.0;
        let mut now = t;
        loop {
            let occ = occupancy.eval(now);
            let i_leak = config.i_leak_base * (1.0 + config.leak_contrast * occ);
            // Time to the next trap transition (or failure, whichever
            // is first).
            let next_transition = occupancy
                .steps()
                .iter()
                .map(|&(st, _)| st)
                .find(|&st| st > now)
                .unwrap_or(f64::INFINITY);
            let t_fail = now + (dq_fail - charge_lost) / i_leak;
            if t_fail <= next_transition {
                retention_times.push(t_fail - t);
                t = t_fail;
                break;
            }
            charge_lost += i_leak * (next_transition - now);
            now = next_transition;
        }
    }

    Ok(VrtReport {
        retention_times,
        occupancy,
        t_good,
        t_bad,
        requested_cycles: config.cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use samurai_units::{Energy, Length};

    #[test]
    fn constant_modes_bound_every_retention_time() {
        let config = VrtConfig::default();
        let report = run_vrt(&config).unwrap();
        assert_eq!(report.retention_times.len(), config.cycles);
        for &t in &report.retention_times {
            assert!(
                t >= report.t_bad * (1.0 - 1e-9) && t <= report.t_good * (1.0 + 1e-9),
                "retention {t} outside [{}, {}]",
                report.t_bad,
                report.t_good
            );
        }
    }

    #[test]
    fn slow_trap_produces_bimodal_retention() {
        // A trap much slower than the retention time: whole stretches
        // of cycles see one leakage mode, then the other.
        let config = VrtConfig {
            trap: TrapParams::new(Length::from_nanometres(1.75), Energy::from_ev(0.02)),
            seed: 3,
            ..VrtConfig::default()
        };
        let report = run_vrt(&config).unwrap();
        let model = PropensityModel::new(config.device, config.trap);
        // Sanity: the trap really is slow relative to retention.
        assert!(model.rate_sum() * report.t_good < 0.5);
        assert!(
            report.is_bimodal(2.0),
            "retention histogram should be bimodal; bad-mode fraction {}",
            report.bad_mode_fraction()
        );
        assert!(report.bad_mode_fraction() > 0.02 && report.bad_mode_fraction() < 0.98);
    }

    #[test]
    fn pinned_trap_gives_constant_retention() {
        // A trap pinned strongly empty (large positive energy at the
        // hold bias): every cycle retains for t_good.
        let config = VrtConfig {
            trap: TrapParams::new(Length::from_nanometres(1.9), Energy::from_ev(0.8)),
            cycles: 50,
            ..VrtConfig::default()
        };
        let report = run_vrt(&config).unwrap();
        for &t in &report.retention_times {
            assert!((t - report.t_good).abs() < 1e-6 * report.t_good);
        }
        assert!(!report.is_bimodal(1.0));
    }

    #[test]
    fn event_budget_rescue_halves_the_experiment() {
        // A fast trap under a tight budget: the full 100-cycle horizon
        // blows the cap, but some halving of it fits.
        let config = VrtConfig {
            trap: TrapParams::new(Length::from_nanometres(1.05), Energy::from_ev(0.02)),
            cycles: 100,
            seed: 5,
            event_budget: Some(2_000),
            ..VrtConfig::default()
        };
        let report = run_vrt(&config).unwrap();
        assert!(report.was_truncated(), "budget should force truncation");
        assert_eq!(report.requested_cycles, 100);
        // The effective count is the requested count halved some
        // integral number of times.
        let n = report.effective_cycles();
        assert!([50, 25, 12, 6, 3, 1].contains(&n), "{n}");
        // The shortened run is itself deterministic.
        let again = run_vrt(&config).unwrap();
        assert_eq!(report.retention_times, again.retention_times);
        // A hopeless budget (too small even for one cycle) propagates.
        let hopeless = VrtConfig {
            event_budget: Some(3),
            ..config
        };
        assert!(matches!(
            run_vrt(&hopeless),
            Err(SramError::Rtn(CoreError::EventBudgetExceeded { .. }))
        ));
    }

    #[test]
    fn a_job_budget_truncates_to_an_exact_prefix() {
        let full = VrtConfig {
            cycles: 60,
            seed: 3,
            ..VrtConfig::default()
        };
        let capped = VrtConfig {
            budget: RunBudget::unlimited().jobs(25),
            ..full.clone()
        };
        let full_report = run_vrt(&full).unwrap();
        let capped_report = run_vrt(&capped).unwrap();
        assert!(capped_report.was_truncated());
        assert_eq!(capped_report.effective_cycles(), 25);
        assert_eq!(capped_report.requested_cycles, 60);
        // Prefix-deterministic: the capped run measures exactly the
        // first 25 cycles of the uncapped one.
        assert_eq!(
            capped_report.retention_times,
            full_report.retention_times[..25]
        );
        // A budget looser than the experiment changes nothing.
        let loose = VrtConfig {
            budget: RunBudget::unlimited().jobs(600),
            ..full
        };
        let loose_report = run_vrt(&loose).unwrap();
        assert!(!loose_report.was_truncated());
        assert_eq!(loose_report.retention_times, full_report.retention_times);
    }

    #[test]
    fn fast_trap_averages_out_the_modes() {
        // A fast trap (many toggles per retention) produces retention
        // times clustered between the two modes — not bimodal.
        let config = VrtConfig {
            trap: TrapParams::new(Length::from_nanometres(1.05), Energy::from_ev(0.02)),
            cycles: 100,
            seed: 5,
            ..VrtConfig::default()
        };
        let report = run_vrt(&config).unwrap();
        let model = PropensityModel::new(config.device, config.trap);
        assert!(model.rate_sum() * report.t_good > 50.0);
        assert!(!report.is_bimodal(2.0), "fast trap must not look bimodal");
        // Mean retention sits strictly between the pinned modes.
        let mean: f64 =
            report.retention_times.iter().sum::<f64>() / report.retention_times.len() as f64;
        assert!(
            mean > report.t_bad * 1.05 && mean < report.t_good * 0.95,
            "mean {mean}"
        );
    }
}
