//! Write test patterns: bit lines and word-line strobes.

use samurai_waveform::{BitPattern, DigitalTiming, Pwl};

use crate::SramError;

/// Timing of a sequence of write cycles.
///
/// Each cycle: the bit lines settle to the bit value early in the
/// cycle, the word line is asserted between `wl_on_frac` and
/// `wl_off_frac` of the cycle, and the cell must hold the value after
/// `WL` falls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WriteTiming {
    /// Cycle period in seconds.
    pub period: f64,
    /// Edge (rise/fall) time of every driven waveform, in seconds.
    pub edge: f64,
    /// Fraction of the period at which `WL` rises.
    pub wl_on_frac: f64,
    /// Fraction of the period at which `WL` falls.
    pub wl_off_frac: f64,
    /// Logic-high level (the cell's `V_dd`).
    pub vdd: f64,
}

impl Default for WriteTiming {
    fn default() -> Self {
        Self {
            period: 2e-9,
            edge: 50e-12,
            wl_on_frac: 0.25,
            wl_off_frac: 0.7,
            vdd: 1.1,
        }
    }
}

impl WriteTiming {
    /// Absolute time at which `WL` rises in cycle `i`.
    pub fn wl_on(&self, cycle: usize) -> f64 {
        (cycle as f64 + self.wl_on_frac) * self.period
    }

    /// Absolute time at which `WL` starts falling in cycle `i`.
    pub fn wl_off(&self, cycle: usize) -> f64 {
        (cycle as f64 + self.wl_off_frac) * self.period
    }

    /// End of cycle `i`.
    pub fn cycle_end(&self, cycle: usize) -> f64 {
        (cycle as f64 + 1.0) * self.period
    }

    /// Total duration of `n` cycles.
    pub fn duration(&self, cycles: usize) -> f64 {
        cycles as f64 * self.period
    }
}

/// The three driven waveforms of a write sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteWaveforms {
    /// Word line (strobed every cycle).
    pub wl: Pwl,
    /// Bit line (NRZ of the pattern).
    pub bl: Pwl,
    /// Complement bit line (NRZ of the inverted pattern).
    pub blb: Pwl,
}

/// Builds the `WL`/`BL`/`BLB` waveforms that write `pattern` with the
/// given `timing` (paper Fig 4, left, generalised to a pattern).
///
/// # Errors
///
/// Returns [`SramError::InvalidConfig`] for empty patterns or timing
/// whose edges do not fit.
pub fn build_write_waveforms(
    pattern: &BitPattern,
    timing: &WriteTiming,
) -> Result<WriteWaveforms, SramError> {
    if pattern.is_empty() {
        return Err(SramError::InvalidConfig {
            reason: "bit pattern must be non-empty",
        });
    }
    if !(0.0 < timing.wl_on_frac
        && timing.wl_on_frac < timing.wl_off_frac
        && timing.wl_off_frac < 1.0)
    {
        return Err(SramError::InvalidConfig {
            reason: "need 0 < wl_on_frac < wl_off_frac < 1",
        });
    }
    let digital =
        DigitalTiming::new(timing.period, timing.edge, 0.0, timing.vdd).map_err(SramError::from)?;
    let inverted = BitPattern::new(pattern.iter().map(|b| !b).collect());
    let wl = digital.strobe(0.0, pattern.len(), timing.wl_on_frac, timing.wl_off_frac);
    let bl = digital.nrz(pattern, 0.0);
    let blb = digital.nrz(&inverted, 0.0);
    Ok(WriteWaveforms { wl, bl, blb })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waveforms_encode_the_pattern() {
        let pattern = BitPattern::parse("101").unwrap();
        let timing = WriteTiming::default();
        let w = build_write_waveforms(&pattern, &timing).unwrap();
        for (i, bit) in pattern.iter().enumerate() {
            let mid = (i as f64 + 0.5) * timing.period;
            let expected = if bit { timing.vdd } else { 0.0 };
            assert!((w.bl.eval(mid) - expected).abs() < 1e-9, "cycle {i} BL");
            assert!(
                (w.blb.eval(mid) - (timing.vdd - expected)).abs() < 1e-9,
                "cycle {i} BLB"
            );
            assert!(
                (w.wl.eval(mid) - timing.vdd).abs() < 1e-9,
                "cycle {i} WL high"
            );
            // WL low at the start of each cycle.
            let early = (i as f64 + 0.1) * timing.period;
            assert!(w.wl.eval(early) < 1e-9, "cycle {i} WL low early");
        }
    }

    #[test]
    fn timing_helpers_are_consistent() {
        let t = WriteTiming::default();
        assert!(t.wl_on(0) < t.wl_off(0));
        assert!(t.wl_off(0) < t.cycle_end(0));
        assert!((t.duration(9) - 18e-9).abs() < 1e-18);
        assert!((t.wl_on(3) - t.wl_on(2) - t.period).abs() < 1e-18);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let pattern = BitPattern::parse("1").unwrap();
        let bad_fracs = WriteTiming {
            wl_on_frac: 0.8,
            wl_off_frac: 0.2,
            ..WriteTiming::default()
        };
        assert!(build_write_waveforms(&pattern, &bad_fracs).is_err());
        let empty = BitPattern::new(vec![]);
        assert!(build_write_waveforms(&empty, &WriteTiming::default()).is_err());
    }
}
