//! Write-error and write-slowdown detection (the Fig 5 taxonomy).
//!
//! The paper distinguishes three per-cycle outcomes:
//!
//! * **clean** — `Q` reaches the written value before the word line is
//!   de-asserted;
//! * **slow** — `Q` ends up correct, but only settles *after* `WL`
//!   falls (a read in the interim would return the wrong value);
//! * **error** — `Q` holds the wrong value at the end of the cycle.

use samurai_waveform::{BitPattern, Pwl};

use crate::WriteTiming;

/// Classification of one write cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleOutcome {
    /// The value was written within the word-line window.
    Clean,
    /// The value settled only after the word line fell (paper Fig 5,
    /// middle).
    Slow,
    /// The value was never written — a write error (paper Fig 5,
    /// bottom).
    Error,
}

/// Per-cycle analysis of a write sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteAnalysis {
    /// One outcome per pattern bit.
    pub outcomes: Vec<CycleOutcome>,
    /// `Q` at the end of each cycle, in volts.
    pub final_q: Vec<f64>,
    /// Settle time of each cycle relative to the cycle start (time at
    /// which `Q` last entered the correct half and stayed), `None` if
    /// it never settled.
    pub settle_time: Vec<Option<f64>>,
}

impl WriteAnalysis {
    /// Number of write errors in the sequence.
    pub fn error_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|&&o| o == CycleOutcome::Error)
            .count()
    }

    /// Number of slow writes in the sequence.
    pub fn slow_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|&&o| o == CycleOutcome::Slow)
            .count()
    }

    /// `true` when every cycle wrote cleanly.
    pub fn all_clean(&self) -> bool {
        self.outcomes.iter().all(|&o| o == CycleOutcome::Clean)
    }
}

/// Analyses a simulated `Q` waveform against the written pattern.
///
/// `q` must cover `[0, timing.duration(pattern.len())]`. A cycle's
/// value is read at 99 % of the cycle; "settled" means `Q` is on the
/// correct side of `V_dd/2` with 20 % noise margin from then backwards.
///
/// # Panics
///
/// Panics if the pattern is empty.
pub fn analyze_writes(q: &Pwl, pattern: &BitPattern, timing: &WriteTiming) -> WriteAnalysis {
    assert!(!pattern.is_empty(), "pattern must be non-empty");
    let vdd = timing.vdd;
    let hi_threshold = 0.7 * vdd;
    let lo_threshold = 0.3 * vdd;
    let correct = |v: f64, bit: bool| {
        if bit {
            v >= hi_threshold
        } else {
            v <= lo_threshold
        }
    };

    let mut outcomes = Vec::with_capacity(pattern.len());
    let mut final_q = Vec::with_capacity(pattern.len());
    let mut settle_time = Vec::with_capacity(pattern.len());

    for (cycle, bit) in pattern.iter().enumerate() {
        let t_start = cycle as f64 * timing.period;
        let t_end = timing.cycle_end(cycle) - 0.01 * timing.period;
        let v_end = q.eval(t_end);
        final_q.push(v_end);

        if !correct(v_end, bit) {
            outcomes.push(CycleOutcome::Error);
            settle_time.push(None);
            continue;
        }

        // Scan backwards on a fine grid for the moment Q last became
        // correct (and stayed correct until the end of the cycle).
        let steps = 400usize;
        let dt = (t_end - t_start) / steps as f64;
        let mut settled_at = t_start;
        for k in (0..steps).rev() {
            let t = t_start + k as f64 * dt;
            if !correct(q.eval(t), bit) {
                settled_at = t + dt;
                break;
            }
        }
        settle_time.push(Some(settled_at - t_start));

        // Slow write: settled only after WL fell (plus half an edge of
        // grace for the falling-edge transient).
        let wl_deadline = timing.wl_off(cycle) - t_start + 0.5 * timing.edge;
        if settled_at - t_start > wl_deadline {
            outcomes.push(CycleOutcome::Slow);
        } else {
            outcomes.push(CycleOutcome::Clean);
        }
    }

    WriteAnalysis {
        outcomes,
        final_q,
        settle_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> WriteTiming {
        WriteTiming::default()
    }

    /// Builds a synthetic Q waveform that transitions to `target` at
    /// `t_switch` within each cycle described.
    fn synthetic_q(segments: &[(f64, f64)]) -> Pwl {
        // segments: (time, value) breakpoints.
        Pwl::new(segments.to_vec()).unwrap()
    }

    #[test]
    fn clean_write_is_detected() {
        let t = timing();
        // Q rises to vdd right at WL assertion of cycle 0.
        let q = synthetic_q(&[
            (0.0, 0.0),
            (t.wl_on(0) + 0.1e-9, 0.0),
            (t.wl_on(0) + 0.2e-9, 1.1),
        ]);
        let a = analyze_writes(&q, &BitPattern::parse("1").unwrap(), &t);
        assert_eq!(a.outcomes, vec![CycleOutcome::Clean]);
        assert!(a.all_clean());
        assert_eq!(a.error_count(), 0);
    }

    #[test]
    fn slow_write_is_detected() {
        let t = timing();
        // Q only reaches its value well after WL falls.
        let late = t.wl_off(0) + 0.4e-9;
        let q = synthetic_q(&[(0.0, 0.0), (late, 0.0), (late + 0.05e-9, 1.1)]);
        let a = analyze_writes(&q, &BitPattern::parse("1").unwrap(), &t);
        assert_eq!(a.outcomes, vec![CycleOutcome::Slow]);
        assert_eq!(a.slow_count(), 1);
        assert!(a.settle_time[0].unwrap() > t.wl_off_frac * t.period);
    }

    #[test]
    fn write_error_is_detected() {
        let t = timing();
        // Q never leaves 0 although a 1 was written.
        let q = synthetic_q(&[(0.0, 0.05)]);
        let a = analyze_writes(&q, &BitPattern::parse("1").unwrap(), &t);
        assert_eq!(a.outcomes, vec![CycleOutcome::Error]);
        assert_eq!(a.error_count(), 1);
        assert!(a.settle_time[0].is_none());
    }

    #[test]
    fn multi_cycle_pattern_is_classified_per_cycle() {
        let t = timing();
        // Cycle 0: clean 1. Cycle 1: should write 0 but stays high -> error.
        let q = synthetic_q(&[(0.0, 0.0), (t.wl_on(0), 0.0), (t.wl_on(0) + 0.1e-9, 1.1)]);
        let a = analyze_writes(&q, &BitPattern::parse("10").unwrap(), &t);
        assert_eq!(a.outcomes, vec![CycleOutcome::Clean, CycleOutcome::Error]);
        assert!((a.final_q[1] - 1.1).abs() < 1e-9);
    }

    #[test]
    fn marginal_levels_count_as_errors() {
        let t = timing();
        // Q stuck at mid-rail: neither a solid 1 nor a solid 0.
        let q = synthetic_q(&[(0.0, 0.55)]);
        let ones = analyze_writes(&q, &BitPattern::parse("1").unwrap(), &t);
        let zeros = analyze_writes(&q, &BitPattern::parse("0").unwrap(), &t);
        assert_eq!(ones.outcomes, vec![CycleOutcome::Error]);
        assert_eq!(zeros.outcomes, vec![CycleOutcome::Error]);
    }
}
