//! Plain-counter statistic bundles incremented in hot loops.
//!
//! These are deliberately bare `u64` fields, not sink calls: a field
//! increment is branch-free, allocation-free and deterministic, so the
//! solver and sampler hot loops can maintain them unconditionally
//! (they already did, as the PR4 `rescue_rungs_fired()` counters).
//! Sinks and journals consume the bundles at *job boundaries* only.

/// Counters a compiled-circuit solver accumulates across a run.
///
/// Lives on the persistent `NewtonWorkspace`, so by default the
/// counts span the workspace's whole lifetime (e.g. both SPICE passes
/// of the Fig 8 methodology). Use [`SolverStats::delta_since`] for
/// per-phase accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Newton solves started (DC operating point attempts, homotopy
    /// rungs and transient trial steps all count once each).
    pub solve_attempts: u64,
    /// Newton iterations across all solves.
    pub newton_iterations: u64,
    /// Transient steps accepted by the local-truncation control.
    pub steps_accepted: u64,
    /// Transient trial steps rejected (halved and retried).
    pub timestep_rejections: u64,
    /// Gmin rungs fired by the transient rescue ladder.
    pub rescue_gmin_rungs: u64,
    /// Config rungs (iterations ×2ᵏ / clamp ÷2ᵏ) fired by the ladder.
    pub rescue_config_rungs: u64,
    /// Fault-plan arms that actually triggered (solve- or step-site).
    pub faults_injected: u64,
}

impl SolverStats {
    /// Adds another bundle's counts into this one.
    pub fn add(&mut self, other: Self) {
        self.solve_attempts += other.solve_attempts;
        self.newton_iterations += other.newton_iterations;
        self.steps_accepted += other.steps_accepted;
        self.timestep_rejections += other.timestep_rejections;
        self.rescue_gmin_rungs += other.rescue_gmin_rungs;
        self.rescue_config_rungs += other.rescue_config_rungs;
        self.faults_injected += other.faults_injected;
    }

    /// The counts accumulated since an earlier snapshot of the same
    /// workspace (field-wise saturating difference).
    #[must_use]
    pub fn delta_since(&self, earlier: Self) -> Self {
        Self {
            solve_attempts: self.solve_attempts.saturating_sub(earlier.solve_attempts),
            newton_iterations: self
                .newton_iterations
                .saturating_sub(earlier.newton_iterations),
            steps_accepted: self.steps_accepted.saturating_sub(earlier.steps_accepted),
            timestep_rejections: self
                .timestep_rejections
                .saturating_sub(earlier.timestep_rejections),
            rescue_gmin_rungs: self
                .rescue_gmin_rungs
                .saturating_sub(earlier.rescue_gmin_rungs),
            rescue_config_rungs: self
                .rescue_config_rungs
                .saturating_sub(earlier.rescue_config_rungs),
            faults_injected: self.faults_injected.saturating_sub(earlier.faults_injected),
        }
    }

    /// `true` when every counter is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// The rescue-ladder firings as the PR4 `(gmin, config)` pair.
    #[must_use]
    pub fn rescue_rungs(&self) -> (u64, u64) {
        (self.rescue_gmin_rungs, self.rescue_config_rungs)
    }
}

/// The per-job scenario ticket: the sampled-scenario hash plus the
/// aging stress time, journalled with every job so a quarantined or
/// rescued cell is attributable to its exact process/voltage/
/// temperature/aging corner.
///
/// Copied (not computed) at the job boundary: the scenario layer
/// stamps it once when the sample is drawn, so carrying it costs two
/// plain stores in the hot path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScenarioStamp {
    /// SplitMix64 fold over every value the scenario sampler drew.
    pub hash: u64,
    /// NBTI stress time of the scenario, seconds.
    pub aging_seconds: f64,
}

/// Counters the uniformisation sampler accumulates per trap
/// simulation: the Markov-uniformisation candidate loop's
/// accept/reject tally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrapStats {
    /// Candidate transition epochs drawn from the dominating Poisson
    /// process.
    pub candidates: u64,
    /// Candidates accepted as real capture/emission transitions.
    pub accepted: u64,
}

impl TrapStats {
    /// Adds another bundle's counts into this one.
    pub fn add(&mut self, other: Self) {
        self.candidates += other.candidates;
        self.accepted += other.accepted;
    }

    /// `true` when every counter is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_stats_add_and_delta_roundtrip() {
        let mut a = SolverStats {
            solve_attempts: 2,
            newton_iterations: 10,
            ..SolverStats::default()
        };
        let before = a;
        a.add(SolverStats {
            solve_attempts: 1,
            newton_iterations: 4,
            timestep_rejections: 3,
            ..SolverStats::default()
        });
        let d = a.delta_since(before);
        assert_eq!(d.solve_attempts, 1);
        assert_eq!(d.newton_iterations, 4);
        assert_eq!(d.timestep_rejections, 3);
        assert!(!a.is_empty());
        assert!(SolverStats::default().is_empty());
    }

    #[test]
    fn trap_stats_accumulate() {
        let mut t = TrapStats::default();
        t.add(TrapStats {
            candidates: 7,
            accepted: 3,
        });
        assert_eq!((t.candidates, t.accepted), (7, 3));
    }
}
