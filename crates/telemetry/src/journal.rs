//! The job-ordered event journal.
//!
//! A [`Journal`] is a flat list of [`JournalEvent`]s serialised as
//! JSON Lines: one self-contained JSON object per line, in the order
//! the events were pushed. Producers (the ensemble engine, failure
//! reports, bench bins) push events **after the ordered shard merge**,
//! strictly in job order — so a journal is byte-identical at every
//! worker count.
//!
//! Determinism rule: events carry counts, indices and seeds only —
//! never wall-clock time. Durations belong to metric sinks (see the
//! crate-level contract).

use std::io::Write as _;
use std::path::Path;

use crate::json::JsonValue;
use crate::stats::{ScenarioStamp, SolverStats, TrapStats};

/// One journal entry.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// A completed ensemble job with its solver/sampler statistics.
    Job {
        /// The stable job index.
        job: usize,
        /// The rescue rung it finally succeeded on (`None` = nominal).
        rescued_rung: Option<usize>,
        /// Solver counters the job accumulated.
        solver: SolverStats,
        /// Uniformisation accept/reject counters the job accumulated.
        trap: TrapStats,
        /// The job's scenario ticket (hash + aging time). `None` for
        /// jobs outside a scenario sweep, whose serialised lines stay
        /// byte-identical to the pre-scenario schema.
        scenario: Option<ScenarioStamp>,
    },
    /// A job that needed the rescue ladder and survived.
    Rescued {
        /// The stable job index.
        job: usize,
        /// The rung (≥ 1) it succeeded on.
        rung: usize,
    },
    /// A job dropped by the quarantine policy.
    Quarantined {
        /// The stable job index.
        job: usize,
        /// The job's derived reproduction seed.
        seed: u64,
        /// Attempts made before giving up.
        rungs_attempted: usize,
        /// The final attempt's error, rendered as text.
        error: String,
    },
    /// A labelled count from outside the per-job flow (e.g. VRT
    /// event-budget halvings).
    Note {
        /// What was counted.
        label: String,
        /// The count.
        value: u64,
    },
}

impl JournalEvent {
    /// The event as a JSON object (one JSON-Lines line, unterminated).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        match self {
            Self::Job {
                job,
                rescued_rung,
                solver,
                trap,
                scenario,
            } => {
                let mut fields = vec![
                    ("event", JsonValue::Str("job".into())),
                    ("job", JsonValue::U64(*job as u64)),
                    (
                        "rescued_rung",
                        rescued_rung.map_or(JsonValue::Null, |r| JsonValue::U64(r as u64)),
                    ),
                    ("solve_attempts", JsonValue::U64(solver.solve_attempts)),
                    (
                        "newton_iterations",
                        JsonValue::U64(solver.newton_iterations),
                    ),
                    ("steps_accepted", JsonValue::U64(solver.steps_accepted)),
                    (
                        "timestep_rejections",
                        JsonValue::U64(solver.timestep_rejections),
                    ),
                    (
                        "rescue_gmin_rungs",
                        JsonValue::U64(solver.rescue_gmin_rungs),
                    ),
                    (
                        "rescue_config_rungs",
                        JsonValue::U64(solver.rescue_config_rungs),
                    ),
                    ("faults_injected", JsonValue::U64(solver.faults_injected)),
                    ("trap_candidates", JsonValue::U64(trap.candidates)),
                    ("trap_accepted", JsonValue::U64(trap.accepted)),
                ];
                if let Some(stamp) = scenario {
                    fields.push(("scenario_hash", JsonValue::U64(stamp.hash)));
                    fields.push(("aging_seconds", JsonValue::F64(stamp.aging_seconds)));
                }
                JsonValue::obj(fields)
            }
            Self::Rescued { job, rung } => JsonValue::obj(vec![
                ("event", JsonValue::Str("rescued".into())),
                ("job", JsonValue::U64(*job as u64)),
                ("rung", JsonValue::U64(*rung as u64)),
            ]),
            Self::Quarantined {
                job,
                seed,
                rungs_attempted,
                error,
            } => JsonValue::obj(vec![
                ("event", JsonValue::Str("quarantined".into())),
                ("job", JsonValue::U64(*job as u64)),
                ("seed", JsonValue::U64(*seed)),
                ("rungs_attempted", JsonValue::U64(*rungs_attempted as u64)),
                ("error", JsonValue::Str(error.clone())),
            ]),
            Self::Note { label, value } => JsonValue::obj(vec![
                ("event", JsonValue::Str("note".into())),
                ("label", JsonValue::Str(label.clone())),
                ("value", JsonValue::U64(*value)),
            ]),
        }
    }
}

/// An ordered list of [`JournalEvent`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Journal {
    events: Vec<JournalEvent>,
}

impl Journal {
    /// An empty journal.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event.
    pub fn push(&mut self, event: JournalEvent) {
        self.events.push(event);
    }

    /// Appends every event of `other`, in order.
    pub fn extend(&mut self, other: Journal) {
        self.events.extend(other.events);
    }

    /// The events, in push order.
    #[must_use]
    pub fn events(&self) -> &[JournalEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events were pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The whole journal as JSON Lines (one `\n`-terminated object per
    /// event; empty journal ⇒ empty string).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_json().to_json());
            out.push('\n');
        }
        out
    }

    /// The JSON-Lines serialisation of events `from..`, for
    /// incremental tailing: a consumer that remembers how many events
    /// it has already streamed calls `tail_jsonl(seen)` and appends
    /// the returned bytes. Because the journal is an append-only
    /// prefix structure (events are absorbed in job order after the
    /// ordered merge), concatenating successive tails reproduces
    /// [`Journal::to_jsonl`] byte for byte. `from` past the end
    /// yields the empty string.
    #[must_use]
    pub fn tail_jsonl(&self, from: usize) -> String {
        let mut out = String::new();
        for event in self.events.iter().skip(from) {
            out.push_str(&event.to_json().to_json());
            out.push('\n');
        }
        out
    }

    /// Writes the journal as a JSON-Lines file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_jsonl().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn jsonl_is_one_parseable_object_per_line() {
        let mut j = Journal::new();
        j.push(JournalEvent::Job {
            job: 3,
            rescued_rung: Some(1),
            solver: SolverStats {
                solve_attempts: 2,
                newton_iterations: 11,
                ..SolverStats::default()
            },
            trap: TrapStats {
                candidates: 40,
                accepted: 12,
            },
            scenario: None,
        });
        j.push(JournalEvent::Quarantined {
            job: 9,
            seed: 0xDEAD,
            rungs_attempted: 3,
            error: "NonConvergence".into(),
        });
        j.push(JournalEvent::Note {
            label: "vrt.budget_halvings".into(),
            value: 2,
        });
        let text = j.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let doc = json::parse(line).unwrap();
            assert!(doc.get("event").is_some(), "line {line}");
        }
        assert!(text.ends_with('\n'));
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(
            first.get("newton_iterations").and_then(JsonValue::as_f64),
            Some(11.0)
        );
        assert_eq!(
            first.get("rescued_rung").and_then(JsonValue::as_f64),
            Some(1.0)
        );
    }

    #[test]
    fn scenario_stamp_appends_after_the_legacy_keys() {
        let legacy = JournalEvent::Job {
            job: 0,
            rescued_rung: None,
            solver: SolverStats::default(),
            trap: TrapStats::default(),
            scenario: None,
        };
        let legacy_line = legacy.to_json().to_json();
        assert!(!legacy_line.contains("scenario_hash"));
        assert!(!legacy_line.contains("aging_seconds"));

        let stamped = JournalEvent::Job {
            job: 0,
            rescued_rung: None,
            solver: SolverStats::default(),
            trap: TrapStats::default(),
            scenario: Some(ScenarioStamp {
                hash: 0xABCD,
                aging_seconds: 1e8,
            }),
        };
        let line = stamped.to_json().to_json();
        // The legacy prefix is untouched; the stamp keys follow it.
        assert!(line.starts_with(legacy_line.trim_end_matches('}')));
        let doc = json::parse(&line).unwrap();
        assert_eq!(
            doc.get("scenario_hash").and_then(JsonValue::as_f64),
            Some(0xABCD as f64)
        );
        assert_eq!(
            doc.get("aging_seconds").and_then(JsonValue::as_f64),
            Some(1e8)
        );
    }

    #[test]
    fn extend_preserves_order() {
        let mut a = Journal::new();
        a.push(JournalEvent::Rescued { job: 1, rung: 1 });
        let mut b = Journal::new();
        b.push(JournalEvent::Rescued { job: 2, rung: 2 });
        a.extend(b);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert!(matches!(
            a.events()[1],
            JournalEvent::Rescued { job: 2, .. }
        ));
    }
}
