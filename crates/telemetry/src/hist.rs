//! Fixed-bucket histograms and percentile helpers.
//!
//! Bucket bounds are fixed by the caller at construction, never
//! adapted to the data — so two runs that observe the same values
//! produce the same counts regardless of observation order, and
//! bucket counts can be pinned as golden values in tests.

/// A histogram over caller-fixed bucket boundaries.
///
/// With bounds `[b0, b1, …, bn]` (strictly increasing), bucket `i`
/// counts observations `x` with `b(i-1) <= x < b(i)`; the first
/// bucket is `x < b0` and a final overflow bucket holds `x >= bn`,
/// for `n + 2` buckets in total.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedHistogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

impl FixedHistogram {
    /// A histogram with the given strictly-increasing bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    #[must_use]
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = bounds.len() + 1;
        Self {
            bounds,
            counts: vec![0; buckets],
            total: 0,
            sum: 0.0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        let idx = self.bounds.partition_point(|&b| b <= x);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += x;
    }

    /// The bucket bounds.
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts, overflow bucket last.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Merges another histogram with identical bounds into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bounds differ.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds mismatch");
        for (slot, v) in self.counts.iter_mut().zip(&other.counts) {
            *slot += v;
        }
        self.total += other.total;
        self.sum += other.sum;
    }
}

/// The nearest-rank percentile of an ascending-sorted sample.
///
/// `q` is in `[0, 1]`; an empty sample yields `0.0`. Nearest-rank is
/// exact and order-free, so percentiles of a deterministic sample are
/// themselves deterministic.
#[must_use]
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_line() {
        let mut h = FixedHistogram::new(vec![1.0, 10.0, 100.0]);
        for x in [0.5, 1.0, 5.0, 10.0, 99.0, 100.0, 1e6] {
            h.record(x);
        }
        // x < 1 | 1 <= x < 10 | 10 <= x < 100 | x >= 100
        assert_eq!(h.counts(), &[1, 2, 2, 2]);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = FixedHistogram::new(vec![1.0]);
        let mut b = a.clone();
        a.record(0.0);
        b.record(2.0);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1]);
        assert_eq!(a.total(), 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_bounds() {
        let _ = FixedHistogram::new(vec![2.0, 1.0]);
    }

    #[test]
    fn nearest_rank_percentiles() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&xs, 0.50), 50.0);
        assert_eq!(percentile(&xs, 0.95), 95.0);
        assert_eq!(percentile(&xs, 0.99), 99.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
