//! A hand-rolled JSON value, writer and minimal parser.
//!
//! The workspace builds hermetically against vendored dependency
//! stubs; the vendored `serde` is an API placeholder that serialises
//! nothing. Telemetry output (journal lines, `BENCH_*.json`
//! summaries) and the CI schema validator therefore use this small
//! self-contained implementation instead.
//!
//! Determinism notes: object members are emitted in insertion order
//! (callers insert in a fixed order), integers are carried exactly as
//! `u64`, and floats are written with Rust's shortest-roundtrip
//! formatting — the same input value always serialises to the same
//! bytes. Non-finite floats serialise as `null` (JSON has no NaN),
//! which the schema validator rejects as a missing finite number.

use std::fmt::{self, Write as _};

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An exact unsigned integer (counters, counts).
    U64(u64),
    /// A double-precision number (times, rates).
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered members.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, preserving order.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, JsonValue)>) -> Self {
        Self::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Looks up a member of an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            Self::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::U64(n) => Some(*n as f64),
            Self::F64(x) if x.is_finite() => Some(*x),
            _ => None,
        }
    }

    /// The value as an exact `u64`, if it is an unsigned integer.
    /// Unlike [`JsonValue::as_f64`] this never widens through floating
    /// point, so checkpoint bit-patterns round-trip exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialises the tree to compact JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out)
            .expect("writing into a String cannot fail"); // lint: allow(HYG002): fmt::Write on String is infallible
        out
    }

    fn write(&self, out: &mut String) -> fmt::Result {
        match self {
            Self::Null => out.write_str("null"),
            Self::Bool(b) => out.write_str(if *b { "true" } else { "false" }),
            Self::U64(n) => write!(out, "{n}"),
            Self::F64(x) if x.is_finite() => {
                // Guarantee a number token that parses back as f64
                // (write!("{x}") would print "1" for 1.0).
                // lint: allow(HYG004): exact integrality test picks the "%.1f" rendering
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(out, "{x:.1}")
                } else {
                    write!(out, "{x}")
                }
            }
            Self::F64(_) => out.write_str("null"),
            Self::Str(s) => write_escaped(out, s),
            Self::Arr(items) => {
                out.write_char('[')?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    item.write(out)?;
                }
                out.write_char(']')
            }
            Self::Obj(members) => {
                out.write_char('{')?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    write_escaped(out, k)?;
                    out.write_char(':')?;
                    v.write(out)?;
                }
                out.write_char('}')
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) -> fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

/// Parses a JSON document. Minimal but strict enough for schema
/// validation: the full value grammar with string escapes, no
/// trailing garbage.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error,
/// with its byte offset.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| format!("truncated \\u at byte {}", self.pos))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| format!("invalid \\u at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u at byte {}", self.pos))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid \\u at byte {}", self.pos))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        if !text.contains(['.', 'e', 'E', '-']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::U64(n));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::F64)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_summary_like_document() {
        let doc = JsonValue::obj(vec![
            ("name", JsonValue::Str("fig7".into())),
            ("jobs", JsonValue::U64(2700)),
            ("wall_seconds", JsonValue::F64(1.25)),
            (
                "latency",
                JsonValue::obj(vec![("p50_s", JsonValue::F64(4.5e-4))]),
            ),
            ("flags", JsonValue::Arr(vec![JsonValue::Bool(true)])),
        ]);
        let text = doc.to_json();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("jobs").and_then(JsonValue::as_f64), Some(2700.0));
        assert_eq!(back.get("name").and_then(JsonValue::as_str), Some("fig7"));
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(JsonValue::F64(2.0).to_json(), "2.0");
        assert_eq!(JsonValue::U64(2).to_json(), "2");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(JsonValue::F64(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::F64(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn strings_are_escaped_and_unescaped() {
        let doc = JsonValue::Str("a\"b\\c\nd\u{1}".into());
        let text = doc.to_json();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "1 2", "nul", "\"x"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parses_negative_and_exponent_numbers() {
        assert_eq!(parse("-1.5e3").unwrap(), JsonValue::F64(-1500.0));
        assert_eq!(parse("42").unwrap(), JsonValue::U64(42));
    }
}
