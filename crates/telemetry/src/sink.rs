//! Metric sinks: where counters and observations go.
//!
//! The [`MetricsSink`] trait is the compile-time switch of the whole
//! subsystem. Generic code instruments itself against `S: MetricsSink`
//! and guards every telemetry call on [`MetricsSink::live`]; with the
//! default [`NoopSink`] (`ENABLED = false`) the guard is a constant
//! `false` and the optimiser deletes the branch — hot loops keep the
//! PR2 allocation-free contract and bit-identical outputs for free.
//!
//! Inside declared `// lint: hot-loop` regions the guard is mandatory:
//! `samurai-lint` rule OBS001 rejects direct `.counter(..)` /
//! `.observe(..)` calls there and the [`count!`](crate::count)/[`observe!`](crate::observe) macros
//! are the sanctioned form.

use std::collections::BTreeMap;

use crate::hist::FixedHistogram;

/// A destination for counters and scalar observations.
pub trait MetricsSink {
    /// Whether this sink records anything. `false` makes every guarded
    /// telemetry site dead code.
    const ENABLED: bool;

    /// Adds `delta` to the counter named `key`.
    fn counter(&mut self, key: &'static str, delta: u64);

    /// Records one scalar observation under `key`.
    fn observe(&mut self, key: &'static str, value: f64);

    /// Runtime form of [`MetricsSink::ENABLED`], for guard branches.
    fn live(&self) -> bool {
        Self::ENABLED
    }
}

/// The default sink: records nothing, compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl MetricsSink for NoopSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn counter(&mut self, _key: &'static str, _delta: u64) {}

    #[inline(always)]
    fn observe(&mut self, _key: &'static str, _value: f64) {}
}

/// An in-memory recording sink: counters, raw observation samples,
/// and optional registered histograms.
///
/// Storage is `BTreeMap`-ordered so iteration (and thus any
/// serialisation) is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemorySink {
    counters: BTreeMap<&'static str, u64>,
    samples: BTreeMap<&'static str, Vec<f64>>,
    histograms: BTreeMap<&'static str, FixedHistogram>,
}

impl MemorySink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a fixed-bucket histogram: subsequent observations
    /// under `key` are additionally bucketed into it.
    #[must_use]
    pub fn with_histogram(mut self, key: &'static str, bounds: Vec<f64>) -> Self {
        self.histograms.insert(key, FixedHistogram::new(bounds));
        self
    }

    /// The current value of a counter (0 if never touched).
    #[must_use]
    pub fn counter_value(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// All counters, in key order.
    #[must_use]
    pub fn counters(&self) -> &BTreeMap<&'static str, u64> {
        &self.counters
    }

    /// The raw observations recorded under `key`, in arrival order.
    #[must_use]
    pub fn samples(&self, key: &str) -> &[f64] {
        self.samples.get(key).map_or(&[], Vec::as_slice)
    }

    /// The registered histogram under `key`, if any.
    #[must_use]
    pub fn histogram(&self, key: &str) -> Option<&FixedHistogram> {
        self.histograms.get(key)
    }
}

impl MetricsSink for MemorySink {
    const ENABLED: bool = true;

    fn counter(&mut self, key: &'static str, delta: u64) {
        *self.counters.entry(key).or_insert(0) += delta;
    }

    fn observe(&mut self, key: &'static str, value: f64) {
        self.samples.entry(key).or_default().push(value);
        if let Some(hist) = self.histograms.get_mut(key) {
            hist.record(value);
        }
    }
}

/// Adds to a counter through a [`MetricsSink`], guarded on
/// [`MetricsSink::live`] — the zero-cost form required inside
/// `// lint: hot-loop` regions (rule OBS001).
#[macro_export]
macro_rules! count {
    ($sink:expr, $key:expr, $delta:expr) => {
        if $crate::MetricsSink::live(&$sink) {
            $crate::MetricsSink::counter(&mut $sink, $key, $delta);
        }
    };
}

/// Records an observation through a [`MetricsSink`], guarded on
/// [`MetricsSink::live`] — the zero-cost form required inside
/// `// lint: hot-loop` regions (rule OBS001).
#[macro_export]
macro_rules! observe {
    ($sink:expr, $key:expr, $value:expr) => {
        if $crate::MetricsSink::live(&$sink) {
            $crate::MetricsSink::observe(&mut $sink, $key, $value);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_disabled_and_silent() {
        let mut sink = NoopSink;
        assert!(!sink.live());
        sink.counter("x", 1);
        sink.observe("y", 2.0);
    }

    #[test]
    fn memory_sink_accumulates() {
        let mut sink = MemorySink::new().with_histogram("lat", vec![1.0, 2.0]);
        sink.counter("n", 2);
        sink.counter("n", 3);
        sink.observe("lat", 0.5);
        sink.observe("lat", 1.5);
        sink.observe("other", 9.0);
        assert_eq!(sink.counter_value("n"), 5);
        assert_eq!(sink.samples("lat"), &[0.5, 1.5]);
        assert_eq!(sink.histogram("lat").unwrap().counts(), &[1, 1, 0]);
        assert!(sink.histogram("other").is_none());
        assert_eq!(sink.counter_value("missing"), 0);
    }

    #[test]
    fn guarded_macros_respect_liveness() {
        let mut mem = MemorySink::new();
        count!(mem, "hits", 1);
        observe!(mem, "v", 3.0);
        assert_eq!(mem.counter_value("hits"), 1);
        assert_eq!(mem.samples("v"), &[3.0]);

        let mut off = NoopSink;
        count!(off, "hits", 1); // compiles to nothing
        observe!(off, "v", 3.0);
    }
}
