//! Deterministic observability for the SAMURAI stack.
//!
//! The paper's practicality claim (§V: SAMURAI-driven Monte-Carlo over
//! large SRAM arrays) is a *throughput* claim, and every future
//! performance PR needs a measured baseline to argue against. This
//! crate is that baseline's substrate: counters, fixed-bucket
//! histograms, lightweight spans and a job-ordered event journal —
//! all dependency-free and, crucially, **deterministic by
//! construction**.
//!
//! # The determinism contract
//!
//! Observability must never perturb what it observes:
//!
//! 1. **Zero-cost when off.** The [`MetricsSink`] trait carries an
//!    associated `const ENABLED`; the default [`NoopSink`] sets it to
//!    `false`, so every telemetry branch guarded by
//!    [`MetricsSink::live`] (or the [`count!`]/[`observe!`] macros)
//!    is dead code the optimiser removes. Hot loops stay on the
//!    PR2 allocation-free contract.
//! 2. **Counts, not clocks, in the journal.** The [`Journal`] records
//!    only deterministic quantities (iteration counts, rescue rungs,
//!    accept/reject tallies). Wall-clock durations live exclusively
//!    in metric sinks and bench summaries, which are never
//!    byte-compared. The journal is therefore byte-identical at every
//!    worker count.
//! 3. **Wall-clock containment.** [`std::time::Instant`] is touched
//!    only inside this crate ([`Stopwatch`]), behind an explicit
//!    `samurai-lint` allowance. Simulation crates consume the
//!    [`Stopwatch`] API and can never feed time back into numeric
//!    state.
//!
//! # Layout
//!
//! - [`sink`]: the [`MetricsSink`] trait, [`NoopSink`], the recording
//!   [`MemorySink`], and the guarded [`count!`]/[`observe!`] macros.
//! - [`hist`]: [`FixedHistogram`] with caller-fixed bucket bounds.
//! - [`span`]: [`Stopwatch`] and [`Span`] monotonic timing.
//! - [`deadline`]: the injectable [`Deadline`] trait with
//!   [`NoDeadline`] and the wall-clock [`WallClockDeadline`] — the
//!   only clock the checkpointed ensemble runner may observe.
//! - [`stats`]: plain-counter bundles ([`SolverStats`], [`TrapStats`])
//!   incremented as bare `u64` fields in hot loops.
//! - [`journal`]: the job-ordered [`Journal`] of [`JournalEvent`]s
//!   with JSON-Lines serialisation.
//! - [`json`]: a hand-rolled JSON value type, writer and minimal
//!   parser (the vendored `serde` is an API stub and serialises
//!   nothing).
//! - [`recorder`]: [`Recorder`], the single handle the ensemble
//!   engine and bench bins thread through a run.

pub mod deadline;
pub mod hist;
pub mod journal;
pub mod json;
pub mod recorder;
pub mod sink;
pub mod span;
pub mod stats;

pub use deadline::{Deadline, NoDeadline, WallClockDeadline};
pub use hist::{percentile, FixedHistogram};
pub use journal::{Journal, JournalEvent};
pub use json::JsonValue;
pub use recorder::{JobProbe, JobRecord, MemoryRecorder, NoopRecorder, Recorder};
pub use sink::{MemorySink, MetricsSink, NoopSink};
pub use span::{Span, Stopwatch};
pub use stats::{ScenarioStamp, SolverStats, TrapStats};
