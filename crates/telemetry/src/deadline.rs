//! Injectable deadlines for budgeted ensemble runs.
//!
//! The ensemble engine must never read the clock itself — wall-clock
//! access is confined to this crate (lint rule `DET001`), and time fed
//! into control flow would make results scheduling-dependent. The
//! [`Deadline`] trait squares that circle: the engine consults an
//! injected `expired()` predicate **only at job-segment boundaries**
//! (never inside a shard), so a tripped deadline truncates the run at
//! a deterministic job boundary and every completed prefix is still
//! bit-identical to the same prefix of an uninterrupted run. *When*
//! the deadline trips is of course as nondeterministic as the clock
//! behind it; what was computed up to that point is not.
//!
//! [`NoDeadline`] is the zero-cost default; [`WallClockDeadline`] is
//! the real one, built on [`Stopwatch`] so `std::time::Instant` stays
//! inside this crate.

use crate::span::Stopwatch;

/// A predicate the ensemble engine polls between job segments to
/// decide whether to keep going.
pub trait Deadline {
    /// `true` once the run should stop claiming new work.
    fn expired(&self) -> bool;
}

/// The never-expiring deadline: the default for unbudgeted runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoDeadline;

impl Deadline for NoDeadline {
    fn expired(&self) -> bool {
        false
    }
}

/// A wall-clock deadline: expires `limit_seconds` after construction.
#[derive(Debug, Clone)]
pub struct WallClockDeadline {
    watch: Stopwatch,
    limit_seconds: f64,
}

impl WallClockDeadline {
    /// Starts the clock now; the deadline expires after
    /// `limit_seconds` of wall time.
    #[must_use]
    pub fn after_seconds(limit_seconds: f64) -> Self {
        Self {
            watch: Stopwatch::start(),
            limit_seconds,
        }
    }

    /// Seconds left before expiry (clamped at zero).
    #[must_use]
    pub fn remaining_seconds(&self) -> f64 {
        (self.limit_seconds - self.watch.elapsed_seconds()).max(0.0)
    }
}

impl Deadline for WallClockDeadline {
    fn expired(&self) -> bool {
        self.watch.elapsed_seconds() >= self.limit_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_deadline_never_expires() {
        assert!(!NoDeadline.expired());
    }

    #[test]
    fn generous_wall_clock_deadline_is_not_yet_expired() {
        let d = WallClockDeadline::after_seconds(3600.0);
        assert!(!d.expired());
        assert!(d.remaining_seconds() > 3500.0);
    }

    #[test]
    fn zero_wall_clock_deadline_expires_immediately() {
        let d = WallClockDeadline::after_seconds(0.0);
        assert!(d.expired());
        assert_eq!(d.remaining_seconds(), 0.0);
    }
}
