//! The [`Recorder`]: one handle threading metrics + journal through a
//! run, and the [`JobProbe`]/[`JobRecord`] plumbing the ensemble
//! engine uses to carry per-job statistics across threads.
//!
//! Flow: worker threads fill a [`JobProbe`] per job (plain counter
//! copies, no locks, no clocks in shared state); the engine bundles
//! each finished job into a [`JobRecord`] inside its shard outcome;
//! after the deterministic shard merge the single-threaded
//! [`Recorder`] absorbs the records **in job order** — journal lines,
//! sink counters and the latency sample all come from that ordered
//! pass, which is why they are worker-count independent.

use crate::hist::percentile;
use crate::journal::{Journal, JournalEvent};
use crate::json::JsonValue;
use crate::sink::{MemorySink, MetricsSink, NoopSink};
use crate::stats::{ScenarioStamp, SolverStats, TrapStats};

/// Per-job statistics collection point handed to job closures.
///
/// A dead probe (from a [`NoopRecorder`] run) ignores everything, so
/// instrumented closures cost two predictable branches when telemetry
/// is off.
#[derive(Debug, Clone, Copy, Default)]
pub struct JobProbe {
    live: bool,
    solver: SolverStats,
    trap: TrapStats,
    scenario: Option<ScenarioStamp>,
}

impl JobProbe {
    /// A probe that records iff `live`.
    #[must_use]
    pub fn new(live: bool) -> Self {
        Self {
            live,
            ..Self::default()
        }
    }

    /// A probe that ignores everything.
    #[must_use]
    pub fn disabled() -> Self {
        Self::new(false)
    }

    /// Whether this probe records.
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.live
    }

    /// Adds a solver-counter bundle (typically a workspace delta).
    pub fn record_solver(&mut self, stats: SolverStats) {
        if self.live {
            self.solver.add(stats);
        }
    }

    /// Adds a uniformisation accept/reject bundle.
    pub fn record_trap(&mut self, stats: TrapStats) {
        if self.live {
            self.trap.add(stats);
        }
    }

    /// The solver counters recorded so far.
    #[must_use]
    pub fn solver(&self) -> SolverStats {
        self.solver
    }

    /// The trap counters recorded so far.
    #[must_use]
    pub fn trap(&self) -> TrapStats {
        self.trap
    }

    /// Stamps the job's scenario ticket (hash + aging time). Jobs
    /// outside a scenario sweep never call this, so their journal
    /// lines keep the legacy schema.
    pub fn record_scenario(&mut self, stamp: ScenarioStamp) {
        if self.live {
            self.scenario = Some(stamp);
        }
    }

    /// The scenario ticket recorded for this job, if any.
    #[must_use]
    pub fn scenario(&self) -> Option<ScenarioStamp> {
        self.scenario
    }
}

/// One finished job's statistics, as carried home by a worker.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The stable job index.
    pub job: usize,
    /// Wall-clock seconds the job took (metrics only — never
    /// journalled).
    pub seconds: f64,
    /// The rescue rung it succeeded on (`None` = nominal attempt).
    pub rescued: Option<usize>,
    /// Solver counters from the job's probe.
    pub solver: SolverStats,
    /// Trap counters from the job's probe.
    pub trap: TrapStats,
    /// Scenario ticket from the job's probe (`None` outside scenario
    /// sweeps, keeping legacy journal lines byte-identical).
    pub scenario: Option<ScenarioStamp>,
}

impl JobRecord {
    /// Serialises the record for a checkpoint snapshot. Every number
    /// is carried as an exact `u64` — floats travel as their IEEE-754
    /// bit patterns — so a resumed run reproduces the record
    /// bit-for-bit and the journal it feeds stays byte-identical.
    #[must_use]
    pub fn to_checkpoint_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("job", JsonValue::U64(self.job as u64)),
            ("seconds_bits", JsonValue::U64(self.seconds.to_bits())),
            (
                "rescued",
                match self.rescued {
                    Some(rung) => JsonValue::U64(rung as u64),
                    None => JsonValue::Null,
                },
            ),
            (
                "solver",
                JsonValue::Arr(
                    [
                        self.solver.solve_attempts,
                        self.solver.newton_iterations,
                        self.solver.steps_accepted,
                        self.solver.timestep_rejections,
                        self.solver.rescue_gmin_rungs,
                        self.solver.rescue_config_rungs,
                        self.solver.faults_injected,
                    ]
                    .iter()
                    .map(|&n| JsonValue::U64(n))
                    .collect(),
                ),
            ),
            (
                "trap",
                JsonValue::Arr(vec![
                    JsonValue::U64(self.trap.candidates),
                    JsonValue::U64(self.trap.accepted),
                ]),
            ),
            (
                "scenario",
                match self.scenario {
                    Some(stamp) => JsonValue::obj(vec![
                        ("hash", JsonValue::U64(stamp.hash)),
                        (
                            "aging_seconds_bits",
                            JsonValue::U64(stamp.aging_seconds.to_bits()),
                        ),
                    ]),
                    None => JsonValue::Null,
                },
            ),
        ])
    }

    /// Rebuilds a record written by [`JobRecord::to_checkpoint_json`].
    /// Returns `None` on any structural mismatch — checkpoint loaders
    /// treat that as corruption and degrade to a cold start.
    #[must_use]
    pub fn from_checkpoint_json(v: &JsonValue) -> Option<Self> {
        let solver = match v.get("solver")? {
            JsonValue::Arr(items) if items.len() == 7 => {
                let mut n = items.iter().map(JsonValue::as_u64);
                SolverStats {
                    solve_attempts: n.next()??,
                    newton_iterations: n.next()??,
                    steps_accepted: n.next()??,
                    timestep_rejections: n.next()??,
                    rescue_gmin_rungs: n.next()??,
                    rescue_config_rungs: n.next()??,
                    faults_injected: n.next()??,
                }
            }
            _ => return None,
        };
        let trap = match v.get("trap")? {
            JsonValue::Arr(items) if items.len() == 2 => TrapStats {
                candidates: items[0].as_u64()?,
                accepted: items[1].as_u64()?,
            },
            _ => return None,
        };
        let scenario = match v.get("scenario")? {
            JsonValue::Null => None,
            stamp => Some(ScenarioStamp {
                hash: stamp.get("hash")?.as_u64()?,
                aging_seconds: f64::from_bits(stamp.get("aging_seconds_bits")?.as_u64()?),
            }),
        };
        let rescued = match v.get("rescued")? {
            JsonValue::Null => None,
            rung => Some(usize::try_from(rung.as_u64()?).ok()?),
        };
        Some(Self {
            job: usize::try_from(v.get("job")?.as_u64()?).ok()?,
            seconds: f64::from_bits(v.get("seconds_bits")?.as_u64()?),
            rescued,
            solver,
            trap,
            scenario,
        })
    }
}

/// The single-threaded collection handle for one observed run.
///
/// Generic over the sink so a [`NoopRecorder`] is compile-time dead:
/// [`Recorder::live`] is `Sink::ENABLED`, and the ensemble engine
/// skips probe/record work entirely when it is `false`.
#[derive(Debug, Clone, Default)]
pub struct Recorder<S: MetricsSink> {
    sink: S,
    journal: Journal,
    job_seconds: Vec<f64>,
    solver_totals: SolverStats,
    trap_totals: TrapStats,
}

/// A recorder that observes nothing, at zero cost.
pub type NoopRecorder = Recorder<NoopSink>;

/// A recorder over an in-memory sink.
pub type MemoryRecorder = Recorder<MemorySink>;

impl Recorder<NoopSink> {
    /// The do-nothing recorder.
    #[must_use]
    pub fn noop() -> Self {
        Self::default()
    }
}

impl Recorder<MemorySink> {
    /// A recording recorder over a fresh [`MemorySink`].
    #[must_use]
    pub fn recording() -> Self {
        Self::default()
    }
}

impl<S: MetricsSink> Recorder<S> {
    /// A recorder over an explicit sink.
    #[must_use]
    pub fn with_sink(sink: S) -> Self {
        Self {
            sink,
            journal: Journal::new(),
            job_seconds: Vec::new(),
            solver_totals: SolverStats::default(),
            trap_totals: TrapStats::default(),
        }
    }

    /// Whether anything is recorded at all.
    #[must_use]
    pub fn live(&self) -> bool {
        self.sink.live()
    }

    /// Absorbs one finished job: a journal line (counts only), sink
    /// counters, and the latency sample. Call in job order.
    pub fn absorb_job(&mut self, rec: &JobRecord) {
        if !self.live() {
            return;
        }
        self.journal.push(JournalEvent::Job {
            job: rec.job,
            rescued_rung: rec.rescued,
            solver: rec.solver,
            trap: rec.trap,
            scenario: rec.scenario,
        });
        self.solver_totals.add(rec.solver);
        self.trap_totals.add(rec.trap);
        self.job_seconds.push(rec.seconds);
        self.sink.counter("jobs.completed", 1);
        if rec.rescued.is_some() {
            self.sink.counter("jobs.rescued", 1);
        }
        self.sink
            .counter("solver.solve_attempts", rec.solver.solve_attempts);
        self.sink
            .counter("solver.newton_iterations", rec.solver.newton_iterations);
        self.sink
            .counter("solver.steps_accepted", rec.solver.steps_accepted);
        self.sink
            .counter("solver.timestep_rejections", rec.solver.timestep_rejections);
        self.sink
            .counter("solver.rescue_gmin_rungs", rec.solver.rescue_gmin_rungs);
        self.sink
            .counter("solver.rescue_config_rungs", rec.solver.rescue_config_rungs);
        self.sink
            .counter("solver.faults_injected", rec.solver.faults_injected);
        self.sink.counter("trap.candidates", rec.trap.candidates);
        self.sink.counter("trap.accepted", rec.trap.accepted);
        self.sink.observe("job.seconds", rec.seconds);
    }

    /// Journals a rescue outcome (summary line, after the job lines).
    pub fn record_rescue(&mut self, job: usize, rung: usize) {
        if self.live() {
            self.journal.push(JournalEvent::Rescued { job, rung });
        }
    }

    /// Journals a quarantine decision.
    pub fn record_quarantine(
        &mut self,
        job: usize,
        seed: u64,
        rungs_attempted: usize,
        error: &str,
    ) {
        if self.live() {
            self.journal.push(JournalEvent::Quarantined {
                job,
                seed,
                rungs_attempted,
                error: error.to_owned(),
            });
            self.sink.counter("jobs.quarantined", 1);
        }
    }

    /// Journals a labelled count from outside the per-job flow.
    pub fn note(&mut self, label: &str, value: u64) {
        if self.live() {
            self.journal.push(JournalEvent::Note {
                label: label.to_owned(),
                value,
            });
        }
    }

    /// The journal accumulated so far.
    #[must_use]
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The sink, for direct reads.
    #[must_use]
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// The sink, for direct instrumentation.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Per-job wall-clock samples, in job order.
    #[must_use]
    pub fn job_seconds(&self) -> &[f64] {
        &self.job_seconds
    }

    /// Solver counters summed over all absorbed jobs.
    #[must_use]
    pub fn solver_totals(&self) -> SolverStats {
        self.solver_totals
    }

    /// Trap counters summed over all absorbed jobs.
    #[must_use]
    pub fn trap_totals(&self) -> TrapStats {
        self.trap_totals
    }

    /// The `BENCH_<name>.json` summary document: identity, wall-clock
    /// throughput, per-job latency percentiles, solver/sampler totals
    /// and journal size.
    #[must_use]
    pub fn summary(&self, name: &str, jobs: usize, wall_seconds: f64) -> JsonValue {
        let mut sorted = self.job_seconds.clone();
        sorted.sort_by(f64::total_cmp);
        let mean = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<f64>() / sorted.len() as f64
        };
        let throughput = if wall_seconds > 0.0 {
            jobs as f64 / wall_seconds
        } else {
            0.0
        };
        let s = self.solver_totals;
        let t = self.trap_totals;
        JsonValue::obj(vec![
            ("name", JsonValue::Str(name.to_owned())),
            ("jobs", JsonValue::U64(jobs as u64)),
            ("wall_seconds", JsonValue::F64(wall_seconds)),
            ("throughput_jobs_per_s", JsonValue::F64(throughput)),
            (
                "latency",
                JsonValue::obj(vec![
                    ("mean_s", JsonValue::F64(mean)),
                    ("p50_s", JsonValue::F64(percentile(&sorted, 0.50))),
                    ("p95_s", JsonValue::F64(percentile(&sorted, 0.95))),
                    ("p99_s", JsonValue::F64(percentile(&sorted, 0.99))),
                ]),
            ),
            (
                "solver",
                JsonValue::obj(vec![
                    ("solve_attempts", JsonValue::U64(s.solve_attempts)),
                    ("newton_iterations", JsonValue::U64(s.newton_iterations)),
                    ("steps_accepted", JsonValue::U64(s.steps_accepted)),
                    ("timestep_rejections", JsonValue::U64(s.timestep_rejections)),
                    ("rescue_gmin_rungs", JsonValue::U64(s.rescue_gmin_rungs)),
                    ("rescue_config_rungs", JsonValue::U64(s.rescue_config_rungs)),
                    ("faults_injected", JsonValue::U64(s.faults_injected)),
                ]),
            ),
            (
                "trap",
                JsonValue::obj(vec![
                    ("candidates", JsonValue::U64(t.candidates)),
                    ("accepted", JsonValue::U64(t.accepted)),
                ]),
            ),
            ("journal_events", JsonValue::U64(self.journal.len() as u64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(job: usize) -> JobRecord {
        JobRecord {
            job,
            seconds: 0.25 * (job + 1) as f64,
            rescued: (job == 1).then_some(2),
            solver: SolverStats {
                solve_attempts: 1,
                newton_iterations: 5,
                ..SolverStats::default()
            },
            trap: TrapStats {
                candidates: 10,
                accepted: 4,
            },
            scenario: None,
        }
    }

    #[test]
    fn noop_recorder_stays_empty() {
        let mut r = Recorder::noop();
        assert!(!r.live());
        r.absorb_job(&record(0));
        r.record_rescue(0, 1);
        r.record_quarantine(1, 7, 2, "boom");
        r.note("x", 1);
        assert!(r.journal().is_empty());
        assert!(r.job_seconds().is_empty());
        assert!(r.solver_totals().is_empty());
    }

    #[test]
    fn memory_recorder_accumulates_in_order() {
        let mut r = Recorder::recording();
        assert!(r.live());
        for j in 0..3 {
            r.absorb_job(&record(j));
        }
        r.record_rescue(1, 2);
        r.record_quarantine(5, 99, 3, "NonConvergence");
        r.note("vrt.budget_halvings", 1);
        assert_eq!(r.journal().len(), 6);
        assert_eq!(r.sink().counter_value("jobs.completed"), 3);
        assert_eq!(r.sink().counter_value("jobs.rescued"), 1);
        assert_eq!(r.sink().counter_value("jobs.quarantined"), 1);
        assert_eq!(r.sink().counter_value("solver.newton_iterations"), 15);
        assert_eq!(r.solver_totals().newton_iterations, 15);
        assert_eq!(r.trap_totals().candidates, 30);
        assert_eq!(r.job_seconds(), &[0.25, 0.5, 0.75]);

        let summary = r.summary("unit", 3, 1.5);
        assert_eq!(summary.get("jobs").and_then(JsonValue::as_f64), Some(3.0));
        assert_eq!(
            summary
                .get("throughput_jobs_per_s")
                .and_then(JsonValue::as_f64),
            Some(2.0)
        );
        let latency = summary.get("latency").unwrap();
        assert_eq!(latency.get("p50_s").and_then(JsonValue::as_f64), Some(0.5));
        assert_eq!(
            summary.get("journal_events").and_then(JsonValue::as_f64),
            Some(6.0)
        );
    }

    #[test]
    fn probe_records_only_when_live() {
        let mut dead = JobProbe::disabled();
        dead.record_solver(SolverStats {
            solve_attempts: 1,
            ..SolverStats::default()
        });
        assert!(dead.solver().is_empty());
        assert!(!dead.is_live());

        let mut live = JobProbe::new(true);
        live.record_solver(SolverStats {
            solve_attempts: 1,
            ..SolverStats::default()
        });
        live.record_trap(TrapStats {
            candidates: 2,
            accepted: 1,
        });
        assert_eq!(live.solver().solve_attempts, 1);
        assert_eq!(live.trap().accepted, 1);
    }
}
