//! Monotonic wall-clock timing, quarantined to this crate.
//!
//! The project-wide determinism rule (lint DET001) bans wall-clock
//! reads in simulation crates: time must never influence numeric
//! state. Telemetry legitimately needs durations, so the clock lives
//! here — behind an explicit lint allowance — and the rest of the
//! workspace consumes only this API. Durations flow into metric
//! sinks and bench summaries; the event journal carries none (see the
//! crate-level determinism contract).

// lint: allow(DET001): wall-clock is deliberately confined to the telemetry crate
use std::time::Instant;

/// A started monotonic timer.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    // lint: allow(DET001): wall-clock is deliberately confined to the telemetry crate
    started: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    #[must_use]
    pub fn start() -> Self {
        Self {
            // lint: allow(DET001): wall-clock is deliberately confined to the telemetry crate
            started: Instant::now(),
        }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// A labelled timing span: start it around a region, then
/// [`Span::finish`] it into a sink as `span.<label>.seconds`.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    label: &'static str,
    watch: Stopwatch,
}

impl Span {
    /// Opens a span.
    #[must_use]
    pub fn enter(label: &'static str) -> Self {
        Self {
            label,
            watch: Stopwatch::start(),
        }
    }

    /// The span's label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Seconds elapsed so far.
    #[must_use]
    pub fn elapsed_seconds(&self) -> f64 {
        self.watch.elapsed_seconds()
    }

    /// Closes the span, recording its duration into `sink` under the
    /// key `label` (callers pass a `span.`-prefixed static label).
    pub fn finish(self, sink: &mut impl crate::MetricsSink) {
        if sink.live() {
            sink.observe(self.label, self.watch.elapsed_seconds());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{MemorySink, NoopSink};

    #[test]
    fn stopwatch_monotonically_accumulates() {
        let w = Stopwatch::start();
        let a = w.elapsed_seconds();
        let b = w.elapsed_seconds();
        assert!(a >= 0.0);
        assert!(b >= a);
    }

    #[test]
    fn span_records_into_a_live_sink_only() {
        let mut mem = MemorySink::new();
        Span::enter("span.test.seconds").finish(&mut mem);
        assert_eq!(mem.samples("span.test.seconds").len(), 1);

        let mut off = NoopSink;
        let span = Span::enter("span.test.seconds");
        assert_eq!(span.label(), "span.test.seconds");
        assert!(span.elapsed_seconds() >= 0.0);
        span.finish(&mut off);
    }
}
