//! Piecewise-constant (staircase) waveforms.

use serde::{Deserialize, Serialize};

use crate::{Trace, WaveformError};

/// A right-continuous piecewise-constant waveform.
///
/// `Pwc` stores `(time, value)` steps: the waveform takes `value[i]` on
/// `[time[i], time[i+1])` and holds `value[0]` before the first step and
/// the last value forever after. Trap occupancy functions (the
/// `[times, states]` arrays of the paper's Algorithm 1) and RTN current
/// traces are `Pwc` by construction.
///
/// # Examples
///
/// ```
/// use samurai_waveform::Pwc;
///
/// // A trap that fills at t = 1 and empties at t = 2.5.
/// let occ = Pwc::new(vec![(0.0, 0.0), (1.0, 1.0), (2.5, 0.0)])?;
/// assert_eq!(occ.eval(0.5), 0.0);
/// assert_eq!(occ.eval(1.0), 1.0);   // right-continuous
/// assert_eq!(occ.eval(3.0), 0.0);
/// assert_eq!(occ.transition_count(), 2);
/// # Ok::<(), samurai_waveform::WaveformError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pwc {
    steps: Vec<(f64, f64)>,
}

impl Pwc {
    /// Creates a staircase from `(time, value)` steps.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::Empty`] for an empty list,
    /// [`WaveformError::NonMonotonicTime`] if times are not strictly
    /// increasing, and [`WaveformError::NonFinite`] for NaN/infinite
    /// coordinates.
    pub fn new(steps: Vec<(f64, f64)>) -> Result<Self, WaveformError> {
        if steps.is_empty() {
            return Err(WaveformError::Empty);
        }
        for (i, &(t, v)) in steps.iter().enumerate() {
            if !t.is_finite() || !v.is_finite() {
                return Err(WaveformError::NonFinite { index: i });
            }
            if i > 0 && t <= steps[i - 1].0 {
                return Err(WaveformError::NonMonotonicTime {
                    index: i,
                    previous: steps[i - 1].0,
                    current: t,
                });
            }
        }
        Ok(Self { steps })
    }

    /// A constant waveform.
    pub fn constant(value: f64) -> Self {
        Self {
            steps: vec![(0.0, value)],
        }
    }

    /// Evaluates the waveform at `t` (right-continuous).
    pub fn eval(&self, t: f64) -> f64 {
        let steps = &self.steps;
        if t < steps[0].0 {
            return steps[0].1;
        }
        let hi = steps.partition_point(|&(st, _)| st <= t);
        steps[hi - 1].1
    }

    /// The steps as a slice of `(time, value)` pairs.
    pub fn steps(&self) -> &[(f64, f64)] {
        &self.steps
    }

    /// Times at which the value actually changes (consecutive duplicate
    /// values do not count as transitions).
    pub fn transition_times(&self) -> Vec<f64> {
        self.steps
            .windows(2)
            .filter(|w| w[0].1 != w[1].1)
            .map(|w| w[1].0)
            .collect()
    }

    /// Number of genuine value changes.
    pub fn transition_count(&self) -> usize {
        self.steps.windows(2).filter(|w| w[0].1 != w[1].1).count()
    }

    /// Dwell durations between consecutive genuine transitions, paired
    /// with the value held during the dwell. The open-ended final dwell
    /// is not reported.
    pub fn dwells(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        let mut hold_start = self.steps[0].0;
        let mut hold_value = self.steps[0].1;
        for &(t, v) in &self.steps[1..] {
            if v != hold_value {
                out.push((t - hold_start, hold_value));
                hold_start = t;
                hold_value = v;
            }
        }
        out
    }

    /// Time of the first step.
    pub fn t_start(&self) -> f64 {
        self.steps[0].0
    }

    /// Time of the last step.
    pub fn t_end(&self) -> f64 {
        self.steps[self.steps.len() - 1].0
    }

    /// Minimum value over all steps.
    pub fn min_value(&self) -> f64 {
        self.steps
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum value over all steps.
    pub fn max_value(&self) -> f64 {
        self.steps
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Applies `f` to every step value.
    #[must_use]
    pub fn map<F: FnMut(f64) -> f64>(&self, mut f: F) -> Self {
        Self {
            steps: self.steps.iter().map(|&(t, v)| (t, f(v))).collect(),
        }
    }

    /// Scales every value by `k`.
    #[must_use]
    pub fn scaled(&self, k: f64) -> Self {
        self.map(|v| v * k)
    }

    /// Pointwise sum with `other` on the merged step grid. The sum of
    /// two staircases is a staircase on the union of the step times, so
    /// the result is exact. This is how per-trap occupancy staircases
    /// combine into a device-level `N_filled(t)`.
    #[must_use]
    pub fn add(&self, other: &Pwc) -> Self {
        let mut times: Vec<f64> = self
            .steps
            .iter()
            .map(|&(t, _)| t)
            .chain(other.steps.iter().map(|&(t, _)| t))
            .collect();
        times.sort_by(f64::total_cmp);
        times.dedup();
        let steps = times
            .into_iter()
            .map(|t| (t, self.eval(t) + other.eval(t)))
            .collect();
        Self { steps }
    }

    /// Sums an iterator of staircases (returns `None` for an empty
    /// iterator).
    pub fn sum<'a, I: IntoIterator<Item = &'a Pwc>>(iter: I) -> Option<Pwc> {
        let mut it = iter.into_iter();
        let first = it.next()?.clone();
        Some(it.fold(first, |acc, w| acc.add(w)))
    }

    /// Multiplies the staircase pointwise by an arbitrary function of
    /// time, evaluated at step edges *and* at the extra times supplied
    /// (the result is only an approximation unless `f` is constant on
    /// each resulting interval; callers pass bias breakpoints via
    /// `extra_times` to make it exact for PWC × PWC).
    #[must_use]
    pub fn mul_fn<F: Fn(f64) -> f64>(&self, extra_times: &[f64], f: F) -> Pwc {
        let mut times: Vec<f64> = self
            .steps
            .iter()
            .map(|&(t, _)| t)
            .chain(extra_times.iter().copied())
            .collect();
        times.sort_by(f64::total_cmp);
        times.dedup();
        let steps = times
            .into_iter()
            .map(|t| (t, self.eval(t) * f(t)))
            .collect();
        Pwc { steps }
    }

    /// Time integral over `[a, b]` (exact for a staircase).
    pub fn integral(&self, a: f64, b: f64) -> f64 {
        if b <= a {
            return 0.0;
        }
        let mut acc = 0.0;
        let mut t_prev = a;
        for &(t, _) in &self.steps {
            if t <= a {
                continue;
            }
            if t >= b {
                break;
            }
            acc += self.eval(t_prev) * (t - t_prev);
            t_prev = t;
        }
        acc + self.eval(t_prev) * (b - t_prev)
    }

    /// Time-average over `[a, b]`.
    pub fn mean(&self, a: f64, b: f64) -> f64 {
        if b <= a {
            return self.eval(a);
        }
        self.integral(a, b) / (b - a)
    }

    /// Fraction of `[a, b]` during which the value equals `target`
    /// (within `tol`). Used to measure trap occupancy fractions.
    pub fn fraction_at(&self, a: f64, b: f64, target: f64, tol: f64) -> f64 {
        if b <= a {
            return 0.0;
        }
        let indicator = self.map(|v| if (v - target).abs() <= tol { 1.0 } else { 0.0 });
        indicator.integral(a, b) / (b - a)
    }

    /// Samples the staircase into a uniform [`Trace`].
    pub fn sample(&self, t0: f64, dt: f64, n: usize) -> Trace {
        Trace::from_fn(t0, dt, n, |t| self.eval(t))
    }

    /// Converts the staircase into a piecewise-linear waveform whose
    /// steps become near-vertical edges of duration `edge`. This is how
    /// generated RTN currents are handed to a SPICE PWL current source.
    ///
    /// # Panics
    ///
    /// Panics unless `edge` is positive and smaller than the smallest
    /// gap between steps.
    pub fn to_pwl(&self, edge: f64) -> crate::Pwl {
        assert!(edge > 0.0 && edge.is_finite(), "edge must be positive");
        let min_gap = self
            .steps
            .windows(2)
            .map(|w| w[1].0 - w[0].0)
            .fold(f64::INFINITY, f64::min);
        assert!(
            edge < min_gap,
            "edge {edge} does not fit in the smallest step gap {min_gap}"
        );
        let mut points = Vec::with_capacity(2 * self.steps.len());
        points.push(self.steps[0]);
        let mut prev_value = self.steps[0].1;
        for &(t, v) in &self.steps[1..] {
            points.push((t - edge, prev_value));
            points.push((t, v));
            prev_value = v;
        }
        // lint: allow(HYG002): edge < min_gap keeps times strictly increasing
        crate::Pwl::new(points).expect("edge < min_gap keeps times strictly increasing")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn telegraph() -> Pwc {
        Pwc::new(vec![(0.0, 0.0), (1.0, 1.0), (3.0, 0.0), (4.0, 1.0)]).unwrap()
    }

    #[test]
    fn eval_is_right_continuous() {
        let w = telegraph();
        assert_eq!(w.eval(-1.0), 0.0);
        assert_eq!(w.eval(0.999), 0.0);
        assert_eq!(w.eval(1.0), 1.0);
        assert_eq!(w.eval(2.999), 1.0);
        assert_eq!(w.eval(3.0), 0.0);
        assert_eq!(w.eval(100.0), 1.0);
    }

    #[test]
    fn transitions_and_dwells() {
        let w = telegraph();
        assert_eq!(w.transition_count(), 3);
        assert_eq!(w.transition_times(), vec![1.0, 3.0, 4.0]);
        assert_eq!(w.dwells(), vec![(1.0, 0.0), (2.0, 1.0), (1.0, 0.0)]);
    }

    #[test]
    fn duplicate_values_are_not_transitions() {
        let w = Pwc::new(vec![(0.0, 1.0), (1.0, 1.0), (2.0, 0.0)]).unwrap();
        assert_eq!(w.transition_count(), 1);
        assert_eq!(w.transition_times(), vec![2.0]);
    }

    #[test]
    fn integral_and_mean() {
        let w = telegraph();
        // value 1 on [1,3) and [4, b)
        assert!((w.integral(0.0, 5.0) - 3.0).abs() < 1e-12);
        assert!((w.mean(0.0, 5.0) - 0.6).abs() < 1e-12);
        assert!((w.fraction_at(0.0, 5.0, 1.0, 0.0) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn add_merges_grids_exactly() {
        let a = Pwc::new(vec![(0.0, 1.0), (2.0, 3.0)]).unwrap();
        let b = Pwc::new(vec![(1.0, 10.0), (3.0, 0.0)]).unwrap();
        let s = a.add(&b);
        for &t in &[-0.5, 0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0] {
            assert!(
                (s.eval(t) - (a.eval(t) + b.eval(t))).abs() < 1e-12,
                "mismatch at t = {t}"
            );
        }
    }

    #[test]
    fn sum_of_staircases() {
        let a = Pwc::constant(1.0);
        let b = Pwc::constant(2.0);
        let c = Pwc::constant(3.0);
        let s = Pwc::sum([&a, &b, &c]).unwrap();
        assert_eq!(s.eval(0.0), 6.0);
        assert!(Pwc::sum(std::iter::empty::<&Pwc>()).is_none());
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(Pwc::new(vec![]), Err(WaveformError::Empty));
        assert!(matches!(
            Pwc::new(vec![(1.0, 0.0), (1.0, 1.0)]),
            Err(WaveformError::NonMonotonicTime { .. })
        ));
        assert!(matches!(
            Pwc::new(vec![(f64::INFINITY, 0.0)]),
            Err(WaveformError::NonFinite { .. })
        ));
    }

    #[test]
    fn to_pwl_tracks_the_staircase_between_edges() {
        let w = telegraph();
        let p = w.to_pwl(1e-3);
        for &t in &[0.5, 1.5, 2.5, 3.5, 4.5] {
            assert!((p.eval(t) - w.eval(t)).abs() < 1e-12, "mismatch at t = {t}");
        }
        // Mid-edge the PWL is between the two levels.
        let mid = p.eval(1.0 - 0.5e-3);
        assert!((0.0..=1.0).contains(&mid));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn to_pwl_rejects_oversized_edges() {
        let _ = telegraph().to_pwl(2.0);
    }

    proptest! {
        #[test]
        fn integral_matches_dense_sampling(
            vals in proptest::collection::vec(0.0f64..5.0, 1..10),
        ) {
            let steps: Vec<(f64, f64)> =
                vals.iter().enumerate().map(|(i, &v)| (i as f64, v)).collect();
            let w = Pwc::new(steps).unwrap();
            let b = vals.len() as f64;
            let exact = w.integral(0.0, b);
            let n = 20_000usize;
            let dt = b / n as f64;
            // Midpoint Riemann sum converges to the staircase integral.
            let approx: f64 = (0..n).map(|i| w.eval((i as f64 + 0.5) * dt) * dt).sum();
            prop_assert!((exact - approx).abs() < 1e-2 * (1.0 + exact.abs()));
        }

        #[test]
        fn transition_count_matches_dwell_count(
            vals in proptest::collection::vec(0.0f64..2.0, 2..20),
        ) {
            let steps: Vec<(f64, f64)> = vals
                .iter()
                .enumerate()
                .map(|(i, &v)| (i as f64, v.round()))
                .collect();
            let w = Pwc::new(steps).unwrap();
            prop_assert_eq!(w.transition_count(), w.dwells().len());
        }
    }
}
