//! Uniformly sampled traces.

use serde::{Deserialize, Serialize};

use crate::WaveformError;

/// A uniformly sampled signal: start time, sample spacing and values.
///
/// `Trace` is the lingua franca between the waveform world and the
/// spectral estimators: autocorrelation and PSD computation operate on
/// uniform samples.
///
/// # Examples
///
/// ```
/// use samurai_waveform::Trace;
///
/// let t = Trace::from_fn(0.0, 0.25, 5, |x| 2.0 * x);
/// assert_eq!(t.len(), 5);
/// assert_eq!(t.time_at(2), 0.5);
/// assert!((t.mean() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    t0: f64,
    dt: f64,
    values: Vec<f64>,
}

impl Trace {
    /// Creates a trace from raw samples.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidDuration`] if `dt` is not a
    /// positive finite number, and [`WaveformError::Empty`] for an empty
    /// sample vector.
    pub fn new(t0: f64, dt: f64, values: Vec<f64>) -> Result<Self, WaveformError> {
        if !(dt > 0.0) || !dt.is_finite() {
            return Err(WaveformError::InvalidDuration {
                name: "dt",
                value: dt,
            });
        }
        if values.is_empty() {
            return Err(WaveformError::Empty);
        }
        Ok(Self { t0, dt, values })
    }

    /// Creates a trace by evaluating `f` at each sample time.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0` or `n == 0`.
    pub fn from_fn<F: FnMut(f64) -> f64>(t0: f64, dt: f64, n: usize, mut f: F) -> Self {
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive, got {dt}");
        assert!(n > 0, "trace must have at least one sample");
        let values = (0..n).map(|i| f(t0 + i as f64 * dt)).collect();
        Self { t0, dt, values }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the trace holds no samples (never, by
    /// construction, but provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Start time of the first sample.
    pub fn t0(&self) -> f64 {
        self.t0
    }

    /// Sample spacing.
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Sampling rate `1/dt`.
    pub fn sample_rate(&self) -> f64 {
        1.0 / self.dt
    }

    /// Total spanned duration `(len - 1) · dt`.
    pub fn duration(&self) -> f64 {
        (self.values.len().saturating_sub(1)) as f64 * self.dt
    }

    /// The sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the sample values.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consumes the trace and returns the raw sample vector.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Time of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `i` is out of bounds.
    pub fn time_at(&self, i: usize) -> f64 {
        debug_assert!(i < self.values.len());
        self.t0 + i as f64 * self.dt
    }

    /// Index of the sample closest to time `t`, clamped to the valid
    /// range.
    pub fn index_at(&self, t: f64) -> usize {
        let raw = ((t - self.t0) / self.dt).round();
        if raw <= 0.0 {
            0
        } else {
            (raw as usize).min(self.values.len() - 1)
        }
    }

    /// Value of the sample closest to time `t`.
    pub fn value_at(&self, t: f64) -> f64 {
        self.values[self.index_at(t)]
    }

    /// Iterator over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| (self.t0 + i as f64 * self.dt, v))
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Population variance of the samples.
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.values.len() as f64
    }

    /// Root-mean-square of the samples.
    pub fn rms(&self) -> f64 {
        (self.values.iter().map(|v| v * v).sum::<f64>() / self.values.len() as f64).sqrt()
    }

    /// Minimum sample value.
    pub fn min_value(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample value.
    pub fn max_value(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Returns a copy with the mean removed (used before spectral
    /// estimation so the DC term does not swamp the spectrum).
    #[must_use]
    pub fn detrended(&self) -> Self {
        let m = self.mean();
        Self {
            t0: self.t0,
            dt: self.dt,
            values: self.values.iter().map(|v| v - m).collect(),
        }
    }

    /// Applies `f` to every sample.
    #[must_use]
    pub fn map<F: FnMut(f64) -> f64>(&self, f: F) -> Self {
        Self {
            t0: self.t0,
            dt: self.dt,
            values: self.values.iter().copied().map(f).collect(),
        }
    }

    /// Pointwise sum with a trace on the same grid.
    ///
    /// # Panics
    ///
    /// Panics if the grids differ (same `t0`, `dt` and length required).
    #[must_use]
    pub fn add(&self, other: &Trace) -> Self {
        assert!(
            self.same_grid(other),
            "traces must share the sampling grid to be added"
        );
        Self {
            t0: self.t0,
            dt: self.dt,
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Pointwise difference with a trace on the same grid.
    ///
    /// # Panics
    ///
    /// Panics if the grids differ.
    #[must_use]
    pub fn sub(&self, other: &Trace) -> Self {
        assert!(
            self.same_grid(other),
            "traces must share the sampling grid to be subtracted"
        );
        Self {
            t0: self.t0,
            dt: self.dt,
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Returns `true` if `other` shares this trace's sampling grid.
    pub fn same_grid(&self, other: &Trace) -> bool {
        self.values.len() == other.values.len()
            && (self.t0 - other.t0).abs() <= 1e-12 * (1.0 + self.t0.abs())
            && (self.dt - other.dt).abs() <= 1e-12 * self.dt
    }

    /// Extracts the sub-trace covering `[t_from, t_to]` (sample-aligned,
    /// inclusive bounds clamped to the trace).
    ///
    /// # Panics
    ///
    /// Panics if `t_to < t_from`.
    #[must_use]
    pub fn slice(&self, t_from: f64, t_to: f64) -> Self {
        assert!(t_to >= t_from, "slice bounds out of order");
        let i0 = self.index_at(t_from);
        let i1 = self.index_at(t_to);
        Self {
            t0: self.time_at(i0),
            dt: self.dt,
            values: self.values[i0..=i1].to_vec(),
        }
    }

    /// Largest `k` such that the first `2^k` samples fit; used by FFT
    /// consumers to truncate to a power of two.
    pub fn pow2_len(&self) -> usize {
        let mut n = 1usize;
        while n * 2 <= self.values.len() {
            n *= 2;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_validates() {
        assert!(Trace::new(0.0, 0.0, vec![1.0]).is_err());
        assert!(Trace::new(0.0, -1.0, vec![1.0]).is_err());
        assert!(Trace::new(0.0, 1.0, vec![]).is_err());
        assert!(Trace::new(0.0, 1.0, vec![1.0]).is_ok());
    }

    #[test]
    fn indexing_round_trips() {
        let t = Trace::from_fn(10.0, 0.5, 8, |x| x);
        assert_eq!(t.time_at(3), 11.5);
        assert_eq!(t.index_at(11.5), 3);
        assert_eq!(t.index_at(11.6), 3);
        assert_eq!(t.index_at(11.8), 4);
        assert_eq!(t.index_at(-100.0), 0);
        assert_eq!(t.index_at(1e9), 7);
        assert_eq!(t.value_at(11.5), 11.5);
    }

    #[test]
    fn statistics() {
        let t = Trace::new(0.0, 1.0, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((t.mean() - 2.5).abs() < 1e-12);
        assert!((t.variance() - 1.25).abs() < 1e-12);
        assert!((t.rms() - (7.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(t.min_value(), 1.0);
        assert_eq!(t.max_value(), 4.0);
        assert_eq!(t.duration(), 3.0);
    }

    #[test]
    fn detrend_zeroes_the_mean() {
        let t = Trace::from_fn(0.0, 1.0, 100, |x| 3.0 + (x * 0.1).sin());
        assert!(t.detrended().mean().abs() < 1e-12);
    }

    #[test]
    fn add_sub_on_same_grid() {
        let a = Trace::from_fn(0.0, 1.0, 4, |x| x);
        let b = Trace::from_fn(0.0, 1.0, 4, |_| 1.0);
        assert_eq!(a.add(&b).values(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.sub(&b).values(), &[-1.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "sampling grid")]
    fn add_on_mismatched_grid_panics() {
        let a = Trace::from_fn(0.0, 1.0, 4, |x| x);
        let b = Trace::from_fn(0.0, 2.0, 4, |x| x);
        let _ = a.add(&b);
    }

    #[test]
    fn slicing() {
        let t = Trace::from_fn(0.0, 1.0, 10, |x| x);
        let s = t.slice(2.2, 5.4);
        assert_eq!(s.t0(), 2.0);
        assert_eq!(s.len(), 4);
        assert_eq!(s.values(), &[2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn pow2_truncation_length() {
        assert_eq!(Trace::from_fn(0.0, 1.0, 1000, |x| x).pow2_len(), 512);
        assert_eq!(Trace::from_fn(0.0, 1.0, 1024, |x| x).pow2_len(), 1024);
        assert_eq!(Trace::from_fn(0.0, 1.0, 1, |x| x).pow2_len(), 1);
    }

    proptest! {
        #[test]
        fn variance_is_nonnegative_and_shift_invariant(
            vals in proptest::collection::vec(-100.0f64..100.0, 2..64),
            shift in -50.0f64..50.0,
        ) {
            let a = Trace::new(0.0, 1.0, vals.clone()).unwrap();
            let b = a.map(|v| v + shift);
            prop_assert!(a.variance() >= 0.0);
            prop_assert!((a.variance() - b.variance()).abs() < 1e-6 * (1.0 + a.variance()));
        }

        #[test]
        fn index_at_inverts_time_at(
            n in 2usize..100,
            i_frac in 0.0f64..1.0,
        ) {
            let t = Trace::from_fn(-3.0, 0.125, n, |x| x);
            let i = ((n - 1) as f64 * i_frac) as usize;
            prop_assert_eq!(t.index_at(t.time_at(i)), i);
        }
    }
}
