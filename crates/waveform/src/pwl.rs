//! Piecewise-linear waveforms.

use serde::{Deserialize, Serialize};

use crate::{Pwc, Trace, WaveformError};

/// A piecewise-linear waveform defined by `(time, value)` breakpoints.
///
/// Between breakpoints the value is interpolated linearly; before the
/// first and after the last breakpoint the waveform is held constant
/// (SPICE PWL-source semantics). Breakpoint times must be strictly
/// increasing and all coordinates finite.
///
/// # Examples
///
/// ```
/// use samurai_waveform::Pwl;
///
/// let ramp = Pwl::new(vec![(0.0, 0.0), (1.0, 2.0)])?;
/// assert_eq!(ramp.eval(-1.0), 0.0);  // held before the first point
/// assert_eq!(ramp.eval(0.5), 1.0);   // interpolated
/// assert_eq!(ramp.eval(9.0), 2.0);   // held after the last point
/// # Ok::<(), samurai_waveform::WaveformError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pwl {
    points: Vec<(f64, f64)>,
}

impl Pwl {
    /// Creates a waveform from `(time, value)` breakpoints.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::Empty`] for an empty list,
    /// [`WaveformError::NonMonotonicTime`] if times are not strictly
    /// increasing, and [`WaveformError::NonFinite`] for NaN/infinite
    /// coordinates.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self, WaveformError> {
        if points.is_empty() {
            return Err(WaveformError::Empty);
        }
        for (i, &(t, v)) in points.iter().enumerate() {
            if !t.is_finite() || !v.is_finite() {
                return Err(WaveformError::NonFinite { index: i });
            }
            if i > 0 && t <= points[i - 1].0 {
                return Err(WaveformError::NonMonotonicTime {
                    index: i,
                    previous: points[i - 1].0,
                    current: t,
                });
            }
        }
        Ok(Self { points })
    }

    /// A constant waveform.
    pub fn constant(value: f64) -> Self {
        Self {
            points: vec![(0.0, value)],
        }
    }

    /// A step from `before` to `after` with a linear transition of
    /// duration `rise` starting at `at`.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidDuration`] if `rise <= 0`.
    pub fn step(before: f64, after: f64, at: f64, rise: f64) -> Result<Self, WaveformError> {
        if !(rise > 0.0) || !rise.is_finite() {
            return Err(WaveformError::InvalidDuration {
                name: "rise",
                value: rise,
            });
        }
        Self::new(vec![(at, before), (at + rise, after)])
    }

    /// A single pulse: `low` until `t_on`, rising over `rise` to `high`,
    /// holding until `t_off`, falling over `fall` back to `low`.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidDuration`] if `rise`/`fall` are
    /// not positive or if `t_off <= t_on + rise`.
    pub fn pulse(
        low: f64,
        high: f64,
        t_on: f64,
        t_off: f64,
        rise: f64,
        fall: f64,
    ) -> Result<Self, WaveformError> {
        if !(rise > 0.0) || !rise.is_finite() {
            return Err(WaveformError::InvalidDuration {
                name: "rise",
                value: rise,
            });
        }
        if !(fall > 0.0) || !fall.is_finite() {
            return Err(WaveformError::InvalidDuration {
                name: "fall",
                value: fall,
            });
        }
        if t_off <= t_on + rise {
            return Err(WaveformError::InvalidDuration {
                name: "t_off - t_on",
                value: t_off - t_on,
            });
        }
        Self::new(vec![
            (t_on, low),
            (t_on + rise, high),
            (t_off, high),
            (t_off + fall, low),
        ])
    }

    /// A periodic clock starting low at `t0`, with the given `period`,
    /// `duty` cycle in `(0, 1)`, edge time `edge`, for `cycles` periods.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidDuration`] for non-positive
    /// `period`/`edge`, a duty outside `(0, 1)`, or edges that do not fit
    /// within the high/low phases.
    pub fn clock(
        low: f64,
        high: f64,
        t0: f64,
        period: f64,
        duty: f64,
        edge: f64,
        cycles: usize,
    ) -> Result<Self, WaveformError> {
        if !(period > 0.0) || !period.is_finite() {
            return Err(WaveformError::InvalidDuration {
                name: "period",
                value: period,
            });
        }
        if !(edge > 0.0) || !edge.is_finite() {
            return Err(WaveformError::InvalidDuration {
                name: "edge",
                value: edge,
            });
        }
        if !(duty > 0.0 && duty < 1.0) {
            return Err(WaveformError::InvalidDuration {
                name: "duty",
                value: duty,
            });
        }
        let t_high = duty * period;
        let t_low = period - t_high;
        if edge >= t_high || edge >= t_low {
            return Err(WaveformError::InvalidDuration {
                name: "edge",
                value: edge,
            });
        }
        let mut points = vec![(t0, low)];
        for c in 0..cycles {
            let start = t0 + c as f64 * period;
            points.push((start + edge, high));
            points.push((start + t_high, high));
            points.push((start + t_high + edge, low));
            points.push((start + period, low));
        }
        // Deduplicate the boundary points between cycles (end of cycle c
        // coincides with start of cycle c+1 only in value, not time, so
        // times are already strictly increasing).
        Self::new(points)
    }

    /// Builds a PWL approximation of an arbitrary function by sampling
    /// it at `n` uniform points over `[t0, t1]`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`, `t1 <= t0`, or `f` returns a non-finite
    /// value.
    pub fn from_fn<F: FnMut(f64) -> f64>(t0: f64, t1: f64, n: usize, mut f: F) -> Self {
        assert!(n >= 2, "need at least two sample points");
        assert!(t1 > t0, "need a non-empty span");
        let points: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let t = t0 + (t1 - t0) * i as f64 / (n - 1) as f64;
                (t, f(t))
            })
            .collect();
        // lint: allow(HYG002): a uniform grid is strictly increasing
        Self::new(points).expect("uniform sampling yields strictly increasing times")
    }

    /// Evaluates the waveform at time `t`.
    pub fn eval(&self, t: f64) -> f64 {
        let pts = &self.points;
        if t <= pts[0].0 {
            return pts[0].1;
        }
        let last = pts[pts.len() - 1];
        if t >= last.0 {
            return last.1;
        }
        // Index of the first breakpoint with time > t.
        let hi = pts.partition_point(|&(bt, _)| bt <= t);
        let (t0, v0) = pts[hi - 1];
        let (t1, v1) = pts[hi];
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// The slope at time `t` (zero outside the breakpoint span and on
    /// the right side of each breakpoint).
    pub fn slope(&self, t: f64) -> f64 {
        let pts = &self.points;
        if t < pts[0].0 || t >= pts[pts.len() - 1].0 {
            return 0.0;
        }
        let hi = pts.partition_point(|&(bt, _)| bt <= t);
        let (t0, v0) = pts[hi - 1];
        let (t1, v1) = pts[hi];
        (v1 - v0) / (t1 - t0)
    }

    /// The breakpoints as a slice of `(time, value)` pairs.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The breakpoint times (useful as mandatory transient time steps).
    pub fn breakpoint_times(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|&(t, _)| t)
    }

    /// Time of the first breakpoint.
    pub fn t_start(&self) -> f64 {
        self.points[0].0
    }

    /// Time of the last breakpoint.
    pub fn t_end(&self) -> f64 {
        self.points[self.points.len() - 1].0
    }

    /// Minimum value over all breakpoints (the PWL extremum is always at
    /// a breakpoint).
    pub fn min_value(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum value over all breakpoints.
    pub fn max_value(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Applies `f` to every breakpoint value.
    #[must_use]
    pub fn map<F: FnMut(f64) -> f64>(&self, mut f: F) -> Self {
        Self {
            points: self.points.iter().map(|&(t, v)| (t, f(v))).collect(),
        }
    }

    /// Scales every value by `k`.
    #[must_use]
    pub fn scaled(&self, k: f64) -> Self {
        self.map(|v| v * k)
    }

    /// Shifts the waveform in time by `dt`.
    #[must_use]
    pub fn shifted(&self, dt: f64) -> Self {
        Self {
            points: self.points.iter().map(|&(t, v)| (t + dt, v)).collect(),
        }
    }

    /// Pointwise sum with `other`, on the merged breakpoint grid.
    ///
    /// Because the sum of two piecewise-linear functions is piecewise
    /// linear on the union of their breakpoints, the result is exact.
    #[must_use]
    pub fn add(&self, other: &Pwl) -> Self {
        let mut times: Vec<f64> = self
            .breakpoint_times()
            .chain(other.breakpoint_times())
            .collect();
        times.sort_by(f64::total_cmp);
        times.dedup();
        let points = times
            .into_iter()
            .map(|t| (t, self.eval(t) + other.eval(t)))
            .collect();
        Self { points }
    }

    /// Samples the waveform into a uniform [`Trace`] of `n` points
    /// starting at `t0` with spacing `dt`.
    pub fn sample(&self, t0: f64, dt: f64, n: usize) -> Trace {
        Trace::from_fn(t0, dt, n, |t| self.eval(t))
    }

    /// Exact integral of the waveform over `[a, b]` (trapezoidal on the
    /// breakpoint grid, hence exact for PWL).
    pub fn integral(&self, a: f64, b: f64) -> f64 {
        if b <= a {
            return 0.0;
        }
        // Collect the breakpoints strictly inside (a, b).
        let mut acc = 0.0;
        let mut t_prev = a;
        let mut v_prev = self.eval(a);
        for &(t, v) in &self.points {
            if t <= a {
                continue;
            }
            if t >= b {
                break;
            }
            acc += 0.5 * (v_prev + v) * (t - t_prev);
            t_prev = t;
            v_prev = v;
        }
        let v_b = self.eval(b);
        acc += 0.5 * (v_prev + v_b) * (b - t_prev);
        acc
    }

    /// Converts to a piecewise-constant waveform by sampling the value
    /// at the *left* edge of each breakpoint interval. Used to feed PWL
    /// biases into solvers that want a staircase.
    pub fn to_pwc(&self) -> Pwc {
        let steps = self.points.iter().map(|&(t, v)| (t, v)).collect::<Vec<_>>();
        Pwc::new(steps).expect("Pwl invariants imply valid Pwc") // lint: allow(HYG002): Pwl monotonicity implies a valid Pwc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ramp() -> Pwl {
        Pwl::new(vec![(0.0, 0.0), (1.0, 1.0), (3.0, -1.0)]).unwrap()
    }

    #[test]
    fn eval_interpolates_and_clamps() {
        let w = ramp();
        assert_eq!(w.eval(-5.0), 0.0);
        assert_eq!(w.eval(0.5), 0.5);
        assert_eq!(w.eval(1.0), 1.0);
        assert_eq!(w.eval(2.0), 0.0);
        assert_eq!(w.eval(10.0), -1.0);
    }

    #[test]
    fn slope_is_piecewise() {
        let w = ramp();
        assert_eq!(w.slope(0.5), 1.0);
        assert_eq!(w.slope(2.0), -1.0);
        assert_eq!(w.slope(-1.0), 0.0);
        assert_eq!(w.slope(3.0), 0.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(Pwl::new(vec![]), Err(WaveformError::Empty));
        assert!(matches!(
            Pwl::new(vec![(0.0, 1.0), (0.0, 2.0)]),
            Err(WaveformError::NonMonotonicTime { index: 1, .. })
        ));
        assert!(matches!(
            Pwl::new(vec![(0.0, f64::NAN)]),
            Err(WaveformError::NonFinite { index: 0 })
        ));
    }

    #[test]
    fn pulse_shape() {
        let p = Pwl::pulse(0.0, 1.0, 1.0, 3.0, 0.1, 0.2).unwrap();
        assert_eq!(p.eval(0.0), 0.0);
        assert!((p.eval(1.05) - 0.5).abs() < 1e-12);
        assert_eq!(p.eval(2.0), 1.0);
        assert_eq!(p.eval(3.2), 0.0);
        assert!(Pwl::pulse(0.0, 1.0, 1.0, 1.05, 0.1, 0.1).is_err());
    }

    #[test]
    fn clock_has_expected_levels() {
        let c = Pwl::clock(0.0, 1.0, 0.0, 10.0, 0.5, 0.5, 3).unwrap();
        assert_eq!(c.eval(2.5), 1.0); // high phase of cycle 0
        assert_eq!(c.eval(7.5), 0.0); // low phase of cycle 0
        assert_eq!(c.eval(12.5), 1.0); // high phase of cycle 1
        assert_eq!(c.t_end(), 30.0);
        assert!(Pwl::clock(0.0, 1.0, 0.0, 10.0, 0.5, 6.0, 3).is_err());
    }

    #[test]
    fn from_fn_samples_uniformly_and_interpolates() {
        let w = Pwl::from_fn(0.0, 1.0, 101, |t| t * t);
        // Exact at the sample points...
        assert!((w.eval(0.5) - 0.25).abs() < 1e-12);
        // ...close in between (parabola vs 100-segment chords).
        assert!((w.eval(0.505) - 0.505f64.powi(2)).abs() < 1e-4);
        assert_eq!(w.t_start(), 0.0);
        assert_eq!(w.t_end(), 1.0);
        assert_eq!(w.points().len(), 101);
    }

    #[test]
    #[should_panic(expected = "two sample points")]
    fn from_fn_rejects_single_point() {
        let _ = Pwl::from_fn(0.0, 1.0, 1, |t| t);
    }

    #[test]
    fn add_is_exact_on_merged_grid() {
        let a = Pwl::new(vec![(0.0, 0.0), (2.0, 2.0)]).unwrap();
        let b = Pwl::new(vec![(1.0, 1.0), (3.0, -1.0)]).unwrap();
        let s = a.add(&b);
        for &t in &[0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0] {
            assert!(
                (s.eval(t) - (a.eval(t) + b.eval(t))).abs() < 1e-12,
                "mismatch at t = {t}"
            );
        }
    }

    #[test]
    fn integral_of_triangle() {
        let w = Pwl::new(vec![(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]).unwrap();
        assert!((w.integral(0.0, 2.0) - 1.0).abs() < 1e-12);
        assert!((w.integral(0.5, 1.5) - 0.75).abs() < 1e-12);
        assert_eq!(w.integral(2.0, 1.0), 0.0);
    }

    #[test]
    fn scaled_shifted_minmax() {
        let w = ramp().scaled(2.0).shifted(1.0);
        assert_eq!(w.eval(2.0), 2.0);
        assert_eq!(w.min_value(), -2.0);
        assert_eq!(w.max_value(), 2.0);
        assert_eq!(w.t_start(), 1.0);
        assert_eq!(w.t_end(), 4.0);
    }

    proptest! {
        #[test]
        fn eval_is_within_breakpoint_hull(
            vals in proptest::collection::vec(-10.0f64..10.0, 2..8),
            t in -5.0f64..15.0,
        ) {
            let points: Vec<(f64, f64)> =
                vals.iter().enumerate().map(|(i, &v)| (i as f64, v)).collect();
            let w = Pwl::new(points).unwrap();
            let v = w.eval(t);
            prop_assert!(v >= w.min_value() - 1e-12 && v <= w.max_value() + 1e-12);
        }

        #[test]
        fn integral_is_additive(
            vals in proptest::collection::vec(-10.0f64..10.0, 2..8),
            split in 0.1f64..0.9,
        ) {
            let points: Vec<(f64, f64)> =
                vals.iter().enumerate().map(|(i, &v)| (i as f64, v)).collect();
            let w = Pwl::new(points).unwrap();
            let a = 0.0;
            let b = (vals.len() - 1) as f64;
            let m = a + split * (b - a);
            let whole = w.integral(a, b);
            let parts = w.integral(a, m) + w.integral(m, b);
            prop_assert!((whole - parts).abs() < 1e-9 * (1.0 + whole.abs()));
        }
    }
}
