//! Digital bit patterns and their conversion to analogue waveforms.

use serde::{Deserialize, Serialize};

use crate::{Pwl, WaveformError};

/// A sequence of logical bits to be applied to a circuit, one per cycle.
///
/// The paper's SRAM demonstration writes the pattern
/// `[1,1,0,1,0,1,0,0,1]` (Fig 8); [`BitPattern::paper_fig8`] builds it.
///
/// # Examples
///
/// ```
/// use samurai_waveform::BitPattern;
///
/// let p = BitPattern::new(vec![true, false, true]);
/// assert_eq!(p.len(), 3);
/// assert_eq!(p.bit(1), false);
/// assert_eq!(BitPattern::paper_fig8().to_string(), "110101001");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitPattern {
    bits: Vec<bool>,
}

impl BitPattern {
    /// Creates a pattern from booleans.
    pub fn new(bits: Vec<bool>) -> Self {
        Self { bits }
    }

    /// Parses a pattern from a string of `'0'`/`'1'` characters.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::Empty`] if no valid bit characters are
    /// found; other characters are rejected via `NonFinite` (reused as a
    /// generic "bad element" marker carrying the index).
    pub fn parse(s: &str) -> Result<Self, WaveformError> {
        let mut bits = Vec::with_capacity(s.len());
        for (i, c) in s.chars().enumerate() {
            match c {
                '0' => bits.push(false),
                '1' => bits.push(true),
                _ => return Err(WaveformError::NonFinite { index: i }),
            }
        }
        if bits.is_empty() {
            return Err(WaveformError::Empty);
        }
        Ok(Self { bits })
    }

    /// The bit pattern `[1,1,0,1,0,1,0,0,1]` used throughout the paper's
    /// Fig 8 methodology demonstration.
    pub fn paper_fig8() -> Self {
        Self::new(vec![
            true, true, false, true, false, true, false, false, true,
        ])
    }

    /// A reproducible pseudo-random pattern of `len` bits derived from
    /// `seed` (SplitMix64 bit stream) — the workload generator for
    /// array sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn random(len: usize, seed: u64) -> Self {
        assert!(len > 0, "pattern must be non-empty");
        let mut z = seed;
        let mut next = move || {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        };
        let mut bits = Vec::with_capacity(len);
        let mut word = 0u64;
        for i in 0..len {
            if i % 64 == 0 {
                word = next();
            }
            bits.push(word & 1 == 1);
            word >>= 1;
        }
        Self::new(bits)
    }

    /// Number of bits (cycles).
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Returns `true` if the pattern holds no bits.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The bit at cycle `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bit(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// The bits as a slice.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Iterator over the bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        self.bits.iter().copied()
    }
}

impl core::fmt::Display for BitPattern {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for &b in &self.bits {
            f.write_str(if b { "1" } else { "0" })?;
        }
        Ok(())
    }
}

/// Timing parameters for converting bit patterns into waveforms.
///
/// All times are in seconds, levels in volts. `period` is the cycle
/// time; `edge` is the 10–90 %-style linear transition time used for
/// every level change.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DigitalTiming {
    /// Cycle period in seconds.
    pub period: f64,
    /// Linear edge (rise/fall) time in seconds.
    pub edge: f64,
    /// Logic-low voltage.
    pub low: f64,
    /// Logic-high voltage.
    pub high: f64,
}

impl DigitalTiming {
    /// Creates a timing descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidDuration`] if `period` or `edge`
    /// is not positive, or if `edge >= period / 2` (edges must fit).
    pub fn new(period: f64, edge: f64, low: f64, high: f64) -> Result<Self, WaveformError> {
        if !(period > 0.0) || !period.is_finite() {
            return Err(WaveformError::InvalidDuration {
                name: "period",
                value: period,
            });
        }
        if !(edge > 0.0) || !edge.is_finite() || edge >= period / 2.0 {
            return Err(WaveformError::InvalidDuration {
                name: "edge",
                value: edge,
            });
        }
        Ok(Self {
            period,
            edge,
            low,
            high,
        })
    }

    /// Converts a bit level to its voltage.
    pub fn level(&self, bit: bool) -> f64 {
        if bit {
            self.high
        } else {
            self.low
        }
    }

    /// Builds a non-return-to-zero waveform holding each bit's level for
    /// one period, transitioning over `edge` at each cycle boundary
    /// where the value changes. The waveform starts at `t0`.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is empty.
    pub fn nrz(&self, pattern: &BitPattern, t0: f64) -> Pwl {
        assert!(
            !pattern.is_empty(),
            "cannot build a waveform from an empty pattern"
        );
        let mut points = Vec::with_capacity(2 * pattern.len() + 2);
        let first = self.level(pattern.bit(0));
        points.push((t0, first));
        let mut prev = first;
        for (i, bit) in pattern.iter().enumerate().skip(1) {
            let v = self.level(bit);
            let boundary = t0 + i as f64 * self.period;
            if v != prev {
                points.push((boundary, prev));
                points.push((boundary + self.edge, v));
                prev = v;
            }
        }
        let t_end = t0 + pattern.len() as f64 * self.period;
        points.push((t_end, prev));
        // lint: allow(HYG002): constructor-validated timing is monotonic
        Pwl::new(points).expect("timing invariants guarantee monotonic breakpoints")
    }

    /// Builds a per-cycle strobe (e.g. a word-line enable): one pulse per
    /// cycle, asserted from `on_frac` to `off_frac` of the period
    /// (fractions in `(0, 1)`, `on_frac < off_frac`), for `cycles`
    /// cycles starting at `t0`.
    ///
    /// # Panics
    ///
    /// Panics if the fractions are out of order or leave no room for the
    /// edges, or if `cycles == 0`.
    pub fn strobe(&self, t0: f64, cycles: usize, on_frac: f64, off_frac: f64) -> Pwl {
        assert!(cycles > 0, "strobe needs at least one cycle");
        assert!(
            0.0 < on_frac && on_frac < off_frac && off_frac < 1.0,
            "strobe fractions must satisfy 0 < on < off < 1"
        );
        let t_on_rel = on_frac * self.period;
        let t_off_rel = off_frac * self.period;
        assert!(
            t_off_rel - t_on_rel > self.edge && (1.0 - off_frac) * self.period > self.edge,
            "strobe edges do not fit in the assertion window"
        );
        let mut points = vec![(t0, self.low)];
        for c in 0..cycles {
            let start = t0 + c as f64 * self.period;
            points.push((start + t_on_rel, self.low));
            points.push((start + t_on_rel + self.edge, self.high));
            points.push((start + t_off_rel, self.high));
            points.push((start + t_off_rel + self.edge, self.low));
        }
        points.push((t0 + cycles as f64 * self.period, self.low));
        // lint: allow(HYG002): constructor-validated timing is monotonic
        Pwl::new(points).expect("timing invariants guarantee monotonic breakpoints")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn timing() -> DigitalTiming {
        DigitalTiming::new(10e-9, 0.2e-9, 0.0, 1.0).unwrap()
    }

    #[test]
    fn random_patterns_are_reproducible_and_balanced() {
        let a = BitPattern::random(128, 42);
        let b = BitPattern::random(128, 42);
        assert_eq!(a, b);
        assert_ne!(a, BitPattern::random(128, 43));
        let ones = a.iter().filter(|&b| b).count();
        assert!(ones > 40 && ones < 88, "roughly balanced: {ones}/128");
        // Longer than one word exercises the refill path.
        assert_eq!(BitPattern::random(100, 7).len(), 100);
    }

    #[test]
    fn parse_and_display_round_trip() {
        let p = BitPattern::parse("110101001").unwrap();
        assert_eq!(p, BitPattern::paper_fig8());
        assert_eq!(p.to_string(), "110101001");
        assert!(BitPattern::parse("").is_err());
        assert!(BitPattern::parse("10x1").is_err());
    }

    #[test]
    fn timing_validation() {
        assert!(DigitalTiming::new(0.0, 0.1, 0.0, 1.0).is_err());
        assert!(DigitalTiming::new(1.0, 0.6, 0.0, 1.0).is_err());
        assert!(DigitalTiming::new(1.0, 0.1, 0.0, 1.0).is_ok());
    }

    #[test]
    fn nrz_holds_levels_mid_cycle() {
        let t = timing();
        let w = t.nrz(&BitPattern::parse("101").unwrap(), 0.0);
        assert!((w.eval(5e-9) - 1.0).abs() < 1e-12); // cycle 0, bit 1
        assert!((w.eval(15e-9) - 0.0).abs() < 1e-12); // cycle 1, bit 0
        assert!((w.eval(25e-9) - 1.0).abs() < 1e-12); // cycle 2, bit 1
                                                      // Transition in progress just after the cycle-1 boundary.
        let mid_edge = w.eval(10.1e-9);
        assert!(mid_edge > 0.0 && mid_edge < 1.0);
    }

    #[test]
    fn nrz_without_transitions_is_flat() {
        let t = timing();
        let w = t.nrz(&BitPattern::parse("111").unwrap(), 0.0);
        assert_eq!(w.min_value(), 1.0);
        assert_eq!(w.max_value(), 1.0);
    }

    #[test]
    fn strobe_pulses_each_cycle() {
        let t = timing();
        let w = t.strobe(0.0, 3, 0.2, 0.8);
        for c in 0..3 {
            let mid = (c as f64 + 0.5) * 10e-9;
            assert!(
                (w.eval(mid) - 1.0).abs() < 1e-12,
                "cycle {c} should be asserted"
            );
            let gap = (c as f64 + 0.95) * 10e-9;
            assert!(
                (w.eval(gap) - 0.0).abs() < 1e-12,
                "cycle {c} gap should be low"
            );
        }
        assert_eq!(w.eval(31e-9), 0.0);
    }

    #[test]
    #[should_panic(expected = "0 < on < off < 1")]
    fn strobe_rejects_bad_fractions() {
        let _ = timing().strobe(0.0, 1, 0.8, 0.2);
    }

    proptest! {
        #[test]
        fn nrz_stays_within_levels(
            bits in proptest::collection::vec(any::<bool>(), 1..16),
            frac in 0.0f64..1.0,
        ) {
            let t = timing();
            let p = BitPattern::new(bits.clone());
            let w = t.nrz(&p, 0.0);
            let probe = frac * bits.len() as f64 * t.period;
            let v = w.eval(probe);
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v));
        }

        #[test]
        fn nrz_mid_cycle_matches_bits(
            bits in proptest::collection::vec(any::<bool>(), 1..16),
        ) {
            let t = timing();
            let p = BitPattern::new(bits.clone());
            let w = t.nrz(&p, 0.0);
            for (i, &b) in bits.iter().enumerate() {
                let mid = (i as f64 + 0.5) * t.period;
                prop_assert!((w.eval(mid) - t.level(b)).abs() < 1e-9);
            }
        }
    }
}
