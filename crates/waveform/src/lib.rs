// `!(x > 0.0)`-style guards are deliberate throughout: unlike
// `x <= 0.0`, the negated comparison also rejects NaN.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

//! Piecewise waveforms and uniformly sampled traces.
//!
//! This crate is the data-representation substrate of the SAMURAI
//! toolkit. Three representations cover everything the paper needs:
//!
//! * [`Pwl`] — a piecewise-*linear* waveform. Bias voltages (word line,
//!   bit lines, node voltages extracted from a SPICE pass) are PWL. The
//!   type doubles as the value format of SPICE PWL sources.
//! * [`Pwc`] — a piecewise-*constant*, right-continuous waveform. Trap
//!   occupancy functions and RTN current traces are PWC by construction:
//!   they change value only at capture/emission instants.
//! * [`Trace`] — a uniformly sampled signal, the form the spectral
//!   estimators in `samurai-analysis` consume.
//!
//! # Examples
//!
//! Build a write-enable pulse and sample it:
//!
//! ```
//! use samurai_waveform::Pwl;
//!
//! let wl = Pwl::pulse(0.0, 1.1, 2e-9, 6e-9, 0.1e-9, 0.1e-9)?;
//! assert_eq!(wl.eval(0.0), 0.0);
//! assert!((wl.eval(4e-9) - 1.1).abs() < 1e-12);
//! let trace = wl.sample(0.0, 1e-10, 100);
//! assert_eq!(trace.len(), 100);
//! # Ok::<(), samurai_waveform::WaveformError>(())
//! ```

mod error;
mod pattern;
mod pwc;
mod pwl;
mod trace;

pub use error::WaveformError;
pub use pattern::{BitPattern, DigitalTiming};
pub use pwc::Pwc;
pub use pwl::Pwl;
pub use trace::Trace;
