//! Error type for waveform construction.

use core::fmt;

/// Error returned when constructing a malformed waveform.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WaveformError {
    /// Breakpoint times are not strictly increasing at the given index.
    NonMonotonicTime {
        /// Index of the offending breakpoint.
        index: usize,
        /// Time at `index - 1`.
        previous: f64,
        /// Time at `index`.
        current: f64,
    },
    /// The waveform has no breakpoints.
    Empty,
    /// A breakpoint value or time is NaN or infinite.
    NonFinite {
        /// Index of the offending breakpoint.
        index: usize,
    },
    /// A duration parameter (rise/fall/width/period) is invalid.
    InvalidDuration {
        /// Name of the offending parameter.
        name: &'static str,
        /// The value supplied.
        value: f64,
    },
}

impl fmt::Display for WaveformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonMonotonicTime {
                index,
                previous,
                current,
            } => write!(
                f,
                "breakpoint times must be strictly increasing: t[{}] = {} <= t[{}] = {}",
                index,
                current,
                index - 1,
                previous
            ),
            Self::Empty => write!(f, "waveform must have at least one breakpoint"),
            Self::NonFinite { index } => {
                write!(f, "breakpoint {index} has a non-finite time or value")
            }
            Self::InvalidDuration { name, value } => {
                write!(
                    f,
                    "duration parameter `{name}` must be positive and finite, got {value}"
                )
            }
        }
    }
}

impl std::error::Error for WaveformError {}

#[cfg(test)]
mod tests {
    use super::WaveformError;

    #[test]
    fn display_messages_are_informative() {
        let e = WaveformError::NonMonotonicTime {
            index: 3,
            previous: 2.0,
            current: 1.5,
        };
        let msg = e.to_string();
        assert!(msg.contains("strictly increasing"), "{msg}");
        assert!(WaveformError::Empty.to_string().contains("at least one"));
        let d = WaveformError::InvalidDuration {
            name: "rise",
            value: -1.0,
        };
        assert!(d.to_string().contains("rise"));
    }
}
