//! X6-column: dense↔sparse solver scaling on generated SRAM column
//! arrays, plus a column-ensemble throughput run.
//!
//! Part A times a fixed-step write transient on generated columns of
//! 4, 16 and 64 rows through both linear-solver backends and reports
//! the per-accepted-step cost; the 64-row speedup is the headline
//! `speedup_64` figure in `BENCH_x6_column.json`. Part B runs the
//! column RTN ensemble (8 rows, auto-selected sparse backend) through
//! the telemetry recorder so the standard bench summary keys are
//! populated.
//!
//! Run with `cargo run --release -p samurai-bench --bin x6_column`.
//! `--smoke` shortens the timed horizon and the ensemble;
//! `--metrics DIR` writes `BENCH_x6_column.json` + journal.

use samurai_bench::{
    banner, failure_policy_from_args, parallelism_from_args, run_controls_from_args,
    smoke_from_args, timed, write_csv, BenchSession,
};
use samurai_core::ensemble::Completion;
use samurai_core::faults::FaultPlan;
use samurai_core::telemetry::JsonValue;
use samurai_spice::{DcConfig, NewtonWorkspace, SolverChoice, SolverKind, TransientConfig};
use samurai_sram::{
    run_column_ensemble_observed, ColumnConfig, ColumnEnsembleConfig, ColumnTiming, SramColumn,
};

/// Row counts of the scaling sweep; the last entry carries the
/// headline speedup figure.
const SIZES: [usize; 3] = [4, 16, 64];

/// Fixed step size of the timed transient. Small enough that every
/// step is accepted inside the quiet precharge phase, so both backends
/// walk an identical step sequence and the wall-clock difference is
/// pure linear-algebra cost.
const STEP: f64 = 5e-12;

/// One timed fixed-step transient; returns (seconds per accepted
/// step, unknowns, structural nonzeros).
fn per_step_seconds(rows: usize, choice: SolverChoice, steps: usize) -> (f64, usize, usize) {
    let config = ColumnConfig {
        rows,
        solver: choice,
        ..ColumnConfig::default()
    };
    let mut column = SramColumn::build(&config).expect("column builds");
    column
        .drive_write(&ColumnTiming::default(), true)
        .expect("waveforms build");
    let transient = TransientConfig {
        dt_init: Some(STEP),
        dt_max: Some(STEP),
        dc: DcConfig {
            initial_guess: Some(column.initial_guess(true)),
            ..DcConfig::default()
        },
        ..TransientConfig::default()
    };
    let compiled = column.compile();
    let mut ws = NewtonWorkspace::new(&compiled);
    let tf = steps as f64 * STEP;
    let (_, secs) = timed(|| {
        compiled
            .run_transient(&mut ws, 0.0, tf, &transient)
            .expect("column transient solves")
    });
    let accepted = ws.stats().steps_accepted.max(1);
    (
        secs / accepted as f64,
        compiled.unknown_count(),
        compiled.nnz(),
    )
}

fn main() {
    if samurai_bench::handle_help(
        "x6_column",
        "X6-column: dense-vs-sparse solver scaling on generated SRAM columns",
        &[],
    ) {
        return;
    }
    let smoke = smoke_from_args();
    let parallelism = parallelism_from_args();
    let failure = failure_policy_from_args();
    let mut session = BenchSession::from_args("x6_column");
    let steps = if smoke { 12 } else { 60 };

    banner("X6-column part A: dense vs sparse per-step cost on generated columns");
    println!("fixed step {STEP:.0e} s, {steps} steps inside the precharge phase");
    let mut rows = Vec::new();
    let mut sizes_json = Vec::new();
    let mut dense_json = Vec::new();
    let mut sparse_json = Vec::new();
    let mut speedup_json = Vec::new();
    let mut speedup_64 = 0.0;
    let mut unknowns_64 = 0usize;
    let mut nnz_64 = 0usize;
    for rows_n in SIZES {
        let (dense, unknowns, _) = per_step_seconds(rows_n, SolverChoice::Dense, steps);
        let (sparse, _, nnz) = per_step_seconds(rows_n, SolverChoice::Sparse, steps);
        let speedup = dense / sparse;
        println!(
            "rows {rows_n:>3} ({unknowns:>3} unknowns, {nnz:>4} nonzeros): \
             dense {:.3} us/step, sparse {:.3} us/step, speedup {speedup:.1}x",
            dense * 1e6,
            sparse * 1e6,
        );
        rows.push(vec![rows_n as f64, dense, sparse, speedup]);
        sizes_json.push(JsonValue::U64(rows_n as u64));
        dense_json.push(JsonValue::F64(dense));
        sparse_json.push(JsonValue::F64(sparse));
        speedup_json.push(JsonValue::F64(speedup));
        if rows_n == 64 {
            speedup_64 = speedup;
            unknowns_64 = unknowns;
            nnz_64 = nnz;
        }
    }
    let path = write_csv(
        "x6_column_scaling.csv",
        "rows,dense_per_step_s,sparse_per_step_s,speedup",
        &rows,
    );
    println!("csv: {}", path.display());

    banner("X6-column part B: column RTN ensemble (8 rows, auto backend)");
    let members = if smoke { 2 } else { 6 };
    let controls = run_controls_from_args();
    if let Some(path) = &controls.checkpoint.path {
        println!(
            "checkpoint: {} every {} jobs{}",
            path.display(),
            controls.checkpoint.every_jobs,
            if controls.checkpoint.resume {
                ", resuming"
            } else {
                ""
            },
        );
    }
    let config = ColumnEnsembleConfig {
        column: ColumnConfig {
            rows: 8,
            ..ColumnConfig::default()
        },
        members,
        rtn_scale: 30.0,
        density_scale: 1.0,
        seed: 42,
        parallelism,
        failure,
        faults: match controls.kill_at_job {
            // Crash drill: exit hard before member N, snapshot intact.
            Some(n) => FaultPlan::none().kill_at_job(n),
            None => FaultPlan::none(),
        },
        checkpoint: controls.checkpoint,
        budget: controls.budget,
        ..ColumnEnsembleConfig::default()
    };
    let auto = SramColumn::build(&config.column)
        .expect("column builds")
        .compile();
    assert_eq!(
        auto.solver_kind(),
        SolverKind::Sparse,
        "an 8-row column must auto-select the sparse backend"
    );
    println!(
        "workers: {} (--threads N), members: {members}, failure policy: {failure:?}",
        parallelism.workers()
    );
    let (stats, wall) = timed(|| {
        run_column_ensemble_observed(&config, session.recorder_mut()).expect("ensemble runs")
    });
    println!(
        "{} members in {wall:.2} s: {} write failures, {} disturbs, {} RTN events",
        stats.effective_members(),
        stats.write_failures(),
        stats.total_disturbs(),
        stats.total_rtn_events(),
    );
    if let Completion::Truncated {
        completed,
        remaining,
    } = stats.completion
    {
        println!(
            "budget exhausted: {completed} of {members} members done, {remaining} remaining \
             (rerun with --resume to continue)"
        );
    }

    banner("X6-column verdict");
    println!(
        "verdict: {}",
        if speedup_64 >= 10.0 {
            "MATCH — the sparse backend is >=10x faster at 64 rows"
        } else {
            "PARTIAL — sparse speedup below 10x at 64 rows"
        }
    );
    let extras = vec![(
        "column",
        JsonValue::obj(vec![
            ("sizes", JsonValue::Arr(sizes_json)),
            ("dense_per_step_s", JsonValue::Arr(dense_json)),
            ("sparse_per_step_s", JsonValue::Arr(sparse_json)),
            ("speedup", JsonValue::Arr(speedup_json)),
            ("speedup_64", JsonValue::F64(speedup_64)),
            ("unknowns_64", JsonValue::U64(unknowns_64 as u64)),
            ("nnz_64", JsonValue::U64(nnz_64 as u64)),
        ]),
    )];
    if let Some(path) = session.finish_with_extras(stats.effective_members(), extras) {
        println!("metrics: {}", path.display());
    }
}
