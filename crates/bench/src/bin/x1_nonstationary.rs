//! X1: non-stationary correctness — ensemble-averaged SAMURAI
//! occupancy against the exact master equation under step and
//! sinusoidal bias.
//!
//! This check is strictly stronger than the paper's stationary
//! validation (Fig 7): uniformisation is supposed to be *exact* for
//! arbitrarily time-varying bias, so the ensemble mean of many
//! independent runs must converge on the master-equation solution at
//! every time point.
//!
//! Run with `cargo run --release -p samurai-bench --bin x1_nonstationary`.

use samurai_analysis::stats;
use samurai_bench::{banner, parallelism_from_args, write_tagged_csv, BenchSession};
use samurai_core::{ensemble_occupancy_observed, SeedStream};
use samurai_trap::{master, DeviceParams, PropensityModel, TrapParams, TrapState};
use samurai_units::{Energy, Length};
use samurai_waveform::Pwl;

fn balanced_bias(model: &PropensityModel) -> f64 {
    let (mut lo, mut hi) = (-2.0, 3.0);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if model.stationary_occupancy(mid) < 0.5 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

fn main() {
    if samurai_bench::handle_help(
        "x1_nonstationary",
        "X1: ensemble-averaged occupancy vs the exact master equation",
        &[],
    ) {
        return;
    }
    let device = DeviceParams::nominal_90nm();
    let trap = TrapParams::new(Length::from_nanometres(1.8), Energy::from_ev(0.4));
    let model = PropensityModel::new(device, trap);
    let lambda = model.rate_sum();
    let v_mid = balanced_bias(&model);
    println!("trap: lambda* = {lambda:.3e}/s, balanced bias = {v_mid:.3} V");

    let runs = 20_000;
    let n = 120;
    let horizon = 30.0 / lambda;
    let dt = horizon / n as f64;
    let parallelism = parallelism_from_args();
    let mut session = BenchSession::from_args("x1");
    println!(
        "{runs} runs per scenario on {} workers (--threads N / SAMURAI_THREADS)",
        parallelism.workers()
    );

    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    let mut worst_overall: f64 = 0.0;

    let scenarios: Vec<(&str, Pwl)> = vec![
        (
            "step_up",
            Pwl::step(v_mid - 0.2, v_mid + 0.2, horizon / 3.0, 0.01 / lambda)
                .expect("static step parameters"),
        ),
        (
            "step_down",
            Pwl::step(v_mid + 0.2, v_mid - 0.2, horizon / 3.0, 0.01 / lambda)
                .expect("static step parameters"),
        ),
        (
            "sine",
            // A PWL approximation of one slow sine period.
            Pwl::from_fn(0.0, horizon, 201, |t| {
                v_mid + 0.15 * (std::f64::consts::TAU * t / horizon).sin()
            }),
        ),
    ];

    banner("X1: ensemble mean vs master equation");
    for (name, bias) in &scenarios {
        let seeds = SeedStream::new(777);
        let ensemble = ensemble_occupancy_observed(
            &model,
            bias,
            0.0,
            dt,
            n,
            runs,
            &seeds,
            parallelism,
            session.recorder_mut(),
        )
        .expect("horizon scaled to the trap rate");
        let exact = master::integrate_occupancy(&model, bias, TrapState::Empty, 0.0, dt, n, 8);

        let mut worst: f64 = 0.0;
        for ((t, est), (_, ex)) in ensemble.iter().zip(exact.iter()) {
            worst = worst.max((est - ex).abs());
            rows.push((name.to_string(), vec![t * lambda, est, ex]));
        }
        // Monte-Carlo 3-sigma bound for a Bernoulli mean.
        let bound = 3.0 * 0.5 / (runs as f64).sqrt();
        println!(
            "{name:10}: max |ensemble - exact| = {worst:.4} (3-sigma MC bound {bound:.4}) {}",
            if worst < 1.5 * bound { "OK" } else { "FAIL" }
        );
        worst_overall = worst_overall.max(worst);

        // Also report the summary statistics of the deviation.
        let devs: Vec<f64> = ensemble
            .iter()
            .zip(exact.iter())
            .map(|((_, a), (_, b))| a - b)
            .collect();
        let s = stats::summarize(&devs);
        println!(
            "           deviation mean {:.5}, std {:.5}",
            s.mean,
            s.variance.sqrt()
        );
    }

    let path = write_tagged_csv(
        "x1_nonstationary.csv",
        "scenario,t_norm,ensemble_p,exact_p",
        &rows,
    );
    banner("X1 verdict");
    println!(
        "verdict: {}",
        if worst_overall < 0.02 {
            "MATCH — uniformisation is exact for non-stationary bias"
        } else {
            "MISMATCH"
        }
    );
    println!("csv: {}", path.display());
    let jobs = session.recorder().sink().counter_value("jobs.completed") as usize;
    session.finish(jobs);
}
