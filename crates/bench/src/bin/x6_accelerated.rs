//! X6: accelerated RTN testing — the word-line timing margin with and
//! without RTN, versus acceleration factor (the paper's pointer to
//! Toh et al. \[14\] as the alternative to artificial current scaling).
//!
//! Run with `cargo run --release -p samurai-bench --bin x6_accelerated`.

use samurai_bench::{banner, write_csv, BenchSession};
use samurai_core::FailurePolicy;
use samurai_sram::accelerated::timing_margin_observed;
use samurai_sram::MethodologyConfig;
use samurai_waveform::BitPattern;

fn main() {
    if samurai_bench::handle_help(
        "x6_accelerated",
        "X6: word-line timing margin vs acceleration factor",
        &[],
    ) {
        return;
    }
    let pattern = BitPattern::parse("10").expect("static pattern");
    banner("X6: minimum word-line window (fraction of cycle) vs RTN scale");
    let mut session = BenchSession::from_args("x6");

    let mut rows = Vec::new();
    let mut penalties = Vec::new();
    for scale in [1.0, 300.0, 800.0, 1500.0] {
        let base = MethodologyConfig {
            seed: 12,
            density_scale: 2.0,
            rtn_scale: scale,
            ..MethodologyConfig::default()
        };
        match timing_margin_observed(
            &pattern,
            &base,
            7,
            FailurePolicy::FailFast,
            session.recorder_mut(),
        ) {
            Ok(margin) => {
                println!(
                    "scale x{scale:>6}: clean min window {:.3}, RTN min window {:.3}, penalty {:+.3} (+- {:.3})",
                    margin.min_window_clean,
                    margin.min_window_rtn,
                    margin.rtn_penalty(),
                    margin.resolution,
                );
                penalties.push((scale, margin.rtn_penalty(), margin.resolution));
                rows.push(vec![
                    scale,
                    margin.min_window_clean,
                    margin.min_window_rtn,
                    margin.rtn_penalty(),
                ]);
            }
            Err(e) => {
                println!("scale x{scale:>6}: {e} (margin exhausted)");
                rows.push(vec![scale, f64::NAN, f64::NAN, f64::NAN]);
            }
        }
    }

    let path = write_csv(
        "x6_accelerated.csv",
        "rtn_scale,min_window_clean,min_window_rtn,penalty",
        &rows,
    );
    banner("X6 verdict");
    let unit = penalties.iter().find(|p| p.0 == 1.0);
    let grows = penalties
        .windows(2)
        .all(|w| w[1].1 >= w[0].1 - w[0].2.max(w[1].2));
    let any_positive = penalties.iter().any(|p| p.1 > p.2);
    println!(
        "verdict: {}",
        match (unit, grows, any_positive) {
            (Some(u), true, true) if u.1.abs() <= 2.0 * u.2 =>
                "MATCH — RTN consumes write-timing margin, growing with acceleration",
            _ => "PARTIAL — inspect the sweep",
        }
    );
    println!("csv: {}", path.display());
    let jobs = session.recorder().sink().counter_value("jobs.completed") as usize;
    session.finish(jobs);
}
