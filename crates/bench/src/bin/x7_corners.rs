//! X7-corners: the unified scenario layer swept over a supply-corner ×
//! aging grid.
//!
//! Each grid point runs a small column RTN ensemble whose per-member
//! scenario — Pelgrom-scaled threshold mismatch, beta/geometry spread,
//! a pinned supply corner, a temperature corner range, NBTI stress
//! time and trap-density dispersion — is expanded deterministically
//! from the master seed through `ScenarioConfig`. Every completed job
//! lands in the telemetry journal with its scenario hash and aging
//! time, so any corner is reproducible from its journal line alone.
//!
//! Run with `cargo run --release -p samurai-bench --bin x7_corners`.
//! `--smoke` shrinks the grid and the ensembles; `--metrics DIR`
//! writes `BENCH_x7_corners.json` + journal.

use std::collections::BTreeSet;

use samurai_bench::{
    banner, failure_policy_from_args, parallelism_from_args, run_controls_from_args,
    smoke_from_args, timed, write_csv, BenchSession,
};
use samurai_core::faults::FaultPlan;
use samurai_core::scenario::{ScenarioConfig, NOMINAL_TEMPERATURE};
use samurai_core::telemetry::{JournalEvent, JsonValue};
use samurai_sram::margin::EOL_STRESS_SECONDS;
use samurai_sram::{run_column_ensemble_observed, ColumnConfig, ColumnEnsembleConfig};

/// The scenario distribution shared by every grid point: Pelgrom
/// mismatch plus mild beta/geometry spread and trap-count dispersion,
/// with the supply corner pinned per point and the temperature drawn
/// from an 80 K operating window.
fn scenario_at(vdd_scale: f64, stress_time: f64) -> ScenarioConfig {
    ScenarioConfig {
        a_vt: 1.8e-9,
        sigma_beta: 0.02,
        sigma_geometry: 0.01,
        vdd_range: (vdd_scale, vdd_scale),
        temperature_range: (NOMINAL_TEMPERATURE, NOMINAL_TEMPERATURE + 80.0),
        stress_time,
        sigma_density: 0.1,
        ..ScenarioConfig::nominal()
    }
}

fn main() {
    if samurai_bench::handle_help(
        "x7_corners",
        "X7-corners: the scenario layer swept over a supply-corner x aging grid",
        &[],
    ) {
        return;
    }
    let smoke = smoke_from_args();
    let parallelism = parallelism_from_args();
    let failure = failure_policy_from_args();
    let controls = run_controls_from_args();
    let mut session = BenchSession::from_args("x7_corners");
    if let Some(path) = &controls.checkpoint.path {
        println!(
            "checkpoint: {}.<corner> every {} jobs{} (one snapshot per grid point)",
            path.display(),
            controls.checkpoint.every_jobs,
            if controls.checkpoint.resume {
                ", resuming"
            } else {
                ""
            },
        );
    }

    let vdd_corners: &[f64] = if smoke { &[0.9, 1.1] } else { &[0.9, 1.0, 1.1] };
    let stress_times: &[f64] = if smoke {
        &[0.0, EOL_STRESS_SECONDS]
    } else {
        &[0.0, 1e7, EOL_STRESS_SECONDS]
    };
    let members = if smoke { 2 } else { 4 };
    let rows = 2;

    banner("X7-corners: variability + RTN + aging through one scenario surface");
    println!(
        "grid: {} supply corners x {} stress times, {members} members each, \
         workers: {} (--threads N), failure policy: {failure:?}",
        vdd_corners.len(),
        stress_times.len(),
        parallelism.workers()
    );

    let mut csv_rows = Vec::new();
    let mut failures_json = Vec::new();
    let mut rtn_json = Vec::new();
    let mut total_jobs = 0usize;
    let mut total_wall = 0.0;
    for (i, &vdd) in vdd_corners.iter().enumerate() {
        for (j, &stress) in stress_times.iter().enumerate() {
            // Each grid point is its own ensemble, so each gets its
            // own snapshot file (suffix = corner index); the budget
            // and the kill drill apply per point.
            let mut checkpoint = controls.checkpoint.clone();
            if let Some(path) = &mut checkpoint.path {
                let mut name = path.clone().into_os_string();
                name.push(format!(".{i}_{j}"));
                *path = name.into();
            }
            let config = ColumnEnsembleConfig {
                column: ColumnConfig {
                    rows,
                    ..ColumnConfig::default()
                },
                members,
                rtn_scale: 30.0,
                density_scale: 1.0,
                scenario: Some(scenario_at(vdd, stress)),
                seed: 100 + (i * stress_times.len() + j) as u64,
                parallelism,
                failure,
                faults: match controls.kill_at_job {
                    Some(n) => FaultPlan::none().kill_at_job(n),
                    None => FaultPlan::none(),
                },
                checkpoint,
                budget: controls.budget,
                ..ColumnEnsembleConfig::default()
            };
            let (stats, wall) = timed(|| {
                run_column_ensemble_observed(&config, session.recorder_mut())
                    .expect("corner ensemble runs")
            });
            total_jobs += stats.effective_members();
            total_wall += wall;
            println!(
                "vdd x{vdd:.2}, stress {stress:.1e} s: {} members in {wall:.2} s, \
                 {} write failures, {} disturbs, {} RTN events",
                stats.effective_members(),
                stats.write_failures(),
                stats.total_disturbs(),
                stats.total_rtn_events(),
            );
            csv_rows.push(vec![
                vdd,
                stress,
                stats.effective_members() as f64,
                stats.write_failures() as f64,
                stats.total_disturbs() as f64,
                stats.total_rtn_events() as f64,
            ]);
            failures_json.push(JsonValue::U64(stats.write_failures() as u64));
            rtn_json.push(JsonValue::U64(stats.total_rtn_events() as u64));
        }
    }
    let path = write_csv(
        "x7_corner_grid.csv",
        "vdd_scale,stress_s,members,write_failures,disturbs,rtn_events",
        &csv_rows,
    );
    println!("csv: {}", path.display());

    banner("X7-corners journal audit");
    let mut stamped = 0usize;
    let mut aged = 0usize;
    let mut hashes = BTreeSet::new();
    for event in session.recorder().journal().events() {
        if let JournalEvent::Job { scenario, .. } = event {
            let stamp = scenario.expect("every scenario-sweep job carries a stamp");
            stamped += 1;
            hashes.insert(stamp.hash);
            if stamp.aging_seconds > 0.0 {
                aged += 1;
            }
        }
    }
    println!(
        "{stamped} journalled jobs, {} distinct scenario hashes, {aged} aged jobs",
        hashes.len()
    );

    banner("X7-corners verdict");
    let attributable = stamped == total_jobs && hashes.len() == stamped && aged > 0;
    println!(
        "verdict: {}",
        if attributable {
            "MATCH — every job is attributable to a distinct journalled scenario"
        } else {
            "PARTIAL — scenario stamps missing, colliding, or no aged corner ran"
        }
    );
    println!("total: {total_jobs} jobs in {total_wall:.2} s of ensemble time");

    let extras = vec![(
        "corners",
        JsonValue::obj(vec![
            (
                "vdd_scales",
                JsonValue::Arr(vdd_corners.iter().map(|&v| JsonValue::F64(v)).collect()),
            ),
            (
                "stress_times_s",
                JsonValue::Arr(stress_times.iter().map(|&s| JsonValue::F64(s)).collect()),
            ),
            ("write_failures", JsonValue::Arr(failures_json)),
            ("rtn_events", JsonValue::Arr(rtn_json)),
            (
                "distinct_scenario_hashes",
                JsonValue::U64(hashes.len() as u64),
            ),
            ("aged_jobs", JsonValue::U64(aged as u64)),
        ]),
    )];
    if let Some(path) = session.finish_with_extras(total_jobs, extras) {
        println!("metrics: {}", path.display());
    }
}
