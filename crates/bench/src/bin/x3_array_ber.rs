//! X3: array-level Monte-Carlo bit-error analysis (paper future work,
//! item 3) — write-error statistics over sampled cells with V_T
//! variation, as a function of the RTN acceleration factor.
//!
//! Run with `cargo run --release -p samurai-bench --bin x3_array_ber`.

use samurai_bench::{
    banner, failure_policy_from_args, parallelism_from_args, timed, write_csv, BenchSession,
};
use samurai_core::Parallelism;
use samurai_sram::array::{run_array, run_array_observed, ArrayConfig};
use samurai_sram::MethodologyConfig;
use samurai_waveform::BitPattern;

fn main() {
    if samurai_bench::handle_help(
        "x3_array_ber",
        "X3: array-level Monte-Carlo bit-error analysis",
        &[],
    ) {
        return;
    }
    let pattern = BitPattern::parse("1010").expect("static pattern");
    let cells = 24;
    let vth_sigma = 0.04;
    let parallelism = parallelism_from_args();
    let failure = failure_policy_from_args();
    let mut session = BenchSession::from_args("x3");

    banner("X3: write-BER vs RTN acceleration (24 cells, sigma_VT = 40 mV)");
    println!(
        "workers: {} (--threads N / SAMURAI_THREADS to change)",
        parallelism.workers()
    );
    println!(
        "failure policy: {failure:?} (--failure-policy fail-fast|retry[:R]|quarantine[:M[:R]])"
    );
    let mut rows = Vec::new();
    let mut prev_rate = 0.0;
    let mut monotone = true;
    for scale in [1.0, 100.0, 1000.0, 3000.0] {
        let config = ArrayConfig {
            cells,
            vth_sigma,
            seed: 17,
            failure,
            base: MethodologyConfig {
                rtn_scale: scale,
                density_scale: 1.5,
                parallelism,
                ..MethodologyConfig::default()
            },
            ..ArrayConfig::default()
        };
        let stats = run_array_observed(&pattern, &config, session.recorder_mut())
            .expect("array sweep runs");
        let rate = stats.error_rate();
        let slow: usize = stats.cells.iter().map(|c| c.slow).sum();
        println!(
            "scale x{scale:>6}: BER {rate:.3} ({} errors / {} writes), {} slow, {} failing cells, {} baseline errors",
            stats.total_errors(),
            stats.effective_cells() * pattern.len(),
            slow,
            stats.failing_cells(),
            stats.total_baseline_errors(),
        );
        if !stats.report.is_clean() {
            println!(
                "         rescue report: {} rescued, {} quarantined of {} cells",
                stats.report.rescued.len(),
                stats.report.quarantined.len(),
                stats.report.jobs,
            );
            print!("{}", stats.report.journal().to_jsonl());
        }
        if rate < prev_rate {
            monotone = false;
        }
        prev_rate = rate;
        rows.push(vec![
            scale,
            rate,
            stats.total_errors() as f64,
            slow as f64,
            stats.failing_cells() as f64,
            stats.total_baseline_errors() as f64,
        ]);
    }

    let path = write_csv(
        "x3_array_ber.csv",
        "rtn_scale,error_rate,errors,slow,failing_cells,baseline_errors",
        &rows,
    );
    banner("X3 verdict");
    let final_rate = rows.last().expect("non-empty")[1];
    println!(
        "verdict: {}",
        if monotone && final_rate > 0.0 && rows[0][1] == 0.0 {
            "MATCH — BER is zero unaccelerated and grows monotonically with RTN"
        } else {
            "PARTIAL — inspect the sweep"
        }
    );
    println!("csv: {}", path.display());

    // Speedup check: the same sweep, sequential vs the worker pool.
    // The ensemble engine guarantees bit-identical statistics, so the
    // only thing allowed to differ is the wall-clock.
    banner("Parallel ensemble speedup (same seeds, same answers)");
    let speedup_config = |parallelism: Parallelism| ArrayConfig {
        cells: 8,
        vth_sigma,
        seed: 17,
        failure,
        base: MethodologyConfig {
            rtn_scale: 1000.0,
            density_scale: 1.5,
            parallelism,
            ..MethodologyConfig::default()
        },
        ..ArrayConfig::default()
    };
    let (seq, t_seq) = timed(|| {
        run_array(&pattern, &speedup_config(Parallelism::Fixed(1))).expect("sequential sweep")
    });
    let (par, t_par) =
        timed(|| run_array(&pattern, &speedup_config(parallelism)).expect("parallel sweep"));
    assert_eq!(seq.cells, par.cells, "parallel sweep must be bit-identical");
    println!(
        "8 cells sequential: {t_seq:.2} s | {} workers: {t_par:.2} s | speedup {:.2}x | results identical: yes",
        parallelism.workers(),
        t_seq / t_par
    );
    let jobs = session.recorder().sink().counter_value("jobs.completed") as usize;
    session.finish(jobs);
}
