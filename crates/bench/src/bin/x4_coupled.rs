//! X4: bi-directionally coupled RTN+circuit simulation (paper future
//! work, item 1) against the paper's two-pass methodology.
//!
//! The two-pass flow pre-computes biases, so RTN-induced voltage
//! changes never feed back into the trap propensities. The coupled
//! simulator closes the loop. At unit RTN scale both must agree on the
//! write outcomes (feedback is a second-order effect); the comparison
//! quantifies how close the cheaper two-pass flow stays.
//!
//! Run with `cargo run --release -p samurai-bench --bin x4_coupled`.

use samurai_bench::{banner, parallelism_from_args, write_tagged_csv, BenchSession};
use samurai_core::telemetry::{JobRecord, SolverStats, Stopwatch, TrapStats};
use samurai_sram::coupled::{run_coupled, CoupledConfig};
use samurai_sram::{run_methodology, MethodologyConfig, Transistor};
use samurai_waveform::BitPattern;

fn main() {
    if samurai_bench::handle_help(
        "x4_coupled",
        "X4: bi-directionally coupled RTN+circuit simulation",
        &[],
    ) {
        return;
    }
    let pattern = BitPattern::paper_fig8();
    let parallelism = parallelism_from_args();
    println!(
        "RTN generation on {} workers (--threads N / SAMURAI_THREADS)",
        parallelism.workers()
    );
    let base = MethodologyConfig {
        seed: 21,
        density_scale: 1.5,
        rtn_scale: 1.0,
        parallelism,
        ..MethodologyConfig::default()
    };

    let mut session = BenchSession::from_args("x4");
    banner("X4: two-pass methodology vs bi-directionally coupled simulation");
    let watch = Stopwatch::start();
    let two_pass = run_methodology(&pattern, &base).expect("two-pass runs");
    session.recorder_mut().absorb_job(&JobRecord {
        job: 0,
        seconds: watch.elapsed_seconds(),
        rescued: None,
        solver: two_pass.solver,
        trap: TrapStats::default(),
        scenario: None,
    });
    let watch = Stopwatch::start();
    let coupled = run_coupled(
        &pattern,
        &CoupledConfig {
            base: base.clone(),
            dt: 5e-12,
        },
    )
    .expect("coupled run completes");
    // The coupled integrator runs its own fixed-step loop outside the
    // shared Newton workspace, so only its wall-clock is journalled.
    session.recorder_mut().absorb_job(&JobRecord {
        job: 1,
        seconds: watch.elapsed_seconds(),
        rescued: None,
        solver: SolverStats::default(),
        trap: TrapStats::default(),
        scenario: None,
    });

    println!("two-pass outcomes: {:?}", two_pass.outcomes.outcomes);
    println!("coupled  outcomes: {:?}", coupled.outcomes.outcomes);
    let outcomes_agree = two_pass.outcomes.outcomes == coupled.outcomes.outcomes;

    // Compare the Q waveforms on a uniform grid.
    let tf = base.timing.duration(pattern.len());
    let samples = 800;
    let mut rows = Vec::new();
    let mut max_dq: f64 = 0.0;
    for i in 0..samples {
        let t = tf * i as f64 / samples as f64;
        let a = two_pass.q_rtn.eval(t);
        let b = coupled.q.eval(t);
        max_dq = max_dq.max((a - b).abs());
        rows.push(("q".to_string(), vec![t * 1e9, a, b]));
    }

    // Compare trap activity levels (mean filled count per transistor).
    println!("mean filled traps (two-pass vs coupled):");
    let mut activity_close = true;
    for t in Transistor::ALL {
        let a = two_pass.rtn[t.index()].n_filled.mean(0.0, tf);
        let b = coupled.n_filled[t.index()].mean(0.0, tf);
        println!("  {}: {a:.2} vs {b:.2}", t.label());
        if (a - b).abs() > 0.35 * (a + b).max(1.0) {
            activity_close = false;
        }
        rows.push((format!("nfilled_{}", t.label()), vec![a, b, 0.0]));
    }
    println!("max |Q_two_pass - Q_coupled| = {max_dq:.3} V");

    let path = write_tagged_csv("x4_coupled.csv", "series,x,two_pass,coupled", &rows);
    banner("X4 verdict");
    println!(
        "verdict: {}",
        if outcomes_agree && activity_close {
            "MATCH — at unit scale the feedback is second order; the two-pass flow is sound"
        } else {
            "DIVERGENT — feedback matters for this configuration"
        }
    );
    println!("csv: {}", path.display());
    session.finish(2);
}
