//! Fig 8: the full SAMURAI+SPICE methodology on the paper's bit
//! pattern `[1,1,0,1,0,1,0,0,1]`.
//!
//! Reproduces all five panels: (a) the clean write of the pattern,
//! (b, c) the anti-correlated trap occupancy of M5 (gate = Q) and M6
//! (gate = Q̄), (d) the generated `I_RTN` of pass transistor M2, and
//! (e) the RTN-injected re-simulation, scaled until a write error
//! appears (the paper needed ×30 at 90 nm; the matching scale on this
//! substrate is reported, and the *shape* — rare errors appearing only
//! under scaling — is the reproduced claim).
//!
//! Run with `cargo run --release -p samurai-bench --bin fig8_methodology`.

use samurai_bench::{banner, parallelism_from_args, write_tagged_csv, BenchSession};
use samurai_core::telemetry::{JobRecord, SolverStats, Stopwatch, TrapStats};
use samurai_sram::{run_methodology, MethodologyConfig, Transistor};
use samurai_waveform::BitPattern;

/// Record one two-pass methodology run as a telemetry job: its
/// wall-clock and the Newton effort read off the shared workspace.
fn absorb(session: &mut BenchSession, job: usize, seconds: f64, solver: SolverStats) {
    session.recorder_mut().absorb_job(&JobRecord {
        job,
        seconds,
        rescued: None,
        solver,
        trap: TrapStats::default(),
        scenario: None,
    });
}

fn main() {
    if samurai_bench::handle_help(
        "fig8_methodology",
        "regenerates Fig. 8: the full SAMURAI+SPICE methodology on the paper's bit pattern",
        &[],
    ) {
        return;
    }
    let pattern = BitPattern::paper_fig8();
    println!("bit pattern: {pattern}");
    let parallelism = parallelism_from_args();
    let mut session = BenchSession::from_args("fig8");
    let mut jobs = 0usize;
    println!(
        "RTN generation on {} workers (--threads N / SAMURAI_THREADS)",
        parallelism.workers()
    );

    // Panels a-d at unit scale.
    let base_config = MethodologyConfig {
        seed: 12,
        density_scale: 2.0,
        rtn_scale: 1.0,
        parallelism,
        ..MethodologyConfig::default()
    };
    let watch = Stopwatch::start();
    let report = run_methodology(&pattern, &base_config).expect("methodology runs");
    absorb(&mut session, jobs, watch.elapsed_seconds(), report.solver);
    jobs += 1;

    banner("Fig 8a: clean write pass");
    println!(
        "outcomes: {:?} (all clean: {})",
        report.outcomes_clean.outcomes,
        report.outcomes_clean.all_clean()
    );

    banner("Fig 8b/8c: trap occupancy of M5 (gate=Q) and M6 (gate=Q-bar)");
    let m5 = &report.rtn[Transistor::M5.index()];
    let m6 = &report.rtn[Transistor::M6.index()];
    let tf = base_config.timing.duration(pattern.len());
    // Mean filled count while Q is written 1 vs written 0.
    let mut m5_q1 = 0.0;
    let mut m5_q0 = 0.0;
    let mut m6_q1 = 0.0;
    let mut m6_q0 = 0.0;
    let mut n1 = 0.0;
    let mut n0 = 0.0;
    for (cycle, bit) in pattern.iter().enumerate() {
        let a = (cycle as f64 + 0.75) * base_config.timing.period;
        let b = (cycle as f64 + 1.0) * base_config.timing.period;
        if bit {
            m5_q1 += m5.n_filled.mean(a, b);
            m6_q1 += m6.n_filled.mean(a, b);
            n1 += 1.0;
        } else {
            m5_q0 += m5.n_filled.mean(a, b);
            m6_q0 += m6.n_filled.mean(a, b);
            n0 += 1.0;
        }
    }
    let (m5_q1, m5_q0, m6_q1, m6_q0) = (m5_q1 / n1, m5_q0 / n0, m6_q1 / n1, m6_q0 / n0);
    println!(
        "M5 ({} traps): mean filled while Q=1: {m5_q1:.2}, while Q=0: {m5_q0:.2}",
        m5.traps.len()
    );
    println!(
        "M6 ({} traps): mean filled while Q=1: {m6_q1:.2}, while Q=0: {m6_q0:.2}",
        m6.traps.len()
    );
    let anticorrelated = m5_q1 >= m5_q0 && m6_q0 >= m6_q1;
    println!(
        "anti-correlation (paper: M5 active when Q high, M6 when Q low): {}",
        if anticorrelated { "OK" } else { "WEAK" }
    );

    banner("Fig 8d: I_RTN of pass transistor M2");
    let m2 = &report.rtn[Transistor::M2.index()];
    println!(
        "M2: {} traps, {} events, peak |I_RTN| = {:.3} uA",
        m2.traps.len(),
        m2.occupancies
            .iter()
            .map(|o| o.transition_count())
            .sum::<usize>(),
        m2.i_rtn.max_value().abs().max(m2.i_rtn.min_value().abs()) * 1e6
    );

    // Panel e: scale until a write error appears. The paper works at
    // the *margin* of the minimum supply voltage, so the sweep is also
    // run at reduced V_dd: the required acceleration factor collapses
    // as the supply (and hence the restoring drive) shrinks.
    banner("Fig 8e: scaling I_RTN until a write error appears");
    let mut breaking = None;
    for vdd in [1.1, 0.9, 0.8] {
        let mut first_break = None;
        for scale in [1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0] {
            let mut cell = base_config.cell;
            cell.vdd = vdd;
            let mut timing = base_config.timing;
            timing.vdd = vdd;
            let config = MethodologyConfig {
                rtn_scale: scale,
                cell,
                timing,
                ..base_config.clone()
            };
            let watch = Stopwatch::start();
            let r = run_methodology(&pattern, &config).expect("methodology runs");
            absorb(&mut session, jobs, watch.elapsed_seconds(), r.solver);
            jobs += 1;
            let errors = r.outcomes.error_count();
            let slow = r.outcomes.slow_count();
            if !r.outcomes_clean.all_clean() {
                println!("  vdd={vdd}: clean pass itself fails — below minimum supply");
                break;
            }
            println!("  vdd={vdd} scale x{scale:>6}: {errors} errors, {slow} slow writes");
            if (errors > 0 || slow > 0) && first_break.is_none() {
                first_break = Some(scale);
            }
            if errors > 0 {
                if breaking.is_none() {
                    breaking = Some((scale, r));
                }
                break;
            }
        }
        match first_break {
            Some(s) => println!("  vdd={vdd}: first disturbance at scale x{s}"),
            None => println!("  vdd={vdd}: robust across the whole sweep"),
        }
    }

    // CSV output of the panels.
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    let samples = 900;
    let error_report = breaking.as_ref().map(|(_, r)| r).unwrap_or(&report);
    for i in 0..samples {
        let t = tf * i as f64 / samples as f64;
        rows.push((
            "panel_a".into(),
            vec![t * 1e9, report.q_clean.eval(t), report.qb_clean.eval(t)],
        ));
        rows.push(("panel_b_m5".into(), vec![t * 1e9, m5.n_filled.eval(t), 0.0]));
        rows.push(("panel_c_m6".into(), vec![t * 1e9, m6.n_filled.eval(t), 0.0]));
        rows.push((
            "panel_d_m2".into(),
            vec![t * 1e9, m2.i_rtn.eval(t) * 1e6, 0.0],
        ));
        rows.push((
            "panel_e".into(),
            vec![
                t * 1e9,
                error_report.q_rtn.eval(t),
                error_report.qb_rtn.eval(t),
            ],
        ));
    }
    let path = write_tagged_csv("fig8_panels.csv", "panel,time_ns,v1,v2", &rows);

    banner("Fig 8 verdict");
    match &breaking {
        Some((scale, r)) => {
            println!(
                "write error appears at I_RTN scale x{scale} (paper: x30 on their 90 nm substrate)"
            );
            println!("failing cycles: {:?}", r.outcomes.outcomes);
            println!(
                "verdict: {}",
                if report.outcomes_clean.all_clean() && anticorrelated {
                    "MATCH — clean baseline, bias-tracking traps, scaling-induced write error"
                } else {
                    "PARTIAL"
                }
            );
        }
        None => println!("verdict: MISMATCH — no scale produced an error"),
    }
    println!("csv: {}", path.display());
    session.finish(jobs);
}
