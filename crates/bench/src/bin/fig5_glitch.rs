//! Fig 5: the effect of `I_RTN` glitch *timing* on a write.
//!
//! Three BSIM-4-style scenarios, reproduced on the Rust substrate: a
//! `1` is written to a cell holding `0`, with a rectangular `I_RTN`
//! glitch on the pass transistor M1 that is (top) absent, (middle)
//! contained inside the word-line window — slowing the write, and
//! (bottom) overlapping the word-line de-assertion — killing it.
//!
//! Run with `cargo run --release -p samurai-bench --bin fig5_glitch`.

use samurai_bench::{banner, parallelism_from_args, write_tagged_csv, BenchSession};
use samurai_core::ensemble::{run_ensemble_observed, IndexedResults};
use samurai_spice::{run_transient, Source, TransientConfig};
use samurai_sram::{
    analyze_writes, build_write_waveforms, CycleOutcome, SramCell, SramCellParams, Transistor,
    WriteTiming,
};
use samurai_waveform::{BitPattern, Pwl};

struct Scenario {
    name: &'static str,
    /// Glitch interval inside the write-1 cycle, as period fractions,
    /// or `None` for the clean case.
    window: Option<(f64, f64)>,
    expected: CycleOutcome,
}

fn main() {
    if samurai_bench::handle_help(
        "fig5_glitch",
        "regenerates Fig. 5: effect of I_RTN glitch timing on a write",
        &[],
    ) {
        return;
    }
    let timing = WriteTiming::default();
    // Cycle 0 writes a 0 (establishing the state), cycle 1 writes the 1
    // that the glitch attacks.
    let pattern = BitPattern::parse("01").expect("static pattern");
    let attack_cycle = 1usize;

    // Glitch amplitude: strong enough to starve the pass transistor.
    let glitch_amps = 260e-6;

    let scenarios = [
        Scenario {
            name: "no_glitch",
            window: None,
            expected: CycleOutcome::Clean,
        },
        Scenario {
            name: "mid_wl_glitch",
            // Starts after WL asserts, ends before WL de-asserts.
            window: Some((0.35, 0.685)),
            expected: CycleOutcome::Slow,
        },
        Scenario {
            name: "deassert_glitch",
            // Starts just before WL falls and continues past it.
            window: Some((0.6, 0.95)),
            expected: CycleOutcome::Error,
        },
    ];

    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    let mut all_match = true;
    let parallelism = parallelism_from_args();
    let mut session = BenchSession::from_args("fig5");

    banner("Fig 5: glitch-timing taxonomy");
    println!(
        "{} scenarios on {} workers (--threads N / SAMURAI_THREADS)",
        scenarios.len(),
        parallelism.workers()
    );

    // Each scenario is an independent write transient; run them as a
    // deterministic ensemble (bit-identical at any worker count).
    type ScenarioRun = (CycleOutcome, Option<f64>, Vec<(String, Vec<f64>)>);
    let runs: Vec<ScenarioRun> = run_ensemble_observed::<IndexedResults<ScenarioRun>, _, (), _>(
        scenarios.len(),
        parallelism,
        session.recorder_mut(),
        IndexedResults::new,
        |idx, _probe| {
            let scenario = &scenarios[idx];
            let mut cell = SramCell::new(SramCellParams::default());
            let waves = build_write_waveforms(&pattern, &timing).expect("valid timing");
            cell.set_wl(Source::Pwl(waves.wl));
            cell.set_bl(Source::Pwl(waves.bl));
            cell.set_blb(Source::Pwl(waves.blb));

            if let Some((on_frac, off_frac)) = scenario.window {
                let t_on = (attack_cycle as f64 + on_frac) * timing.period;
                let t_off = (attack_cycle as f64 + off_frac) * timing.period;
                let glitch = Pwl::pulse(0.0, glitch_amps, t_on, t_off, 10e-12, 10e-12)
                    .expect("glitch window is inside the cycle");
                cell.set_rtn_source(Transistor::M1, Source::Pwl(glitch));
            }

            let tf = timing.duration(pattern.len());
            let result = run_transient(&cell.circuit, 0.0, tf, &TransientConfig::default())
                .expect("write transient converges");
            let q = result.voltage(&cell.circuit, "q").expect("node q exists");
            let qb = result.voltage(&cell.circuit, "qb").expect("node qb exists");
            let analysis = analyze_writes(&q, &pattern, &timing);

            // Record the waveforms on a uniform grid for plotting.
            let samples = 600;
            let mut scenario_rows = Vec::with_capacity(samples);
            for i in 0..samples {
                let t = tf * i as f64 / samples as f64;
                scenario_rows.push((
                    scenario.name.to_string(),
                    vec![t * 1e9, q.eval(t), qb.eval(t)],
                ));
            }
            Ok((
                analysis.outcomes[attack_cycle],
                analysis.settle_time[attack_cycle],
                scenario_rows,
            ))
        },
    )
    .expect("scenario transients are total")
    .into_vec();

    for (scenario, (outcome, settle, scenario_rows)) in scenarios.iter().zip(runs) {
        rows.extend(scenario_rows);
        let matched = outcome == scenario.expected;
        all_match &= matched;
        println!(
            "{:16} -> {:?} (expected {:?}) {}  settle = {:?}",
            scenario.name,
            outcome,
            scenario.expected,
            if matched { "OK" } else { "MISMATCH" },
            settle.map(|s| format!("{:.2} ns", s * 1e9)),
        );
    }

    let path = write_tagged_csv("fig5_waveforms.csv", "scenario,time_ns,q_v,qb_v", &rows);
    banner("Fig 5 verdict");
    println!(
        "verdict: {}",
        if all_match {
            "MATCH — glitch timing decides between clean, slow and failed writes"
        } else {
            "MISMATCH — tune glitch amplitude/windows"
        }
    );
    println!("csv: {}", path.display());
    session.finish(scenarios.len());
}
