//! CI gate for the result store: parse `samurai-request-v1` /
//! `samurai-store-v1` documents, recompute the FNV-1a content hash
//! over the canonical payload serialisation and reject schema gaps.
//!
//! Run with
//! `cargo run -p samurai-bench --bin validate_store -- <path>...`
//! (typically `store/*.json store/*.req.json`); exits non-zero listing
//! every violation, so `ci.sh` can audit everything the serve daemon
//! left behind after its smoke gate.

use samurai_core::telemetry::json;
use samurai_serve::validate_store_document;
use std::process::ExitCode;

fn validate_file(path: &str) -> Result<(), Vec<String>> {
    let text =
        std::fs::read_to_string(path).map_err(|e| vec![format!("cannot read {path}: {e}")])?;
    let doc = json::parse(&text).map_err(|e| vec![format!("invalid JSON in {path}: {e}")])?;
    let errors = validate_store_document(&doc);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn main() -> ExitCode {
    if samurai_bench::handle_help(
        "validate_store",
        "CI gate: validate samurai-request-v1 / samurai-store-v1 documents",
        &[("<path>...", "files to validate")],
    ) {
        return ExitCode::SUCCESS;
    }
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_store <store-document.json>...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &paths {
        match validate_file(path) {
            Ok(()) => println!("{path}: ok"),
            Err(errors) => {
                failed = true;
                for error in errors {
                    eprintln!("{path}: {error}");
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
