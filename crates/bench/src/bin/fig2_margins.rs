//! Fig 2: SRAM design-margin impact of variation, NBTI and RTN across
//! technology nodes (synthetic reproduction of the Renesas data —
//! see DESIGN.md §3).
//!
//! Run with `cargo run --release -p samurai-bench --bin fig2_margins`.

use samurai_bench::{banner, parallelism_from_args, write_tagged_csv, BenchSession};
use samurai_core::ensemble::{run_ensemble_observed, IndexedResults};
use samurai_sram::margin::{MarginModel, MarginRow};
use samurai_trap::Technology;

fn main() {
    if samurai_bench::handle_help(
        "fig2_margins",
        "regenerates Fig. 2: design-margin impact of variation, NBTI and RTN across nodes",
        &[],
    ) {
        return;
    }
    let model = MarginModel::default();
    let parallelism = parallelism_from_args();
    let mut session = BenchSession::from_args("fig2");
    let nodes = Technology::all_nodes();
    println!(
        "evaluating {} nodes on {} workers (--threads N / SAMURAI_THREADS)",
        nodes.len(),
        parallelism.workers()
    );
    let rows: Vec<MarginRow> = run_ensemble_observed::<IndexedResults<MarginRow>, _, (), _>(
        nodes.len(),
        parallelism,
        session.recorder_mut(),
        IndexedResults::new,
        |i, _probe| Ok(model.row(&nodes[i], i)),
    )
    .expect("margin model evaluation is total")
    .into_vec();

    banner("Fig 2: stacked minimum-V_dd contributions per node");
    println!(
        "{:>6} | {:>6} {:>9} {:>6} {:>6} | {:>6} vs {:>6} | {:>9} | {:>10}",
        "node", "static", "variation", "nbti", "rtn", "total", "vdd", "rtn share", "corr total"
    );
    let mut csv_rows = Vec::new();
    for row in &rows {
        let status = if row.total() > row.vdd_scaling {
            "FAILS"
        } else {
            "ok"
        };
        println!(
            "{:>6} | {:>6.3} {:>9.3} {:>6.3} {:>6.3} | {:>6.3} vs {:>6.3} | {:>8.1}% | {:>7.3} {}",
            row.node,
            row.static_noise,
            row.variation,
            row.nbti,
            row.rtn,
            row.total(),
            row.vdd_scaling,
            100.0 * row.rtn_share(),
            row.total_with_correlation(0.5),
            status,
        );
        csv_rows.push((
            row.node.clone(),
            vec![
                row.vdd_scaling,
                row.static_noise,
                row.variation,
                row.nbti,
                row.rtn,
                row.total(),
                row.total_with_correlation(0.5),
            ],
        ));
    }
    let path = write_tagged_csv(
        "fig2_margins.csv",
        "node,vdd_scaling,static,variation,nbti,rtn,total,total_corr_0.5",
        &csv_rows,
    );

    banner("Fig 2 verdict");
    let first = &rows[0];
    let last = &rows[rows.len() - 1];
    let shape = first.total() < first.vdd_scaling
        && last.total() > last.vdd_scaling
        && last.total() - last.rtn < last.vdd_scaling
        && rows.windows(2).all(|w| w[1].rtn_share() > w[0].rtn_share());
    println!(
        "verdict: {}",
        if shape {
            "MATCH — RTN's growing increment is what exhausts the margin under scaling"
        } else {
            "MISMATCH — model coefficients need retuning"
        }
    );
    println!(
        "exploiting the RTN-NBTI correlation (rho = 0.5) recovers {:.0} mV at the deepest node",
        (last.total() - last.total_with_correlation(0.5)) * 1e3
    );
    println!("csv: {}", path.display());
    session.finish(rows.len());
}
