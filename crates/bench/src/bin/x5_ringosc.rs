//! X5: ring-oscillator RTN (paper future work, item 4) — period and
//! cycle-to-cycle jitter of a 5-stage ring with and without injected
//! RTN, pooled over several trap-profile seeds.
//!
//! The scale-0 run measures the harness's own numerical noise floor
//! (the injected PWL breakpoints perturb the integrator's step
//! pattern); genuine RTN-induced jitter must rise above it.
//!
//! Run with `cargo run --release -p samurai-bench --bin x5_ringosc`.

use samurai_bench::{banner, write_csv, BenchSession};
use samurai_core::telemetry::{JobRecord, SolverStats, Stopwatch, TrapStats};
use samurai_sram::ringosc::{run_ring, RingConfig};

fn pooled_jitter(periods: &[f64]) -> f64 {
    let n = periods.len().max(1) as f64;
    let mean = periods.iter().sum::<f64>() / n;
    (periods.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / n).sqrt()
}

fn main() {
    if samurai_bench::handle_help(
        "x5_ringosc",
        "X5: ring-oscillator period and cycle-to-cycle jitter under RTN",
        &[],
    ) {
        return;
    }
    banner("X5: 5-stage ring oscillator under RTN (pooled over 3 seeds)");
    let mut session = BenchSession::from_args("x5");
    let mut jobs = 0usize;
    let mut rows = Vec::new();
    let mut jitter_by_scale = Vec::new();
    for scale in [0.0, 30.0, 300.0] {
        let mut all_periods = Vec::new();
        let mut clean_mean = 0.0;
        for seed in [5, 6, 7] {
            let config = RingConfig {
                rtn_scale: scale,
                density_scale: 1.5,
                seed,
                ..RingConfig::default()
            };
            let watch = Stopwatch::start();
            let report = run_ring(&config).expect("ring simulates");
            // The ring integrator owns its own solver state; each
            // (scale, seed) run is journalled as a wall-clock-only job.
            session.recorder_mut().absorb_job(&JobRecord {
                job: jobs,
                seconds: watch.elapsed_seconds(),
                rescued: None,
                solver: SolverStats::default(),
                trap: TrapStats::default(),
                scenario: None,
            });
            jobs += 1;
            clean_mean = report.mean_period_clean();
            all_periods.extend(report.periods_rtn.iter().copied());
        }
        let mean_rtn = all_periods.iter().sum::<f64>() / all_periods.len() as f64;
        let jitter = pooled_jitter(&all_periods);
        println!(
            "scale x{scale:>5}: clean period {:.3} ns, RTN period {:.3} ns (shift {:+.2} %), pooled jitter {:.2} ps over {} cycles",
            clean_mean * 1e9,
            mean_rtn * 1e9,
            100.0 * (mean_rtn - clean_mean) / clean_mean,
            jitter * 1e12,
            all_periods.len(),
        );
        jitter_by_scale.push((scale, jitter));
        rows.push(vec![scale, clean_mean, mean_rtn, jitter]);
    }

    let path = write_csv(
        "x5_ringosc.csv",
        "rtn_scale,clean_period_s,rtn_period_s,pooled_jitter_s",
        &rows,
    );
    banner("X5 verdict");
    let noise_floor = jitter_by_scale[0].1;
    let max_rtn_jitter = jitter_by_scale[1..]
        .iter()
        .map(|&(_, j)| j)
        .fold(0.0f64, f64::max);
    println!(
        "numerical noise floor {:.2} ps, max RTN jitter {:.2} ps",
        noise_floor * 1e12,
        max_rtn_jitter * 1e12
    );
    println!(
        "verdict: {}",
        if max_rtn_jitter > 1.5 * noise_floor {
            "MATCH — RTN-induced period jitter rises clearly above the harness noise floor"
        } else {
            "PARTIAL — RTN effect below the measurement floor at these scales"
        }
    );
    println!("csv: {}", path.display());
    session.finish(jobs);
}
