//! Fig 3: power spectral densities of 25 randomly sampled devices in
//! an old (180 nm) and a new (45 nm) technology, against the
//! analytical 1/f law.
//!
//! The paper's point: with ~100 active traps per device (old node) the
//! per-device spectra hug the analytical 1/f line, while with only
//! ~5–10 traps (new node) the spectra are individual bumpy Lorentzian
//! mixtures that the 1/f fit "completely fails to capture".
//!
//! Simulation detail (documented in EXPERIMENTS.md): only traps whose
//! corner rate lies within ±1 decade of the observation band are
//! simulated — slower traps are frozen for the whole record and faster
//! ones contribute only a flat, negligible tail, so the in-band
//! spectrum is unchanged while the event count stays bounded.
//!
//! Run with `cargo run --release -p samurai-bench --bin fig3_spectra`.

use samurai_analysis::{analytical, fit, psd};
use samurai_bench::{banner, write_tagged_csv, BenchSession};
use samurai_core::telemetry::{JobProbe, JobRecord, Stopwatch};
use samurai_core::{simulate_trap_probed, single_trap_amplitude, SeedStream, UniformisationConfig};
use samurai_trap::{PropensityModel, Technology, TrapProfiler};
use samurai_waveform::{Pwc, Pwl, Trace};

/// Observation window: 2^15 samples at 10 µs (0.33 s record,
/// band ≈ 3 Hz – 50 kHz).
const DT: f64 = 1e-5;
const N: usize = 1 << 15;

fn device_spectrum(
    tech: &Technology,
    device_idx: u64,
    seeds: &SeedStream,
    probe: &mut JobProbe,
) -> (psd::Spectrum, usize, usize) {
    let stream = seeds.substream(device_idx);
    let profiler = TrapProfiler::new(tech.clone());
    let traps = profiler.sample(&mut stream.rng(0));
    let total_traps = traps.len();

    let tf = DT * N as f64;
    let band_lo = 0.1 / tf; // a tenth of the record's fundamental
    let band_hi = 10.0 / DT; // ten times the sampling rate

    let v_bias = 0.8 * tech.vdd.volts();
    let i_d = 10e-6;
    let delta_i = single_trap_amplitude(&tech.device, v_bias, i_d);

    let mut current = Trace::from_fn(0.0, DT, N, |_| 0.0);
    let mut simulated = 0usize;
    for (k, trap) in traps.iter().enumerate() {
        let model = PropensityModel::new(tech.device, *trap);
        let lambda = model.rate_sum();
        if lambda < band_lo || lambda > band_hi {
            continue;
        }
        simulated += 1;
        let mut rng = stream.rng(1000 + k as u64);
        let occ: Pwc = simulate_trap_probed(
            &model,
            &Pwl::constant(v_bias),
            0.0,
            tf,
            &mut rng,
            &UniformisationConfig::default(),
            probe,
        )
        .expect("trap rate is bounded by the band filter");
        let sampled = occ.sample(0.0, DT, N);
        current = current.add(&sampled.map(|x| x * delta_i));
    }

    (psd::welch(&current, 2048), simulated, total_traps)
}

fn analytic_one_over_f(tech: &Technology, f: f64) -> f64 {
    // Population parameters: rates log-uniform between the deepest and
    // shallowest sampled trap. With trap energies uniform over a band
    // of width ΔE, the population average of p(1−p) is exactly kT/ΔE
    // (the logistic satisfies ∫σ(1−σ) dE = kT).
    let v_bias = 0.8 * tech.vdd.volts();
    let delta_i = single_trap_amplitude(&tech.device, v_bias, 10e-6);
    let rate = |depth: samurai_units::Length| {
        1.0 / (samurai_units::constants::DEFAULT_TAU0_S
            * (samurai_units::constants::DEFAULT_TUNNELLING_COEFFICIENT * depth.metres()).exp())
    };
    let rate_max = rate(tech.depth_range.0);
    let rate_min = rate(tech.depth_range.1);
    let band_ev = tech.energy_range.1.ev() - tech.energy_range.0.ev();
    let kt_ev = tech.device.temperature.thermal_energy().ev();
    analytical::one_over_f_psd(
        delta_i,
        kt_ev / band_ev,
        tech.mean_trap_count(),
        rate_min,
        rate_max,
        f,
    )
}

fn main() {
    if samurai_bench::handle_help(
        "fig3_spectra",
        "regenerates Fig. 3: RTN power spectral densities of sampled devices",
        &[],
    ) {
        return;
    }
    let seeds = SeedStream::new(33);
    let mut session = BenchSession::from_args("fig3");
    let mut jobs = 0usize;
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    let mut summaries = Vec::new();

    for (tech, tag) in [
        (Technology::node_180nm(), "old_180nm"),
        (Technology::node_45nm(), "new_45nm"),
    ] {
        banner(&format!(
            "{tag}: mean trap count {:.1}",
            tech.mean_trap_count()
        ));
        let mut slopes = Vec::new();
        let mut deviations = Vec::new();
        for dev in 0..25u64 {
            let mut probe = JobProbe::new(true);
            let watch = Stopwatch::start();
            let (spectrum, simulated, total) = device_spectrum(&tech, dev, &seeds, &mut probe);
            session.recorder_mut().absorb_job(&JobRecord {
                job: jobs,
                seconds: watch.elapsed_seconds(),
                rescued: None,
                solver: probe.solver(),
                trap: probe.trap(),
                scenario: None,
            });
            jobs += 1;
            // Keep a decimated copy of the spectrum for the CSV.
            for (f, s) in spectrum.freqs.iter().zip(&spectrum.values).step_by(8) {
                rows.push((
                    format!("{tag},dev{dev}"),
                    vec![*f, *s, analytic_one_over_f(&tech, *f)],
                ));
            }
            // Fit the log-log slope over the central band; devices
            // with no in-band traps are silent and are skipped.
            let lo = spectrum.freqs.len() / 16;
            let hi = spectrum.freqs.len() / 2;
            if simulated == 0 || spectrum.values[lo..hi].iter().all(|&s| s <= 0.0) {
                println!("  device {dev}: silent (0/{total} traps in band)");
                continue;
            }
            let fit = fit::fit_power_law(&spectrum.freqs[lo..hi], &spectrum.values[lo..hi]);
            slopes.push(fit.slope);
            // Log deviation from the analytic 1/f line.
            let mut acc = 0.0;
            let mut count = 0usize;
            for (f, s) in spectrum.freqs[lo..hi].iter().zip(&spectrum.values[lo..hi]) {
                if *s > 0.0 {
                    acc += (s / analytic_one_over_f(&tech, *f)).log10().powi(2);
                    count += 1;
                }
            }
            deviations.push((acc / count.max(1) as f64).sqrt());
            if dev < 5 {
                println!(
                    "  device {dev}: {simulated}/{total} traps in band, slope {:.2}, log10 dev {:.2}",
                    fit.slope,
                    deviations.last().unwrap()
                );
            }
        }
        let mean_slope = slopes.iter().sum::<f64>() / slopes.len() as f64;
        let slope_spread = {
            let m = mean_slope;
            (slopes.iter().map(|s| (s - m) * (s - m)).sum::<f64>() / slopes.len() as f64).sqrt()
        };
        let mean_dev = deviations.iter().sum::<f64>() / deviations.len() as f64;
        println!(
            "  SUMMARY {tag}: slope {mean_slope:.2} +/- {slope_spread:.2}, mean log10 deviation from 1/f line {mean_dev:.2}"
        );
        summaries.push((tag, mean_slope, slope_spread, mean_dev));
    }

    let path = write_tagged_csv(
        "fig3_spectra.csv",
        "tech,device,freq_hz,psd_a2hz,analytic_1overf",
        &rows,
    );

    banner("Fig 3 verdict (paper: 1/f fits old tech, fails new tech)");
    let (_, old_slope, old_spread, old_dev) = summaries[0];
    let (_, new_slope, new_spread, new_dev) = summaries[1];
    println!("old tech: slope {old_slope:.2} (spread {old_spread:.2}), deviation {old_dev:.2}");
    println!("new tech: slope {new_slope:.2} (spread {new_spread:.2}), deviation {new_dev:.2}");
    let shape_holds = (old_slope + 1.0).abs() < 0.3 && new_spread > old_spread && new_dev > old_dev;
    println!(
        "verdict: {}",
        if shape_holds {
            "MATCH — old node hugs 1/f, new node is dominated by individual traps"
        } else {
            "MISMATCH — investigate"
        }
    );
    println!("csv: {}", path.display());
    session.finish(jobs);
}
