//! CI gate for the lint call-graph artifact: parse a
//! `samurai-lint --graph` dump and reject schema drift, non-dense node
//! ids and out-of-range edge or root targets.
//!
//! Run with
//! `cargo run -p samurai-bench --bin validate_graph -- <path>...`;
//! exits non-zero listing every violation, mirroring
//! `validate_metrics`.

use samurai_bench::validate_call_graph;
use samurai_core::telemetry::json;
use std::process::ExitCode;

fn validate_file(path: &str) -> Result<(), Vec<String>> {
    let text =
        std::fs::read_to_string(path).map_err(|e| vec![format!("cannot read {path}: {e}")])?;
    let doc = json::parse(&text).map_err(|e| vec![format!("invalid JSON in {path}: {e}")])?;
    let errors = validate_call_graph(&doc);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_graph <graph.json>...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &paths {
        match validate_file(path) {
            Ok(()) => println!("{path}: ok"),
            Err(errors) => {
                failed = true;
                for error in errors {
                    eprintln!("{path}: {error}");
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
