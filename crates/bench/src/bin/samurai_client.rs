//! `samurai-client`: the command-line companion of the `serve` daemon
//! (DESIGN.md §15) — a dependency-free HTTP/1.1 client over
//! `std::net::TcpStream`.
//!
//! ```text
//! samurai-client submit  --addr H:P --spec trap:8:4096 [--seed N] [--failure-policy SPEC] [--kill-at-job N]
//! samurai-client status  --addr H:P --ticket HEX
//! samurai-client journal --addr H:P --ticket HEX     # streams JSONL to stdout
//! samurai-client result  --addr H:P --ticket HEX
//! samurai-client metrics --addr H:P
//! samurai-client drain   --addr H:P
//! ```
//!
//! `submit` prints `ticket=<hex> status=<cached|accepted|in-flight>`
//! on success, so shell scripts (`ci.sh`'s service gate) can capture
//! the ticket with a `sed` one-liner. `journal` de-chunks the
//! streaming response and relays the raw JSONL bytes, which makes
//! `samurai-client journal > run.jsonl` directly comparable with a
//! local `JOURNAL_*.jsonl` artifact.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;

use samurai_bench::{handle_help, BenchArgs};
use samurai_core::telemetry::{json, JsonValue};
use samurai_serve::{parse_ticket, JobSpec, Workload};

fn fail(message: &str) -> ExitCode {
    eprintln!("samurai-client: {message}");
    ExitCode::FAILURE
}

/// One HTTP exchange: sends the request, returns (status-code, body).
/// Chunked bodies are de-chunked; otherwise the body is read to EOF
/// (the server always closes the connection).
fn http(addr: &str, method: &str, path: &str, body: Option<&str>) -> Result<(u16, String), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let payload = body.unwrap_or("");
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    )
    .map_err(|e| e.to_string())?;
    writer.flush().map_err(|e| e.to_string())?;

    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| e.to_string())?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {status_line:?}"))?;
    let mut chunked = false;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(|e| e.to_string())?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("transfer-encoding")
                && value.trim().eq_ignore_ascii_case("chunked")
            {
                chunked = true;
            }
        }
    }
    let mut body = Vec::new();
    if chunked {
        loop {
            let mut size_line = String::new();
            reader
                .read_line(&mut size_line)
                .map_err(|e| e.to_string())?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| format!("malformed chunk size: {size_line:?}"))?;
            if size == 0 {
                break;
            }
            let mut chunk = vec![0u8; size + 2];
            reader.read_exact(&mut chunk).map_err(|e| e.to_string())?;
            chunk.truncate(size);
            body.extend_from_slice(&chunk);
        }
    } else {
        reader.read_to_end(&mut body).map_err(|e| e.to_string())?;
    }
    String::from_utf8(body)
        .map(|text| (status, text))
        .map_err(|_| "response body is not UTF-8".to_owned())
}

/// Parses `--spec trap:PANELS[:SAMPLES] | cell:MEMBERS | column:ROWS:MEMBERS`.
fn workload_from_spec(spec: &str) -> Result<Workload, String> {
    let mut parts = spec.split(':');
    let kind = parts.next().unwrap_or("");
    let mut num = |what: &str| -> Result<usize, String> {
        parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("--spec {kind}: missing or bad {what}"))
    };
    match kind {
        "trap" => {
            let panels = num("panels")?;
            let samples = num("samples").unwrap_or(4096);
            Ok(Workload::Trap { panels, samples })
        }
        "cell" => Ok(Workload::Cell {
            members: num("members")?,
        }),
        "column" => Ok(Workload::Column {
            rows: num("rows")?,
            members: num("members")?,
        }),
        other => Err(format!("unknown --spec kind `{other}` (trap/cell/column)")),
    }
}

fn submit(addr: &str, args: &BenchArgs) -> ExitCode {
    let Some(spec_text) = args.value_of("--spec") else {
        return fail("submit needs --spec trap:P[:S] | cell:M | column:R:M");
    };
    let workload = match workload_from_spec(spec_text) {
        Ok(w) => w,
        Err(e) => return fail(&e),
    };
    let seed = args
        .value_of("--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let spec = JobSpec {
        workload,
        seed,
        policy: args.failure_policy(),
        scenario: None,
        drill: None,
    };
    let mut payload = spec.canonical_payload();
    // --kill-at-job is one of the shared crash-safety flags, so the
    // shared parser owns it; fetch it from the parsed controls rather
    // than the bin-specific leftovers.
    let drill = args.run_controls().kill_at_job;
    if let (Some(job), JsonValue::Obj(members)) = (drill, &mut payload) {
        members.push((
            "drill".to_owned(),
            JsonValue::obj(vec![("kill_at_job", JsonValue::U64(job as u64))]),
        ));
    }
    match http(addr, "POST", "/jobs", Some(&payload.to_json())) {
        Ok((status, body)) if (200..300).contains(&status) => {
            let doc = json::parse(&body).unwrap_or(JsonValue::Null);
            let ticket = doc.get("ticket").and_then(JsonValue::as_str).unwrap_or("?");
            let state = doc.get("status").and_then(JsonValue::as_str).unwrap_or("?");
            println!("ticket={ticket} status={state}");
            ExitCode::SUCCESS
        }
        Ok((status, body)) => fail(&format!("submit got HTTP {status}: {body}")),
        Err(e) => fail(&e),
    }
}

fn get(addr: &str, path: &str) -> ExitCode {
    match http(addr, "GET", path, None) {
        Ok((status, body)) if (200..300).contains(&status) => {
            print!("{body}");
            if !body.ends_with('\n') {
                println!();
            }
            ExitCode::SUCCESS
        }
        Ok((status, body)) => fail(&format!("GET {path} got HTTP {status}: {body}")),
        Err(e) => fail(&e),
    }
}

fn ticket_path(args: &BenchArgs, template: &str) -> Result<String, String> {
    let ticket = args
        .value_of("--ticket")
        .ok_or("missing --ticket HEX".to_owned())?;
    if parse_ticket(ticket).is_none() {
        return Err(format!("malformed ticket `{ticket}` (16 hex digits)"));
    }
    Ok(template.replace("{}", ticket))
}

fn main() -> ExitCode {
    if handle_help(
        "samurai-client",
        "command-line client of the serve daemon",
        &[
            (
                "submit|status|journal|result|metrics|drain",
                "the action (first argument)",
            ),
            ("--addr HOST:PORT", "server address (required)"),
            (
                "--spec trap:P[:S]|cell:M|column:R:M",
                "workload, for submit",
            ),
            ("--seed N", "ensemble master seed (default 1)"),
            ("--ticket HEX", "job ticket, for status/journal/result"),
            (
                "--kill-at-job N",
                "submit a crash-drill job (server exits 86)",
            ),
        ],
    ) {
        return ExitCode::SUCCESS;
    }
    let args = BenchArgs::from_env();
    let Some(command) = args.rest().first().map(String::as_str) else {
        return fail("missing command (submit/status/journal/result/metrics/drain); see --help");
    };
    let Some(addr) = args.value_of("--addr") else {
        return fail("missing --addr HOST:PORT");
    };
    match command {
        "submit" => submit(addr, &args),
        "status" => match ticket_path(&args, "/jobs/{}") {
            Ok(path) => get(addr, &path),
            Err(e) => fail(&e),
        },
        "journal" => match ticket_path(&args, "/jobs/{}/journal") {
            Ok(path) => get(addr, &path),
            Err(e) => fail(&e),
        },
        "result" => match ticket_path(&args, "/store/{}") {
            Ok(path) => get(addr, &path),
            Err(e) => fail(&e),
        },
        "metrics" => get(addr, "/metrics"),
        "drain" => match http(addr, "POST", "/admin/drain", None) {
            Ok((status, body)) if (200..300).contains(&status) => {
                print!("{body}");
                println!();
                ExitCode::SUCCESS
            }
            Ok((status, body)) => fail(&format!("drain got HTTP {status}: {body}")),
            Err(e) => fail(&e),
        },
        other => fail(&format!("unknown command `{other}`; see --help")),
    }
}
