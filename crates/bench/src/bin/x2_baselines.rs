//! X2: baseline comparison — uniformisation vs the frozen-rate SSA,
//! the fixed-Δt Bernoulli discretisation and the Ye-style two-stage
//! white-noise generator.
//!
//! Two axes, matching the paper's critique of prior art (§I-C):
//!
//! * **accuracy under switching bias** — the post-step occupancy error
//!   of each kernel against the master equation;
//! * **cost** — candidate/sample counts per generated trace (the
//!   white-noise method pays one sample per Δt; uniformisation pays
//!   one per candidate event).
//!
//! Run with `cargo run --release -p samurai-bench --bin x2_baselines`.

use samurai_bench::{
    banner, failure_policy_from_args, parallelism_from_args, write_tagged_csv, BenchSession,
};
use samurai_core::ensemble::{
    run_ensemble_resilient_observed, ExecutionPolicy, MeanTrace, Parallelism,
};
use samurai_core::telemetry::MemoryRecorder;
use samurai_core::{gillespie, simulate_trap, ye, CoreError, SeedStream};
use samurai_trap::{master, DeviceParams, PropensityModel, TrapParams, TrapState};
use samurai_units::{Energy, Length};
use samurai_waveform::Pwl;
use std::time::Instant;

/// Mean of `f(job)` over `jobs` seeded draws: a deterministic parallel
/// ensemble, bit-identical at every worker count (each job derives its
/// randomness from its index alone). The failure policy only matters
/// under fault injection — these kernels are total — but threading it
/// keeps every ensemble in the binary on the one policy knob. Rescue
/// and quarantine outcomes are routed through the journal serializer:
/// printed as JSON-Lines and carried into the recorder's artifact.
fn mc_mean<F: Fn(u64) -> f64 + Sync>(
    jobs: u64,
    parallelism: Parallelism,
    policy: &ExecutionPolicy,
    recorder: &mut MemoryRecorder,
    f: F,
) -> f64 {
    let outcome = run_ensemble_resilient_observed::<MeanTrace, _, CoreError, _>(
        jobs as usize,
        parallelism,
        policy,
        recorder,
        || MeanTrace::zeros(1),
        |job, _rung, _probe| Ok(vec![f(job as u64)]),
    )
    .expect("bounded-horizon kernels are total");
    if !outcome.report.is_clean() {
        print!("{}", outcome.report.journal().to_jsonl());
    }
    outcome.acc.mean()[0]
}

fn balanced_bias(model: &PropensityModel) -> f64 {
    let (mut lo, mut hi) = (-2.0, 3.0);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if model.stationary_occupancy(mid) < 0.5 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

fn main() {
    if samurai_bench::handle_help(
        "x2_baselines",
        "X2: uniformisation vs frozen-rate SSA, Bernoulli and two-stage baselines",
        &[],
    ) {
        return;
    }
    let device = DeviceParams::nominal_90nm();
    let trap = TrapParams::new(Length::from_nanometres(1.8), Energy::from_ev(0.4));
    let model = PropensityModel::new(device, trap);
    let lambda = model.rate_sum();
    let v_mid = balanced_bias(&model);

    // A bias step that flips the trap's preference: the pre-step state
    // is strongly empty, the post-step preference strongly filled.
    let t_step = 5.0 / lambda;
    let probe = t_step + 0.5 / lambda;
    let tf = t_step + 3.0 / lambda;
    let bias = Pwl::step(v_mid - 0.4, v_mid + 0.4, t_step, 0.001 / lambda)
        .expect("static step parameters");
    let exact =
        master::integrate_occupancy(&model, &bias, TrapState::Empty, 0.0, probe / 400.0, 401, 8)
            .value_at(probe);

    let runs = 30_000u64;
    let parallelism = parallelism_from_args();
    let mut session = BenchSession::from_args("x2");
    let policy = ExecutionPolicy {
        failure: failure_policy_from_args(),
        ..ExecutionPolicy::default()
    };
    banner("X2: occupancy shortly after a bias step (exact = master equation)");
    println!("exact p(probe) = {exact:.4}");
    println!(
        "{runs} runs per kernel on {} workers (--threads N / SAMURAI_THREADS)",
        parallelism.workers()
    );
    println!(
        "failure policy: {:?} (--failure-policy fail-fast|retry[:R]|quarantine[:M[:R]])",
        policy.failure
    );

    let mut rows = Vec::new();
    let mut results: Vec<(&str, f64, f64)> = Vec::new(); // name, estimate, seconds

    // Uniformisation.
    let start = Instant::now();
    let estimate = mc_mean(runs, parallelism, &policy, session.recorder_mut(), |r| {
        simulate_trap(&model, &bias, 0.0, tf, &mut SeedStream::new(1).rng(r))
            .expect("bounded horizon")
            .eval(probe)
    });
    results.push(("uniformisation", estimate, start.elapsed().as_secs_f64()));

    // Frozen-rate SSA.
    let start = Instant::now();
    let estimate = mc_mean(runs, parallelism, &policy, session.recorder_mut(), |r| {
        gillespie::frozen_rate_ssa(&model, &bias, 0.0, tf, &mut SeedStream::new(2).rng(r))
            .expect("bounded horizon")
            .eval(probe)
    });
    results.push(("frozen_ssa", estimate, start.elapsed().as_secs_f64()));

    // Bernoulli time-stepping at two resolutions.
    for (name, frac) in [("bernoulli_coarse", 0.5), ("bernoulli_fine", 0.02)] {
        let dt = frac / lambda;
        let start = Instant::now();
        let estimate = mc_mean(
            runs / 4,
            parallelism,
            &policy,
            session.recorder_mut(),
            |r| {
                gillespie::bernoulli_timestep(
                    &model,
                    &bias,
                    0.0,
                    tf,
                    dt,
                    &mut SeedStream::new(3).rng(r),
                )
                .expect("bounded horizon")
                .eval(probe)
            },
        );
        results.push((name, estimate, start.elapsed().as_secs_f64()));
    }

    // Ye-style generator (calibrated at the pre-step bias, as its
    // construction requires a single calibration point).
    let start = Instant::now();
    let estimate = mc_mean(
        runs / 4,
        parallelism,
        &policy,
        session.recorder_mut(),
        |r| {
            ye::generate(
                &model,
                bias.eval(0.0),
                0.0,
                tf,
                &mut SeedStream::new(4).rng(r),
                &ye::YeConfig::default(),
            )
            .expect("bounded horizon")
            .eval(probe)
        },
    );
    results.push(("ye_two_stage", estimate, start.elapsed().as_secs_f64()));

    for (name, estimate, seconds) in &results {
        let err = (estimate - exact).abs();
        println!("{name:18}: p = {estimate:.4}, |error| = {err:.4}, wall = {seconds:.2}s");
        rows.push((name.to_string(), vec![*estimate, err, *seconds]));
    }

    let path = write_tagged_csv(
        "x2_baselines.csv",
        "method,estimate,abs_error,seconds",
        &rows,
    );

    banner("X2 verdict");
    let unif_err = (results[0].1 - exact).abs();
    let frozen_err = (results[1].1 - exact).abs();
    let ye_err = (results.last().expect("non-empty").1 - exact).abs();
    println!(
        "verdict: {}",
        if unif_err < 0.02 && frozen_err > 2.0 * unif_err && ye_err > 5.0 * unif_err {
            "MATCH — only uniformisation tracks non-stationary statistics"
        } else {
            "PARTIAL — inspect the numbers above"
        }
    );
    println!("csv: {}", path.display());
    let jobs = session.recorder().sink().counter_value("jobs.completed") as usize;
    session.finish(jobs);
}
