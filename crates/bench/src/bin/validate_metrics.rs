//! CI gate for telemetry artifacts: parse a `BENCH_*.json` summary and
//! reject missing keys, non-numeric fields and non-finite numbers.
//!
//! Run with
//! `cargo run -p samurai-bench --bin validate_metrics -- <path>...`;
//! exits non-zero listing every violation, so `ci.sh` can validate both
//! the freshly emitted artifact and the committed golden copy.

use samurai_bench::validate_bench_summary;
use samurai_core::telemetry::json;
use std::process::ExitCode;

fn validate_file(path: &str) -> Result<(), Vec<String>> {
    let text =
        std::fs::read_to_string(path).map_err(|e| vec![format!("cannot read {path}: {e}")])?;
    let doc = json::parse(&text).map_err(|e| vec![format!("invalid JSON in {path}: {e}")])?;
    let errors = validate_bench_summary(&doc);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn main() -> ExitCode {
    if samurai_bench::handle_help(
        "validate_metrics",
        "CI gate: validate BENCH_*.json telemetry summaries",
        &[("<path>...", "files to validate")],
    ) {
        return ExitCode::SUCCESS;
    }
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_metrics <BENCH_*.json>...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &paths {
        match validate_file(path) {
            Ok(()) => println!("{path}: ok"),
            Err(errors) => {
                failed = true;
                for error in errors {
                    eprintln!("{path}: {error}");
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
