//! Fig 7 (a–f): stationary validation of SAMURAI against the Machlup
//! analytical expressions.
//!
//! Three sweeps — gate bias `V_gs`, trap energy `E_tr` and trap depth
//! `y_tr` — each holding the other two parameters fixed. For every
//! configuration a long constant-bias RTN trace is generated with
//! Algorithm 1 and both the autocorrelation `R(τ)` (panels a–c) and the
//! power spectral density `S(f)` (panels d–f) are estimated and
//! compared against the analytical Lorentzian forms, plus the thermal
//! noise floor `(8/3)kTgm`.
//!
//! Run with `cargo run --release -p samurai-bench --bin fig7_validation`.

use samurai_analysis::{analytical, autocorr, psd, stats};
use samurai_bench::{
    banner, failure_policy_from_args, parallelism_from_args, run_controls_from_args,
    smoke_from_args, write_tagged_csv, BenchSession,
};
use samurai_core::checkpoint::{run_ensemble_checkpointed, RunControls, Snapshot};
use samurai_core::ensemble::{Completion, ExecutionPolicy, IndexedResults};
use samurai_core::faults::FaultPlan;
use samurai_core::telemetry::{JobProbe, JsonValue};
use samurai_core::{
    simulate_trap_probed, single_trap_amplitude, CoreError, SeedStream, UniformisationConfig,
};
use samurai_trap::{DeviceParams, PropensityModel, TrapParams};
use samurai_units::{Energy, Length, Temperature};
use samurai_waveform::Pwl;

/// One validation configuration.
struct Config {
    sweep: &'static str,
    label: String,
    v_gs: f64,
    e_tr_ev: f64,
    y_tr_nm: f64,
}

/// One panel's full output, carried through the ensemble engine (and,
/// under `--checkpoint`, through the snapshot file).
struct PanelResult {
    autocorr_rows: Vec<(String, Vec<f64>)>,
    psd_rows: Vec<(String, Vec<f64>)>,
    summary: (String, f64, f64, f64),
    report: String,
}

/// Tagged CSV rows as a snapshot member; floats travel as IEEE-754 bit
/// patterns so a resumed run regenerates byte-identical CSVs.
fn rows_to_snapshot(rows: &[(String, Vec<f64>)]) -> JsonValue {
    JsonValue::Arr(
        rows.iter()
            .map(|(tag, nums)| {
                JsonValue::Arr(vec![
                    JsonValue::Str(tag.clone()),
                    JsonValue::Arr(nums.iter().map(|v| JsonValue::U64(v.to_bits())).collect()),
                ])
            })
            .collect(),
    )
}

fn rows_from_snapshot(v: &JsonValue) -> Option<Vec<(String, Vec<f64>)>> {
    let JsonValue::Arr(rows) = v else {
        return None;
    };
    rows.iter()
        .map(|row| {
            let JsonValue::Arr(pair) = row else {
                return None;
            };
            let [JsonValue::Str(tag), JsonValue::Arr(nums)] = pair.as_slice() else {
                return None;
            };
            let nums = nums
                .iter()
                .map(|n| Some(f64::from_bits(n.as_u64()?)))
                .collect::<Option<Vec<f64>>>()?;
            Some((tag.clone(), nums))
        })
        .collect()
}

impl Snapshot for PanelResult {
    fn to_snapshot(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("autocorr", rows_to_snapshot(&self.autocorr_rows)),
            ("psd", rows_to_snapshot(&self.psd_rows)),
            (
                "summary",
                JsonValue::Arr(vec![
                    JsonValue::Str(self.summary.0.clone()),
                    JsonValue::U64(self.summary.1.to_bits()),
                    JsonValue::U64(self.summary.2.to_bits()),
                    JsonValue::U64(self.summary.3.to_bits()),
                ]),
            ),
            ("report", JsonValue::Str(self.report.clone())),
        ])
    }

    fn from_snapshot(v: &JsonValue) -> Option<Self> {
        let JsonValue::Arr(summary) = v.get("summary")? else {
            return None;
        };
        let [JsonValue::Str(label), a, b, c] = summary.as_slice() else {
            return None;
        };
        Some(Self {
            autocorr_rows: rows_from_snapshot(v.get("autocorr")?)?,
            psd_rows: rows_from_snapshot(v.get("psd")?)?,
            summary: (
                label.clone(),
                f64::from_bits(a.as_u64()?),
                f64::from_bits(b.as_u64()?),
                f64::from_bits(c.as_u64()?),
            ),
            report: v.get("report")?.as_str()?.to_owned(),
        })
    }
}

fn main() {
    if samurai_bench::handle_help(
        "fig7_validation",
        "regenerates Fig. 7: stationary validation against the Machlup expressions",
        &[],
    ) {
        return;
    }
    let device = DeviceParams::nominal_90nm();
    let i_d = 10e-6;

    // The trap whose occupancy is ~50 % at V_gs = 0.6 V makes the most
    // telling validation target; the sweeps bracket it.
    let mut configs = Vec::new();
    for v in [0.70, 0.80, 0.90] {
        configs.push(Config {
            sweep: "vgs",
            label: format!("vgs={v}"),
            v_gs: v,
            e_tr_ev: 0.40,
            y_tr_nm: 1.6,
        });
    }
    for e in [0.30, 0.40, 0.50] {
        configs.push(Config {
            sweep: "etr",
            label: format!("etr={e}"),
            v_gs: 0.80,
            e_tr_ev: e,
            y_tr_nm: 1.6,
        });
    }
    for y in [1.4, 1.6, 1.8] {
        configs.push(Config {
            sweep: "ytr",
            label: format!("ytr={y}"),
            v_gs: 0.80,
            e_tr_ev: 0.40,
            y_tr_nm: y,
        });
    }

    // Each configuration seeds its own RNG stream by index, so this
    // sweep shards over the ensemble engine with bit-identical output
    // at every worker count.
    let parallelism = parallelism_from_args();
    let smoke = smoke_from_args();
    let control_args = run_controls_from_args();
    let mut session = BenchSession::from_args("fig7");
    let faults = match control_args.kill_at_job {
        // The crash drill: exit hard just before job N, leaving the
        // latest snapshot on disk for a `--resume` run to pick up.
        Some(n) => FaultPlan::none().kill_at_job(n),
        None => FaultPlan::none(),
    };
    let policy = ExecutionPolicy {
        failure: failure_policy_from_args(),
        faults,
        seed: 1000,
    };
    println!(
        "workers: {} (--threads N / SAMURAI_THREADS to change)",
        parallelism.workers()
    );
    println!(
        "failure policy: {:?} (--failure-policy fail-fast|retry[:R]|quarantine[:M[:R]])",
        policy.failure
    );
    if let Some(path) = &control_args.checkpoint.path {
        println!(
            "checkpoint: {} every {} jobs{} (--checkpoint PATH / --checkpoint-every N / --resume)",
            path.display(),
            control_args.checkpoint.every_jobs,
            if control_args.checkpoint.resume {
                ", resuming"
            } else {
                ""
            },
        );
    }
    if let Some(max) = control_args.budget.max_jobs {
        println!("budget: at most {max} jobs (--max-jobs N)");
    }
    if smoke {
        println!("smoke mode: traces shortened to the validation minimum");
    }
    let controls = RunControls {
        checkpoint: control_args.checkpoint,
        budget: control_args.budget,
        deadline: None,
    };
    let outcome = run_ensemble_checkpointed(
        configs.len(),
        parallelism,
        &policy,
        &controls,
        session.recorder_mut(),
        IndexedResults::new,
        |idx, rung, probe: &mut JobProbe| -> Result<PanelResult, CoreError> {
            let config = &configs[idx];
            let trap = TrapParams::new(
                Length::from_nanometres(config.y_tr_nm),
                Energy::from_ev(config.e_tr_ev),
            );
            let model = PropensityModel::new(device, trap);
            let lambda = model.rate_sum();
            let p = model.stationary_occupancy(config.v_gs);
            let delta_i = single_trap_amplitude(&device, config.v_gs, i_d);

            // Long stationary trace sampled at 20x the corner rate. The
            // expected transition rate is 2·λΣ·p(1−p), so the sample count
            // adapts to keep ~5000 transitions even at extreme duty cycles.
            let dt = 0.05 / lambda;
            // On rescue rungs the trace shortens geometrically — the
            // conservative retreat when the nominal horizon blows the
            // trap-event budget.
            let n_full = (((5.0e4 / (p * (1.0 - p))) as usize).clamp(1 << 17, 1 << 23)
                >> rung.min(8))
            .max(1 << 14);
            // Smoke mode trades statistical tightness for a seconds-scale
            // end-to-end pass; the estimators and artifacts are unchanged.
            let n = if smoke { 1 << 14 } else { n_full };
            let tf = dt * n as f64;
            let mut rng = SeedStream::new(1000 + idx as u64).rng(0);
            let occupancy = simulate_trap_probed(
                &model,
                &Pwl::constant(config.v_gs),
                0.0,
                tf,
                &mut rng,
                &UniformisationConfig::default(),
                probe,
            )?;
            let current = occupancy.scaled(delta_i).sample(0.0, dt, n);

            // Time domain: uncentred autocorrelation vs Machlup.
            let max_lag = 80usize;
            let (lags, measured_r) = autocorr::trace_autocorrelation(&current, max_lag);
            let analytic_r: Vec<f64> = lags
                .iter()
                .map(|&tau| analytical::machlup_autocorrelation(delta_i, p, lambda, tau))
                .collect();
            // Floor at 2 % of R(0): below that the estimator variance of a
            // strongly skewed telegraph signal dominates and a *relative*
            // error is not meaningful.
            let r_err = stats::rms_relative_error(
                &measured_r,
                &analytic_r,
                analytic_r[0] * 0.02,
            );
            let mut autocorr_rows = Vec::with_capacity(lags.len());
            for (k, &tau) in lags.iter().enumerate() {
                autocorr_rows.push((
                    config.label.clone(),
                    vec![tau, measured_r[k], analytic_r[k]],
                ));
            }

            // Frequency domain: Welch PSD vs the Lorentzian.
            let spectrum = psd::welch(&current, 4096);
            let corner = lambda / std::f64::consts::TAU;
            let gm = 2.0 * i_d / 0.3; // crude gm = 2 I_d / V_ov for the floor
            let thermal = analytical::thermal_noise_psd(Temperature::ROOM, gm);
            let mut log_err_acc = 0.0;
            let mut log_err_n = 0usize;
            let mut psd_rows = Vec::with_capacity(spectrum.freqs.len());
            for (f, s) in spectrum.freqs.iter().zip(&spectrum.values) {
                let analytic = analytical::lorentzian_psd(delta_i, p, lambda, *f);
                if *f < 10.0 * corner && *s > 0.0 && analytic > 0.0 {
                    log_err_acc += (s / analytic).ln().powi(2);
                    log_err_n += 1;
                }
                psd_rows.push((
                    config.label.clone(),
                    vec![*f, *s, analytic, thermal],
                ));
            }
            let psd_log_rms = (log_err_acc / log_err_n.max(1) as f64).sqrt();

            Ok(PanelResult {
                autocorr_rows,
                psd_rows,
                summary: (config.label.clone(), r_err, psd_log_rms, p),
                report: format!(
                    "{:8} {:12}  lambda={:.3e}/s  p={:.3}  R(tau) rms rel err={:.3}  S(f) log-rms={:.3}",
                    config.sweep, config.label, lambda, p, r_err, psd_log_rms
                ),
            })
        },
    )
    .expect("horizon scaled to the trap rate");
    if !outcome.report.is_clean() {
        println!(
            "rescue report: {} rescued, {} quarantined of {} panels",
            outcome.report.rescued.len(),
            outcome.report.quarantined.len(),
            outcome.report.jobs,
        );
        print!("{}", outcome.report.journal().to_jsonl());
    }
    let completed_jobs = match outcome.completion {
        Completion::Complete => configs.len(),
        Completion::Truncated {
            completed,
            remaining,
        } => {
            println!(
                "budget exhausted: {completed} of {} panels done, {remaining} remaining \
                 (rerun with --resume to continue)",
                configs.len(),
            );
            completed
        }
    };
    let panels: Vec<PanelResult> = outcome.acc.into_vec();

    let mut autocorr_rows: Vec<(String, Vec<f64>)> = Vec::new();
    let mut psd_rows: Vec<(String, Vec<f64>)> = Vec::new();
    let mut summary: Vec<(String, f64, f64, f64)> = Vec::new();
    for panel in panels {
        autocorr_rows.extend(panel.autocorr_rows);
        psd_rows.extend(panel.psd_rows);
        summary.push(panel.summary);
        println!("{}", panel.report);
    }

    let ac_path = write_tagged_csv(
        "fig7_autocorrelation.csv",
        "config,tau_s,measured_R,analytic_R",
        &autocorr_rows,
    );
    let psd_path = write_tagged_csv(
        "fig7_psd.csv",
        "config,freq_hz,measured_S,analytic_S,thermal_floor",
        &psd_rows,
    );

    banner("Fig 7 summary (paper: SAMURAI closely matches analytical)");
    let worst_r = summary.iter().map(|s| s.1).fold(0.0f64, f64::max);
    let worst_s = summary.iter().map(|s| s.2).fold(0.0f64, f64::max);
    println!("worst R(tau) rms relative error over 9 configs: {worst_r:.3}");
    println!("worst S(f) log-rms deviation over 9 configs:    {worst_s:.3}");
    println!(
        "verdict: {}",
        if worst_r < 0.2 && worst_s < 0.5 {
            "MATCH — generated traces follow the analytical forms"
        } else {
            "MISMATCH — investigate"
        }
    );
    println!("csv: {} and {}", ac_path.display(), psd_path.display());
    session.finish(completed_jobs);
}
