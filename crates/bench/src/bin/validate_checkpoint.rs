//! CI gate for crash-safety snapshots: parse a `samurai-checkpoint-v1`
//! file, recompute its content hash over the canonical payload
//! serialisation and reject schema gaps.
//!
//! Run with
//! `cargo run -p samurai-bench --bin validate_checkpoint -- <path>...`;
//! exits non-zero listing every violation, so `ci.sh` can validate the
//! snapshot a kill-and-resume drill leaves behind.

use samurai_bench::validate_checkpoint_snapshot;
use samurai_core::telemetry::json;
use std::process::ExitCode;

fn validate_file(path: &str) -> Result<(), Vec<String>> {
    let text =
        std::fs::read_to_string(path).map_err(|e| vec![format!("cannot read {path}: {e}")])?;
    let doc = json::parse(&text).map_err(|e| vec![format!("invalid JSON in {path}: {e}")])?;
    let errors = validate_checkpoint_snapshot(&doc);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn main() -> ExitCode {
    if samurai_bench::handle_help(
        "validate_checkpoint",
        "CI gate: validate samurai-checkpoint-v1 snapshot files",
        &[("<path>...", "files to validate")],
    ) {
        return ExitCode::SUCCESS;
    }
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_checkpoint <snapshot.ckpt>...");
        return ExitCode::FAILURE;
    }
    let mut failed = false;
    for path in &paths {
        match validate_file(path) {
            Ok(()) => println!("{path}: ok"),
            Err(errors) => {
                failed = true;
                for error in errors {
                    eprintln!("{path}: {error}");
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
