//! The `samurai-serve` daemon: deterministic simulation-as-a-service
//! over a content-addressed result store (DESIGN.md §15).
//!
//! Run with
//! `cargo run --release -p samurai-bench --bin serve -- --store DIR`;
//! the first stdout line reports the bound address (`--addr` defaults
//! to `127.0.0.1:0`, an ephemeral port, which is what `ci.sh`
//! scrapes). Stop it with `POST /admin/drain` — queued jobs finish
//! first — or kill it outright and restart on the same store: the
//! interrupted jobs resume from their checkpoint segments and their
//! journals come out byte-identical.

use std::path::PathBuf;
use std::process::ExitCode;

use samurai_bench::{handle_help, BenchArgs};
use samurai_serve::{ResultStore, Server, ServerConfig, DEFAULT_CHUNK};

fn main() -> ExitCode {
    if handle_help(
        "serve",
        "deterministic simulation-as-a-service over a content-addressed store",
        &[
            (
                "--store DIR",
                "result-store directory (default target/store)",
            ),
            ("--addr HOST:PORT", "bind address (default 127.0.0.1:0)"),
            ("--workers N", "job-queue worker threads (default 2)"),
            (
                "--chunk N",
                "checkpoint/publish cadence in jobs (default 64)",
            ),
            ("--capacity N", "queue capacity before 429 (default 64)"),
        ],
    ) {
        return ExitCode::SUCCESS;
    }
    let args = BenchArgs::from_env();
    let store_dir = args
        .value_of("--store")
        .map(PathBuf::from)
        .or_else(|| std::env::var_os("SAMURAI_STORE").map(PathBuf::from))
        .unwrap_or_else(|| PathBuf::from("target/store"));
    let addr = args.value_of("--addr").unwrap_or("127.0.0.1:0").to_owned();
    let parse = |flag: &str, default: usize| {
        args.value_of(flag)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let config = ServerConfig {
        workers: parse("--workers", 2).max(1),
        parallelism: args.parallelism(),
        chunk: parse("--chunk", DEFAULT_CHUNK).max(1),
        capacity: parse("--capacity", 64).max(1),
    };

    let store = match ResultStore::open(&store_dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot open store {}: {e}", store_dir.display());
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::bind(&addr, store, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        // This line is the startup contract: ci.sh scrapes the port.
        Ok(bound) => println!("listening on {bound}"),
        Err(e) => {
            eprintln!("serve: cannot resolve the bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "store {} | {} workers, chunk {}, capacity {}",
        store_dir.display(),
        config.workers,
        config.chunk,
        config.capacity
    );
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}
