//! Shared plumbing for the figure-regeneration binaries and the
//! Criterion benchmarks.
//!
//! Each binary `figN_*` / `xN_*` regenerates one evaluation artifact of
//! the paper (see DESIGN.md §4): it prints a human-readable summary and
//! writes the underlying series as CSV into [`figures_dir`]
//! (`target/figures/` by default).

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use samurai_core::{FailurePolicy, Parallelism};

/// Parses `--threads N` from the binary's command line: `N = 0` (or an
/// absent flag with `SAMURAI_THREADS` unset) means all available cores,
/// `N = 1` the legacy sequential path. The environment variable
/// `SAMURAI_THREADS` is the fallback when the flag is absent.
///
/// Results are bit-identical at every setting — the ensemble engine
/// guarantees it — so this knob trades wall-clock only.
pub fn parallelism_from_args() -> Parallelism {
    let mut args = std::env::args().skip(1);
    let mut requested: Option<usize> = None;
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            requested = args.next().and_then(|v| v.parse().ok());
        } else if let Some(v) = arg.strip_prefix("--threads=") {
            requested = v.parse().ok();
        }
    }
    let requested = requested.or_else(|| {
        std::env::var("SAMURAI_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
    });
    match requested {
        None | Some(0) => Parallelism::Auto,
        Some(n) => Parallelism::Fixed(n),
    }
}

/// Parses `--failure-policy SPEC` from the binary's command line, with
/// the `SAMURAI_FAILURE_POLICY` environment variable as fallback.
///
/// `SPEC` is one of:
///
/// * `fail-fast` — abort on the first failed job (the default);
/// * `retry` or `retry:RUNGS` — climb the rescue ladder per failing
///   job (`RUNGS` defaults to 2);
/// * `quarantine`, `quarantine:MAX` or `quarantine:MAX:RUNGS` — retry,
///   then drop up to `MAX` irrecoverable jobs (default 1) from the
///   statistics.
///
/// Results under every policy are bit-identical at every worker count;
/// unparsable specs fall back to `fail-fast` rather than aborting a
/// long run over a typo'd diagnostic knob.
pub fn failure_policy_from_args() -> FailurePolicy {
    let mut args = std::env::args().skip(1);
    let mut spec: Option<String> = None;
    while let Some(arg) = args.next() {
        if arg == "--failure-policy" {
            spec = args.next();
        } else if let Some(v) = arg.strip_prefix("--failure-policy=") {
            spec = Some(v.to_string());
        }
    }
    let spec = spec.or_else(|| std::env::var("SAMURAI_FAILURE_POLICY").ok());
    parse_failure_policy(spec.as_deref().unwrap_or("fail-fast"))
}

/// The parser behind [`failure_policy_from_args`], split out for
/// testing.
pub fn parse_failure_policy(spec: &str) -> FailurePolicy {
    let mut parts = spec.split(':');
    let head = parts.next().unwrap_or("");
    let first: Option<usize> = parts.next().and_then(|v| v.parse().ok());
    let second: Option<usize> = parts.next().and_then(|v| v.parse().ok());
    match head {
        "retry" => FailurePolicy::Retry {
            rungs: first.unwrap_or(2),
        },
        "quarantine" => FailurePolicy::Quarantine {
            rungs: second.unwrap_or(2),
            max_failures: first.unwrap_or(1),
        },
        _ => FailurePolicy::FailFast,
    }
}

/// Times `f` and returns `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64())
}

/// Directory figure CSVs are written to (created on demand).
/// Override with the `SAMURAI_FIGURES_DIR` environment variable.
pub fn figures_dir() -> PathBuf {
    let dir = std::env::var_os("SAMURAI_FIGURES_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/figures"));
    fs::create_dir_all(&dir).expect("cannot create the figures directory");
    dir
}

/// Writes a CSV file with the given header and rows. Returns the path.
///
/// # Panics
///
/// Panics on I/O errors (these binaries are run interactively; a
/// failure to write output should abort loudly).
pub fn write_csv(name: &str, header: &str, rows: &[Vec<f64>]) -> PathBuf {
    let path = figures_dir().join(name);
    let mut file = fs::File::create(&path).expect("cannot create CSV file");
    writeln!(file, "{header}").expect("cannot write CSV header");
    for row in rows {
        let line = row
            .iter()
            .map(|v| format!("{v:.6e}"))
            .collect::<Vec<_>>()
            .join(",");
        writeln!(file, "{line}").expect("cannot write CSV row");
    }
    path
}

/// Writes a CSV with string-tagged rows (`tag,...numbers`).
///
/// # Panics
///
/// Panics on I/O errors.
pub fn write_tagged_csv(name: &str, header: &str, rows: &[(String, Vec<f64>)]) -> PathBuf {
    let path = figures_dir().join(name);
    let mut file = fs::File::create(&path).expect("cannot create CSV file");
    writeln!(file, "{header}").expect("cannot write CSV header");
    for (tag, row) in rows {
        let nums = row
            .iter()
            .map(|v| format!("{v:.6e}"))
            .collect::<Vec<_>>()
            .join(",");
        writeln!(file, "{tag},{nums}").expect("cannot write CSV row");
    }
    path
}

/// Prints a section banner to stdout.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_policy_specs_parse() {
        assert_eq!(parse_failure_policy("fail-fast"), FailurePolicy::FailFast);
        assert_eq!(
            parse_failure_policy("retry"),
            FailurePolicy::Retry { rungs: 2 }
        );
        assert_eq!(
            parse_failure_policy("retry:5"),
            FailurePolicy::Retry { rungs: 5 }
        );
        assert_eq!(
            parse_failure_policy("quarantine"),
            FailurePolicy::Quarantine {
                rungs: 2,
                max_failures: 1
            }
        );
        assert_eq!(
            parse_failure_policy("quarantine:8:3"),
            FailurePolicy::Quarantine {
                rungs: 3,
                max_failures: 8
            }
        );
        // Typos degrade to the safe default instead of panicking.
        assert_eq!(parse_failure_policy("retyr"), FailurePolicy::FailFast);
    }

    #[test]
    fn csv_files_are_written() {
        std::env::set_var(
            "SAMURAI_FIGURES_DIR",
            std::env::temp_dir().join("samurai-figs"),
        );
        let path = write_csv("unit_test.csv", "a,b", &[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.starts_with("a,b\n"));
        assert_eq!(content.lines().count(), 3);
        let path = write_tagged_csv(
            "unit_test_tagged.csv",
            "tag,x",
            &[("old".into(), vec![1.0])],
        );
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("old,1.000000e0"));
        std::env::remove_var("SAMURAI_FIGURES_DIR");
    }
}
