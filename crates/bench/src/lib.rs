//! Shared plumbing for the figure-regeneration binaries and the
//! Criterion benchmarks.
//!
//! Each binary `figN_*` / `xN_*` regenerates one evaluation artifact of
//! the paper (see DESIGN.md §4): it prints a human-readable summary and
//! writes the underlying series as CSV into [`figures_dir`]
//! (`target/figures/` by default).

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use samurai_core::checkpoint::{CheckpointConfig, RunBudget};
use samurai_core::telemetry::{JsonValue, MemoryRecorder};
use samurai_core::{fnv1a64, FailurePolicy, Parallelism, CHECKPOINT_SCHEMA};

/// Every command-line flag the bench binaries share, parsed in one
/// pass.
///
/// Historically each knob rescanned `std::env::args()` on its own
/// (`parallelism_from_args`, `smoke_from_args`, ...). Those entry
/// points survive as thin wrappers over a single
/// [`BenchArgs::from_env`] parse, so existing callers and scripts keep
/// working; new binaries parse once and ask the struct for everything,
/// including bin-specific flags via [`BenchArgs::value_of`].
///
/// Environment-variable fallbacks (`SAMURAI_THREADS`,
/// `SAMURAI_FAILURE_POLICY`, `SAMURAI_CHECKPOINT*`, `SAMURAI_MAX_JOBS`,
/// `SAMURAI_KILL_AT_JOB`, `SAMURAI_METRICS`, `SAMURAI_SMOKE`) are
/// resolved in the accessors, not at parse time, so a flag always wins
/// over its variable.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    threads: Option<usize>,
    failure_policy: Option<String>,
    checkpoint: Option<PathBuf>,
    checkpoint_every: Option<usize>,
    resume: bool,
    max_jobs: Option<usize>,
    kill_at_job: Option<usize>,
    metrics: Option<PathBuf>,
    smoke: bool,
    help: bool,
    rest: Vec<String>,
}

impl BenchArgs {
    /// Parses the process's command line (skipping the binary name).
    #[must_use]
    pub fn from_env() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// The parser behind [`BenchArgs::from_env`], split out for
    /// testing. Both `--flag VALUE` and `--flag=VALUE` spellings are
    /// accepted; unrecognised arguments are kept (in order) for
    /// bin-specific lookup via [`BenchArgs::value_of`].
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let mut take = |slot: &mut Option<String>| {
                if let Some((_, v)) = arg.split_once('=') {
                    *slot = Some(v.to_owned());
                } else {
                    *slot = args.next();
                }
            };
            let mut text: Option<String> = None;
            match arg.split_once('=').map_or(arg.as_str(), |(head, _)| head) {
                "--threads" => {
                    take(&mut text);
                    out.threads = text.take().and_then(|v| v.parse().ok());
                }
                "--failure-policy" => {
                    take(&mut text);
                    out.failure_policy = text.take();
                }
                "--checkpoint" => {
                    take(&mut text);
                    out.checkpoint = text.take().map(PathBuf::from);
                }
                "--checkpoint-every" => {
                    take(&mut text);
                    out.checkpoint_every = text.take().and_then(|v| v.parse().ok());
                }
                "--max-jobs" => {
                    take(&mut text);
                    out.max_jobs = text.take().and_then(|v| v.parse().ok());
                }
                "--kill-at-job" => {
                    take(&mut text);
                    out.kill_at_job = text.take().and_then(|v| v.parse().ok());
                }
                "--metrics" => {
                    take(&mut text);
                    out.metrics = text.take().map(PathBuf::from);
                }
                "--resume" => out.resume = true,
                "--smoke" => out.smoke = true,
                "--help" | "-h" => out.help = true,
                _ => out.rest.push(arg),
            }
        }
        out
    }

    /// The `--threads N` knob: `N = 0` (or an absent flag with
    /// `SAMURAI_THREADS` unset) means all available cores, `N = 1` the
    /// legacy sequential path. Results are bit-identical at every
    /// setting — the ensemble engine guarantees it — so this knob
    /// trades wall-clock only.
    #[must_use]
    pub fn parallelism(&self) -> Parallelism {
        let requested = self.threads.or_else(|| {
            std::env::var("SAMURAI_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
        });
        match requested {
            None | Some(0) => Parallelism::Auto,
            Some(n) => Parallelism::Fixed(n),
        }
    }

    /// The `--failure-policy SPEC` knob (see [`parse_failure_policy`]
    /// for the accepted specs), falling back to
    /// `SAMURAI_FAILURE_POLICY`, then to `fail-fast`.
    #[must_use]
    pub fn failure_policy(&self) -> FailurePolicy {
        let spec = self
            .failure_policy
            .clone()
            .or_else(|| std::env::var("SAMURAI_FAILURE_POLICY").ok());
        parse_failure_policy(spec.as_deref().unwrap_or("fail-fast"))
    }

    /// The crash-safety knobs (`--checkpoint`, `--checkpoint-every`,
    /// `--resume`, `--max-jobs`, `--kill-at-job`), assembled exactly as
    /// [`run_controls_from_args`] documents.
    #[must_use]
    pub fn run_controls(&self) -> RunControlArgs {
        let path = self
            .checkpoint
            .clone()
            .or_else(|| std::env::var_os("SAMURAI_CHECKPOINT").map(PathBuf::from));
        let every = self.checkpoint_every.or_else(|| {
            std::env::var("SAMURAI_CHECKPOINT_EVERY")
                .ok()
                .and_then(|v| v.parse().ok())
        });
        let resume = self.resume || std::env::var_os("SAMURAI_RESUME").is_some();
        let max_jobs = self.max_jobs.or_else(|| {
            std::env::var("SAMURAI_MAX_JOBS")
                .ok()
                .and_then(|v| v.parse().ok())
        });
        let kill_at_job = self.kill_at_job.or_else(|| {
            std::env::var("SAMURAI_KILL_AT_JOB")
                .ok()
                .and_then(|v| v.parse().ok())
        });

        let mut checkpoint = match path {
            Some(p) => CheckpointConfig::to_file(p),
            None => CheckpointConfig::default(),
        };
        if let Some(n) = every {
            checkpoint = checkpoint.every(n);
        }
        if resume {
            checkpoint = checkpoint.resuming();
        }
        let mut budget = RunBudget::unlimited();
        if let Some(n) = max_jobs {
            budget = budget.jobs(n);
        }
        RunControlArgs {
            checkpoint,
            budget,
            kill_at_job,
        }
    }

    /// The `--metrics DIR` knob with the `SAMURAI_METRICS` fallback.
    /// `None` means telemetry artifacts are not written.
    #[must_use]
    pub fn metrics_dir(&self) -> Option<PathBuf> {
        self.metrics
            .clone()
            .or_else(|| std::env::var_os("SAMURAI_METRICS").map(PathBuf::from))
    }

    /// `true` when `--smoke` was given or `SAMURAI_SMOKE` is set:
    /// binaries shrink their workloads to a seconds-scale sanity pass.
    #[must_use]
    pub fn smoke(&self) -> bool {
        self.smoke || std::env::var_os("SAMURAI_SMOKE").is_some()
    }

    /// `true` when `--help` or `-h` was given.
    #[must_use]
    pub fn wants_help(&self) -> bool {
        self.help
    }

    /// Looks up a bin-specific `--flag VALUE` / `--flag=VALUE` among
    /// the arguments the shared parser did not recognise.
    #[must_use]
    pub fn value_of(&self, flag: &str) -> Option<&str> {
        let mut rest = self.rest.iter();
        let mut found = None;
        while let Some(arg) = rest.next() {
            if arg == flag {
                found = rest.next().map(String::as_str);
            } else if let Some(v) = arg.strip_prefix(flag).and_then(|t| t.strip_prefix('=')) {
                found = Some(v);
            }
        }
        found
    }

    /// The arguments the shared parser did not recognise, in order.
    #[must_use]
    pub fn rest(&self) -> &[String] {
        &self.rest
    }
}

/// Handles `--help`/`-h` for a bench binary: when requested, prints
/// the shared usage text (plus `extra` bin-specific flag lines) and
/// returns `true`, in which case the binary should exit immediately.
pub fn handle_help(bin: &str, about: &str, extra: &[(&str, &str)]) -> bool {
    if !BenchArgs::from_env().wants_help() {
        return false;
    }
    println!("{bin} — {about}");
    println!("\nusage: {bin} [flags]\n");
    for (flag, what) in extra {
        println!("  {flag:<28} {what}");
    }
    for (flag, what) in [
        ("--threads N", "worker threads (0/absent = all cores)"),
        (
            "--failure-policy SPEC",
            "fail-fast | retry[:RUNGS] | quarantine[:MAX[:RUNGS]]",
        ),
        ("--checkpoint PATH", "snapshot ensemble progress into PATH"),
        (
            "--checkpoint-every N",
            "snapshot cadence in jobs (default 64)",
        ),
        ("--resume", "restore a matching snapshot before running"),
        ("--max-jobs N", "stop cleanly after at most N jobs"),
        ("--kill-at-job N", "crash drill: exit(86) just before job N"),
        (
            "--metrics DIR",
            "write BENCH_*.json / JOURNAL_*.jsonl into DIR",
        ),
        (
            "--smoke",
            "shrink the workload to a seconds-scale sanity pass",
        ),
        ("--help, -h", "this text"),
    ] {
        println!("  {flag:<28} {what}");
    }
    println!("\nEvery flag has a SAMURAI_* environment fallback; see DESIGN.md.");
    true
}

/// Parses `--threads N` from the binary's command line — a thin
/// wrapper over [`BenchArgs::parallelism`]; see it for semantics.
#[must_use]
pub fn parallelism_from_args() -> Parallelism {
    BenchArgs::from_env().parallelism()
}

/// Parses `--failure-policy SPEC` from the binary's command line, with
/// the `SAMURAI_FAILURE_POLICY` environment variable as fallback.
///
/// `SPEC` is one of:
///
/// * `fail-fast` — abort on the first failed job (the default);
/// * `retry` or `retry:RUNGS` — climb the rescue ladder per failing
///   job (`RUNGS` defaults to 2);
/// * `quarantine`, `quarantine:MAX` or `quarantine:MAX:RUNGS` — retry,
///   then drop up to `MAX` irrecoverable jobs (default 1) from the
///   statistics.
///
/// Results under every policy are bit-identical at every worker count;
/// unparsable specs fall back to `fail-fast` rather than aborting a
/// long run over a typo'd diagnostic knob.
#[must_use]
pub fn failure_policy_from_args() -> FailurePolicy {
    BenchArgs::from_env().failure_policy()
}

/// The parser behind [`failure_policy_from_args`], split out for
/// testing.
pub fn parse_failure_policy(spec: &str) -> FailurePolicy {
    let mut parts = spec.split(':');
    let head = parts.next().unwrap_or("");
    let first: Option<usize> = parts.next().and_then(|v| v.parse().ok());
    let second: Option<usize> = parts.next().and_then(|v| v.parse().ok());
    match head {
        "retry" => FailurePolicy::Retry {
            rungs: first.unwrap_or(2),
        },
        "quarantine" => FailurePolicy::Quarantine {
            rungs: second.unwrap_or(2),
            max_failures: first.unwrap_or(1),
        },
        _ => FailurePolicy::FailFast,
    }
}

/// Crash-safety knobs parsed from a binary's command line by
/// [`run_controls_from_args`].
#[derive(Debug, Clone, Default)]
pub struct RunControlArgs {
    /// Snapshot configuration assembled from `--checkpoint PATH`,
    /// `--checkpoint-every N` and `--resume`.
    pub checkpoint: CheckpointConfig,
    /// Deterministic work ceiling from `--max-jobs N`.
    pub budget: RunBudget,
    /// Crash drill: `--kill-at-job N` makes the run exit with
    /// [`samurai_core::KILL_EXIT`] just before job `N` starts, after
    /// the latest checkpoint is on disk. Route it into the fault plan
    /// with [`samurai_core::FaultPlan::kill_at_job`].
    pub kill_at_job: Option<usize>,
}

/// Parses the crash-safety flags shared by the ensemble binaries:
///
/// * `--checkpoint PATH` — snapshot ensemble progress into `PATH`
///   (atomically, after every completed segment);
/// * `--checkpoint-every N` — snapshot cadence in jobs (default 64);
/// * `--resume` — restore a matching snapshot at `PATH` before
///   running; an invalid or foreign snapshot degrades to a cold start
///   with a journaled note;
/// * `--max-jobs N` — stop cleanly after at most `N` jobs and report a
///   `Truncated` completion;
/// * `--kill-at-job N` — the crash drill used by `ci.sh`.
///
/// Environment fallbacks mirror the other parsers: `SAMURAI_CHECKPOINT`,
/// `SAMURAI_CHECKPOINT_EVERY`, `SAMURAI_RESUME`, `SAMURAI_MAX_JOBS`,
/// `SAMURAI_KILL_AT_JOB`. A thin wrapper over
/// [`BenchArgs::run_controls`].
#[must_use]
pub fn run_controls_from_args() -> RunControlArgs {
    BenchArgs::from_env().run_controls()
}

/// Times `f` and returns `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64())
}

/// Directory figure CSVs are written to (created on demand).
/// Override with the `SAMURAI_FIGURES_DIR` environment variable.
pub fn figures_dir() -> PathBuf {
    let dir = std::env::var_os("SAMURAI_FIGURES_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/figures"));
    fs::create_dir_all(&dir).expect("cannot create the figures directory");
    dir
}

/// Writes a CSV file with the given header and rows. Returns the path.
///
/// # Panics
///
/// Panics on I/O errors (these binaries are run interactively; a
/// failure to write output should abort loudly).
pub fn write_csv(name: &str, header: &str, rows: &[Vec<f64>]) -> PathBuf {
    let path = figures_dir().join(name);
    let mut file = fs::File::create(&path).expect("cannot create CSV file");
    writeln!(file, "{header}").expect("cannot write CSV header");
    for row in rows {
        let line = row
            .iter()
            .map(|v| format!("{v:.6e}"))
            .collect::<Vec<_>>()
            .join(",");
        writeln!(file, "{line}").expect("cannot write CSV row");
    }
    path
}

/// Writes a CSV with string-tagged rows (`tag,...numbers`).
///
/// # Panics
///
/// Panics on I/O errors.
pub fn write_tagged_csv(name: &str, header: &str, rows: &[(String, Vec<f64>)]) -> PathBuf {
    let path = figures_dir().join(name);
    let mut file = fs::File::create(&path).expect("cannot create CSV file");
    writeln!(file, "{header}").expect("cannot write CSV header");
    for (tag, row) in rows {
        let nums = row
            .iter()
            .map(|v| format!("{v:.6e}"))
            .collect::<Vec<_>>()
            .join(",");
        writeln!(file, "{tag},{nums}").expect("cannot write CSV row");
    }
    path
}

/// Prints a section banner to stdout.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Parses `--metrics DIR` from the binary's command line, with the
/// `SAMURAI_METRICS` environment variable as fallback. `None` means
/// telemetry artifacts are not written. A thin wrapper over
/// [`BenchArgs::metrics_dir`].
#[must_use]
pub fn metrics_dir_from_args() -> Option<PathBuf> {
    BenchArgs::from_env().metrics_dir()
}

/// `true` when `--smoke` is on the command line or `SAMURAI_SMOKE` is
/// set: binaries shrink their workloads to a seconds-scale sanity pass
/// (used by `ci.sh` to validate the telemetry pipeline end to end).
/// A thin wrapper over [`BenchArgs::smoke`].
#[must_use]
pub fn smoke_from_args() -> bool {
    BenchArgs::from_env().smoke()
}

/// One binary's telemetry session: a [`MemoryRecorder`] to thread
/// through the `*_observed` entry points, plus the wall clock and the
/// output directory resolved from `--metrics`/`SAMURAI_METRICS`.
///
/// The recorder is always live (these are tool binaries; the zero-cost
/// [`samurai_core::telemetry::NoopSink`] path is for library defaults),
/// but [`BenchSession::finish`] only writes artifacts when a metrics
/// directory was requested.
#[derive(Debug)]
pub struct BenchSession {
    name: String,
    dir: Option<PathBuf>,
    recorder: MemoryRecorder,
    watch: Instant,
}

impl BenchSession {
    /// Starts a session for the binary `name` (the artifact stem:
    /// `BENCH_<name>.json` / `JOURNAL_<name>.jsonl`).
    #[must_use]
    pub fn from_args(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            dir: metrics_dir_from_args(),
            recorder: MemoryRecorder::recording(),
            watch: Instant::now(),
        }
    }

    /// Whether artifacts will be written at [`BenchSession::finish`].
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// The recorder, to pass into `*_observed` entry points.
    pub fn recorder_mut(&mut self) -> &mut MemoryRecorder {
        &mut self.recorder
    }

    /// The recorder, for reads.
    #[must_use]
    pub fn recorder(&self) -> &MemoryRecorder {
        &self.recorder
    }

    /// Writes `BENCH_<name>.json` (throughput, latency percentiles,
    /// solver/sampler totals) and `JOURNAL_<name>.jsonl` (the ordered
    /// event journal) into the metrics directory, and returns the
    /// summary path. No-op (returns `None`) when metrics are disabled.
    ///
    /// `jobs` is the number of ensemble jobs the run completed — the
    /// denominator of the throughput figure.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors, like the CSV writers: losing the artifact
    /// of a long run silently would be worse.
    pub fn finish(self, jobs: usize) -> Option<PathBuf> {
        self.finish_with_extras(jobs, Vec::new())
    }

    /// [`BenchSession::finish`] with extra top-level members appended
    /// to the summary object — a binary's headline figures (speedups,
    /// sweep parameters) ride along in `BENCH_<name>.json`.
    ///
    /// [`validate_bench_summary`] checks required keys only, so extras
    /// never break the schema gate; insertion order is preserved, so
    /// the extras land after the standard keys.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors, like [`BenchSession::finish`].
    pub fn finish_with_extras(
        self,
        jobs: usize,
        extras: Vec<(&str, JsonValue)>,
    ) -> Option<PathBuf> {
        let dir = self.dir?;
        fs::create_dir_all(&dir).expect("cannot create the metrics directory");
        let wall = self.watch.elapsed().as_secs_f64();
        let mut summary = self.recorder.summary(&self.name, jobs, wall);
        if let JsonValue::Obj(pairs) = &mut summary {
            pairs.extend(extras.into_iter().map(|(k, v)| (k.to_owned(), v)));
        }
        let bench_path = dir.join(format!("BENCH_{}.json", self.name));
        fs::write(&bench_path, summary.to_json() + "\n").expect("cannot write the bench summary");
        let journal_path = dir.join(format!("JOURNAL_{}.jsonl", self.name));
        fs::write(&journal_path, self.recorder.journal().to_jsonl())
            .expect("cannot write the event journal");
        println!("metrics: {}", bench_path.display());
        println!("journal: {}", journal_path.display());
        Some(bench_path)
    }
}

/// Validates a `BENCH_<name>.json` document: every required key
/// present, every number finite. Returns the error list (empty =
/// valid). Used by `ci.sh` via the `validate_metrics` binary.
pub fn validate_bench_summary(doc: &JsonValue) -> Vec<String> {
    fn check_num(errors: &mut Vec<String>, v: Option<&JsonValue>, path: &str) {
        if v.and_then(JsonValue::as_f64).is_none() {
            errors.push(format!("missing or non-finite number: {path}"));
        }
    }
    let mut errors = Vec::new();
    if doc.get("name").and_then(JsonValue::as_str).is_none() {
        errors.push("missing string: name".to_owned());
    }
    check_num(&mut errors, doc.get("jobs"), "jobs");
    check_num(&mut errors, doc.get("wall_seconds"), "wall_seconds");
    check_num(
        &mut errors,
        doc.get("throughput_jobs_per_s"),
        "throughput_jobs_per_s",
    );
    match doc.get("latency") {
        Some(latency) => {
            for key in ["mean_s", "p50_s", "p95_s", "p99_s"] {
                check_num(&mut errors, latency.get(key), &format!("latency.{key}"));
            }
        }
        None => errors.push("missing object: latency".to_owned()),
    }
    match doc.get("solver") {
        Some(solver) => {
            for key in [
                "solve_attempts",
                "newton_iterations",
                "steps_accepted",
                "timestep_rejections",
                "rescue_gmin_rungs",
                "rescue_config_rungs",
                "faults_injected",
            ] {
                check_num(&mut errors, solver.get(key), &format!("solver.{key}"));
            }
        }
        None => errors.push("missing object: solver".to_owned()),
    }
    match doc.get("trap") {
        Some(trap) => {
            for key in ["candidates", "accepted"] {
                check_num(&mut errors, trap.get(key), &format!("trap.{key}"));
            }
        }
        None => errors.push("missing object: trap".to_owned()),
    }
    check_num(&mut errors, doc.get("journal_events"), "journal_events");
    errors
}

/// Validates a `samurai-checkpoint-v1` snapshot document: schema tag,
/// content hash recomputed over the canonical payload serialisation,
/// and the payload fields the resume path depends on. Returns the
/// error list (empty = valid). Used by `ci.sh` via the
/// `validate_checkpoint` binary.
pub fn validate_checkpoint_snapshot(doc: &JsonValue) -> Vec<String> {
    fn check_u64(errors: &mut Vec<String>, v: Option<&JsonValue>, path: &str) {
        if v.and_then(JsonValue::as_u64).is_none() {
            errors.push(format!("missing integer: {path}"));
        }
    }
    let mut errors = Vec::new();
    if doc.get("schema").and_then(JsonValue::as_str) != Some(CHECKPOINT_SCHEMA) {
        errors.push(format!("schema is not {CHECKPOINT_SCHEMA}"));
    }
    let hash = doc.get("hash").and_then(JsonValue::as_u64);
    if hash.is_none() {
        errors.push("missing integer: hash".to_owned());
    }
    let Some(payload) = doc.get("payload") else {
        errors.push("missing object: payload".to_owned());
        return errors;
    };
    if let Some(expected) = hash {
        // The writer hashes the payload's canonical serialisation, and
        // every payload number is an integer (floats travel as IEEE-754
        // bit patterns), so parse → re-serialise is the identity and
        // the hash is recomputable from the parsed tree.
        let actual = fnv1a64(payload.to_json().as_bytes());
        if actual != expected {
            errors.push(format!(
                "content hash mismatch: document says {expected}, payload hashes to {actual}"
            ));
        }
    }
    for key in ["jobs", "seed", "shards_done"] {
        check_u64(&mut errors, payload.get(key), key);
    }
    match payload.get("failure") {
        Some(failure) => {
            if failure.get("kind").and_then(JsonValue::as_str).is_none() {
                errors.push("missing string: failure.kind".to_owned());
            }
        }
        None => errors.push("missing object: failure".to_owned()),
    }
    if payload.get("acc").is_none() {
        errors.push("missing member: acc".to_owned());
    }
    match payload.get("rescued") {
        Some(JsonValue::Arr(rescued)) => {
            for (i, entry) in rescued.iter().enumerate() {
                match entry {
                    JsonValue::Arr(pair) if pair.len() == 2 => {
                        for (j, v) in pair.iter().enumerate() {
                            if v.as_u64().is_none() {
                                errors.push(format!("missing integer: rescued[{i}][{j}]"));
                            }
                        }
                    }
                    _ => errors.push(format!("rescued[{i}] is not a [job, rung] pair")),
                }
            }
        }
        _ => errors.push("missing array: rescued".to_owned()),
    }
    match payload.get("quarantined") {
        Some(JsonValue::Arr(quarantined)) => {
            for (i, entry) in quarantined.iter().enumerate() {
                for key in ["job", "seed", "rungs_attempted"] {
                    check_u64(
                        &mut errors,
                        entry.get(key),
                        &format!("quarantined[{i}].{key}"),
                    );
                }
                if entry.get("error").is_none() {
                    errors.push(format!("missing member: quarantined[{i}].error"));
                }
            }
        }
        _ => errors.push("missing array: quarantined".to_owned()),
    }
    match payload.get("records") {
        Some(JsonValue::Arr(records)) => {
            for (i, record) in records.iter().enumerate() {
                for key in ["job", "seconds_bits"] {
                    check_u64(&mut errors, record.get(key), &format!("records[{i}].{key}"));
                }
            }
        }
        _ => errors.push("missing array: records".to_owned()),
    }
    errors
}

/// Validates a `samurai-lint --graph` dump: schema tag, node records
/// with dense sequential ids and boolean reachability flags, edges and
/// roots whose targets stay in range. Returns the error list (empty =
/// valid). Used by `ci.sh` via the `validate_graph` binary.
#[allow(clippy::too_many_lines)]
pub fn validate_call_graph(doc: &JsonValue) -> Vec<String> {
    fn as_index(v: Option<&JsonValue>) -> Option<u64> {
        match v {
            Some(JsonValue::U64(n)) => Some(*n),
            _ => None,
        }
    }
    fn check_bool(errors: &mut Vec<String>, v: Option<&JsonValue>, path: &str) {
        if !matches!(v, Some(JsonValue::Bool(_))) {
            errors.push(format!("missing bool: {path}"));
        }
    }
    let mut errors = Vec::new();
    if doc.get("schema").and_then(JsonValue::as_str) != Some("samurai-lint-graph-v1") {
        errors.push("schema is not samurai-lint-graph-v1".to_owned());
    }

    let Some(JsonValue::Arr(nodes)) = doc.get("nodes") else {
        errors.push("missing array: nodes".to_owned());
        return errors;
    };
    if nodes.is_empty() {
        errors.push("graph has no nodes — the workspace walk found nothing".to_owned());
    }
    let n = nodes.len() as u64;
    for (i, node) in nodes.iter().enumerate() {
        let at = |field: &str| format!("nodes[{i}].{field}");
        if as_index(node.get("id")) != Some(i as u64) {
            errors.push(format!("{} is not the dense index {i}", at("id")));
        }
        for key in ["name", "path"] {
            if node.get(key).and_then(JsonValue::as_str).is_none() {
                errors.push(format!("missing string: {}", at(key)));
            }
        }
        if as_index(node.get("line")).is_none() {
            errors.push(format!("missing integer: {}", at("line")));
        }
        if !matches!(node.get("crate"), Some(JsonValue::Str(_) | JsonValue::Null)) {
            errors.push(format!("missing string-or-null: {}", at("crate")));
        }
        for key in ["hot_fn", "hot_reachable", "ensemble_reachable"] {
            check_bool(&mut errors, node.get(key), &at(key));
        }
    }

    match doc.get("edges") {
        Some(JsonValue::Arr(edges)) => {
            for (i, edge) in edges.iter().enumerate() {
                for key in ["from", "to"] {
                    match as_index(edge.get(key)) {
                        Some(id) if id < n => {}
                        _ => errors.push(format!("edges[{i}].{key} is not a node id below {n}")),
                    }
                }
                if as_index(edge.get("line")).is_none() {
                    errors.push(format!("missing integer: edges[{i}].line"));
                }
            }
        }
        _ => errors.push("missing array: edges".to_owned()),
    }

    match doc.get("hot_roots") {
        Some(JsonValue::Arr(roots)) => {
            for (i, root) in roots.iter().enumerate() {
                match root.get("kind").and_then(JsonValue::as_str) {
                    Some("hot-loop") => {
                        if root.get("path").and_then(JsonValue::as_str).is_none() {
                            errors.push(format!("missing string: hot_roots[{i}].path"));
                        }
                        if as_index(root.get("line")).is_none() {
                            errors.push(format!("missing integer: hot_roots[{i}].line"));
                        }
                    }
                    Some("hot-fn") => {}
                    _ => errors.push(format!("hot_roots[{i}].kind is not hot-loop/hot-fn")),
                }
                match as_index(root.get("target")) {
                    Some(id) if id < n => {}
                    _ => errors.push(format!("hot_roots[{i}].target is not a node id below {n}")),
                }
            }
        }
        _ => errors.push("missing array: hot_roots".to_owned()),
    }

    match doc.get("ensemble_roots") {
        Some(JsonValue::Arr(roots)) => {
            for (i, root) in roots.iter().enumerate() {
                match root {
                    JsonValue::U64(id) if *id < n => {}
                    _ => errors.push(format!("ensemble_roots[{i}] is not a node id below {n}")),
                }
            }
        }
        _ => errors.push("missing array: ensemble_roots".to_owned()),
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_policy_specs_parse() {
        assert_eq!(parse_failure_policy("fail-fast"), FailurePolicy::FailFast);
        assert_eq!(
            parse_failure_policy("retry"),
            FailurePolicy::Retry { rungs: 2 }
        );
        assert_eq!(
            parse_failure_policy("retry:5"),
            FailurePolicy::Retry { rungs: 5 }
        );
        assert_eq!(
            parse_failure_policy("quarantine"),
            FailurePolicy::Quarantine {
                rungs: 2,
                max_failures: 1
            }
        );
        assert_eq!(
            parse_failure_policy("quarantine:8:3"),
            FailurePolicy::Quarantine {
                rungs: 3,
                max_failures: 8
            }
        );
        // Typos degrade to the safe default instead of panicking.
        assert_eq!(parse_failure_policy("retyr"), FailurePolicy::FailFast);
    }

    #[test]
    fn bench_args_parse_both_flag_spellings_in_one_pass() {
        let args = BenchArgs::parse_from(
            [
                "--threads=3",
                "--failure-policy",
                "retry:4",
                "--checkpoint",
                "/tmp/a.ckpt",
                "--checkpoint-every=8",
                "--resume",
                "--max-jobs",
                "12",
                "--kill-at-job=5",
                "--smoke",
                "--spec",
                "trap:6",
                "--port=9",
            ]
            .map(String::from),
        );
        assert_eq!(args.parallelism(), Parallelism::Fixed(3));
        assert_eq!(args.failure_policy(), FailurePolicy::Retry { rungs: 4 });
        assert!(args.smoke());
        assert!(!args.wants_help());
        let controls = args.run_controls();
        assert!(!controls.budget.is_unlimited());
        assert_eq!(controls.kill_at_job, Some(5));
        // Bin-specific flags pass through, in both spellings.
        assert_eq!(args.value_of("--spec"), Some("trap:6"));
        assert_eq!(args.value_of("--port"), Some("9"));
        assert_eq!(args.value_of("--absent"), None);
        assert!(BenchArgs::parse_from(["-h".to_owned()]).wants_help());
    }

    #[test]
    fn csv_files_are_written() {
        std::env::set_var(
            "SAMURAI_FIGURES_DIR",
            std::env::temp_dir().join("samurai-figs"),
        );
        let path = write_csv("unit_test.csv", "a,b", &[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.starts_with("a,b\n"));
        assert_eq!(content.lines().count(), 3);
        let path = write_tagged_csv(
            "unit_test_tagged.csv",
            "tag,x",
            &[("old".into(), vec![1.0])],
        );
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("old,1.000000e0"));
        std::env::remove_var("SAMURAI_FIGURES_DIR");
    }

    #[test]
    fn bench_summaries_validate_and_reject_gaps() {
        let recorder = MemoryRecorder::recording();
        let good = recorder.summary("unit", 0, 0.5);
        assert!(validate_bench_summary(&good).is_empty());

        let bad = JsonValue::obj(vec![("name", JsonValue::Str("unit".into()))]);
        let errors = validate_bench_summary(&bad);
        assert!(errors.iter().any(|e| e.contains("jobs")));
        assert!(errors.iter().any(|e| e.contains("latency")));
        assert!(errors.iter().any(|e| e.contains("solver")));
    }

    #[test]
    fn call_graph_dumps_validate_and_reject_gaps() {
        let good = samurai_core::telemetry::json::parse(
            r#"{"schema": "samurai-lint-graph-v1",
                "nodes": [
                  {"id": 0, "name": "a", "path": "crates/core/src/l.rs",
                   "line": 1, "crate": "core", "hot_fn": true,
                   "hot_reachable": true, "ensemble_reachable": false},
                  {"id": 1, "name": "b", "path": "crates/core/src/l.rs",
                   "line": 2, "crate": null, "hot_fn": false,
                   "hot_reachable": true, "ensemble_reachable": false}],
                "edges": [{"from": 0, "to": 1, "line": 1}],
                "hot_roots": [{"kind": "hot-fn", "target": 0}],
                "ensemble_roots": []}"#,
        )
        .unwrap();
        assert!(validate_call_graph(&good).is_empty());

        let bad = samurai_core::telemetry::json::parse(
            r#"{"schema": "wrong",
                "nodes": [{"id": 7, "name": "a"}],
                "edges": [{"from": 0, "to": 9, "line": 1}],
                "hot_roots": [{"kind": "mystery", "target": 0}]}"#,
        )
        .unwrap();
        let errors = validate_call_graph(&bad);
        assert!(errors.iter().any(|e| e.contains("schema")));
        assert!(errors.iter().any(|e| e.contains("dense index")));
        assert!(errors.iter().any(|e| e.contains("edges[0].to")));
        assert!(errors.iter().any(|e| e.contains("hot_roots[0].kind")));
        assert!(errors.iter().any(|e| e.contains("ensemble_roots")));
    }

    #[test]
    fn default_run_controls_are_passive() {
        // No crash-safety flags and a clean environment: the parsed
        // controls must leave the legacy single-segment path intact.
        for var in [
            "SAMURAI_CHECKPOINT",
            "SAMURAI_CHECKPOINT_EVERY",
            "SAMURAI_RESUME",
            "SAMURAI_MAX_JOBS",
            "SAMURAI_KILL_AT_JOB",
        ] {
            std::env::remove_var(var);
        }
        let controls = run_controls_from_args();
        assert_eq!(controls.checkpoint, CheckpointConfig::default());
        assert!(controls.budget.is_unlimited());
        assert_eq!(controls.kill_at_job, None);
    }

    #[test]
    fn checkpoint_snapshots_validate_and_reject_gaps() {
        let payload = JsonValue::obj(vec![
            ("jobs", JsonValue::U64(8)),
            ("seed", JsonValue::U64(17)),
            (
                "failure",
                JsonValue::obj(vec![("kind", JsonValue::Str("fail_fast".into()))]),
            ),
            ("shards_done", JsonValue::U64(3)),
            (
                "acc",
                JsonValue::obj(vec![("slots", JsonValue::Arr(vec![]))]),
            ),
            (
                "rescued",
                JsonValue::Arr(vec![JsonValue::Arr(vec![
                    JsonValue::U64(2),
                    JsonValue::U64(1),
                ])]),
            ),
            (
                "quarantined",
                JsonValue::Arr(vec![JsonValue::obj(vec![
                    ("job", JsonValue::U64(5)),
                    ("seed", JsonValue::U64(9)),
                    ("rungs_attempted", JsonValue::U64(2)),
                    ("error", JsonValue::obj(vec![])),
                ])]),
            ),
            (
                "records",
                JsonValue::Arr(vec![JsonValue::obj(vec![
                    ("job", JsonValue::U64(0)),
                    ("seconds_bits", JsonValue::U64(0)),
                ])]),
            ),
        ]);
        let hash = fnv1a64(payload.to_json().as_bytes());
        let good = JsonValue::obj(vec![
            ("schema", JsonValue::Str(CHECKPOINT_SCHEMA.into())),
            ("hash", JsonValue::U64(hash)),
            ("payload", payload.clone()),
        ]);
        assert!(validate_checkpoint_snapshot(&good).is_empty());

        // A flipped hash must be called out as corruption.
        let torn = JsonValue::obj(vec![
            ("schema", JsonValue::Str(CHECKPOINT_SCHEMA.into())),
            ("hash", JsonValue::U64(hash ^ 1)),
            ("payload", payload),
        ]);
        let errors = validate_checkpoint_snapshot(&torn);
        assert!(errors.iter().any(|e| e.contains("hash mismatch")));

        let bad = JsonValue::obj(vec![
            ("schema", JsonValue::Str("wrong".into())),
            (
                "payload",
                JsonValue::obj(vec![("rescued", JsonValue::Arr(vec![JsonValue::U64(3)]))]),
            ),
        ]);
        let errors = validate_checkpoint_snapshot(&bad);
        assert!(errors.iter().any(|e| e.contains("schema")));
        assert!(errors.iter().any(|e| e.contains("missing integer: hash")));
        assert!(errors.iter().any(|e| e.contains("jobs")));
        assert!(errors.iter().any(|e| e.contains("failure")));
        assert!(errors.iter().any(|e| e.contains("rescued[0]")));
        assert!(errors.iter().any(|e| e.contains("quarantined")));
        assert!(errors.iter().any(|e| e.contains("records")));
    }

    #[test]
    fn disabled_session_writes_nothing() {
        // No --metrics flag and no SAMURAI_METRICS in the test env.
        std::env::remove_var("SAMURAI_METRICS");
        let session = BenchSession::from_args("unit");
        assert!(!session.enabled());
        assert!(session.finish(3).is_none());
    }
}
