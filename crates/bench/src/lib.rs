//! Shared plumbing for the figure-regeneration binaries and the
//! Criterion benchmarks.
//!
//! Each binary `figN_*` / `xN_*` regenerates one evaluation artifact of
//! the paper (see DESIGN.md §4): it prints a human-readable summary and
//! writes the underlying series as CSV into [`figures_dir`]
//! (`target/figures/` by default).

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Directory figure CSVs are written to (created on demand).
/// Override with the `SAMURAI_FIGURES_DIR` environment variable.
pub fn figures_dir() -> PathBuf {
    let dir = std::env::var_os("SAMURAI_FIGURES_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/figures"));
    fs::create_dir_all(&dir).expect("cannot create the figures directory");
    dir
}

/// Writes a CSV file with the given header and rows. Returns the path.
///
/// # Panics
///
/// Panics on I/O errors (these binaries are run interactively; a
/// failure to write output should abort loudly).
pub fn write_csv(name: &str, header: &str, rows: &[Vec<f64>]) -> PathBuf {
    let path = figures_dir().join(name);
    let mut file = fs::File::create(&path).expect("cannot create CSV file");
    writeln!(file, "{header}").expect("cannot write CSV header");
    for row in rows {
        let line = row
            .iter()
            .map(|v| format!("{v:.6e}"))
            .collect::<Vec<_>>()
            .join(",");
        writeln!(file, "{line}").expect("cannot write CSV row");
    }
    path
}

/// Writes a CSV with string-tagged rows (`tag,...numbers`).
///
/// # Panics
///
/// Panics on I/O errors.
pub fn write_tagged_csv(name: &str, header: &str, rows: &[(String, Vec<f64>)]) -> PathBuf {
    let path = figures_dir().join(name);
    let mut file = fs::File::create(&path).expect("cannot create CSV file");
    writeln!(file, "{header}").expect("cannot write CSV header");
    for (tag, row) in rows {
        let nums = row
            .iter()
            .map(|v| format!("{v:.6e}"))
            .collect::<Vec<_>>()
            .join(",");
        writeln!(file, "{tag},{nums}").expect("cannot write CSV row");
    }
    path
}

/// Prints a section banner to stdout.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_files_are_written() {
        std::env::set_var("SAMURAI_FIGURES_DIR", std::env::temp_dir().join("samurai-figs"));
        let path = write_csv("unit_test.csv", "a,b", &[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.starts_with("a,b\n"));
        assert_eq!(content.lines().count(), 3);
        let path = write_tagged_csv(
            "unit_test_tagged.csv",
            "tag,x",
            &[("old".into(), vec![1.0])],
        );
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("old,1.000000e0"));
        std::env::remove_var("SAMURAI_FIGURES_DIR");
    }
}
