//! Criterion benches for the SPICE substrate: the 6T write transient
//! under both integrators (the trapezoidal-vs-backward-Euler ablation
//! of DESIGN.md §7) and the full two-pass methodology.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use samurai_spice::{
    run_transient, CompiledCircuit, Integrator, NewtonWorkspace, Source, TransientConfig,
};
use samurai_sram::{
    build_write_waveforms, run_methodology, MethodologyConfig, SramCell, SramCellParams,
    WriteTiming,
};
use samurai_waveform::BitPattern;

fn write_cell(integrator: Integrator) {
    let timing = WriteTiming::default();
    let pattern = BitPattern::parse("10").expect("static pattern");
    let mut cell = SramCell::new(SramCellParams::default());
    let waves = build_write_waveforms(&pattern, &timing).expect("valid timing");
    cell.set_wl(Source::Pwl(waves.wl));
    cell.set_bl(Source::Pwl(waves.bl));
    cell.set_blb(Source::Pwl(waves.blb));
    let config = TransientConfig {
        integrator,
        ..TransientConfig::default()
    };
    let result = run_transient(&cell.circuit, 0.0, timing.duration(2), &config)
        .expect("write transient converges");
    black_box(result);
}

fn bench_write_transient(c: &mut Criterion) {
    let mut group = c.benchmark_group("sram_write_transient");
    group.bench_function("trapezoidal", |b| {
        b.iter(|| write_cell(Integrator::Trapezoidal))
    });
    group.bench_function("backward_euler", |b| {
        b.iter(|| write_cell(Integrator::BackwardEuler))
    });
    group.finish();
}

/// Compiled path vs the compile-per-call wrapper on the 6T write
/// transient. `per_call_compile` is what the seed engine did on every
/// run (string-keyed lowering + fresh buffers each call);
/// `compiled_reused_workspace` compiles once and reuses one
/// [`NewtonWorkspace`] across runs — the allocation-free hot loop the
/// refactor promises. Both produce bit-identical results (pinned by
/// tests/spice_golden.rs); this group pins the *cost* relationship.
fn bench_compiled_vs_seed(c: &mut Criterion) {
    let timing = WriteTiming::default();
    let pattern = BitPattern::parse("10").expect("static pattern");
    let mut cell = SramCell::new(SramCellParams::default());
    let waves = build_write_waveforms(&pattern, &timing).expect("valid timing");
    cell.set_wl(Source::Pwl(waves.wl));
    cell.set_bl(Source::Pwl(waves.bl));
    cell.set_blb(Source::Pwl(waves.blb));
    let tf = timing.duration(2);
    let config = TransientConfig::default();

    let mut group = c.benchmark_group("compiled_vs_seed_write_transient");
    group.bench_function("per_call_compile", |b| {
        b.iter(|| {
            black_box(
                run_transient(&cell.circuit, 0.0, tf, &config).expect("write transient converges"),
            )
        })
    });
    let compiled = CompiledCircuit::compile(&cell.circuit);
    let mut ws = NewtonWorkspace::new(&compiled);
    group.bench_function("compiled_reused_workspace", |b| {
        b.iter(|| {
            black_box(
                compiled
                    .run_transient(&mut ws, 0.0, tf, &config)
                    .expect("write transient converges"),
            )
        })
    });
    group.finish();
}

fn bench_methodology(c: &mut Criterion) {
    let pattern = BitPattern::parse("1010").expect("static pattern");
    let config = MethodologyConfig {
        seed: 3,
        ..MethodologyConfig::default()
    };
    c.bench_function("two_pass_methodology_4bits", |b| {
        b.iter(|| black_box(run_methodology(&pattern, &config).expect("methodology runs")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_write_transient, bench_compiled_vs_seed, bench_methodology
}
criterion_main!(benches);
