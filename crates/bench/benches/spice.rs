//! Criterion benches for the SPICE substrate: the 6T write transient
//! under both integrators (the trapezoidal-vs-backward-Euler ablation
//! of DESIGN.md §6) and the full two-pass methodology.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use samurai_spice::{run_transient, Integrator, Source, TransientConfig};
use samurai_sram::{
    build_write_waveforms, run_methodology, MethodologyConfig, SramCell, SramCellParams,
    WriteTiming,
};
use samurai_waveform::BitPattern;

fn write_cell(integrator: Integrator) {
    let timing = WriteTiming::default();
    let pattern = BitPattern::parse("10").expect("static pattern");
    let mut cell = SramCell::new(SramCellParams::default());
    let waves = build_write_waveforms(&pattern, &timing).expect("valid timing");
    cell.set_wl(Source::Pwl(waves.wl));
    cell.set_bl(Source::Pwl(waves.bl));
    cell.set_blb(Source::Pwl(waves.blb));
    let config = TransientConfig {
        integrator,
        ..TransientConfig::default()
    };
    let result = run_transient(&cell.circuit, 0.0, timing.duration(2), &config)
        .expect("write transient converges");
    black_box(result);
}

fn bench_write_transient(c: &mut Criterion) {
    let mut group = c.benchmark_group("sram_write_transient");
    group.bench_function("trapezoidal", |b| {
        b.iter(|| write_cell(Integrator::Trapezoidal))
    });
    group.bench_function("backward_euler", |b| {
        b.iter(|| write_cell(Integrator::BackwardEuler))
    });
    group.finish();
}

fn bench_methodology(c: &mut Criterion) {
    let pattern = BitPattern::parse("1010").expect("static pattern");
    let config = MethodologyConfig {
        seed: 3,
        ..MethodologyConfig::default()
    };
    c.bench_function("two_pass_methodology_4bits", |b| {
        b.iter(|| black_box(run_methodology(&pattern, &config).expect("methodology runs")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_write_transient, bench_methodology
}
criterion_main!(benches);
