//! Criterion benches for the analysis substrate: FFT sizes, Welch PSD
//! estimation and direct-vs-FFT autocorrelation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use samurai_analysis::{autocorr, fft, psd};
use samurai_waveform::Trace;

fn noisy_trace(n: usize) -> Trace {
    // Deterministic pseudo-noise (no RNG dependency in the hot loop).
    Trace::from_fn(0.0, 1e-6, n, |t| {
        (t * 1.1e6).sin() + 0.3 * (t * 7.7e6).cos() + 0.1 * (t * 311.0e6).sin()
    })
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &log_n in &[10u32, 12, 14] {
        let n = 1usize << log_n;
        let signal: Vec<f64> = noisy_trace(n).into_values();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(fft::fft_real(&signal)))
        });
    }
    group.finish();
}

fn bench_welch(c: &mut Criterion) {
    let trace = noisy_trace(1 << 15);
    c.bench_function("welch_32k_seg1024", |b| {
        b.iter(|| black_box(psd::welch(&trace, 1024)))
    });
}

fn bench_autocorr(c: &mut Criterion) {
    let trace = noisy_trace(1 << 13);
    let mut group = c.benchmark_group("autocorrelation_8k_lag256");
    group.bench_function("direct", |b| {
        b.iter(|| black_box(autocorr::raw_autocorrelation(trace.values(), 256)))
    });
    group.bench_function("fft", |b| {
        b.iter(|| black_box(autocorr::raw_autocorrelation_fft(trace.values(), 256)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fft, bench_welch, bench_autocorr
}
criterion_main!(benches);
