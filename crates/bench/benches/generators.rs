//! Criterion benches for the RTN trace generators: the uniformisation
//! kernel (Algorithm 1) against the Gillespie SSA, the fixed-Δt
//! Bernoulli discretisation and the Ye-style white-noise generator,
//! plus scaling in trap count — the ablation called out in DESIGN.md §7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use samurai_core::{
    gillespie, simulate_device, simulate_trap, ye, SeedStream, UniformisationConfig,
};
use samurai_trap::{DeviceParams, PropensityModel, TrapParams};
use samurai_units::{Energy, Length};
use samurai_waveform::Pwl;

fn model(depth_nm: f64) -> PropensityModel {
    PropensityModel::new(
        DeviceParams::nominal_90nm(),
        TrapParams::new(Length::from_nanometres(depth_nm), Energy::from_ev(0.4)),
    )
}

fn balanced_bias(m: &PropensityModel) -> f64 {
    let (mut lo, mut hi) = (-2.0, 3.0);
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if m.stationary_occupancy(mid) < 0.5 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// One kernel generating ~1000 events under a switching bias.
fn bench_kernels(c: &mut Criterion) {
    let m = model(1.8);
    let lambda = m.rate_sum();
    let v = balanced_bias(&m);
    let bias = Pwl::clock(v - 0.2, v + 0.2, 0.0, 200.0 / lambda, 0.5, 1.0 / lambda, 5)
        .expect("static clock");
    let tf = 1000.0 / lambda;

    let mut group = c.benchmark_group("kernels");
    group.bench_function("uniformisation", |b| {
        b.iter(|| {
            let mut rng = SeedStream::new(1).rng(0);
            black_box(simulate_trap(&m, &bias, 0.0, tf, &mut rng).expect("runs"))
        })
    });
    group.bench_function("frozen_rate_ssa", |b| {
        b.iter(|| {
            let mut rng = SeedStream::new(1).rng(0);
            black_box(gillespie::frozen_rate_ssa(&m, &bias, 0.0, tf, &mut rng).expect("runs"))
        })
    });
    group.bench_function("bernoulli_dt_0.05", |b| {
        b.iter(|| {
            let mut rng = SeedStream::new(1).rng(0);
            black_box(
                gillespie::bernoulli_timestep(&m, &bias, 0.0, tf, 0.05 / lambda, &mut rng)
                    .expect("runs"),
            )
        })
    });
    group.bench_function("ye_two_stage", |b| {
        b.iter(|| {
            let mut rng = SeedStream::new(1).rng(0);
            black_box(
                ye::generate(&m, v, 0.0, tf, &mut rng, &ye::YeConfig::default()).expect("runs"),
            )
        })
    });
    group.finish();
}

/// Uniformisation scaling with trap count (fixed horizon).
fn bench_trap_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("uniformisation_trap_count");
    for &count in &[1usize, 5, 10, 50] {
        let models: Vec<PropensityModel> = (0..count)
            .map(|i| model(1.5 + 0.4 * (i as f64 / count.max(2) as f64)))
            .collect();
        let slowest = models
            .iter()
            .map(|m| m.rate_sum())
            .fold(f64::INFINITY, f64::min);
        let v = balanced_bias(&models[0]);
        let bias = Pwl::constant(v);
        let tf = 200.0 / slowest;
        group.bench_with_input(BenchmarkId::from_parameter(count), &count, |b, _| {
            b.iter(|| {
                black_box(
                    simulate_device(
                        &models,
                        &bias,
                        0.0,
                        tf,
                        &SeedStream::new(2),
                        &UniformisationConfig::default(),
                    )
                    .expect("runs"),
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernels, bench_trap_count
}
criterion_main!(benches);
