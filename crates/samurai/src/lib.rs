//! SAMURAI — **S**RAM **A**nalysis by **M**arkov **U**niformisation
//! with **R**TN **A**wareness **I**ncorporated.
//!
//! A from-scratch Rust reproduction of *"SAMURAI: An accurate method
//! for modelling and simulating non-stationary Random Telegraph Noise
//! in SRAMs"* (DATE 2011). This facade crate re-exports the whole
//! toolkit under one roof:
//!
//! * [`units`] — physical quantities and constants;
//! * [`waveform`] — piecewise-linear/constant waveforms, traces and
//!   bit patterns;
//! * [`trap`] — oxide-trap physics, statistical trap profiling, the
//!   exact master equation;
//! * [`core`] — the Markov-uniformisation RTN generator (Algorithm 1),
//!   its baselines, and the deterministic parallel ensemble engine
//!   (`core::ensemble`, bit-identical at any worker count);
//! * [`analysis`] — FFT, autocorrelation, PSD estimation and the
//!   analytical Machlup/1-over-f noise models;
//! * [`spice`] — the MNA transient circuit simulator;
//! * [`sram`] — the 6T cell, the two-pass SPICE↔SAMURAI methodology
//!   and the paper's future-work extensions.
//!
//! # Quickstart
//!
//! Generate non-stationary RTN for a two-trap device under a switching
//! gate bias:
//!
//! ```
//! use samurai::core::{BiasWaveforms, RtnGenerator};
//! use samurai::trap::{DeviceParams, TrapParams};
//! use samurai::units::{Energy, Length};
//! use samurai::waveform::Pwl;
//!
//! let traps = vec![
//!     TrapParams::new(Length::from_nanometres(1.6), Energy::from_ev(0.35)),
//!     TrapParams::new(Length::from_nanometres(1.8), Energy::from_ev(0.45)),
//! ];
//! let generator = RtnGenerator::new(DeviceParams::nominal_90nm(), traps).with_seed(1);
//! let v_gs = Pwl::clock(0.2, 1.0, 0.0, 2e-2, 0.5, 1e-4, 4)?;
//! let bias = BiasWaveforms::new(v_gs, Pwl::constant(10e-6));
//! let rtn = generator.generate(&bias, 0.0, 8e-2)?;
//! println!("{} capture/emission events", rtn.event_count());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use samurai_analysis as analysis;
pub use samurai_core as core;
pub use samurai_spice as spice;
pub use samurai_sram as sram;
pub use samurai_trap as trap;
pub use samurai_units as units;
pub use samurai_waveform as waveform;
