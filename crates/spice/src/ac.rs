//! AC small-signal analysis.
//!
//! Linearises the circuit at its DC operating point (MOSFETs become
//! their `gm`/`gds` conductance stamps) and solves the complex MNA
//! system `(G + jωC)·x = b` over a frequency sweep. The complex system
//! of size `n` is solved as the equivalent real system of size `2n`:
//!
//! ```text
//! [ G  -ωC ] [Re x]   [Re b]
//! [ ωC   G ] [Im x] = [Im b]
//! ```
//!
//! which reuses the real LU solver. One source is designated the AC
//! stimulus (unit magnitude, zero phase); every node voltage is then a
//! complex transfer function relative to it. For the RTN methodology
//! this answers: *how does a current glitch injected at transistor X
//! propagate to the storage node, and over what bandwidth?*
//!
//! The linearisation walks the [`CompiledCircuit`]'s index-resolved
//! stamps — the same lowered representation DC and transient solve
//! through — and the operating point comes from
//! [`CompiledCircuit::dc_operating_point`] on the caller's workspace,
//! so repeated sweeps (e.g. one per transistor) reuse all solver
//! storage.

use crate::compiled::{CompiledCircuit, DeviceStamp, NewtonWorkspace};
use crate::linalg::DenseMatrix;
use crate::netlist::{Circuit, ElementId};
use crate::{DcConfig, SpiceError};

#[inline]
fn v_of(x: &[f64], n: Option<usize>) -> f64 {
    match n {
        Some(i) => x[i],
        None => 0.0,
    }
}

/// A complex phasor result.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Phasor {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Phasor {
    /// Magnitude `|H|`.
    pub fn magnitude(self) -> f64 {
        (self.re * self.re + self.im * self.im).sqrt()
    }

    /// Phase in radians.
    pub fn phase(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Magnitude in decibels (`20·log10 |H|`).
    pub fn db(self) -> f64 {
        20.0 * self.magnitude().log10()
    }
}

/// Result of an AC sweep: node phasors per frequency.
#[derive(Debug, Clone)]
pub struct AcResult {
    /// Swept frequencies, Hz.
    pub freqs: Vec<f64>,
    /// `phasors[k][i]` = node-unknown `i` response at `freqs[k]`.
    phasors: Vec<Vec<Phasor>>,
}

impl AcResult {
    /// Transfer function (vs the unit stimulus) of a named node.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for an unknown name.
    pub fn transfer(&self, ckt: &Circuit, node: &str) -> Result<Vec<Phasor>, SpiceError> {
        let id = ckt.find_node(node)?;
        match id.unknown_index() {
            None => Ok(vec![Phasor::default(); self.freqs.len()]),
            Some(i) => Ok(self.phasors.iter().map(|row| row[i]).collect()),
        }
    }

    /// The −3 dB bandwidth of a node's transfer function relative to
    /// its lowest-frequency magnitude, or `None` if it never drops.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for an unknown name.
    pub fn bandwidth(&self, ckt: &Circuit, node: &str) -> Result<Option<f64>, SpiceError> {
        let h = self.transfer(ckt, node)?;
        let reference = h[0].magnitude();
        let target = reference / f64::sqrt(2.0);
        for (k, p) in h.iter().enumerate() {
            if p.magnitude() < target {
                return Ok(Some(self.freqs[k]));
            }
        }
        Ok(None)
    }
}

/// Builds the linearised `G` (conductance) and `C` (capacitance)
/// matrices and the stimulus vector at the DC operating point, from
/// the compiled stamps.
fn linearise(
    compiled: &CompiledCircuit,
    x_dc: &[f64],
    stimulus: ElementId,
) -> Result<(DenseMatrix, DenseMatrix, Vec<f64>), SpiceError> {
    let n = compiled.unknown_count();
    let n_nodes = compiled.node_count();
    let mut g = DenseMatrix::zeros(n, n);
    let mut c = DenseMatrix::zeros(n, n);
    let mut b = vec![0.0f64; n];

    let stamp_g = |m: &mut DenseMatrix, a: Option<usize>, bb: Option<usize>, val: f64| {
        if let Some(i) = a {
            m.add(i, i, val);
        }
        if let Some(j) = bb {
            m.add(j, j, val);
        }
        if let (Some(i), Some(j)) = (a, bb) {
            m.add(i, j, -val);
            m.add(j, i, -val);
        }
    };

    // gmin keeps the AC matrix regular too.
    for i in 0..n_nodes {
        g.add(i, i, compiled.gmin);
    }

    let mut found_stimulus = false;
    for (idx, stamp) in compiled.stamps.iter().enumerate() {
        let is_stimulus = ElementId(idx) == stimulus;
        match stamp {
            DeviceStamp::Resistor(r) => {
                stamp_g(&mut g, r.a, r.b, r.g);
            }
            DeviceStamp::Capacitor(cap) => {
                stamp_g(&mut c, cap.a, cap.b, cap.c);
            }
            DeviceStamp::Vsource(v) => {
                let row = v.row;
                if let Some(i) = v.plus {
                    g.add(i, row, 1.0);
                    g.add(row, i, 1.0);
                }
                if let Some(i) = v.minus {
                    g.add(i, row, -1.0);
                    g.add(row, i, -1.0);
                }
                if is_stimulus {
                    // Branch equation: v(+) - v(-) = 1.
                    b[row] = 1.0;
                    found_stimulus = true;
                }
                // Non-stimulus sources are AC shorts (rhs 0).
            }
            DeviceStamp::Isource(src) => {
                if is_stimulus {
                    // Unit AC current driven out of `from` into `to`:
                    // KCL rhs gets -(-1)... residual convention aside,
                    // in `(G + jwC)x = b` the injection enters b.
                    if let Some(i) = src.from {
                        b[i] -= 1.0;
                    }
                    if let Some(i) = src.to {
                        b[i] += 1.0;
                    }
                    found_stimulus = true;
                }
            }
            DeviceStamp::Mosfet(m) => {
                let (_, dd, dg, ds) =
                    m.params
                        .eval(v_of(x_dc, m.d), v_of(x_dc, m.g), v_of(x_dc, m.s));
                // Current flows d -> s; stamp the 3-terminal Jacobian.
                let cols = [m.d, m.g, m.s];
                let parts = [dd, dg, ds];
                for (col, val) in cols.iter().zip(parts) {
                    if let (Some(r), Some(cc)) = (m.d, *col) {
                        g.add(r, cc, val);
                    }
                    if let (Some(r), Some(cc)) = (m.s, *col) {
                        g.add(r, cc, -val);
                    }
                }
                // Charge model.
                stamp_g(&mut c, m.g, m.s, m.params.cgs);
                stamp_g(&mut c, m.g, m.d, m.params.cgd);
                stamp_g(&mut c, m.d, None, m.params.cdb);
            }
        }
    }
    if !found_stimulus {
        return Err(SpiceError::InvalidElement {
            reason: "the AC stimulus id must refer to a voltage or current source",
        });
    }
    Ok((g, c, b))
}

impl CompiledCircuit {
    /// Runs an AC sweep with `stimulus` as the unit source, reusing
    /// `ws` for the operating-point solve.
    ///
    /// # Errors
    ///
    /// Propagates DC failures; [`SpiceError::InvalidElement`] if the
    /// stimulus is not a source; [`SpiceError::SingularMatrix`] for
    /// degenerate circuits.
    ///
    /// # Panics
    ///
    /// Panics if `freqs` is empty or contains non-positive values.
    pub fn run_ac(
        &self,
        ws: &mut NewtonWorkspace,
        stimulus: ElementId,
        freqs: &[f64],
        dc: &DcConfig,
    ) -> Result<AcResult, SpiceError> {
        assert!(!freqs.is_empty(), "need at least one frequency");
        assert!(
            freqs.iter().all(|&f| f > 0.0 && f.is_finite()),
            "frequencies must be positive"
        );
        self.dc_operating_point(ws, 0.0, dc)?;
        let (g, c, b) = linearise(self, ws.solution(), stimulus)?;
        let n = self.unknown_count();

        // One block system and rhs reused across the whole sweep.
        let mut m = DenseMatrix::zeros(2 * n, 2 * n);
        let mut rhs = vec![0.0; 2 * n];
        let mut phasors = Vec::with_capacity(freqs.len());
        for &f in freqs {
            let omega = core::f64::consts::TAU * f;
            m.clear();
            for r in 0..n {
                for cc in 0..n {
                    let gv = g.get(r, cc);
                    let cv = c.get(r, cc) * omega;
                    // lint: allow(HYG004): exact-zero sparsity test on stamped entries
                    if gv != 0.0 {
                        m.set(r, cc, gv);
                        m.set(n + r, n + cc, gv);
                    }
                    // lint: allow(HYG004): exact-zero sparsity test on stamped entries
                    if cv != 0.0 {
                        m.set(r, n + cc, -cv);
                        m.set(n + r, cc, cv);
                    }
                }
            }
            rhs[..n].copy_from_slice(&b);
            rhs[n..].iter_mut().for_each(|v| *v = 0.0);
            // The 2n×2n real block system interleaves the real and
            // imaginary halves, so a failing column maps back to
            // unknown `col % n` of the circuit.
            m.solve_in_place_indexed(&mut rhs)
                .map_err(|col| self.singular_at(col % n))?;
            phasors.push(
                (0..n)
                    .map(|i| Phasor {
                        re: rhs[i],
                        im: rhs[n + i],
                    })
                    .collect(),
            );
        }
        Ok(AcResult {
            freqs: freqs.to_vec(),
            phasors,
        })
    }
}

/// Runs an AC sweep with `stimulus` as the unit source.
///
/// Compiles the circuit on the fly; callers sweeping many stimuli on
/// the same circuit should compile once and use
/// [`CompiledCircuit::run_ac`] with a persistent workspace.
///
/// # Errors
///
/// Propagates DC failures; [`SpiceError::InvalidElement`] if the
/// stimulus is not a source; [`SpiceError::SingularMatrix`] for
/// degenerate circuits.
///
/// # Panics
///
/// Panics if `freqs` is empty or contains non-positive values.
pub fn run_ac(
    ckt: &Circuit,
    stimulus: ElementId,
    freqs: &[f64],
    dc: &DcConfig,
) -> Result<AcResult, SpiceError> {
    let compiled = CompiledCircuit::compile(ckt);
    let mut ws = NewtonWorkspace::new(&compiled);
    compiled.run_ac(&mut ws, stimulus, freqs, dc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MosfetParams, Source};

    fn log_freqs(f0: f64, f1: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| f0 * (f1 / f0).powf(i as f64 / (n - 1) as f64))
            .collect()
    }

    #[test]
    fn rc_lowpass_matches_the_analytic_transfer_function() {
        let r = 1e3;
        let c = 1e-9; // corner ~159 kHz
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let vs = ckt.vsource(a, Circuit::GROUND, Source::Dc(0.0));
        ckt.resistor(a, b, r);
        ckt.capacitor(b, Circuit::GROUND, c);
        let freqs = log_freqs(1e3, 1e8, 40);
        let ac = run_ac(&ckt, vs, &freqs, &DcConfig::default()).unwrap();
        let h = ac.transfer(&ckt, "b").unwrap();
        for (k, &f) in freqs.iter().enumerate() {
            let wrc = core::f64::consts::TAU * f * r * c;
            let expected_mag = 1.0 / (1.0 + wrc * wrc).sqrt();
            let expected_phase = -(wrc).atan();
            assert!(
                (h[k].magnitude() - expected_mag).abs() < 1e-6,
                "f = {f}: |H| = {} vs {expected_mag}",
                h[k].magnitude()
            );
            assert!(
                (h[k].phase() - expected_phase).abs() < 1e-6,
                "f = {f}: phase {} vs {expected_phase}",
                h[k].phase()
            );
        }
        // Bandwidth lands at 1/(2*pi*R*C).
        let bw = ac.bandwidth(&ckt, "b").unwrap().expect("rolls off");
        let corner = 1.0 / (core::f64::consts::TAU * r * c);
        assert!(
            bw > 0.5 * corner && bw < 2.0 * corner,
            "bw = {bw} vs corner {corner}"
        );
    }

    #[test]
    fn current_stimulus_sees_the_node_impedance() {
        // 1 A AC into R || C: |V| = |Z| = R/sqrt(1+(wRC)^2).
        let r = 2e3;
        let c = 1e-12;
        let mut ckt = Circuit::new();
        let n = ckt.node("n");
        let is = ckt.isource(Circuit::GROUND, n, Source::Dc(0.0));
        ckt.resistor(n, Circuit::GROUND, r);
        ckt.capacitor(n, Circuit::GROUND, c);
        let freqs = log_freqs(1e3, 1e10, 30);
        let ac = run_ac(&ckt, is, &freqs, &DcConfig::default()).unwrap();
        let h = ac.transfer(&ckt, "n").unwrap();
        for (k, &f) in freqs.iter().enumerate() {
            let wrc = core::f64::consts::TAU * f * r * c;
            let expected = r / (1.0 + wrc * wrc).sqrt();
            assert!(
                (h[k].magnitude() - expected).abs() < 1e-3 * expected,
                "f = {f}: {} vs {expected}",
                h[k].magnitude()
            );
        }
    }

    #[test]
    fn common_source_amplifier_has_gain_and_rolls_off() {
        // NMOS with resistive load biased in saturation: low-frequency
        // gain ~ gm*(R || ro), rolling off through the load capacitance.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.vsource(vdd, Circuit::GROUND, Source::Dc(1.1));
        let g = ckt.node("g");
        let vin = ckt.vsource(g, Circuit::GROUND, Source::Dc(0.55));
        let d = ckt.node("d");
        ckt.resistor(vdd, d, 20e3);
        ckt.capacitor(d, Circuit::GROUND, 10e-15);
        ckt.mosfet(d, g, Circuit::GROUND, MosfetParams::nmos_90nm(4.0));
        let freqs = log_freqs(1e4, 1e12, 50);
        let ac = run_ac(&ckt, vin, &freqs, &DcConfig::default()).unwrap();
        let h = ac.transfer(&ckt, "d").unwrap();
        let low_gain = h[0].magnitude();
        assert!(low_gain > 2.0, "needs voltage gain, got {low_gain}");
        // Inverting stage: phase near 180 degrees at low frequency.
        assert!(
            (h[0].phase().abs() - core::f64::consts::PI).abs() < 0.2,
            "phase {}",
            h[0].phase()
        );
        let high_gain = h[h.len() - 1].magnitude();
        assert!(
            high_gain < 0.5 * low_gain,
            "must roll off: {high_gain} vs {low_gain}"
        );
        assert!(ac.bandwidth(&ckt, "d").unwrap().is_some());
    }

    #[test]
    fn stimulus_must_be_a_source() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let r = ckt.resistor(a, Circuit::GROUND, 1e3);
        ckt.vsource(a, Circuit::GROUND, Source::Dc(1.0));
        let err = run_ac(&ckt, r, &[1e3], &DcConfig::default()).unwrap_err();
        assert!(matches!(err, SpiceError::InvalidElement { .. }));
    }

    #[test]
    fn repeated_sweeps_on_one_workspace_match_fresh_runs() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let vs = ckt.vsource(a, Circuit::GROUND, Source::Dc(0.0));
        ckt.resistor(a, b, 1e3);
        ckt.capacitor(b, Circuit::GROUND, 1e-9);
        let freqs = log_freqs(1e3, 1e8, 10);

        let reference = run_ac(&ckt, vs, &freqs, &DcConfig::default()).unwrap();
        let compiled = CompiledCircuit::compile(&ckt);
        let mut ws = NewtonWorkspace::new(&compiled);
        for _ in 0..2 {
            let ac = compiled
                .run_ac(&mut ws, vs, &freqs, &DcConfig::default())
                .unwrap();
            let h0 = reference.transfer(&ckt, "b").unwrap();
            let h1 = ac.transfer(&ckt, "b").unwrap();
            assert_eq!(h0, h1);
        }
    }
}
