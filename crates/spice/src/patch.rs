//! Per-job parameter patching: applying a scenario's device and
//! supply variation to an already-compiled circuit.
//!
//! The scenario layer (`samurai-core::scenario`) expands a job index
//! into per-device Vt/beta/geometry deltas plus a global supply and
//! temperature corner. Re-building and re-compiling a netlist per job
//! would repeat the symbolic analysis (fill pattern, sparse ordering)
//! for a circuit whose *structure* never changes — so a [`ParamPatch`]
//! instead overlays the variation onto the existing lowered stamps:
//!
//! * [`ParamPatch::apply_to_circuit`] patches a [`Circuit`]
//!   description before compilation (the path the column builder's
//!   `build_with_shifts` wrapper uses);
//! * [`CompiledCircuit::apply_patch`] patches the compiled stamps in
//!   place, recording every overwritten value in a reusable
//!   [`PatchUndo`] so [`CompiledCircuit::revert_patch`] restores the
//!   nominal circuit exactly — the persistent workspace, fill pattern
//!   and solver symbolic analysis are untouched either way.
//!
//! # Patch semantics (the bit-identity contract)
//!
//! * `vth_delta` is **added** to the device threshold — the same
//!   single addition as `MosfetParams::with_vth_shift`, so a patched
//!   nominal circuit is bit-identical to a circuit built with the
//!   shift inline.
//! * `beta_scale` multiplies `mu_cox`; `geom_scale` multiplies the
//!   width and the width-proportional capacitances (length is left
//!   alone so the scale acts on drive strength, not on the channel).
//! * `vdd_scale` multiplies every **DC** voltage-source value (PWL
//!   drive waveforms are the caller's responsibility — the SRAM layer
//!   scales its supply before building drive waveforms, so both move
//!   together). Current sources are never scaled: RTN injections are
//!   absolute currents.
//! * `phi_t_scale` multiplies every MOSFET's thermal voltage — the
//!   first-order electrical effect of a temperature corner
//!   (`φ_t ∝ T`).
//! * A unit scale (`1.0`) or zero delta is an exact no-op: the
//!   multiplication/addition is skipped, so a nominal patch leaves
//!   every bit of the circuit unchanged.

use crate::compiled::{CompiledCircuit, DeviceStamp};
use crate::netlist::{Circuit, Element, ElementId, Source};
use crate::{MosfetParams, SpiceError};

/// One device's parameter adjustment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosfetAdjust {
    /// Added to the threshold voltage (mismatch + aging), volts.
    pub vth_delta: f64,
    /// Multiplier on the transconductance factor `μ·C_ox`.
    pub beta_scale: f64,
    /// Multiplier on the channel width and the width-proportional
    /// capacitances.
    pub geom_scale: f64,
}

impl Default for MosfetAdjust {
    fn default() -> Self {
        Self::nominal()
    }
}

impl MosfetAdjust {
    /// The identity adjustment.
    #[must_use]
    pub fn nominal() -> Self {
        Self {
            vth_delta: 0.0,
            beta_scale: 1.0,
            geom_scale: 1.0,
        }
    }

    /// A pure threshold shift (the legacy `with_vth_shift` axis).
    #[must_use]
    pub fn vth_shift(dv: f64) -> Self {
        Self {
            vth_delta: dv,
            ..Self::nominal()
        }
    }

    /// Applies the adjustment to one parameter set, preserving the
    /// bit-identity contract (see module docs).
    fn apply(&self, params: &mut MosfetParams) {
        params.vth += self.vth_delta;
        // lint: allow(HYG004): exact-unit sentinel keeps nominal devices bit-identical
        if self.beta_scale != 1.0 {
            params.mu_cox *= self.beta_scale;
        }
        // lint: allow(HYG004): exact-unit sentinel keeps nominal devices bit-identical
        if self.geom_scale != 1.0 {
            params.width *= self.geom_scale;
            params.cgs *= self.geom_scale;
            params.cgd *= self.geom_scale;
            params.cdb *= self.geom_scale;
        }
    }
}

/// A per-job parameter overlay: device adjustments plus the global
/// supply/temperature corner.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamPatch {
    /// Per-device adjustments, addressed by the [`ElementId`]s of the
    /// source circuit.
    pub devices: Vec<(ElementId, MosfetAdjust)>,
    /// Multiplier on every DC voltage-source value.
    pub vdd_scale: f64,
    /// Multiplier on every MOSFET thermal voltage.
    pub phi_t_scale: f64,
}

impl Default for ParamPatch {
    fn default() -> Self {
        Self::nominal()
    }
}

impl ParamPatch {
    /// The empty patch: no devices, unit scales.
    #[must_use]
    pub fn nominal() -> Self {
        Self {
            devices: Vec::new(),
            vdd_scale: 1.0,
            phi_t_scale: 1.0,
        }
    }

    /// Whether applying this patch is a guaranteed no-op.
    #[must_use]
    pub fn is_nominal(&self) -> bool {
        self.devices.iter().all(|(_, a)| *a == MosfetAdjust::nominal())
            && self.vdd_scale == 1.0 // lint: allow(HYG004): exact-unit sentinel defines the no-op patch
            && self.phi_t_scale == 1.0 // lint: allow(HYG004): exact-unit sentinel defines the no-op patch
    }

    /// Applies the patch to a circuit description (before compilation).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidElement`] — without mutating
    /// anything — if any patched id is not a MOSFET.
    pub fn apply_to_circuit(&self, ckt: &mut Circuit) -> Result<(), SpiceError> {
        for (id, _) in &self.devices {
            if !matches!(ckt.elements.get(id.0), Some(Element::Mosfet { .. })) {
                return Err(SpiceError::InvalidElement {
                    reason: "ParamPatch device ids must name MOSFETs",
                });
            }
        }
        for (id, adjust) in &self.devices {
            if let Some(Element::Mosfet { params, .. }) = ckt.elements.get_mut(id.0) {
                adjust.apply(params);
            }
        }
        // lint: allow(HYG004): exact-unit sentinel keeps nominal supplies bit-identical
        if self.vdd_scale != 1.0 {
            for element in &mut ckt.elements {
                if let Element::Vsource {
                    source: Source::Dc(v),
                    ..
                } = element
                {
                    *v *= self.vdd_scale;
                }
            }
        }
        // lint: allow(HYG004): exact-unit sentinel keeps nominal devices bit-identical
        if self.phi_t_scale != 1.0 {
            for element in &mut ckt.elements {
                if let Element::Mosfet { params, .. } = element {
                    params.phi_t *= self.phi_t_scale;
                }
            }
        }
        Ok(())
    }
}

/// The reusable undo log of one [`CompiledCircuit::apply_patch`]:
/// every overwritten stamp value, in application order. Reverting
/// replays it backwards, so apply → revert restores the nominal
/// compiled circuit bit-for-bit. Reusing one `PatchUndo` across jobs
/// keeps the per-job patch path allocation-free once the vectors have
/// grown to the patch size.
#[derive(Debug, Clone, Default)]
pub struct PatchUndo {
    /// `(stamp index, pre-patch parameters)` of every touched MOSFET.
    mosfets: Vec<(usize, MosfetParams)>,
    /// `(stamp index, pre-patch DC value)` of every scaled supply.
    sources: Vec<(usize, f64)>,
}

impl PatchUndo {
    /// An empty undo log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the log records no overwritten state.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.mosfets.is_empty() && self.sources.is_empty()
    }
}

impl CompiledCircuit {
    /// The (possibly patched) MOSFET parameters of stamp `id`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidElement`] if `id` is not a MOSFET.
    pub fn mosfet_params(&self, id: ElementId) -> Result<&MosfetParams, SpiceError> {
        self.mosfet(id).map(|m| &m.params)
    }

    /// Applies a parameter patch to the compiled stamps in place,
    /// recording every overwritten value in `undo` (which is cleared
    /// first). The fill pattern, sparse ordering and workspace are
    /// untouched: patching never recompiles.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidElement`] — without mutating
    /// anything — if any patched id is not a MOSFET.
    pub fn apply_patch(
        &mut self,
        patch: &ParamPatch,
        undo: &mut PatchUndo,
    ) -> Result<(), SpiceError> {
        undo.mosfets.clear();
        undo.sources.clear();
        for (id, _) in &patch.devices {
            if !matches!(self.stamps.get(id.0), Some(DeviceStamp::Mosfet(_))) {
                return Err(SpiceError::InvalidElement {
                    reason: "ParamPatch device ids must name MOSFETs",
                });
            }
        }
        for (id, adjust) in &patch.devices {
            if let Some(DeviceStamp::Mosfet(m)) = self.stamps.get_mut(id.0) {
                undo.mosfets.push((id.0, m.params));
                adjust.apply(&mut m.params);
            }
        }
        // lint: allow(HYG004): exact-unit sentinel keeps nominal supplies bit-identical
        if patch.vdd_scale != 1.0 {
            for (k, stamp) in self.stamps.iter_mut().enumerate() {
                if let DeviceStamp::Vsource(vs) = stamp {
                    if let Source::Dc(v) = &mut vs.source {
                        undo.sources.push((k, *v));
                        *v *= patch.vdd_scale;
                    }
                }
            }
        }
        // lint: allow(HYG004): exact-unit sentinel keeps nominal devices bit-identical
        if patch.phi_t_scale != 1.0 {
            for (k, stamp) in self.stamps.iter_mut().enumerate() {
                if let DeviceStamp::Mosfet(m) = stamp {
                    undo.mosfets.push((k, m.params));
                    m.params.phi_t *= patch.phi_t_scale;
                }
            }
        }
        Ok(())
    }

    /// Reverts a patch by replaying its undo log backwards, restoring
    /// the pre-patch stamps bit-for-bit. The log is drained: a second
    /// revert is a no-op.
    pub fn revert_patch(&mut self, undo: &mut PatchUndo) {
        while let Some((k, v)) = undo.sources.pop() {
            if let Some(DeviceStamp::Vsource(vs)) = self.stamps.get_mut(k) {
                vs.source = Source::Dc(v);
            }
        }
        while let Some((k, params)) = undo.mosfets.pop() {
            if let Some(DeviceStamp::Mosfet(m)) = self.stamps.get_mut(k) {
                m.params = params;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An inverter-ish test circuit: one supply, one NMOS, one PMOS.
    fn build() -> (Circuit, ElementId, ElementId, ElementId) {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let out = ckt.node("out");
        let v = ckt.vsource(vdd, Circuit::GROUND, Source::Dc(1.1));
        let mn = ckt.mosfet(out, inp, Circuit::GROUND, MosfetParams::nmos_90nm(2.0));
        let mp = ckt.mosfet(out, inp, vdd, MosfetParams::pmos_90nm(1.0));
        ckt.capacitor(out, Circuit::GROUND, 1e-15);
        (ckt, v, mn, mp)
    }

    #[test]
    fn nominal_patch_is_a_bitwise_noop() {
        let (ckt, _, mn, _) = build();
        let mut compiled = CompiledCircuit::compile(&ckt);
        let reference = CompiledCircuit::compile(&ckt);
        let patch = ParamPatch {
            devices: vec![(mn, MosfetAdjust::nominal())],
            ..ParamPatch::nominal()
        };
        assert!(patch.is_nominal());
        let mut undo = PatchUndo::new();
        compiled.apply_patch(&patch, &mut undo).unwrap();
        assert_eq!(
            compiled.mosfet_params(mn).unwrap(),
            reference.mosfet_params(mn).unwrap()
        );
    }

    #[test]
    fn apply_then_revert_restores_exactly() {
        let (ckt, _, mn, mp) = build();
        let mut compiled = CompiledCircuit::compile(&ckt);
        let before_n = *compiled.mosfet_params(mn).unwrap();
        let before_p = *compiled.mosfet_params(mp).unwrap();
        let patch = ParamPatch {
            devices: vec![
                (
                    mn,
                    MosfetAdjust {
                        vth_delta: 0.03,
                        beta_scale: 0.9,
                        geom_scale: 1.05,
                    },
                ),
                (mp, MosfetAdjust::vth_shift(-0.02)),
            ],
            vdd_scale: 0.9,
            phi_t_scale: 350.0 / 300.0,
        };
        let mut undo = PatchUndo::new();
        compiled.apply_patch(&patch, &mut undo).unwrap();
        assert!(!undo.is_empty());
        let patched = *compiled.mosfet_params(mn).unwrap();
        assert_eq!(patched.vth, before_n.vth + 0.03);
        assert_eq!(patched.mu_cox, before_n.mu_cox * 0.9);
        assert_eq!(patched.width, before_n.width * 1.05);
        assert_eq!(patched.phi_t, before_n.phi_t * (350.0 / 300.0));
        compiled.revert_patch(&mut undo);
        assert!(undo.is_empty());
        assert_eq!(*compiled.mosfet_params(mn).unwrap(), before_n);
        assert_eq!(*compiled.mosfet_params(mp).unwrap(), before_p);
    }

    #[test]
    fn circuit_patch_matches_inline_shift() {
        let (mut ckt, _, mn, _) = build();
        let patch = ParamPatch {
            devices: vec![(mn, MosfetAdjust::vth_shift(0.017))],
            ..ParamPatch::nominal()
        };
        patch.apply_to_circuit(&mut ckt).unwrap();
        let shifted = MosfetParams::nmos_90nm(2.0).with_vth_shift(0.017);
        assert_eq!(ckt.mosfet_params(mn).unwrap().vth, shifted.vth);
    }

    #[test]
    fn non_mosfet_id_is_rejected_without_mutation() {
        let (ckt, v, mn, _) = build();
        let mut compiled = CompiledCircuit::compile(&ckt);
        let before = *compiled.mosfet_params(mn).unwrap();
        let patch = ParamPatch {
            devices: vec![
                (mn, MosfetAdjust::vth_shift(0.5)),
                (v, MosfetAdjust::vth_shift(0.5)),
            ],
            ..ParamPatch::nominal()
        };
        let mut undo = PatchUndo::new();
        assert!(compiled.apply_patch(&patch, &mut undo).is_err());
        assert_eq!(*compiled.mosfet_params(mn).unwrap(), before);

        let (mut ckt2, v2, _, _) = build();
        let bad = ParamPatch {
            devices: vec![(v2, MosfetAdjust::vth_shift(0.5))],
            ..ParamPatch::nominal()
        };
        assert!(bad.apply_to_circuit(&mut ckt2).is_err());
    }

    #[test]
    fn vdd_scale_touches_dc_sources_only() {
        let (mut ckt, v, _, _) = build();
        let rtn = {
            let a = ckt.node("out");
            ckt.isource(a, Circuit::GROUND, Source::Dc(1e-6))
        };
        let patch = ParamPatch {
            vdd_scale: 0.8,
            ..ParamPatch::nominal()
        };
        let mut compiled = CompiledCircuit::compile(&ckt);
        let mut undo = PatchUndo::new();
        compiled.apply_patch(&patch, &mut undo).unwrap();
        // The supply scaled; the current source did not.
        let mut ckt_scaled = ckt.clone();
        patch.apply_to_circuit(&mut ckt_scaled).unwrap();
        let scaled = CompiledCircuit::compile(&ckt_scaled);
        let t = 0.0;
        let read = |c: &CompiledCircuit, id: ElementId| match &c.stamps[id.0] {
            DeviceStamp::Vsource(s) => s.source.eval(t),
            DeviceStamp::Isource(s) => s.source.eval(t),
            _ => unreachable!(),
        };
        assert_eq!(read(&compiled, v), 1.1 * 0.8);
        assert_eq!(read(&scaled, v), 1.1 * 0.8);
        assert_eq!(read(&compiled, rtn), 1e-6);
    }
}
