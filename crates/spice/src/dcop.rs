//! DC operating-point analysis with gmin and source stepping.

use crate::compiled::{CompiledCircuit, IntegMode, NewtonConfig, NewtonWorkspace};
use crate::{Circuit, SpiceError};

/// Controls for [`dc_operating_point`].
#[derive(Debug, Clone, PartialEq)]
pub struct DcConfig {
    /// Initial node-voltage guess (one entry per non-ground node, in
    /// node-creation order); zeros when `None`.
    pub initial_guess: Option<Vec<f64>>,
    /// The gmin-stepping homotopy sequence (extra conductances tried in
    /// order, each warm-starting the next; the final solve uses 0).
    pub gmin_steps: Vec<f64>,
    /// Source-stepping fallback levels (fractions of the full source
    /// values), used only if gmin stepping fails.
    pub source_steps: Vec<f64>,
}

impl Default for DcConfig {
    fn default() -> Self {
        Self {
            initial_guess: None,
            gmin_steps: vec![1e-2, 1e-4, 1e-6, 1e-8, 1e-10],
            source_steps: vec![0.1, 0.25, 0.5, 0.75, 0.9, 1.0],
        }
    }
}

impl CompiledCircuit {
    /// Solves the DC operating point at time `t` (sources evaluated at
    /// `t`; capacitors open) into the workspace: on success
    /// `ws.solution()` holds the full unknown vector (node voltages
    /// then voltage-source branch currents).
    ///
    /// The workspace is fully re-seeded (capacitor histories zeroed,
    /// solution re-initialised from the guess), so a reused workspace
    /// gives bit-identical results to a fresh one.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::NonConvergence`] if both gmin stepping and
    /// source stepping fail, or [`SpiceError::SingularMatrix`] for a
    /// structurally singular circuit.
    pub fn dc_operating_point(
        &self,
        ws: &mut NewtonWorkspace,
        t: f64,
        config: &DcConfig,
    ) -> Result<(), SpiceError> {
        let newton = NewtonConfig::default();
        ws.reset_states();
        let seed_guess = |ws: &mut NewtonWorkspace| {
            ws.x.iter_mut().for_each(|v| *v = 0.0);
            if let Some(guess) = &config.initial_guess {
                for (i, v) in guess.iter().enumerate().take(self.node_count()) {
                    ws.x[i] = *v;
                }
            }
        };

        // Plain Newton first — cheap when it works.
        seed_guess(ws);
        if self.solve(ws, t, IntegMode::Dc, 1.0, 0.0, &newton).is_ok() {
            return Ok(());
        }

        // gmin stepping, restarted from the pristine guess.
        seed_guess(ws);
        let mut gmin_ok = true;
        for &g in &config.gmin_steps {
            if self.solve(ws, t, IntegMode::Dc, 1.0, g, &newton).is_err() {
                gmin_ok = false;
                break;
            }
        }
        if gmin_ok && self.solve(ws, t, IntegMode::Dc, 1.0, 0.0, &newton).is_ok() {
            return Ok(());
        }

        // Source stepping, from zero.
        ws.x.iter_mut().for_each(|v| *v = 0.0);
        for &scale in &config.source_steps {
            self.solve(ws, t, IntegMode::Dc, scale, 0.0, &newton)?;
        }
        Ok(())
    }
}

/// Solves the DC operating point at time `t` (sources evaluated at
/// `t`; capacitors open).
///
/// Returns the full unknown vector (node voltages then voltage-source
/// branch currents). Compiles the circuit on the fly; callers with a
/// [`CompiledCircuit`] at hand should use
/// [`CompiledCircuit::dc_operating_point`] to reuse their workspace.
///
/// # Errors
///
/// Returns [`SpiceError::NonConvergence`] if both gmin stepping and
/// source stepping fail, or [`SpiceError::SingularMatrix`] for a
/// structurally singular circuit.
pub fn dc_operating_point(
    ckt: &Circuit,
    t: f64,
    config: &DcConfig,
) -> Result<Vec<f64>, SpiceError> {
    let compiled = CompiledCircuit::compile(ckt);
    let mut ws = NewtonWorkspace::new(&compiled);
    compiled.dc_operating_point(&mut ws, t, config)?;
    Ok(ws.solution().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MosfetParams, Source};

    fn inverter(ckt: &mut Circuit, input: &str, output: &str, vdd: crate::NodeId) {
        let vin = ckt.node(input);
        let vout = ckt.node(output);
        ckt.mosfet(vout, vin, Circuit::GROUND, MosfetParams::nmos_90nm(1.0));
        ckt.mosfet(vout, vin, vdd, MosfetParams::pmos_90nm(2.0));
    }

    #[test]
    fn inverter_dc_transfer_endpoints() {
        for (v_in, expect_high) in [(0.0, true), (1.1, false)] {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            ckt.vsource(vdd, Circuit::GROUND, Source::Dc(1.1));
            let a = ckt.node("a");
            ckt.vsource(a, Circuit::GROUND, Source::Dc(v_in));
            inverter(&mut ckt, "a", "y", vdd);
            let x = dc_operating_point(&ckt, 0.0, &DcConfig::default()).unwrap();
            let y = ckt.find_node("y").unwrap().unknown_index().unwrap();
            if expect_high {
                assert!(x[y] > 1.05, "output should be high, got {}", x[y]);
            } else {
                assert!(x[y] < 0.05, "output should be low, got {}", x[y]);
            }
        }
    }

    #[test]
    fn inverter_switching_threshold_is_interior() {
        // Sweep the input and find where the output crosses Vdd/2: it
        // must be somewhere strictly inside the rails. One compiled
        // circuit and workspace serve the whole sweep: only the input
        // source is rewritten between points.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.vsource(vdd, Circuit::GROUND, Source::Dc(1.1));
        let a = ckt.node("a");
        let vin_src = ckt.vsource(a, Circuit::GROUND, Source::Dc(0.0));
        inverter(&mut ckt, "a", "y", vdd);
        let y = ckt.find_node("y").unwrap().unknown_index().unwrap();

        let mut compiled = CompiledCircuit::compile(&ckt);
        let mut ws = NewtonWorkspace::new(&compiled);
        let mut crossing = None;
        let mut prev_high = true;
        for k in 0..=22 {
            let v_in = k as f64 * 0.05;
            compiled.set_source(vin_src, Source::Dc(v_in)).unwrap();
            compiled
                .dc_operating_point(&mut ws, 0.0, &DcConfig::default())
                .unwrap();
            let high = ws.solution()[y] > 0.55;
            if prev_high && !high {
                crossing = Some(v_in);
            }
            prev_high = high;
        }
        let vm = crossing.expect("the inverter must switch somewhere");
        assert!(vm > 0.2 && vm < 0.9, "switching threshold {vm}");
    }

    #[test]
    fn cross_coupled_inverters_are_bistable() {
        // The core of the SRAM cell: two states reachable from
        // different initial guesses.
        let solve_from = |q0: f64, qb0: f64| {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            ckt.vsource(vdd, Circuit::GROUND, Source::Dc(1.1));
            inverter(&mut ckt, "q", "qb", vdd);
            inverter(&mut ckt, "qb", "q", vdd);
            let mut guess = vec![0.0; ckt.node_count()];
            guess[ckt.find_node("q").unwrap().unknown_index().unwrap()] = q0;
            guess[ckt.find_node("qb").unwrap().unknown_index().unwrap()] = qb0;
            let config = DcConfig {
                initial_guess: Some(guess),
                ..DcConfig::default()
            };
            let x = dc_operating_point(&ckt, 0.0, &config).unwrap();
            (
                x[ckt.find_node("q").unwrap().unknown_index().unwrap()],
                x[ckt.find_node("qb").unwrap().unknown_index().unwrap()],
            )
        };
        let (q_hi, qb_lo) = solve_from(1.1, 0.0);
        assert!(q_hi > 1.0 && qb_lo < 0.1, "state 1: q={q_hi}, qb={qb_lo}");
        let (q_lo, qb_hi) = solve_from(0.0, 1.1);
        assert!(q_lo < 0.1 && qb_hi > 1.0, "state 0: q={q_lo}, qb={qb_hi}");
    }

    #[test]
    fn time_dependent_sources_are_evaluated_at_t() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let ramp = samurai_waveform::Pwl::new(vec![(0.0, 0.0), (1.0, 2.0)]).unwrap();
        ckt.vsource(a, Circuit::GROUND, Source::Pwl(ramp));
        ckt.resistor(a, Circuit::GROUND, 1e3);
        let x = dc_operating_point(&ckt, 0.5, &DcConfig::default()).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
    }
}
