//! Residual/Jacobian assembly and the damped Newton solver.
//!
//! The nonlinear system is written in residual form: for every
//! non-ground node, `r = Σ currents leaving the node = 0`; for every
//! voltage source, `r = v(+) − v(−) − V(t) = 0`. Newton solves
//! `J·δ = −r` with a per-iteration voltage-step clamp that tames the
//! MOSFET exponentials.

use crate::linalg::DenseMatrix;
use crate::netlist::{Circuit, Element, NodeId};
use crate::SpiceError;

/// Per-capacitor integration state (voltage across and current through
/// the capacitor at the last accepted time point).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct CapState {
    pub v_prev: f64,
    pub i_prev: f64,
}

/// How capacitors enter the system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum IntegMode {
    /// DC: capacitors are open circuits.
    Dc,
    /// Backward Euler with step `h`.
    BackwardEuler { h: f64 },
    /// Trapezoidal with step `h`.
    Trapezoidal { h: f64 },
}

impl IntegMode {
    /// Companion model `(g_eq, i_eq)` such that the capacitor current
    /// is `i = g_eq·v + i_eq` for the present voltage `v` across it.
    fn companion(self, c: f64, state: CapState) -> (f64, f64) {
        match self {
            IntegMode::Dc => (0.0, 0.0),
            IntegMode::BackwardEuler { h } => {
                let g = c / h;
                (g, -g * state.v_prev)
            }
            IntegMode::Trapezoidal { h } => {
                let g = 2.0 * c / h;
                (g, -g * state.v_prev - state.i_prev)
            }
        }
    }
}

/// Numerical controls for the Newton iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct NewtonConfig {
    pub max_iterations: usize,
    /// Convergence threshold on the largest voltage update.
    pub v_tol: f64,
    /// Convergence threshold on the largest KCL residual (amperes).
    pub i_tol: f64,
    /// Per-iteration clamp on voltage updates (damping).
    pub v_step_clamp: f64,
}

impl Default for NewtonConfig {
    fn default() -> Self {
        Self {
            max_iterations: 200,
            v_tol: 1e-9,
            i_tol: 1e-9,
            v_step_clamp: 0.5,
        }
    }
}

#[inline]
fn v_of(x: &[f64], n: NodeId) -> f64 {
    match n.unknown_index() {
        Some(i) => x[i],
        None => 0.0,
    }
}

/// Adds `value` to the residual entry of node `n` (no-op for ground).
#[inline]
fn stamp_res(res: &mut [f64], n: NodeId, value: f64) {
    if let Some(i) = n.unknown_index() {
        res[i] += value;
    }
}

/// Adds `value` to the Jacobian entry (∂r[n] / ∂x[col]).
#[inline]
fn stamp_jac(jac: &mut DenseMatrix, n: NodeId, col: Option<usize>, value: f64) {
    if let (Some(r), Some(c)) = (n.unknown_index(), col) {
        jac.add(r, c, value);
    }
}

/// A two-terminal conductance + current stamp: current `i = g·(va−vb) +
/// i0` flows from `a` to `b`.
fn stamp_branch(
    jac: &mut DenseMatrix,
    res: &mut [f64],
    x: &[f64],
    a: NodeId,
    b: NodeId,
    g: f64,
    i0: f64,
) {
    let v = v_of(x, a) - v_of(x, b);
    let i = g * v + i0;
    stamp_res(res, a, i);
    stamp_res(res, b, -i);
    stamp_jac(jac, a, a.unknown_index(), g);
    stamp_jac(jac, a, b.unknown_index(), -g);
    stamp_jac(jac, b, a.unknown_index(), -g);
    stamp_jac(jac, b, b.unknown_index(), g);
}

/// Assembles the residual and Jacobian at solution `x`, time `t`.
///
/// `source_scale` multiplies every independent source (used by
/// source-stepping homotopy); `gmin_extra` adds a homotopy conductance
/// from every node to ground on top of the circuit's `gmin`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble(
    ckt: &Circuit,
    x: &[f64],
    t: f64,
    mode: IntegMode,
    cap_states: &[CapState],
    source_scale: f64,
    gmin_extra: f64,
    jac: &mut DenseMatrix,
    res: &mut [f64],
) {
    let n_nodes = ckt.node_count();
    jac.clear();
    res.iter_mut().for_each(|r| *r = 0.0);

    // gmin to ground from every node.
    let g_leak = ckt.gmin + gmin_extra;
    if g_leak > 0.0 {
        for i in 0..n_nodes {
            res[i] += g_leak * x[i];
            jac.add(i, i, g_leak);
        }
    }

    for element in &ckt.elements {
        match element {
            Element::Resistor { a, b, conductance } => {
                stamp_branch(jac, res, x, *a, *b, *conductance, 0.0);
            }
            Element::Capacitor {
                a,
                b,
                capacitance,
                state,
            } => {
                let (g, i0) = mode.companion(*capacitance, cap_states[*state]);
                if g != 0.0 || i0 != 0.0 {
                    stamp_branch(jac, res, x, *a, *b, g, i0);
                }
            }
            Element::Vsource {
                plus,
                minus,
                source,
                branch,
            } => {
                let row = n_nodes + branch;
                let i_branch = x[row];
                // Branch current leaves the + node through the source.
                stamp_res(res, *plus, i_branch);
                stamp_res(res, *minus, -i_branch);
                stamp_jac(jac, *plus, Some(row), 1.0);
                stamp_jac(jac, *minus, Some(row), -1.0);
                // Branch equation.
                res[row] = v_of(x, *plus) - v_of(x, *minus) - source_scale * source.eval(t);
                if let Some(i) = plus.unknown_index() {
                    jac.add(row, i, 1.0);
                }
                if let Some(i) = minus.unknown_index() {
                    jac.add(row, i, -1.0);
                }
            }
            Element::Isource { from, to, source } => {
                let i = source_scale * source.eval(t);
                stamp_res(res, *from, i);
                stamp_res(res, *to, -i);
            }
            Element::Mosfet {
                d,
                g,
                s,
                params,
                cap_states: caps,
            } => {
                let (id, dd, dg, ds) = params.eval(v_of(x, *d), v_of(x, *g), v_of(x, *s));
                stamp_res(res, *d, id);
                stamp_res(res, *s, -id);
                stamp_jac(jac, *d, d.unknown_index(), dd);
                stamp_jac(jac, *d, g.unknown_index(), dg);
                stamp_jac(jac, *d, s.unknown_index(), ds);
                stamp_jac(jac, *s, d.unknown_index(), -dd);
                stamp_jac(jac, *s, g.unknown_index(), -dg);
                stamp_jac(jac, *s, s.unknown_index(), -ds);
                // Charge model: Cgs, Cgd, Cdb.
                let (g_gs, i_gs) = mode.companion(params.cgs, cap_states[caps[0]]);
                if g_gs != 0.0 || i_gs != 0.0 {
                    stamp_branch(jac, res, x, *g, *s, g_gs, i_gs);
                }
                let (g_gd, i_gd) = mode.companion(params.cgd, cap_states[caps[1]]);
                if g_gd != 0.0 || i_gd != 0.0 {
                    stamp_branch(jac, res, x, *g, *d, g_gd, i_gd);
                }
                let (g_db, i_db) = mode.companion(params.cdb, cap_states[caps[2]]);
                if g_db != 0.0 || i_db != 0.0 {
                    stamp_branch(jac, res, x, *d, Circuit::GROUND, g_db, i_db);
                }
            }
        }
    }
}

/// After an accepted step, refreshes every capacitor's `(v_prev,
/// i_prev)` from the converged solution.
pub(crate) fn update_cap_states(
    ckt: &Circuit,
    x: &[f64],
    mode: IntegMode,
    cap_states: &mut [CapState],
) {
    let mut refresh = |a: NodeId, b: NodeId, c: f64, idx: usize| {
        let v = v_of(x, a) - v_of(x, b);
        let (g, i0) = mode.companion(c, cap_states[idx]);
        let i = g * v + i0;
        cap_states[idx] = CapState {
            v_prev: v,
            i_prev: i,
        };
    };
    for element in &ckt.elements {
        match element {
            Element::Capacitor {
                a,
                b,
                capacitance,
                state,
            } => refresh(*a, *b, *capacitance, *state),
            Element::Mosfet {
                d,
                g,
                s,
                params,
                cap_states: caps,
            } => {
                refresh(*g, *s, params.cgs, caps[0]);
                refresh(*g, *d, params.cgd, caps[1]);
                refresh(*d, Circuit::GROUND, params.cdb, caps[2]);
            }
            _ => {}
        }
    }
}

/// Damped Newton iteration. `x` enters as the initial guess and leaves
/// as the solution.
///
/// # Errors
///
/// [`SpiceError::SingularMatrix`] if the Jacobian is singular,
/// [`SpiceError::NonConvergence`] if the iteration stalls.
#[allow(clippy::too_many_arguments)]
pub(crate) fn newton_solve(
    ckt: &Circuit,
    x: &mut [f64],
    t: f64,
    mode: IntegMode,
    cap_states: &[CapState],
    source_scale: f64,
    gmin_extra: f64,
    config: &NewtonConfig,
) -> Result<(), SpiceError> {
    let n = ckt.unknown_count();
    let n_nodes = ckt.node_count();
    debug_assert_eq!(x.len(), n);
    let mut jac = DenseMatrix::zeros(n, n);
    let mut res = vec![0.0f64; n];

    for _iter in 0..config.max_iterations {
        assemble(
            ckt,
            x,
            t,
            mode,
            cap_states,
            source_scale,
            gmin_extra,
            &mut jac,
            &mut res,
        );

        // Solve J delta = -res.
        let mut delta: Vec<f64> = res.iter().map(|r| -r).collect();
        jac.solve_in_place(&mut delta)?;

        // Damping: clamp node-voltage updates.
        let max_dv = delta[..n_nodes].iter().fold(0.0f64, |m, d| m.max(d.abs()));
        let scale = if max_dv > config.v_step_clamp {
            config.v_step_clamp / max_dv
        } else {
            1.0
        };
        for (xi, di) in x.iter_mut().zip(&delta) {
            *xi += scale * di;
        }

        if scale == 1.0 && max_dv < config.v_tol {
            // Check the residual at the updated point.
            assemble(
                ckt,
                x,
                t,
                mode,
                cap_states,
                source_scale,
                gmin_extra,
                &mut jac,
                &mut res,
            );
            let max_res = res[..n_nodes].iter().fold(0.0f64, |m, r| m.max(r.abs()));
            if max_res < config.i_tol {
                return Ok(());
            }
        }
    }
    Err(SpiceError::NonConvergence {
        time: t,
        iterations: config.max_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Source;

    #[test]
    fn resistor_divider_solves_exactly() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Source::Dc(3.0));
        ckt.resistor(a, b, 1e3);
        ckt.resistor(b, Circuit::GROUND, 2e3);
        let mut x = vec![0.0; ckt.unknown_count()];
        newton_solve(
            &ckt,
            &mut x,
            0.0,
            IntegMode::Dc,
            &[],
            1.0,
            0.0,
            &NewtonConfig::default(),
        )
        .unwrap();
        assert!((x[0] - 3.0).abs() < 1e-6, "source node {x:?}");
        assert!((x[1] - 2.0).abs() < 1e-6, "divider node {x:?}");
        // Branch current: 3V across 3k = 1 mA flowing out of +.
        assert!((x[2] + 1e-3).abs() < 1e-8, "branch current {x:?}");
    }

    #[test]
    fn current_source_into_resistor() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        // 1 mA driven out of ground into node a.
        ckt.isource(Circuit::GROUND, a, Source::Dc(1e-3));
        ckt.resistor(a, Circuit::GROUND, 2e3);
        let mut x = vec![0.0; ckt.unknown_count()];
        newton_solve(
            &ckt,
            &mut x,
            0.0,
            IntegMode::Dc,
            &[],
            1.0,
            0.0,
            &NewtonConfig::default(),
        )
        .unwrap();
        assert!((x[0] - 2.0).abs() < 1e-6, "node voltage {x:?}");
    }

    #[test]
    fn floating_node_is_held_by_gmin() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("float");
        ckt.vsource(a, Circuit::GROUND, Source::Dc(1.0));
        ckt.resistor(a, b, 1e3);
        // b only connects through the resistor: gmin keeps the matrix
        // regular and pulls b to a (no current path).
        let mut x = vec![0.0; ckt.unknown_count()];
        newton_solve(
            &ckt,
            &mut x,
            0.0,
            IntegMode::Dc,
            &[],
            1.0,
            0.0,
            &NewtonConfig::default(),
        )
        .unwrap();
        assert!((x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn nonlinear_diode_connected_mosfet_converges() {
        let mut ckt = Circuit::new();
        let d = ckt.node("d");
        // Diode-connected NMOS pulled up through a resistor.
        let vdd = ckt.node("vdd");
        ckt.vsource(vdd, Circuit::GROUND, Source::Dc(1.1));
        ckt.resistor(vdd, d, 10e3);
        ckt.mosfet(d, d, Circuit::GROUND, crate::MosfetParams::nmos_90nm(2.0));
        let mut x = vec![0.0; ckt.unknown_count()];
        newton_solve(
            &ckt,
            &mut x,
            0.0,
            IntegMode::Dc,
            &[CapState::default(); 3],
            1.0,
            0.0,
            &NewtonConfig::default(),
        )
        .unwrap();
        let vd = x[0];
        // The gate-drain node settles somewhere above Vth, below Vdd.
        assert!(vd > 0.3 && vd < 1.0, "diode node {vd}");
    }
}
