//! Dense linear algebra: an LU solver with partial pivoting.
//!
//! SRAM cells and the other circuits in this toolkit have tens of
//! unknowns at most, so a dense solver is both simpler and faster than
//! a sparse one at this scale.

use crate::SpiceError;

/// A dense row-major square-capable matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads entry `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Writes entry `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to entry `(r, c)` — the natural MNA stamping operation.
    // lint: hot-fn
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] += v;
    }

    /// Resets every entry to zero (reusing the allocation).
    pub fn clear(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Overwrites this matrix with the contents of `other` (no
    /// allocation) — used to refresh the LU scratch from the assembled
    /// Jacobian, since [`solve_in_place`](Self::solve_in_place)
    /// destroys the matrix it factors.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn copy_from(&mut self, other: &DenseMatrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "dimension mismatch"
        );
        self.data.copy_from_slice(&other.data);
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        (0..self.rows)
            .map(|r| {
                self.data[r * self.cols..(r + 1) * self.cols]
                    .iter()
                    .zip(x)
                    .map(|(a, b)| a * b)
                    .sum()
            })
            .collect()
    }

    /// Solves `A·x = b` in place by LU decomposition with partial
    /// pivoting, destroying `self` and overwriting `b` with `x`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] if a pivot is (nearly)
    /// zero.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len() != rows`.
    pub fn solve_in_place(&mut self, b: &mut [f64]) -> Result<(), SpiceError> {
        self.solve_in_place_indexed(b)
            .map_err(|col| SpiceError::SingularMatrix { col })
    }

    /// [`solve_in_place`](Self::solve_in_place) returning the failing
    /// column index (= MNA unknown index) on singularity, so callers
    /// that know the circuit can attach the unknown's *name*.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len() != rows`.
    pub(crate) fn solve_in_place_indexed(&mut self, b: &mut [f64]) -> Result<(), usize> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows);
        let n = self.rows;

        for col in 0..n {
            // Partial pivot: the largest magnitude in this column.
            let mut pivot_row = col;
            let mut pivot_mag = self.get(col, col).abs();
            for r in col + 1..n {
                let mag = self.get(r, col).abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            if pivot_mag < 1e-300 {
                return Err(col);
            }
            if pivot_row != col {
                for c in 0..n {
                    let tmp = self.get(col, c);
                    self.set(col, c, self.get(pivot_row, c));
                    self.set(pivot_row, c, tmp);
                }
                b.swap(col, pivot_row);
            }

            // Eliminate below.
            let pivot = self.get(col, col);
            for r in col + 1..n {
                let factor = self.get(r, col) / pivot;
                // lint: allow(HYG004): exact-zero factor makes elimination a no-op
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    let v = self.get(r, c) - factor * self.get(col, c);
                    self.set(r, c, v);
                }
                b[r] -= factor * b[col];
            }
        }

        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = b[col];
            for (c, &bc) in b.iter().enumerate().take(n).skip(col + 1) {
                acc -= self.get(col, c) * bc;
            }
            b[col] = acc / self.get(col, col);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solves_a_known_system() {
        // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
        let mut a = DenseMatrix::zeros(2, 2);
        a.set(0, 0, 2.0);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(1, 1, 3.0);
        let mut b = vec![5.0, 10.0];
        a.solve_in_place(&mut b).unwrap();
        assert!((b[0] - 1.0).abs() < 1e-12);
        assert!((b[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [0 1; 1 0] x = [2; 3] -> x = [3; 2]
        let mut a = DenseMatrix::zeros(2, 2);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        let mut b = vec![2.0, 3.0];
        a.solve_in_place(&mut b).unwrap();
        assert!((b[0] - 3.0).abs() < 1e-12);
        assert!((b[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let mut a = DenseMatrix::zeros(2, 2);
        a.set(0, 0, 1.0);
        a.set(0, 1, 2.0);
        a.set(1, 0, 2.0);
        a.set(1, 1, 4.0);
        let mut b = vec![1.0, 2.0];
        assert_eq!(
            a.solve_in_place(&mut b),
            Err(SpiceError::SingularMatrix { col: 1 }),
            "the rank collapse is first visible at the second pivot"
        );
    }

    #[test]
    fn stamping_accumulates() {
        let mut a = DenseMatrix::zeros(2, 2);
        a.add(0, 0, 1.0);
        a.add(0, 0, 2.5);
        assert_eq!(a.get(0, 0), 3.5);
        a.clear();
        assert_eq!(a.get(0, 0), 0.0);
    }

    #[test]
    fn matvec_matches_by_hand() {
        let mut a = DenseMatrix::zeros(2, 3);
        for (i, v) in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0].iter().enumerate() {
            a.set(i / 3, i % 3, *v);
        }
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    proptest! {
        #[test]
        fn solve_then_multiply_round_trips(
            vals in proptest::collection::vec(-5.0f64..5.0, 16),
            rhs in proptest::collection::vec(-10.0f64..10.0, 4),
        ) {
            let n = 4;
            let mut a = DenseMatrix::zeros(n, n);
            for r in 0..n {
                for c in 0..n {
                    a.set(r, c, vals[r * n + c]);
                }
                // Diagonal dominance guarantees non-singularity.
                a.add(r, r, 25.0);
            }
            let a_copy = a.clone();
            let mut x = rhs.clone();
            a.solve_in_place(&mut x).unwrap();
            let back = a_copy.matvec(&x);
            for (orig, b) in rhs.iter().zip(&back) {
                prop_assert!((orig - b).abs() < 1e-8);
            }
        }
    }
}
