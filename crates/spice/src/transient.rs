//! Adaptive transient analysis.

use samurai_core::faults::FaultKind;
use samurai_waveform::Pwl;

use crate::compiled::{CompiledCircuit, IntegMode, NewtonConfig, NewtonWorkspace};
use crate::dcop::DcConfig;
use crate::netlist::{Circuit, Element, ElementId};
use crate::SpiceError;

/// Time integration method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Integrator {
    /// Backward Euler: first order, L-stable, slightly lossy.
    BackwardEuler,
    /// Trapezoidal: second order; each PWL breakpoint is restarted
    /// with one backward-Euler step to suppress ringing.
    #[default]
    Trapezoidal,
}

/// Controls for [`run_transient`].
#[derive(Debug, Clone, PartialEq)]
pub struct TransientConfig {
    /// Integration method.
    pub integrator: Integrator,
    /// Initial step size; `None` picks `(tf − t0)/1000`.
    pub dt_init: Option<f64>,
    /// Maximum step size; `None` picks `(tf − t0)/50`.
    pub dt_max: Option<f64>,
    /// Step-size floor before giving up.
    pub dt_min: f64,
    /// Largest accepted per-step node-voltage change; bigger steps are
    /// rejected and retried with half the step.
    pub dv_max: f64,
    /// DC operating-point controls for the initial solution.
    pub dc: DcConfig,
    /// Newton controls for every trial step.
    pub newton: NewtonConfig,
    /// The step-level rescue ladder tried when halving bottoms out.
    pub rescue: RescueConfig,
}

impl Default for TransientConfig {
    fn default() -> Self {
        Self {
            integrator: Integrator::Trapezoidal,
            dt_init: None,
            dt_max: None,
            dt_min: 1e-18,
            dv_max: 0.12,
            dc: DcConfig::default(),
            newton: NewtonConfig::default(),
            rescue: RescueConfig::default(),
        }
    }
}

impl TransientConfig {
    /// The progressively conservative config for ensemble rescue rung
    /// `rung` (the job-level ladder used by
    /// `samurai_core::ensemble::FailurePolicy::Retry`): rung 0 is
    /// `self` unchanged; each higher rung halves the acceptance
    /// threshold `dv_max` and the Newton damping clamp (forcing
    /// smaller, safer steps), quarters any explicit `dt_init`/`dt_max`,
    /// doubles the Newton iteration budget, and prepends a larger gmin
    /// rung to the dcop homotopy.
    #[must_use]
    pub fn rescue_rung(&self, rung: usize) -> TransientConfig {
        if rung == 0 {
            return self.clone();
        }
        let shrink = 2f64.powi(rung.min(32) as i32);
        let mut out = self.clone();
        out.dv_max = self.dv_max / shrink;
        out.dt_init = self.dt_init.map(|d| d / (shrink * shrink));
        out.dt_max = self.dt_max.map(|d| d / (shrink * shrink));
        out.newton.max_iterations = self.newton.max_iterations.saturating_mul(1 << rung.min(16));
        out.newton.v_step_clamp = self.newton.v_step_clamp / shrink;
        let head = self.dc.gmin_steps.first().copied().unwrap_or(1e-2);
        let mut steps = vec![head * 10f64.powi(rung.min(32) as i32)];
        steps.extend(self.dc.gmin_steps.iter().copied());
        out.dc.gmin_steps = steps;
        out
    }
}

/// The step-level rescue ladder: what [`run_transient`] tries, on the
/// failing step only, after timestep halving has bottomed out at
/// `dt_min` — mirroring the dcop gmin/source-stepping homotopy.
///
/// Stage 1 ramps an extra gmin down `gmin_ramp` (warm-starting each
/// rung from the previous one) and finishes with a gmin-free solve;
/// stage 2 retries the step under progressively patient Newton
/// configs (doubled iteration budget, halved damping clamp per rung).
/// Runs that never bottom out never enter the ladder, so enabling it
/// (the default) cannot change a previously succeeding result.
#[derive(Debug, Clone, PartialEq)]
pub struct RescueConfig {
    /// Extra-gmin homotopy values, tried in order (decreasing).
    pub gmin_ramp: Vec<f64>,
    /// Newton-config retry rungs after the gmin ramp.
    pub config_rungs: usize,
}

impl Default for RescueConfig {
    fn default() -> Self {
        Self {
            gmin_ramp: vec![1e-3, 1e-6, 1e-9],
            config_rungs: 2,
        }
    }
}

impl RescueConfig {
    /// No rescue: halving to the floor fails the run immediately
    /// (the pre-ladder behaviour).
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            gmin_ramp: Vec::new(),
            config_rungs: 0,
        }
    }
}

/// The sampled solution of a transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientResult {
    times: Vec<f64>,
    /// `solutions[k]` is the full unknown vector at `times[k]`.
    solutions: Vec<Vec<f64>>,
}

impl TransientResult {
    /// Accepted time points.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of accepted time points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if no points were stored (cannot happen for a successful
    /// run, which always stores the initial point).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The voltage waveform of a named node as a [`Pwl`].
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for an unknown name.
    pub fn voltage(&self, ckt: &Circuit, node: &str) -> Result<Pwl, SpiceError> {
        let id = ckt.find_node(node)?;
        let points = match id.unknown_index() {
            None => self.times.iter().map(|&t| (t, 0.0)).collect(),
            Some(i) => self
                .times
                .iter()
                .zip(&self.solutions)
                .map(|(&t, x)| (t, x[i]))
                .collect(),
        };
        Ok(Pwl::new(points)?)
    }

    /// The current through a voltage source (positive current flows
    /// from the + terminal through the source to the − terminal).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidElement`] if `id` is not a voltage
    /// source.
    pub fn vsource_current(&self, ckt: &Circuit, id: ElementId) -> Result<Pwl, SpiceError> {
        let branch = match ckt.elements.get(id.0) {
            Some(Element::Vsource { branch, .. }) => *branch,
            _ => {
                return Err(SpiceError::InvalidElement {
                    reason: "expected a voltage source id",
                })
            }
        };
        let col = ckt.node_count() + branch;
        let points = self
            .times
            .iter()
            .zip(&self.solutions)
            .map(|(&t, x)| (t, x[col]))
            .collect();
        Ok(Pwl::new(points)?)
    }

    /// The drain current waveform of MOSFET `id`, reconstructed from
    /// the node voltages through the device equations.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidElement`] if `id` is not a MOSFET.
    pub fn mosfet_current(&self, ckt: &Circuit, id: ElementId) -> Result<Pwl, SpiceError> {
        let (d, g, s) = ckt.mosfet_nodes(id)?;
        let params = *ckt.mosfet_params(id)?;
        let v = |x: &Vec<f64>, n: crate::NodeId| n.unknown_index().map_or(0.0, |i| x[i]);
        let points = self
            .times
            .iter()
            .zip(&self.solutions)
            .map(|(&t, x)| {
                let (i, ..) = params.eval(v(x, d), v(x, g), v(x, s));
                (t, i)
            })
            .collect();
        Ok(Pwl::new(points)?)
    }

    /// The gate–source voltage waveform of MOSFET `id` (relative to the
    /// *declared* source terminal).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidElement`] if `id` is not a MOSFET.
    pub fn mosfet_vgs(&self, ckt: &Circuit, id: ElementId) -> Result<Pwl, SpiceError> {
        let (_, g, s) = ckt.mosfet_nodes(id)?;
        let v = |x: &Vec<f64>, n: crate::NodeId| n.unknown_index().map_or(0.0, |i| x[i]);
        let points = self
            .times
            .iter()
            .zip(&self.solutions)
            .map(|(&t, x)| (t, v(x, g) - v(x, s)))
            .collect();
        Ok(Pwl::new(points)?)
    }

    /// The *effective* gate drive of MOSFET `id`: the gate voltage
    /// relative to whichever terminal currently acts as the source
    /// (the lower of drain/source for NMOS, the higher for PMOS,
    /// reported as a positive-when-on magnitude for both polarities).
    ///
    /// This is the bias that controls the channel carrier density and
    /// the oxide-trap statistics — pass transistors conduct in both
    /// directions, so the declared-source `V_gs` would be wrong half
    /// the time.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidElement`] if `id` is not a MOSFET.
    pub fn mosfet_gate_drive(&self, ckt: &Circuit, id: ElementId) -> Result<Pwl, SpiceError> {
        let (d, g, s) = ckt.mosfet_nodes(id)?;
        let params = *ckt.mosfet_params(id)?;
        let v = |x: &Vec<f64>, n: crate::NodeId| n.unknown_index().map_or(0.0, |i| x[i]);
        let points = self
            .times
            .iter()
            .zip(&self.solutions)
            .map(|(&t, x)| {
                let vd = v(x, d);
                let vg = v(x, g);
                let vs = v(x, s);
                let drive = match params.mos_type {
                    crate::MosType::Nmos => vg - vd.min(vs),
                    crate::MosType::Pmos => vd.max(vs) - vg,
                };
                (t, drive)
            })
            .collect();
        Ok(Pwl::new(points)?)
    }
}

impl CompiledCircuit {
    /// Seeds the workspace for integration from `t0`: DC operating
    /// point, then capacitor voltages from the DC solution with zero
    /// current.
    pub(crate) fn init_transient(
        &self,
        ws: &mut NewtonWorkspace,
        t0: f64,
        dc: &DcConfig,
    ) -> Result<(), SpiceError> {
        self.dc_operating_point(ws, t0, dc)?;
        ws.mode = IntegMode::BackwardEuler { h: 1.0 };
        self.refresh_states(ws, false);
        for s in ws.cap_states.iter_mut() {
            s.i_prev = 0.0;
        }
        Ok(())
    }

    /// Runs a transient analysis over `[t0, tf]`, reusing `ws` for all
    /// solver storage.
    ///
    /// The initial condition is the DC operating point at `t0`. Steps
    /// are chosen adaptively: halved on Newton failure or on
    /// node-voltage jumps beyond `dv_max`, grown gently after
    /// successes, and always landing exactly on every PWL-source
    /// breakpoint. The hot loop is allocation-free except for the one
    /// exact-sized snapshot stored per accepted step.
    ///
    /// # Errors
    ///
    /// Propagates DC/Newton failures; returns
    /// [`SpiceError::StepUnderflow`] if the step collapses below
    /// `dt_min`.
    ///
    /// # Panics
    ///
    /// Panics unless `tf > t0`.
    pub fn run_transient(
        &self,
        ws: &mut NewtonWorkspace,
        t0: f64,
        tf: f64,
        config: &TransientConfig,
    ) -> Result<TransientResult, SpiceError> {
        assert!(tf > t0, "transient horizon must be non-empty");
        let span = tf - t0;
        let dt_max = config.dt_max.unwrap_or(span / 50.0);
        let mut dt = config.dt_init.unwrap_or(span / 1000.0).min(dt_max);

        // Breakpoints inside the horizon.
        let mut breakpoints: Vec<f64> = self
            .breakpoints()
            .into_iter()
            .filter(|&t| t > t0 && t < tf)
            .collect();
        breakpoints.push(tf);
        let mut next_bp = 0usize;

        // Initial condition.
        self.init_transient(ws, t0, &config.dc)?;

        // Pre-reserve for the common no-rejection trajectory: the step
        // ramps from dt to dt_max, then cruises at dt_max between
        // breakpoints.
        let estimate = (span / dt_max).ceil() as usize + breakpoints.len() + 16;
        let mut result = TransientResult {
            times: Vec::with_capacity(estimate),
            solutions: Vec::with_capacity(estimate),
        };
        result.times.push(t0);
        result.solutions.push(ws.solution().to_vec());

        let mut t = t0;
        // Force a BE step right after t0 and after every breakpoint
        // when using the trapezoidal rule.
        let mut be_restart = true;

        while t < tf - 1e-15 * span {
            // Do not step over the next breakpoint.
            while breakpoints[next_bp] <= t + 1e-15 * span {
                next_bp += 1;
            }
            let target = breakpoints[next_bp];
            let mut h = dt.min(target - t).min(dt_max);
            let hits_breakpoint = t + h >= target - 1e-15 * span;
            if hits_breakpoint {
                h = target - t;
            }

            let mode = match (config.integrator, be_restart) {
                (Integrator::BackwardEuler, _) | (Integrator::Trapezoidal, true) => {
                    IntegMode::BackwardEuler { h }
                }
                (Integrator::Trapezoidal, false) => IntegMode::Trapezoidal { h },
            };

            let t_new = t + h;
            // Step-site fault injection: one pre-armed check per step
            // attempt. Injected faults surface as the solver errors
            // they model; `TimestepFloor` instead routes this step
            // straight to the bottomed-out rescue path below.
            let step_fault = ws.step_arm.check();
            if step_fault.is_some() {
                ws.stats.faults_injected += 1;
            }
            let floor_forced = step_fault == Some(FaultKind::TimestepFloor);
            let solved = match step_fault {
                None => self.solve_trial(ws, t_new, mode, &config.newton),
                Some(FaultKind::SingularMatrix) => Err(self.singular_at(0)),
                Some(FaultKind::NanResidual) => Err(SpiceError::NumericalBreakdown {
                    time: t_new,
                    iteration: 0,
                }),
                Some(FaultKind::NonConvergence | FaultKind::TimestepFloor) => {
                    Err(SpiceError::NonConvergence {
                        time: t_new,
                        iterations: 0,
                        max_delta: f64::INFINITY,
                        max_residual: f64::INFINITY,
                    })
                }
            };

            let mut accepted = match solved {
                Ok(()) => {
                    let max_dv = ws.x_try[..self.n_nodes]
                        .iter()
                        .zip(&ws.x[..self.n_nodes])
                        .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
                    max_dv <= config.dv_max || h <= config.dt_min * 4.0
                }
                Err(e @ SpiceError::SingularMatrix { .. }) => return Err(e),
                Err(_) => false,
            };

            if !accepted {
                ws.stats.timestep_rejections += 1;
                // Reject: halve the step. When halving bottoms out at
                // the floor (or an injected fault says it has), climb
                // the rescue ladder on this failing step before giving
                // up — exactly where the pre-ladder engine returned
                // `StepUnderflow`, so unaffected runs are untouched.
                let bottomed = if floor_forced {
                    true
                } else {
                    dt = h / 2.0;
                    dt < config.dt_min
                };
                if bottomed {
                    self.rescue_step(ws, t, t_new, mode, dt.min(h), config)?;
                    accepted = true;
                    // The rescue converged under homotopy; re-enter
                    // the adaptive ramp cautiously.
                    dt = config.dt_init.unwrap_or(span / 1000.0).min(dt_max);
                }
            }

            if accepted {
                ws.stats.steps_accepted += 1;
                self.refresh_states(ws, true);
                ws.accept_trial();
                t = t_new;
                result.times.push(t);
                result.solutions.push(ws.solution().to_vec());
                be_restart = hits_breakpoint && config.integrator == Integrator::Trapezoidal;
                dt = (dt * 1.4).min(dt_max);
            }
        }
        Ok(result)
    }

    /// The step-level rescue ladder (see [`RescueConfig`]): called only
    /// after timestep halving has bottomed out on the step to `t_new`.
    /// On success the trial buffer holds a converged solution; on
    /// failure returns [`SpiceError::StepUnderflow`] with the number of
    /// rungs attempted.
    fn rescue_step(
        &self,
        ws: &mut NewtonWorkspace,
        t: f64,
        t_new: f64,
        mode: IntegMode,
        dt_floor: f64,
        config: &TransientConfig,
    ) -> Result<(), SpiceError> {
        let mut rungs = 0usize;

        // Stage 1: gmin ramp on the failing step. The first rung cold-
        // starts from the last accepted solution; later rungs (and the
        // final gmin-free solve) warm-start from the previous rung.
        let mut ramp_ok = !config.rescue.gmin_ramp.is_empty();
        let mut warm = false;
        for &gmin in &config.rescue.gmin_ramp {
            rungs += 1;
            ws.stats.rescue_gmin_rungs += 1;
            if self
                .solve_trial_with(ws, t_new, mode, gmin, warm, &config.newton)
                .is_ok()
            {
                warm = true;
            } else {
                ramp_ok = false;
                break;
            }
        }
        if ramp_ok
            && self
                .solve_trial_with(ws, t_new, mode, 0.0, true, &config.newton)
                .is_ok()
        {
            return Ok(());
        }

        // Stage 2: retry under progressively patient Newton configs.
        for k in 1..=config.rescue.config_rungs {
            rungs += 1;
            ws.stats.rescue_config_rungs += 1;
            let cfg = NewtonConfig {
                max_iterations: config.newton.max_iterations.saturating_mul(1 << k.min(16)),
                v_step_clamp: config.newton.v_step_clamp / 2f64.powi(k.min(32) as i32),
                ..config.newton
            };
            if self
                .solve_trial_with(ws, t_new, mode, 0.0, false, &cfg)
                .is_ok()
            {
                return Ok(());
            }
        }

        Err(SpiceError::StepUnderflow {
            time: t,
            dt: dt_floor,
            rescue_rungs: rungs,
        })
    }
}

/// Runs a transient analysis over `[t0, tf]`.
///
/// Compiles the circuit on the fly; callers running the same circuit
/// repeatedly should compile once and use
/// [`CompiledCircuit::run_transient`] with a persistent
/// [`NewtonWorkspace`].
///
/// # Errors
///
/// Propagates DC/Newton failures; returns [`SpiceError::StepUnderflow`]
/// if the step collapses below `dt_min`.
pub fn run_transient(
    ckt: &Circuit,
    t0: f64,
    tf: f64,
    config: &TransientConfig,
) -> Result<TransientResult, SpiceError> {
    let compiled = CompiledCircuit::compile(ckt);
    let mut ws = NewtonWorkspace::new(&compiled);
    compiled.run_transient(&mut ws, t0, tf, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MosfetParams, Source};

    #[test]
    fn rc_step_response_matches_the_analytic_exponential() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        let r = 1e3;
        let c = 1e-12;
        ckt.vsource(
            vin,
            Circuit::GROUND,
            Source::Pwl(Pwl::step(0.0, 1.0, 1e-9, 1e-12).unwrap()),
        );
        ckt.resistor(vin, vout, r);
        ckt.capacitor(vout, Circuit::GROUND, c);
        let res = run_transient(&ckt, 0.0, 8e-9, &TransientConfig::default()).unwrap();
        let out = res.voltage(&ckt, "out").unwrap();
        let tau = r * c;
        for &t_probe in &[1.5e-9, 2e-9, 3e-9, 5e-9] {
            let expect = 1.0 - (-(t_probe - 1e-9) / tau).exp();
            let got = out.eval(t_probe);
            assert!(
                (got - expect).abs() < 0.02,
                "t = {t_probe}: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn backward_euler_also_converges_but_less_accurately() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.vsource(
            vin,
            Circuit::GROUND,
            Source::Pwl(Pwl::step(0.0, 1.0, 1e-9, 1e-12).unwrap()),
        );
        ckt.resistor(vin, vout, 1e3);
        ckt.capacitor(vout, Circuit::GROUND, 1e-12);
        let config = TransientConfig {
            integrator: Integrator::BackwardEuler,
            ..TransientConfig::default()
        };
        let res = run_transient(&ckt, 0.0, 8e-9, &config).unwrap();
        let out = res.voltage(&ckt, "out").unwrap();
        assert!(out.eval(7.9e-9) > 0.98);
    }

    #[test]
    fn capacitor_holds_charge_without_a_path() {
        // An isolated-by-off-transistor capacitor should hold its DC
        // value (only gmin leakage, negligible over nanoseconds).
        let mut ckt = Circuit::new();
        let store = ckt.node("store");
        let gate = ckt.node("gate");
        let drive = ckt.node("drive");
        ckt.vsource(drive, Circuit::GROUND, Source::Dc(1.0));
        ckt.vsource(gate, Circuit::GROUND, Source::Dc(0.0)); // pass FET off
        ckt.mosfet(store, gate, drive, MosfetParams::nmos_90nm(1.0));
        ckt.capacitor(store, Circuit::GROUND, 1e-15);
        let res = run_transient(&ckt, 0.0, 10e-9, &TransientConfig::default()).unwrap();
        let v = res.voltage(&ckt, "store").unwrap();
        assert!(
            (v.eval(10e-9) - v.eval(0.0)).abs() < 0.01,
            "storage node drifted from {} to {}",
            v.eval(0.0),
            v.eval(10e-9)
        );
    }

    #[test]
    fn inverter_transient_switches_rail_to_rail() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.vsource(vdd, Circuit::GROUND, Source::Dc(1.1));
        let a = ckt.node("a");
        ckt.vsource(
            a,
            Circuit::GROUND,
            Source::Pwl(Pwl::pulse(0.0, 1.1, 2e-9, 6e-9, 0.2e-9, 0.2e-9).unwrap()),
        );
        let y = ckt.node("y");
        ckt.mosfet(y, a, Circuit::GROUND, MosfetParams::nmos_90nm(1.0));
        ckt.mosfet(y, a, vdd, MosfetParams::pmos_90nm(2.0));
        ckt.capacitor(y, Circuit::GROUND, 2e-15);
        let res = run_transient(&ckt, 0.0, 10e-9, &TransientConfig::default()).unwrap();
        let out = res.voltage(&ckt, "y").unwrap();
        assert!(out.eval(1.5e-9) > 1.0, "idle-low input -> high output");
        assert!(out.eval(5e-9) < 0.1, "pulsed-high input -> low output");
        assert!(out.eval(9.5e-9) > 1.0, "recovers after the pulse");
    }

    #[test]
    fn breakpoints_are_hit_exactly() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource(
            a,
            Circuit::GROUND,
            Source::Pwl(Pwl::step(0.0, 1.0, 3.3333e-9, 1e-12).unwrap()),
        );
        ckt.resistor(a, Circuit::GROUND, 1e3);
        let res = run_transient(&ckt, 0.0, 10e-9, &TransientConfig::default()).unwrap();
        assert!(
            res.times().iter().any(|&t| (t - 3.3333e-9).abs() < 1e-18),
            "breakpoint missed"
        );
        assert!((res.times().last().unwrap() - 10e-9).abs() < 1e-18);
    }

    #[test]
    fn vsource_current_reports_load_current() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let v = ckt.vsource(a, Circuit::GROUND, Source::Dc(2.0));
        ckt.resistor(a, Circuit::GROUND, 1e3);
        let res = run_transient(&ckt, 0.0, 1e-9, &TransientConfig::default()).unwrap();
        let i = res.vsource_current(&ckt, v).unwrap();
        // 2 mA delivered: branch current is -2 mA by the passive sign
        // convention used (current from + through the source).
        assert!((i.eval(0.5e-9) + 2e-3).abs() < 1e-8);
    }

    #[test]
    fn mosfet_current_waveform_is_reconstructed() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.vsource(vdd, Circuit::GROUND, Source::Dc(1.1));
        let g = ckt.node("g");
        ckt.vsource(
            g,
            Circuit::GROUND,
            Source::Pwl(Pwl::step(0.0, 1.1, 2e-9, 0.1e-9).unwrap()),
        );
        let d = ckt.node("d");
        ckt.resistor(vdd, d, 5e3);
        let m = ckt.mosfet(d, g, Circuit::GROUND, MosfetParams::nmos_90nm(2.0));
        let res = run_transient(&ckt, 0.0, 6e-9, &TransientConfig::default()).unwrap();
        let id = res.mosfet_current(&ckt, m).unwrap();
        let vgs = res.mosfet_vgs(&ckt, m).unwrap();
        assert!(id.eval(1e-9).abs() < 1e-9, "off before the step");
        assert!(id.eval(5e-9) > 1e-5, "conducting after the step");
        assert!((vgs.eval(5e-9) - 1.1).abs() < 1e-6);
    }

    #[test]
    fn compiled_rerun_on_a_reused_workspace_is_bit_identical() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.vsource(
            vin,
            Circuit::GROUND,
            Source::Pwl(Pwl::step(0.0, 1.0, 1e-9, 1e-12).unwrap()),
        );
        ckt.resistor(vin, vout, 1e3);
        ckt.capacitor(vout, Circuit::GROUND, 1e-12);
        let config = TransientConfig::default();
        let reference = run_transient(&ckt, 0.0, 4e-9, &config).unwrap();

        let compiled = CompiledCircuit::compile(&ckt);
        let mut ws = NewtonWorkspace::new(&compiled);
        let first = compiled.run_transient(&mut ws, 0.0, 4e-9, &config).unwrap();
        // Second run on the now-dirty workspace must match exactly.
        let second = compiled.run_transient(&mut ws, 0.0, 4e-9, &config).unwrap();
        assert_eq!(reference, first);
        assert_eq!(reference, second);
    }
}
