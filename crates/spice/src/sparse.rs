//! Sparse linear algebra: CSC storage and a left-looking LU.
//!
//! The dense solver in [`crate::DenseMatrix`] is O(n³) per Newton
//! iteration — fine for a 6T cell (10 unknowns), hopeless for a
//! generated SRAM column (hundreds of unknowns, a handful of nonzeros
//! per row). This module adds the sparse path:
//!
//! * [`SparsityPattern`] — the *symbolic analysis*, computed once at
//!   circuit-compile time from the same fill list the dense path
//!   clears. It lives on the [`CompiledCircuit`](crate::CompiledCircuit)
//!   next to the dense fill pattern and is immutable thereafter.
//! * [`CscMatrix`] — compressed-sparse-column values over a fixed
//!   pattern; stamping is a binary search within one column
//!   (columns are short: MNA rows couple a node to its few
//!   neighbours), clearing is one `memset` of the value array.
//! * [`SparseLu`] — a Gilbert–Peierls left-looking LU with partial
//!   pivoting (the CSparse `cs_lu` algorithm): each column solves
//!   `x = L \ A(:,k)` by a depth-first reach over the graph of the
//!   partially built `L`, then picks the largest-magnitude
//!   not-yet-pivotal row as pivot. Pivoting is mandatory here —
//!   voltage-source branch rows have structurally zero diagonals.
//!
//! All factor storage is owned by the [`SparseLu`] workspace and
//! reused across factorizations. Because the Newton loop factors the
//! *same* pattern every time, the L/U arrays stop growing after the
//! first factorization and the transient hot loop stays
//! allocation-free, matching the compile-once contract of the dense
//! engine.

/// Sentinel for "no pivot assigned yet" in the row permutation.
const NONE: usize = usize::MAX;

/// Smallest pivot magnitude accepted before the matrix is declared
/// singular — the same threshold the dense LU uses.
const PIVOT_FLOOR: f64 = 1e-300;

/// The fixed nonzero structure of a compiled system matrix, in
/// compressed-sparse-column form.
///
/// Built once per [`CompiledCircuit`](crate::CompiledCircuit) from the
/// sorted, deduplicated Jacobian fill list (the symbolic analysis of
/// the compile-once contract); every [`CscMatrix`] assembled for that
/// circuit shares this structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsityPattern {
    n: usize,
    /// `col_ptr[c]..col_ptr[c + 1]` indexes column `c`'s rows.
    col_ptr: Vec<usize>,
    /// Row indices, ascending within each column.
    row_idx: Vec<usize>,
}

impl SparsityPattern {
    /// Builds the pattern of an `n × n` matrix from a list of `(row,
    /// col)` entries. Entries may be unsorted and may repeat; they are
    /// sorted and deduplicated internally.
    ///
    /// # Panics
    ///
    /// Panics if an entry is out of range.
    pub fn new(n: usize, entries: &[(usize, usize)]) -> Self {
        let mut fill: Vec<(usize, usize)> = entries.to_vec();
        fill.sort_unstable();
        fill.dedup();
        assert!(
            fill.iter().all(|&(r, c)| r < n && c < n),
            "pattern entry out of range"
        );
        let mut col_ptr = vec![0usize; n + 1];
        for &(_, c) in &fill {
            col_ptr[c + 1] += 1;
        }
        for c in 0..n {
            col_ptr[c + 1] += col_ptr[c];
        }
        let mut cursor = col_ptr.clone();
        let mut row_idx = vec![0usize; fill.len()];
        // `fill` is sorted by (row, col), so appending per column keeps
        // each column's rows ascending.
        for &(r, c) in &fill {
            row_idx[cursor[c]] = r;
            cursor[c] += 1;
        }
        Self {
            n,
            col_ptr,
            row_idx,
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of structural nonzeros.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// A fill-reducing column elimination order: greedy minimum degree
    /// on the symmetrized pattern, ties broken to the smallest index
    /// so the order (and therefore every downstream factorization) is
    /// fully deterministic.
    ///
    /// MNA matrices put their highest-degree unknowns wherever the
    /// netlist builder happened to create them — a generated SRAM
    /// column creates the shared vdd/bl/blb rails *first*, the worst
    /// possible elimination position. Factoring in minimum-degree
    /// order instead keeps the Gilbert–Peierls fill near the
    /// structural nonzero count. This runs once per circuit compile
    /// (symbolic analysis), never in the Newton loop.
    pub fn min_degree_ordering(&self) -> Vec<usize> {
        let n = self.n;
        let mut adj: Vec<std::collections::BTreeSet<usize>> =
            vec![std::collections::BTreeSet::new(); n];
        for c in 0..n {
            for p in self.col_ptr[c]..self.col_ptr[c + 1] {
                let r = self.row_idx[p];
                if r != c {
                    adj[r].insert(c);
                    adj[c].insert(r);
                }
            }
        }
        let mut eliminated = vec![false; n];
        let mut order = Vec::with_capacity(n);
        for _ in 0..n {
            let mut best = NONE;
            let mut best_deg = usize::MAX;
            for (v, nbrs) in adj.iter().enumerate() {
                if !eliminated[v] && nbrs.len() < best_deg {
                    best_deg = nbrs.len();
                    best = v;
                }
            }
            order.push(best);
            eliminated[best] = true;
            // Eliminate: the neighbours of the chosen node become a
            // clique in the quotient graph.
            let nbrs: Vec<usize> = adj[best].iter().copied().collect();
            for &u in &nbrs {
                adj[u].remove(&best);
            }
            adj[best].clear();
            for (i, &u) in nbrs.iter().enumerate() {
                for &w in &nbrs[i + 1..] {
                    adj[u].insert(w);
                    adj[w].insert(u);
                }
            }
        }
        order
    }
}

/// A compressed-sparse-column matrix over a fixed [`SparsityPattern`].
///
/// The index arrays are copied from the pattern at construction and
/// never change; only the value array is written during assembly.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// A zero matrix over `pattern`.
    pub fn zeros(pattern: &SparsityPattern) -> Self {
        Self {
            n: pattern.n,
            col_ptr: pattern.col_ptr.clone(),
            row_idx: pattern.row_idx.clone(),
            values: vec![0.0; pattern.row_idx.len()],
        }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of structural nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    // lint: hot-loop
    //
    // `add` and `clear` run inside the Newton assembly loop — once per
    // stamped Jacobian entry per iteration. Columns hold only a node's
    // direct neighbours, so the binary search is over a handful of
    // rows.

    /// Adds `v` to entry `(r, c)` — the MNA stamping operation.
    ///
    /// Entries outside the pattern are ignored (the compiled fill
    /// pattern covers every stamp by construction; a miss is a compile
    /// bug caught by the debug assertion).
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        let lo = self.col_ptr[c];
        let hi = self.col_ptr[c + 1];
        match self.row_idx[lo..hi].binary_search(&r) {
            Ok(k) => self.values[lo + k] += v,
            Err(_) => debug_assert!(false, "({r}, {c}) is outside the sparsity pattern"),
        }
    }

    /// Resets every value to zero, keeping the structure.
    #[inline]
    pub fn clear(&mut self) {
        self.values.iter_mut().for_each(|v| *v = 0.0);
    }
    // lint: end-hot-loop

    /// Reads entry `(r, c)` (zero outside the pattern).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let lo = self.col_ptr[c];
        let hi = self.col_ptr[c + 1];
        match self.row_idx[lo..hi].binary_search(&r) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Zeroes every stored entry of row `r` (an O(nnz) scan — cold
    /// path, used only by deterministic fault injection to make a
    /// factorization genuinely singular).
    pub fn zero_row(&mut self, r: usize) {
        for (ri, v) in self.row_idx.iter().zip(self.values.iter_mut()) {
            if *ri == r {
                *v = 0.0;
            }
        }
    }

    /// Matrix–vector product `A·x`, for tests and diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![0.0; self.n];
        for (c, &xc) in x.iter().enumerate() {
            for p in self.col_ptr[c]..self.col_ptr[c + 1] {
                y[self.row_idx[p]] += self.values[p] * xc;
            }
        }
        y
    }
}

/// A reusable Gilbert–Peierls LU workspace: numeric L/U factors, the
/// dense accumulator and DFS stacks, and the pivoting permutation.
///
/// One `SparseLu` serves one system size for its whole life; calling
/// [`factor`](Self::factor) repeatedly on matrices with the same
/// pattern performs no heap allocation after the first call (the L/U
/// arrays are cleared and refilled to identical lengths, so their
/// capacity never grows again).
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    l_colptr: Vec<usize>,
    l_rowidx: Vec<usize>,
    l_values: Vec<f64>,
    u_colptr: Vec<usize>,
    u_rowidx: Vec<usize>,
    u_values: Vec<f64>,
    /// Dense accumulator for the current column.
    x: Vec<f64>,
    /// Shared stack: DFS recursion grows from the front, the
    /// topological output grows from the back (they never collide —
    /// their combined size is bounded by the number of reached nodes).
    xi: Vec<usize>,
    /// Per-frame resume positions of the paused DFS.
    pstack: Vec<usize>,
    /// Visit marks, keyed by a per-column generation counter.
    flag: Vec<usize>,
    /// `pinv[row] = kk` once `row` was chosen as the pivot of factor
    /// position `kk`; [`NONE`] while the row is still available.
    pinv: Vec<usize>,
    /// Column elimination order: `q[kk]` is the original column
    /// factored at position `kk`. Identity unless the workspace was
    /// built with [`with_column_order`](Self::with_column_order).
    q: Vec<usize>,
}

impl SparseLu {
    /// Allocates a workspace for `n × n` systems.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "system dimension must be positive");
        Self {
            n,
            l_colptr: vec![0; n + 1],
            l_rowidx: Vec::new(),
            l_values: Vec::new(),
            u_colptr: vec![0; n + 1],
            u_rowidx: Vec::new(),
            u_values: Vec::new(),
            x: vec![0.0; n],
            xi: vec![0; n],
            pstack: vec![0; n],
            flag: vec![0; n],
            pinv: vec![NONE; n],
            q: (0..n).collect(),
        }
    }

    /// Allocates a workspace that eliminates columns in the given
    /// order — typically [`SparsityPattern::min_degree_ordering`].
    /// With the identity order this is exactly [`new`](Self::new).
    ///
    /// # Panics
    ///
    /// Panics if `order` is empty or not a permutation of `0..n`.
    pub fn with_column_order(order: &[usize]) -> Self {
        let n = order.len();
        let mut lu = Self::new(n);
        let mut seen = vec![false; n];
        for &c in order {
            assert!(
                c < n && !seen[c],
                "column order must be a permutation of 0..n"
            );
            seen[c] = true;
        }
        lu.q.copy_from_slice(order);
        lu
    }

    /// System dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    // lint: hot-loop
    //
    // `factor` and `solve` run once per Newton iteration per timestep
    // on the sparse path — the innermost engine loop for generated
    // column arrays. After the first factorization of a pattern every
    // push lands in reserved capacity, so the loop is allocation-free.

    /// Depth-first search from row `start` over the graph of the
    /// partially built `L`, appending finished nodes to the
    /// topological output stack growing down from `top`. Returns the
    /// new `top`.
    fn dfs(&mut self, start: usize, mark: usize, mut top: usize) -> usize {
        let mut head: usize = 0;
        self.xi[0] = start;
        loop {
            let j = self.xi[head];
            let jcol = self.pinv[j];
            if self.flag[j] != mark {
                self.flag[j] = mark;
                self.pstack[head] = if jcol == NONE { 0 } else { self.l_colptr[jcol] };
            }
            let p_end = if jcol == NONE {
                0
            } else {
                self.l_colptr[jcol + 1]
            };
            let mut done = true;
            let mut p = self.pstack[head];
            while p < p_end {
                let child = self.l_rowidx[p];
                if self.flag[child] != mark {
                    // Pause this frame, descend into the child.
                    self.pstack[head] = p;
                    head += 1;
                    self.xi[head] = child;
                    done = false;
                    break;
                }
                p += 1;
            }
            if done {
                top -= 1;
                self.xi[top] = j;
                if head == 0 {
                    break;
                }
                head -= 1;
            }
        }
        top
    }

    /// Factors `a` in place of the previous factors.
    ///
    /// Left-looking Gilbert–Peierls with partial pivoting: per column,
    /// the reach of `A(:,k)` over `L` gives the nonzero pattern of
    /// `x = L \ A(:,k)` in topological order; the sparse triangular
    /// update fills in the values; the largest-magnitude row not yet
    /// chosen as a pivot becomes this column's pivot (ties break to
    /// the smallest row index, keeping the factorization fully
    /// deterministic). Columns are eliminated in the workspace's
    /// column order (`P·A·Q = L·U`); [`solve`](Self::solve) undoes
    /// both permutations.
    ///
    /// # Errors
    ///
    /// Returns the failing column index (= the MNA unknown index) if
    /// no acceptable pivot exists — the sparse analogue of the dense
    /// solver's singular-matrix report.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not `n × n`.
    pub fn factor(&mut self, a: &CscMatrix) -> Result<(), usize> {
        assert_eq!(a.n, self.n, "dimension mismatch");
        let n = self.n;
        self.l_rowidx.clear();
        self.l_values.clear();
        self.u_rowidx.clear();
        self.u_values.clear();
        self.pinv.iter_mut().for_each(|p| *p = NONE);
        self.flag.iter_mut().for_each(|f| *f = 0);
        self.x.iter_mut().for_each(|v| *v = 0.0);

        for kk in 0..n {
            let k = self.q[kk];
            self.l_colptr[kk] = self.l_values.len();
            self.u_colptr[kk] = self.u_values.len();

            // Symbolic: reach of A(:,k) over L, in topological order.
            let mark = kk + 1;
            let mut top = n;
            for p in a.col_ptr[k]..a.col_ptr[k + 1] {
                let i = a.row_idx[p];
                if self.flag[i] != mark {
                    top = self.dfs(i, mark, top);
                }
            }

            // Numeric: clear the pattern, scatter A(:,k), then apply
            // the pending L columns in topological order.
            for p in top..n {
                let i = self.xi[p];
                self.x[i] = 0.0;
            }
            for p in a.col_ptr[k]..a.col_ptr[k + 1] {
                self.x[a.row_idx[p]] = a.values[p];
            }
            for p in top..n {
                let j = self.xi[p];
                let jcol = self.pinv[j];
                if jcol == NONE {
                    continue;
                }
                // L's unit diagonal is stored first in each column, so
                // the division by it is a no-op; apply the strictly
                // sub-diagonal entries.
                let xj = self.x[j];
                for q in self.l_colptr[jcol] + 1..self.l_colptr[jcol + 1] {
                    self.x[self.l_rowidx[q]] -= self.l_values[q] * xj;
                }
            }

            // Pivot: strict max |x| over not-yet-pivotal rows, ties to
            // the smallest row index. Rows already pivotal are entries
            // of U(:,k).
            let mut ipiv = NONE;
            let mut best = -1.0f64;
            for p in top..n {
                let i = self.xi[p];
                if self.pinv[i] == NONE {
                    let t = self.x[i].abs();
                    // lint: allow(HYG004): exact tie-break keeps the pivot order deterministic
                    if t > best || (t == best && i < ipiv) {
                        best = t;
                        ipiv = i;
                    }
                } else {
                    // lint: allow(HOT003): bounded by the column's U fill; capacity persists across factorizations
                    self.u_rowidx.push(self.pinv[i]);
                    self.u_values.push(self.x[i]); // lint: allow(HOT003): same bound as the index push above
                }
            }
            if ipiv == NONE || best < PIVOT_FLOOR {
                // Reset the pattern before reporting: a later factor
                // call must start from a clean accumulator.
                for p in top..n {
                    self.x[self.xi[p]] = 0.0;
                }
                return Err(k);
            }
            let pivot = self.x[ipiv];
            // lint: allow(HOT003): one pivot entry per column; capacity persists across factorizations
            self.u_rowidx.push(kk);
            self.u_values.push(pivot); // lint: allow(HOT003): one pivot entry per column
            self.pinv[ipiv] = kk;
            // lint: allow(HOT003): one unit-diagonal entry per column; capacity persists across factorizations
            self.l_rowidx.push(ipiv);
            self.l_values.push(1.0); // lint: allow(HOT003): one unit-diagonal entry per column
            for p in top..n {
                let i = self.xi[p];
                if self.pinv[i] == NONE {
                    // lint: allow(HOT003): bounded by the column's L fill; capacity persists across factorizations
                    self.l_rowidx.push(i);
                    self.l_values.push(self.x[i] / pivot); // lint: allow(HOT003): same bound as the index push above
                }
                self.x[i] = 0.0;
            }
        }
        self.l_colptr[n] = self.l_values.len();
        self.u_colptr[n] = self.u_values.len();
        // Rewrite L's row indices into pivotal numbering so the solve
        // is a straight unit-lower / upper sweep.
        for idx in self.l_rowidx.iter_mut() {
            *idx = self.pinv[*idx];
        }
        Ok(())
    }

    /// Solves `A·x = b` using the factors of the last successful
    /// [`factor`](Self::factor), overwriting `b` with `x`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n`.
    pub fn solve(&mut self, b: &mut [f64]) {
        let n = self.n;
        assert_eq!(b.len(), n);
        // Apply the row permutation: x[pinv[i]] = b[i].
        for (i, &bi) in b.iter().enumerate() {
            self.x[self.pinv[i]] = bi;
        }
        // Unit-lower sweep (diagonal first in each column).
        for j in 0..n {
            let xj = self.x[j];
            for p in self.l_colptr[j] + 1..self.l_colptr[j + 1] {
                self.x[self.l_rowidx[p]] -= self.l_values[p] * xj;
            }
        }
        // Upper sweep (diagonal last in each column).
        for j in (0..n).rev() {
            let lo = self.u_colptr[j];
            let hi = self.u_colptr[j + 1];
            self.x[j] /= self.u_values[hi - 1];
            let xj = self.x[j];
            for p in lo..hi - 1 {
                self.x[self.u_rowidx[p]] -= self.u_values[p] * xj;
            }
        }
        // Undo the column permutation: x[q[kk]] = y[kk].
        for kk in 0..n {
            b[self.q[kk]] = self.x[kk];
        }
        // Leave the accumulator clean for the next factorization.
        self.x.iter_mut().for_each(|v| *v = 0.0);
    }
    // lint: end-hot-loop
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::DenseMatrix;

    fn dense_pattern(n: usize) -> SparsityPattern {
        let mut entries = Vec::new();
        for r in 0..n {
            for c in 0..n {
                entries.push((r, c));
            }
        }
        SparsityPattern::new(n, &entries)
    }

    #[test]
    fn pattern_is_csc_with_ascending_rows() {
        let p = SparsityPattern::new(3, &[(2, 0), (0, 0), (1, 2), (0, 0), (0, 1)]);
        assert_eq!(p.n(), 3);
        assert_eq!(p.nnz(), 4, "duplicates must collapse");
        assert_eq!(p.col_ptr, vec![0, 2, 3, 4]);
        assert_eq!(p.row_idx, vec![0, 2, 0, 1]);
    }

    #[test]
    fn add_get_clear_round_trip() {
        let p = SparsityPattern::new(2, &[(0, 0), (1, 0), (1, 1)]);
        let mut m = CscMatrix::zeros(&p);
        m.add(0, 0, 1.5);
        m.add(1, 0, 2.0);
        m.add(1, 0, 0.5);
        assert_eq!(m.get(0, 0), 1.5);
        assert_eq!(m.get(1, 0), 2.5);
        assert_eq!(m.get(0, 1), 0.0, "outside the pattern reads zero");
        m.clear();
        assert_eq!(m.get(1, 0), 0.0);
    }

    #[test]
    fn min_degree_orders_hub_nodes_last_and_avoids_fill() {
        // Arrow matrix: node 0 couples to every other node (the shape
        // a shared bit line stamps into the MNA system). Natural order
        // eliminates the hub first and fills the trailing block dense;
        // minimum degree pushes the hub to the end and, with pivots on
        // the dominant diagonal, creates no fill at all.
        let n = 8;
        let mut entries: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
        for i in 1..n {
            entries.push((0, i));
            entries.push((i, 0));
        }
        let pattern = SparsityPattern::new(n, &entries);
        let order = pattern.min_degree_ordering();
        // Leaves go first (ties by index); the hub only becomes
        // eligible once its degree has shrunk to match a leaf's.
        assert_eq!(order[..n - 2], (1..n - 1).collect::<Vec<_>>()[..]);
        assert!(
            order.iter().position(|&v| v == 0).expect("hub is ordered") >= n - 2,
            "the hub must be eliminated after the leaves"
        );

        let mut a = CscMatrix::zeros(&pattern);
        for i in 0..n {
            a.add(i, i, (i + 4) as f64);
        }
        for i in 1..n {
            a.add(0, i, 1.0);
            a.add(i, 0, 0.5);
        }
        let mut lu = SparseLu::with_column_order(&order);
        lu.factor(&a).expect("ordered factorization succeeds");
        // Zero fill: L's unit diagonals and U's pivots are the only
        // entries beyond the structural nonzeros.
        assert_eq!(lu.l_values.len() + lu.u_values.len(), pattern.nnz() + n);

        // The permuted solve still answers in original coordinates.
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 2.0).collect();
        let mut x = b.clone();
        lu.solve(&mut x);
        let ax = a.matvec(&x);
        for (got, want) in ax.iter().zip(&b) {
            assert!((got - want).abs() < 1e-10, "residual too large");
        }
    }

    #[test]
    #[should_panic(expected = "column order must be a permutation")]
    fn rejects_a_non_permutation_column_order() {
        let _ = SparseLu::with_column_order(&[0, 0, 2]);
    }

    #[test]
    fn solves_a_known_system() {
        // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
        let p = dense_pattern(2);
        let mut a = CscMatrix::zeros(&p);
        a.add(0, 0, 2.0);
        a.add(0, 1, 1.0);
        a.add(1, 0, 1.0);
        a.add(1, 1, 3.0);
        let mut lu = SparseLu::new(2);
        lu.factor(&a).unwrap();
        let mut b = vec![5.0, 10.0];
        lu.solve(&mut b);
        assert!((b[0] - 1.0).abs() < 1e-12);
        assert!((b[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_structurally_zero_diagonals() {
        // The MNA shape that makes pivoting mandatory: a voltage-source
        // branch row [0 1; 1 0].
        let p = SparsityPattern::new(2, &[(0, 1), (1, 0)]);
        let mut a = CscMatrix::zeros(&p);
        a.add(0, 1, 1.0);
        a.add(1, 0, 1.0);
        let mut lu = SparseLu::new(2);
        lu.factor(&a).unwrap();
        let mut b = vec![2.0, 3.0];
        lu.solve(&mut b);
        assert!((b[0] - 3.0).abs() < 1e-12);
        assert!((b[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_reports_the_failing_column() {
        // Rank-1 2x2: the second pivot collapses.
        let p = dense_pattern(2);
        let mut a = CscMatrix::zeros(&p);
        a.add(0, 0, 1.0);
        a.add(0, 1, 2.0);
        a.add(1, 0, 2.0);
        a.add(1, 1, 4.0);
        let mut lu = SparseLu::new(2);
        assert_eq!(lu.factor(&a), Err(1));

        // An empty column fails immediately at that column.
        let p = SparsityPattern::new(2, &[(0, 0)]);
        let a = CscMatrix::zeros(&p);
        let mut lu = SparseLu::new(2);
        let err = lu.factor(&a);
        assert!(err.is_err());
    }

    #[test]
    fn refactorization_reuses_the_workspace_and_matches_dense() {
        // Factor twice with different values on one pattern; both
        // solves must match the dense reference exactly-ish.
        let n = 5;
        let entries = [
            (0, 0),
            (0, 2),
            (1, 1),
            (1, 3),
            (2, 0),
            (2, 2),
            (2, 4),
            (3, 1),
            (3, 3),
            (4, 2),
            (4, 4),
        ];
        let p = SparsityPattern::new(n, &entries);
        let mut lu = SparseLu::new(n);
        for scale in [1.0f64, 3.5] {
            let mut a = CscMatrix::zeros(&p);
            let mut d = DenseMatrix::zeros(n, n);
            for (k, &(r, c)) in entries.iter().enumerate() {
                let v = scale * (k as f64 + 1.0) * if r == c { 3.0 } else { 0.5 };
                a.add(r, c, v);
                d.add(r, c, v);
            }
            lu.factor(&a).unwrap();
            let rhs: Vec<f64> = (0..n).map(|i| i as f64 - 2.0).collect();
            let mut xs = rhs.clone();
            lu.solve(&mut xs);
            let mut xd = rhs.clone();
            d.solve_in_place(&mut xd).unwrap();
            for (s, dd) in xs.iter().zip(&xd) {
                assert!((s - dd).abs() < 1e-10, "sparse {s} vs dense {dd}");
            }
            // Residual check through the sparse matvec.
            let back = {
                let mut a2 = CscMatrix::zeros(&p);
                for (k, &(r, c)) in entries.iter().enumerate() {
                    let v = scale * (k as f64 + 1.0) * if r == c { 3.0 } else { 0.5 };
                    a2.add(r, c, v);
                }
                a2.matvec(&xs)
            };
            for (orig, b) in rhs.iter().zip(&back) {
                assert!((orig - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn zero_row_makes_the_factorization_singular() {
        let p = dense_pattern(3);
        let mut a = CscMatrix::zeros(&p);
        for i in 0..3 {
            a.add(i, i, 2.0);
        }
        a.add(0, 1, 1.0);
        a.add(2, 1, 1.0);
        let mut lu = SparseLu::new(3);
        lu.factor(&a).unwrap();
        a.zero_row(0);
        assert!(lu.factor(&a).is_err());
    }

    #[test]
    fn factor_after_a_singular_failure_recovers() {
        let p = dense_pattern(2);
        let mut lu = SparseLu::new(2);
        let singular = CscMatrix::zeros(&p);
        assert!(lu.factor(&singular).is_err());
        let mut a = CscMatrix::zeros(&p);
        a.add(0, 0, 4.0);
        a.add(1, 1, 2.0);
        lu.factor(&a).unwrap();
        let mut b = vec![8.0, 8.0];
        lu.solve(&mut b);
        assert!((b[0] - 2.0).abs() < 1e-12);
        assert!((b[1] - 4.0).abs() < 1e-12);
    }
}
