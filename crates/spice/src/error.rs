//! Error type for the circuit simulator.

use core::fmt;

use samurai_waveform::WaveformError;

/// Errors from netlist construction or simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpiceError {
    /// The system matrix is singular (typically a floating subcircuit
    /// with gmin disabled, or a voltage-source loop).
    SingularMatrix,
    /// Newton–Raphson failed to converge.
    NonConvergence {
        /// Simulation time at which convergence failed (NaN for DC).
        time: f64,
        /// Iterations attempted.
        iterations: usize,
    },
    /// The adaptive transient step shrank below the floor.
    StepUnderflow {
        /// Simulation time at which the step collapsed.
        time: f64,
        /// The rejected step size.
        dt: f64,
    },
    /// A node name was looked up that does not exist in the circuit.
    UnknownNode {
        /// The offending name.
        name: String,
    },
    /// An element id was used with the wrong circuit or element kind.
    InvalidElement {
        /// Explanation of the misuse.
        reason: &'static str,
    },
    /// An element parameter is out of its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Supplied value.
        value: f64,
    },
    /// Simulation output failed waveform construction (e.g. a
    /// degenerate time grid).
    Waveform(WaveformError),
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SingularMatrix => write!(f, "singular system matrix"),
            Self::NonConvergence { time, iterations } => {
                write!(f, "newton iteration failed to converge at t = {time} after {iterations} iterations")
            }
            Self::StepUnderflow { time, dt } => {
                write!(f, "transient step underflow at t = {time} (dt = {dt:.3e})")
            }
            Self::UnknownNode { name } => write!(f, "unknown node `{name}`"),
            Self::InvalidElement { reason } => write!(f, "invalid element use: {reason}"),
            Self::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` is out of range: {value}")
            }
            Self::Waveform(e) => write!(f, "simulation output is not a valid waveform: {e}"),
        }
    }
}

impl From<WaveformError> for SpiceError {
    fn from(e: WaveformError) -> Self {
        Self::Waveform(e)
    }
}

impl std::error::Error for SpiceError {}

#[cfg(test)]
mod tests {
    use super::SpiceError;

    #[test]
    fn display_is_informative() {
        assert!(SpiceError::SingularMatrix.to_string().contains("singular"));
        let e = SpiceError::NonConvergence {
            time: 1e-9,
            iterations: 100,
        };
        assert!(e.to_string().contains("100"));
        assert!(SpiceError::UnknownNode { name: "q".into() }
            .to_string()
            .contains("`q`"));
    }
}
