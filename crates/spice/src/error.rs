//! Error type for the circuit simulator.

use core::fmt;

use samurai_waveform::WaveformError;

/// Errors from netlist construction or simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpiceError {
    /// The system matrix is singular (typically a floating subcircuit
    /// with gmin disabled, or a voltage-source loop).
    SingularMatrix {
        /// Index of the MNA unknown whose pivot collapsed. The error
        /// is built on the Newton hot path, so it carries the plain
        /// index (no allocation); resolve it to a node name with
        /// [`CompiledCircuit::unknown_name`] at a reporting boundary.
        ///
        /// [`CompiledCircuit::unknown_name`]: crate::CompiledCircuit::unknown_name
        col: usize,
    },
    /// Newton–Raphson failed to converge.
    NonConvergence {
        /// Simulation time at which convergence failed (NaN for DC).
        time: f64,
        /// Iterations attempted.
        iterations: usize,
        /// Largest node-voltage update of the final iteration.
        max_delta: f64,
        /// Largest KCL residual at the final iterate (amperes).
        max_residual: f64,
    },
    /// The adaptive transient step shrank below the floor.
    StepUnderflow {
        /// Simulation time at which the step collapsed.
        time: f64,
        /// The rejected step size.
        dt: f64,
        /// Rescue-ladder rungs attempted on the failing step before
        /// giving up (0 when the ladder is disabled).
        rescue_rungs: usize,
    },
    /// A non-finite value (NaN/∞) appeared in the Newton update: the
    /// iteration is numerically destroyed and cannot recover by
    /// iterating further.
    NumericalBreakdown {
        /// Simulation time at which the breakdown occurred (NaN for
        /// DC).
        time: f64,
        /// The iteration that produced the non-finite update.
        iteration: usize,
    },
    /// A node name was looked up that does not exist in the circuit.
    UnknownNode {
        /// The offending name.
        name: String,
    },
    /// An element id was used with the wrong circuit or element kind.
    InvalidElement {
        /// Explanation of the misuse.
        reason: &'static str,
    },
    /// An element parameter is out of its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Supplied value.
        value: f64,
    },
    /// Simulation output failed waveform construction (e.g. a
    /// degenerate time grid).
    Waveform(WaveformError),
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SingularMatrix { col } => {
                write!(f, "singular system matrix (pivot lost at unknown #{col})")
            }
            Self::NonConvergence {
                time,
                iterations,
                max_delta,
                max_residual,
            } => {
                write!(
                    f,
                    "newton iteration failed to converge at t = {time} after {iterations} iterations (final max |dV| = {max_delta:.3e} V, max |residual| = {max_residual:.3e} A)"
                )
            }
            Self::StepUnderflow {
                time,
                dt,
                rescue_rungs,
            } => {
                write!(
                    f,
                    "transient step underflow at t = {time} (dt = {dt:.3e}, {rescue_rungs} rescue rungs attempted)"
                )
            }
            Self::NumericalBreakdown { time, iteration } => {
                write!(
                    f,
                    "numerical breakdown (non-finite newton update) at t = {time}, iteration {iteration}"
                )
            }
            Self::UnknownNode { name } => write!(f, "unknown node `{name}`"),
            Self::InvalidElement { reason } => write!(f, "invalid element use: {reason}"),
            Self::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` is out of range: {value}")
            }
            Self::Waveform(e) => write!(f, "simulation output is not a valid waveform: {e}"),
        }
    }
}

impl From<WaveformError> for SpiceError {
    fn from(e: WaveformError) -> Self {
        Self::Waveform(e)
    }
}

impl std::error::Error for SpiceError {}

#[cfg(test)]
mod tests {
    use super::SpiceError;

    #[test]
    fn display_is_informative() {
        let msg = SpiceError::SingularMatrix { col: 3 }.to_string();
        assert!(msg.contains("singular"), "{msg}");
        assert!(msg.contains("#3"), "{msg}");
        let e = SpiceError::NonConvergence {
            time: 1e-9,
            iterations: 100,
            max_delta: 2.5e-3,
            max_residual: 4.0e-7,
        };
        let msg = e.to_string();
        assert!(msg.contains("100"), "{msg}");
        assert!(msg.contains("2.500e-3"), "{msg}");
        assert!(msg.contains("4.000e-7"), "{msg}");
        assert!(SpiceError::UnknownNode { name: "q".into() }
            .to_string()
            .contains("`q`"));
    }

    #[test]
    fn underflow_and_breakdown_carry_their_diagnostics() {
        let e = SpiceError::StepUnderflow {
            time: 3e-9,
            dt: 1e-19,
            rescue_rungs: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains("1.000e-19"), "{msg}");
        assert!(msg.contains("5 rescue rungs"), "{msg}");
        let b = SpiceError::NumericalBreakdown {
            time: 2e-9,
            iteration: 7,
        };
        let msg = b.to_string();
        assert!(msg.contains("non-finite"), "{msg}");
        assert!(msg.contains('7'), "{msg}");
    }
}
