//! A SPICE-dialect netlist parser.
//!
//! Supports the subset of classic SPICE-deck syntax the simulator can
//! represent, so circuits can be described in text instead of builder
//! calls:
//!
//! ```text
//! * comment lines start with '*'
//! Vdd   vdd 0  DC 1.1
//! Vin   in  0  PWL(0 0  1n 0  1.1n 1.1)
//! Vclk  ck  0  PULSE(0 1.1 2n 0.1n 0.1n 3n 8n)
//! R1    in  a  10k
//! C1    a   0  5f
//! Iinj  0   a  DC 1u
//! M1    d g s  NMOS  W=240n L=90n
//! M2    d g vdd PMOS W=480n L=90n
//! ```
//!
//! * Element kind comes from the first letter of the name (R/C/V/I/M),
//!   case-insensitive.
//! * Values accept engineering suffixes `f p n u m k meg g t` (and
//!   `MEG` for 1e6, since `m` is milli).
//! * MOSFETs take a model name (`NMOS`/`PMOS`, mapped to the 90 nm
//!   defaults) plus optional `W=`/`L=` overrides.
//! * `.end` and blank lines are ignored; anything else is an error
//!   with a line number.

use crate::{Circuit, ElementId, MosfetParams, Source, SpiceError};
use samurai_waveform::Pwl;
use std::collections::BTreeMap;

/// A parsed netlist: the circuit plus name → element-id lookup.
#[derive(Debug, Clone)]
pub struct ParsedNetlist {
    /// The constructed circuit.
    pub circuit: Circuit,
    /// Element ids by (upper-cased) element name.
    pub elements: BTreeMap<String, ElementId>,
    /// A `.tran tstep tstop` directive, if present (suggested output
    /// step and stop time, both in seconds).
    pub tran: Option<(f64, f64)>,
}

impl ParsedNetlist {
    /// Looks up an element by its netlist name (case-insensitive).
    pub fn element(&self, name: &str) -> Option<ElementId> {
        self.elements.get(&name.to_ascii_uppercase()).copied()
    }
}

/// Error with netlist position information.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseNetlistError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "netlist line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseNetlistError {}

impl From<ParseNetlistError> for SpiceError {
    fn from(e: ParseNetlistError) -> Self {
        SpiceError::InvalidElement {
            reason: Box::leak(e.to_string().into_boxed_str()),
        }
    }
}

/// Parses a numeric value with an optional engineering suffix.
///
/// # Errors
///
/// Returns a description of the malformed token.
pub fn parse_value(token: &str) -> Result<f64, String> {
    let t = token.trim();
    if t.is_empty() {
        return Err("empty value".into());
    }
    let lower = t.to_ascii_lowercase();
    // Check multi-letter suffix first (meg), then single letters.
    let (digits, scale) = if let Some(stripped) = lower.strip_suffix("meg") {
        (stripped, 1e6)
    } else {
        let last = lower.chars().last().expect("non-empty token"); // lint: allow(HYG002): token verified non-empty above
        let scale = match last {
            'f' => Some(1e-15),
            'p' => Some(1e-12),
            'n' => Some(1e-9),
            'u' => Some(1e-6),
            'm' => Some(1e-3),
            'k' => Some(1e3),
            'g' => Some(1e9),
            't' => Some(1e12),
            _ => None,
        };
        match scale {
            Some(s) => (&lower[..lower.len() - 1], s),
            None => (lower.as_str(), 1.0),
        }
    };
    digits
        .parse::<f64>()
        .map(|v| v * scale)
        .map_err(|_| format!("malformed value `{token}`"))
}

/// Splits a source specification into either DC or a waveform.
fn parse_source(tokens: &[&str], line: usize) -> Result<Source, ParseNetlistError> {
    let err = |message: String| ParseNetlistError { line, message };
    if tokens.is_empty() {
        return Err(err("missing source value".into()));
    }
    let joined = tokens.join(" ");
    let upper = joined.to_ascii_uppercase();
    if let Some(rest) = upper.strip_prefix("DC") {
        let value = parse_value(rest.trim()).map_err(|m| err(format!("bad DC value: {m}")))?;
        return Ok(Source::Dc(value));
    }
    if upper.starts_with("PWL") {
        let inner =
            extract_parens(&joined).ok_or_else(|| err("PWL needs a parenthesised list".into()))?;
        let nums = split_numbers(&inner).map_err(&err)?;
        if nums.len() < 2 || nums.len() % 2 != 0 {
            return Err(err("PWL needs an even number of values (t v pairs)".into()));
        }
        let points: Vec<(f64, f64)> = nums.chunks(2).map(|c| (c[0], c[1])).collect();
        let pwl = Pwl::new(points).map_err(|e| err(format!("bad PWL: {e}")))?;
        return Ok(Source::Pwl(pwl));
    }
    if upper.starts_with("PULSE") {
        let inner = extract_parens(&joined)
            .ok_or_else(|| err("PULSE needs a parenthesised list".into()))?;
        let nums = split_numbers(&inner).map_err(&err)?;
        if nums.len() != 7 {
            return Err(err(
                "PULSE needs 7 values: v1 v2 delay rise fall width period".into(),
            ));
        }
        let (v1, v2, delay, rise, fall, width, period) = (
            nums[0], nums[1], nums[2], nums[3], nums[4], nums[5], nums[6],
        );
        if period <= 0.0 || width <= 0.0 || rise <= 0.0 || fall <= 0.0 {
            return Err(err("PULSE durations must be positive".into()));
        }
        // Expand a finite but long pulse train (the simulator clamps
        // past the last breakpoint, so 64 periods is plenty for the
        // horizons this toolkit uses).
        let mut points = vec![(0.0f64.min(delay - 1e-18), v1)];
        for k in 0..64 {
            let start = delay + k as f64 * period;
            points.push((start, v1));
            points.push((start + rise, v2));
            points.push((start + rise + width, v2));
            points.push((start + rise + width + fall, v1));
        }
        // Deduplicate/monotonise defensively.
        points.dedup_by(|a, b| a.0 <= b.0);
        let pwl = Pwl::new(points).map_err(|e| err(format!("bad PULSE: {e}")))?;
        return Ok(Source::Pwl(pwl));
    }
    // Bare value = DC.
    if tokens.len() == 1 {
        let value = parse_value(tokens[0]).map_err(|m| err(format!("bad value: {m}")))?;
        return Ok(Source::Dc(value));
    }
    Err(err(format!("unrecognised source spec `{joined}`")))
}

fn extract_parens(s: &str) -> Option<String> {
    let open = s.find('(')?;
    let close = s.rfind(')')?;
    if close <= open {
        return None;
    }
    Some(s[open + 1..close].to_string())
}

fn split_numbers(s: &str) -> Result<Vec<f64>, String> {
    s.split(|c: char| c.is_whitespace() || c == ',')
        .filter(|t| !t.is_empty())
        .map(parse_value)
        .collect()
}

/// Parses a netlist into a [`Circuit`].
///
/// # Errors
///
/// Returns the first syntax error with its line number.
pub fn parse_netlist(text: &str) -> Result<ParsedNetlist, ParseNetlistError> {
    let mut circuit = Circuit::new();
    let mut elements = BTreeMap::new();
    let mut tran = None;

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let err = |message: String| ParseNetlistError {
            line: line_no,
            message,
        };
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('*') {
            continue;
        }
        if line.starts_with('.') {
            // `.tran tstep tstop` is captured; other directives
            // (`.end`, `.option`, …) are accepted and ignored.
            let tokens: Vec<&str> = line.split_whitespace().collect();
            if tokens[0].eq_ignore_ascii_case(".tran") {
                if tokens.len() != 3 {
                    return Err(err(".tran needs: .tran tstep tstop".into()));
                }
                let tstep = parse_value(tokens[1]).map_err(err)?;
                let tstop = parse_value(tokens[2]).map_err(err)?;
                if !(tstep > 0.0 && tstop > tstep) {
                    return Err(err("need 0 < tstep < tstop".into()));
                }
                tran = Some((tstep, tstop));
            }
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let name = tokens[0].to_ascii_uppercase();
        let kind = name.chars().next().expect("non-empty token"); // lint: allow(HYG002): blank lines are skipped by the loop guard

        let id = match kind {
            'R' => {
                if tokens.len() != 4 {
                    return Err(err("resistor needs: Rname n1 n2 value".into()));
                }
                let a = circuit.node(tokens[1]);
                let b = circuit.node(tokens[2]);
                let v = parse_value(tokens[3]).map_err(err)?;
                if v <= 0.0 {
                    return Err(err(format!("resistance must be positive, got {v}")));
                }
                circuit.resistor(a, b, v)
            }
            'C' => {
                if tokens.len() != 4 {
                    return Err(err("capacitor needs: Cname n1 n2 value".into()));
                }
                let a = circuit.node(tokens[1]);
                let b = circuit.node(tokens[2]);
                let v = parse_value(tokens[3]).map_err(err)?;
                if v <= 0.0 {
                    return Err(err(format!("capacitance must be positive, got {v}")));
                }
                circuit.capacitor(a, b, v)
            }
            'V' => {
                if tokens.len() < 4 {
                    return Err(err("voltage source needs: Vname n+ n- spec".into()));
                }
                let plus = circuit.node(tokens[1]);
                let minus = circuit.node(tokens[2]);
                let source = parse_source(&tokens[3..], line_no)?;
                circuit.vsource(plus, minus, source)
            }
            'I' => {
                if tokens.len() < 4 {
                    return Err(err("current source needs: Iname from to spec".into()));
                }
                let from = circuit.node(tokens[1]);
                let to = circuit.node(tokens[2]);
                let source = parse_source(&tokens[3..], line_no)?;
                circuit.isource(from, to, source)
            }
            'M' => {
                if tokens.len() < 5 {
                    return Err(err("mosfet needs: Mname d g s MODEL [W=..] [L=..]".into()));
                }
                let d = circuit.node(tokens[1]);
                let g = circuit.node(tokens[2]);
                let s = circuit.node(tokens[3]);
                let model = tokens[4].to_ascii_uppercase();
                let mut params = match model.as_str() {
                    "NMOS" => MosfetParams::nmos_90nm(1.0),
                    "PMOS" => MosfetParams::pmos_90nm(1.0),
                    other => {
                        return Err(err(format!(
                            "unknown MOSFET model `{other}` (NMOS/PMOS supported)"
                        )))
                    }
                };
                for kv in &tokens[5..] {
                    let (key, value) = kv
                        .split_once('=')
                        .ok_or_else(|| err(format!("expected KEY=value, got `{kv}`")))?;
                    let v = parse_value(value).map_err(err)?;
                    match key.to_ascii_uppercase().as_str() {
                        "W" => params.width = v,
                        "L" => params.length = v,
                        "VTH" => params.vth = v,
                        other => return Err(err(format!("unknown MOSFET parameter `{other}`"))),
                    }
                }
                if params.width <= 0.0 || params.length <= 0.0 {
                    return Err(err("W and L must be positive".into()));
                }
                circuit.mosfet(d, g, s, params)
            }
            other => {
                return Err(err(format!(
                    "unknown element kind `{other}` (R/C/V/I/M supported)"
                )))
            }
        };
        if elements.insert(name.clone(), id).is_some() {
            return Err(err(format!("duplicate element name `{name}`")));
        }
    }

    Ok(ParsedNetlist {
        circuit,
        elements,
        tran,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dc_operating_point, run_transient, DcConfig, TransientConfig};

    #[test]
    fn value_suffixes() {
        let close = |got: f64, want: f64| (got - want).abs() <= 1e-12 * want.abs();
        assert!(close(parse_value("10k").unwrap(), 10e3));
        assert!(close(parse_value("5f").unwrap(), 5e-15));
        assert!(close(parse_value("2.5n").unwrap(), 2.5e-9));
        assert!(close(parse_value("3MEG").unwrap(), 3e6));
        assert!(close(parse_value("1m").unwrap(), 1e-3));
        assert!(close(parse_value("-4u").unwrap(), -4e-6));
        assert!(close(parse_value("100").unwrap(), 100.0));
        assert!(parse_value("abc").is_err());
        assert!(parse_value("").is_err());
    }

    #[test]
    fn parses_and_solves_a_divider() {
        let net = parse_netlist(
            "* a divider\n\
             Vs  a 0 DC 3\n\
             R1  a b 1k\n\
             R2  b 0 2k\n\
             .end\n",
        )
        .unwrap();
        assert_eq!(net.circuit.element_count(), 3);
        assert!(net.element("r1").is_some());
        assert!(net.element("zzz").is_none());
        let x = dc_operating_point(&net.circuit, 0.0, &DcConfig::default()).unwrap();
        let b = net.circuit.find_node("b").unwrap().unknown_index().unwrap();
        assert!((x[b] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn parses_pwl_and_pulse_sources() {
        let net = parse_netlist(
            "Vin in 0 PWL(0 0 1n 0 1.1n 1.1)\n\
             Vck ck 0 PULSE(0 1.1 2n 0.1n 0.1n 3n 8n)\n\
             R1 in 0 1k\n\
             R2 ck 0 1k\n",
        )
        .unwrap();
        let res = run_transient(&net.circuit, 0.0, 12e-9, &TransientConfig::default()).unwrap();
        let vin = res.voltage(&net.circuit, "in").unwrap();
        assert!((vin.eval(5e-9) - 1.1).abs() < 1e-9);
        let vck = res.voltage(&net.circuit, "ck").unwrap();
        assert!((vck.eval(3e-9) - 1.1).abs() < 1e-9, "pulse high");
        assert!(vck.eval(6e-9).abs() < 1e-9, "pulse low again");
        assert!((vck.eval(11e-9) - 1.1).abs() < 1e-9, "second period");
    }

    #[test]
    fn parses_an_inverter_with_mosfet_params() {
        let net = parse_netlist(
            "Vdd vdd 0 DC 1.1\n\
             Vin a 0 DC 0\n\
             M1 y a 0 NMOS W=240n L=90n\n\
             M2 y a vdd PMOS W=480n L=90n\n\
             C1 y 0 1f\n",
        )
        .unwrap();
        let m1 = net.element("M1").unwrap();
        let params = net.circuit.mosfet_params(m1).unwrap();
        assert!((params.width - 240e-9).abs() < 1e-15);
        let x = dc_operating_point(&net.circuit, 0.0, &DcConfig::default()).unwrap();
        let y = net.circuit.find_node("y").unwrap().unknown_index().unwrap();
        assert!(
            x[y] > 1.0,
            "inverter output high for low input, got {}",
            x[y]
        );
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let e = parse_netlist("R1 a b 1k\nXQ a b c\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("unknown element kind"));

        let e = parse_netlist("R1 a b\n").unwrap_err();
        assert_eq!(e.line, 1);

        let e = parse_netlist("R1 a b 1k\nR1 b c 2k\n").unwrap_err();
        assert!(e.message.contains("duplicate"));

        let e = parse_netlist("V1 a 0 PWL(0 0 1n)\n").unwrap_err();
        assert!(e.message.contains("even number"));

        let e = parse_netlist("M1 d g s BJT\n").unwrap_err();
        assert!(e.message.contains("unknown MOSFET model"));

        let e = parse_netlist("R1 a b -5\n").unwrap_err();
        assert!(e.message.contains("positive"));
    }

    #[test]
    fn comments_blanks_and_directives_are_ignored() {
        let net = parse_netlist(
            "* top comment\n\
             \n\
             .option whatever\n\
             R1 a 0 1k\n\
             .end\n",
        )
        .unwrap();
        assert_eq!(net.circuit.element_count(), 1);
    }
}
