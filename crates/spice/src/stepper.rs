//! A single-stepping transient interface for co-simulation.
//!
//! [`run_transient`](crate::run_transient) integrates a fixed netlist
//! over a whole horizon. Bi-directionally coupled RTN simulation (the
//! paper's future-work item 1) instead interleaves circuit steps with
//! trap-state updates: after every step the RTN current sources are
//! rewritten from the *live* node voltages before the next step is
//! taken. [`TransientStepper`] exposes exactly that loop: construct it
//! (solves the DC operating point), then alternate
//! [`step`](TransientStepper::step) with `Circuit::set_source` calls.

use crate::dcop::{dc_operating_point, DcConfig};
use crate::engine::{newton_solve, update_cap_states, CapState, IntegMode, NewtonConfig};
use crate::netlist::NodeId;
use crate::{Circuit, SpiceError};

/// Owns the evolving transient state (solution vector and capacitor
/// history) between externally driven steps.
#[derive(Debug, Clone)]
pub struct TransientStepper {
    x: Vec<f64>,
    cap_states: Vec<CapState>,
    t: f64,
    newton: NewtonConfig,
}

impl TransientStepper {
    /// Initialises the state from the DC operating point at `t0`.
    ///
    /// # Errors
    ///
    /// Propagates DC convergence failures.
    pub fn new(ckt: &Circuit, t0: f64, dc: &DcConfig) -> Result<Self, SpiceError> {
        let x = dc_operating_point(ckt, t0, dc)?;
        let mut cap_states = vec![CapState::default(); ckt.cap_state_count];
        update_cap_states(
            ckt,
            &x,
            IntegMode::BackwardEuler { h: 1.0 },
            &mut cap_states,
        );
        for s in cap_states.iter_mut() {
            s.i_prev = 0.0;
        }
        Ok(Self {
            x,
            cap_states,
            t: t0,
            newton: NewtonConfig::default(),
        })
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.t
    }

    /// Advances the circuit by `h` using backward Euler (L-stable — the
    /// right choice when the caller changes sources discontinuously
    /// between steps). The circuit may have been mutated through
    /// `Circuit::set_source` since the last step, but its topology must
    /// be unchanged.
    ///
    /// # Errors
    ///
    /// Propagates Newton failures; the state is left at the last
    /// accepted step so the caller may retry with a smaller `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is not positive, or if the circuit's unknown count
    /// changed since construction.
    pub fn step(&mut self, ckt: &Circuit, h: f64) -> Result<(), SpiceError> {
        assert!(h > 0.0 && h.is_finite(), "step must be positive");
        assert_eq!(
            self.x.len(),
            ckt.unknown_count(),
            "circuit topology changed under the stepper"
        );
        let mode = IntegMode::BackwardEuler { h };
        let t_new = self.t + h;
        let mut x_try = self.x.clone();
        newton_solve(
            ckt,
            &mut x_try,
            t_new,
            mode,
            &self.cap_states,
            1.0,
            0.0,
            &self.newton,
        )?;
        update_cap_states(ckt, &x_try, mode, &mut self.cap_states);
        self.x = x_try;
        self.t = t_new;
        Ok(())
    }

    /// The voltage of `node` in the current state.
    pub fn voltage(&self, node: NodeId) -> f64 {
        match node.unknown_index() {
            Some(i) => self.x[i],
            None => 0.0,
        }
    }

    /// The drain current of MOSFET `id` in the current state.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidElement`] if `id` is not a MOSFET.
    pub fn mosfet_current(&self, ckt: &Circuit, id: crate::ElementId) -> Result<f64, SpiceError> {
        let (d, g, s) = ckt.mosfet_nodes(id)?;
        let params = ckt.mosfet_params(id)?;
        let (i, ..) = params.eval(self.voltage(d), self.voltage(g), self.voltage(s));
        Ok(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Source, TransientConfig};
    use samurai_waveform::Pwl;

    #[test]
    fn stepping_matches_run_transient_for_an_rc() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.vsource(
            vin,
            Circuit::GROUND,
            Source::Pwl(Pwl::step(0.0, 1.0, 1e-9, 1e-12).unwrap()),
        );
        ckt.resistor(vin, vout, 1e3);
        ckt.capacitor(vout, Circuit::GROUND, 1e-12);

        let mut stepper = TransientStepper::new(&ckt, 0.0, &DcConfig::default()).unwrap();
        let h = 5e-12;
        while stepper.time() < 8e-9 {
            stepper.step(&ckt, h).unwrap();
        }
        let out_node = ckt.find_node("out").unwrap();
        let batch = crate::run_transient(&ckt, 0.0, 8e-9, &TransientConfig::default()).unwrap();
        let reference = batch.voltage(&ckt, "out").unwrap().eval(stepper.time());
        assert!(
            (stepper.voltage(out_node) - reference).abs() < 0.02,
            "stepper {} vs batch {reference}",
            stepper.voltage(out_node)
        );
    }

    #[test]
    fn sources_can_be_rewritten_between_steps() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let inj = ckt.isource(Circuit::GROUND, a, Source::Dc(0.0));
        ckt.resistor(a, Circuit::GROUND, 1e3);
        let mut stepper = TransientStepper::new(&ckt, 0.0, &DcConfig::default()).unwrap();
        assert!(stepper.voltage(a).abs() < 1e-9);
        ckt.set_source(inj, Source::Dc(1e-3)).unwrap();
        stepper.step(&ckt, 1e-12).unwrap();
        assert!((stepper.voltage(a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn mosfet_current_readback() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.vsource(vdd, Circuit::GROUND, Source::Dc(1.1));
        let g = ckt.node("g");
        ckt.vsource(g, Circuit::GROUND, Source::Dc(1.1));
        let d = ckt.node("d");
        ckt.resistor(vdd, d, 1e4);
        let m = ckt.mosfet(d, g, Circuit::GROUND, crate::MosfetParams::nmos_90nm(2.0));
        let stepper = TransientStepper::new(&ckt, 0.0, &DcConfig::default()).unwrap();
        let i = stepper.mosfet_current(&ckt, m).unwrap();
        assert!(i > 1e-6, "transistor should conduct: {i}");
    }
}
