//! A single-stepping transient interface for co-simulation.
//!
//! [`run_transient`](crate::run_transient) integrates a fixed netlist
//! over a whole horizon. Bi-directionally coupled RTN simulation (the
//! paper's future-work item 1) instead interleaves circuit steps with
//! trap-state updates: after every step the RTN current sources are
//! rewritten from the *live* node voltages before the next step is
//! taken. [`TransientStepper`] exposes exactly that loop: construct it
//! (compiles the circuit and solves the DC operating point), then
//! alternate [`step`](TransientStepper::step) with
//! [`set_source`](TransientStepper::set_source) calls. All solver
//! storage lives in the stepper's persistent workspace, so the
//! step/rewrite loop is allocation-free.

use samurai_core::faults::{FaultArm, FaultKind};

use crate::compiled::{CompiledCircuit, IntegMode, NewtonConfig, NewtonWorkspace};
use crate::dcop::DcConfig;
use crate::netlist::{NodeId, Source};
use crate::{Circuit, SpiceError};

/// Owns the compiled circuit and the evolving transient state
/// (solution vector and capacitor history) between externally driven
/// steps.
#[derive(Debug, Clone)]
pub struct TransientStepper {
    compiled: CompiledCircuit,
    ws: NewtonWorkspace,
    t: f64,
    newton: NewtonConfig,
}

impl TransientStepper {
    /// Compiles `ckt` and initialises the state from the DC operating
    /// point at `t0`.
    ///
    /// # Errors
    ///
    /// Propagates DC convergence failures.
    pub fn new(ckt: &Circuit, t0: f64, dc: &DcConfig) -> Result<Self, SpiceError> {
        let compiled = CompiledCircuit::compile(ckt);
        let mut ws = NewtonWorkspace::new(&compiled);
        compiled.init_transient(&mut ws, t0, dc)?;
        Ok(Self {
            compiled,
            ws,
            t: t0,
            newton: NewtonConfig::default(),
        })
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.t
    }

    /// Arms fault injection on this stepper's workspace: `solve`
    /// triggers inside the Newton loop, `step` triggers at each
    /// [`step`](Self::step) call. Used by the fault-injection suite;
    /// disarmed arms are free.
    pub fn arm_faults(&mut self, solve: FaultArm, step: FaultArm) {
        self.ws.arm_faults(solve, step);
    }

    /// Rewrites the waveform of voltage/current source `id`, effective
    /// from the next [`step`](Self::step).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidElement`] if `id` does not name a
    /// voltage or current source.
    pub fn set_source(&mut self, id: crate::ElementId, source: Source) -> Result<(), SpiceError> {
        self.compiled.set_source(id, source)
    }

    /// Advances the circuit by `h` using backward Euler (L-stable — the
    /// right choice when the caller changes sources discontinuously
    /// between steps).
    ///
    /// # Errors
    ///
    /// Propagates Newton failures; the state is left at the last
    /// accepted step so the caller may retry with a smaller `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is not positive.
    // lint: hot-loop
    // Callers drive `step` once per coupled-simulation timestep; it
    // must not allocate (the compiled circuit and workspace own all
    // the storage).
    pub fn step(&mut self, h: f64) -> Result<(), SpiceError> {
        assert!(h > 0.0 && h.is_finite(), "step must be positive");
        let mode = IntegMode::BackwardEuler { h };
        let t_new = self.t + h;
        if let Some(kind) = self.ws.step_arm.check() {
            self.ws.stats.faults_injected += 1;
            return Err(match kind {
                FaultKind::SingularMatrix => self.compiled.singular_at(0),
                FaultKind::NanResidual => SpiceError::NumericalBreakdown {
                    time: t_new,
                    iteration: 0,
                },
                FaultKind::NonConvergence => SpiceError::NonConvergence {
                    time: t_new,
                    iterations: 0,
                    max_delta: f64::INFINITY,
                    max_residual: f64::INFINITY,
                },
                FaultKind::TimestepFloor => SpiceError::StepUnderflow {
                    time: self.t,
                    dt: h,
                    rescue_rungs: 0,
                },
            });
        }
        self.compiled
            .solve_trial(&mut self.ws, t_new, mode, &self.newton)?;
        self.compiled.refresh_states(&mut self.ws, true);
        self.ws.accept_trial();
        self.ws.stats.steps_accepted += 1;
        self.t = t_new;
        Ok(())
    }
    // lint: end-hot-loop

    /// The solver telemetry accumulated on this stepper's workspace
    /// (see [`NewtonWorkspace::stats`]).
    pub fn stats(&self) -> samurai_telemetry::SolverStats {
        self.ws.stats()
    }

    /// The voltage of `node` in the current state.
    pub fn voltage(&self, node: NodeId) -> f64 {
        match node.unknown_index() {
            Some(i) => self.ws.solution()[i],
            None => 0.0,
        }
    }

    /// The drain current of MOSFET `id` in the current state.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidElement`] if `id` is not a MOSFET.
    pub fn mosfet_current(&self, id: crate::ElementId) -> Result<f64, SpiceError> {
        let m = self.compiled.mosfet(id)?;
        let x = self.ws.solution();
        let v = |n: Option<usize>| n.map_or(0.0, |i| x[i]);
        let (i, ..) = m.params.eval(v(m.d), v(m.g), v(m.s));
        Ok(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Source, TransientConfig};
    use samurai_waveform::Pwl;

    #[test]
    fn stepping_matches_run_transient_for_an_rc() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.vsource(
            vin,
            Circuit::GROUND,
            Source::Pwl(Pwl::step(0.0, 1.0, 1e-9, 1e-12).unwrap()),
        );
        ckt.resistor(vin, vout, 1e3);
        ckt.capacitor(vout, Circuit::GROUND, 1e-12);

        let mut stepper = TransientStepper::new(&ckt, 0.0, &DcConfig::default()).unwrap();
        let h = 5e-12;
        while stepper.time() < 8e-9 {
            stepper.step(h).unwrap();
        }
        let out_node = ckt.find_node("out").unwrap();
        let batch = crate::run_transient(&ckt, 0.0, 8e-9, &TransientConfig::default()).unwrap();
        let reference = batch.voltage(&ckt, "out").unwrap().eval(stepper.time());
        assert!(
            (stepper.voltage(out_node) - reference).abs() < 0.02,
            "stepper {} vs batch {reference}",
            stepper.voltage(out_node)
        );
    }

    #[test]
    fn sources_can_be_rewritten_between_steps() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let inj = ckt.isource(Circuit::GROUND, a, Source::Dc(0.0));
        ckt.resistor(a, Circuit::GROUND, 1e3);
        let mut stepper = TransientStepper::new(&ckt, 0.0, &DcConfig::default()).unwrap();
        assert!(stepper.voltage(a).abs() < 1e-9);
        stepper.set_source(inj, Source::Dc(1e-3)).unwrap();
        stepper.step(1e-12).unwrap();
        assert!((stepper.voltage(a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn set_source_rejects_non_sources() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let r = ckt.resistor(a, Circuit::GROUND, 1e3);
        ckt.vsource(a, Circuit::GROUND, Source::Dc(1.0));
        let mut stepper = TransientStepper::new(&ckt, 0.0, &DcConfig::default()).unwrap();
        assert!(matches!(
            stepper.set_source(r, Source::Dc(0.0)),
            Err(SpiceError::InvalidElement { .. })
        ));
    }

    #[test]
    fn mosfet_current_readback() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.vsource(vdd, Circuit::GROUND, Source::Dc(1.1));
        let g = ckt.node("g");
        ckt.vsource(g, Circuit::GROUND, Source::Dc(1.1));
        let d = ckt.node("d");
        ckt.resistor(vdd, d, 1e4);
        let m = ckt.mosfet(d, g, Circuit::GROUND, crate::MosfetParams::nmos_90nm(2.0));
        let stepper = TransientStepper::new(&ckt, 0.0, &DcConfig::default()).unwrap();
        let i = stepper.mosfet_current(m).unwrap();
        assert!(i > 1e-6, "transistor should conduct: {i}");
    }
}
