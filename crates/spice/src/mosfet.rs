//! A smooth all-region MOSFET model with analytic derivatives.
//!
//! The EKV-style interpolation function `F(x) = ln²(1 + e^{x/2})`
//! reproduces the exponential subthreshold region (`F → e^x`) and the
//! square law (`F → x²/4`) with an infinitely smooth transition — the
//! property that matters most for Newton convergence. Drain current
//! (NMOS, source-referenced, `V_ds ≥ 0`):
//!
//! ```text
//! I_D = I₀ · [F(u_f) − F(u_r)] · (1 + λ·V_ds)
//! u_f = (V_gs − V_th)/(n·φ_t),  u_r = (V_gs − V_th − n·V_ds)/(n·φ_t)
//! I₀  = 2·n·(μC_ox)·(W/L)·φ_t²
//! ```
//!
//! Negative `V_ds` uses the device's source/drain symmetry; PMOS is the
//! NMOS equations with all terminal voltages negated. The charge model
//! is three constant capacitors (gate–source, gate–drain,
//! drain–bulk/source–bulk) scaled with geometry — sufficient for
//! write-timing dynamics, documented as a substitution in DESIGN.md §3.

use serde::{Deserialize, Serialize};

/// NMOS or PMOS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MosType {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

/// Parameters of one MOSFET instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosfetParams {
    /// Device polarity.
    pub mos_type: MosType,
    /// Channel width in metres.
    pub width: f64,
    /// Channel length in metres.
    pub length: f64,
    /// Threshold voltage magnitude in volts (positive for both types).
    pub vth: f64,
    /// Subthreshold slope factor `n` (typically 1.2–1.5).
    pub n: f64,
    /// Process transconductance `μ·C_ox` in A/V².
    pub mu_cox: f64,
    /// Channel-length modulation `λ` in 1/V.
    pub lambda: f64,
    /// Thermal voltage `φ_t` in volts.
    pub phi_t: f64,
    /// Gate–source capacitance in farads.
    pub cgs: f64,
    /// Gate–drain capacitance in farads.
    pub cgd: f64,
    /// Drain–bulk (and source–bulk) junction capacitance in farads.
    pub cdb: f64,
}

impl MosfetParams {
    /// A 90 nm-node NMOS with width `w_mult` times the minimum 120 nm.
    pub fn nmos_90nm(w_mult: f64) -> Self {
        let width = 120e-9 * w_mult;
        let length = 90e-9;
        Self {
            mos_type: MosType::Nmos,
            width,
            length,
            vth: 0.35,
            n: 1.3,
            mu_cox: 300e-6,
            lambda: 0.15,
            phi_t: 0.02585,
            cgs: 0.4e-15 * w_mult,
            cgd: 0.3e-15 * w_mult,
            cdb: 0.3e-15 * w_mult,
        }
    }

    /// A 90 nm-node PMOS with width `w_mult` times the minimum 120 nm.
    pub fn pmos_90nm(w_mult: f64) -> Self {
        Self {
            mos_type: MosType::Pmos,
            vth: 0.35,
            mu_cox: 120e-6,
            ..Self::nmos_90nm(w_mult)
        }
    }

    /// Returns a copy with a shifted threshold voltage (for Monte-Carlo
    /// `V_T` variation — the paper's "other sources of variability").
    #[must_use]
    pub fn with_vth_shift(mut self, dv: f64) -> Self {
        self.vth += dv;
        self
    }

    /// `I₀ = 2·n·μC_ox·(W/L)·φ_t²`, the specific current scale.
    pub fn i0(&self) -> f64 {
        2.0 * self.n * self.mu_cox * (self.width / self.length) * self.phi_t * self.phi_t
    }

    /// Drain current and its partial derivatives with respect to the
    /// terminal voltages: `(i_d, di/dvd, di/dvg, di/dvs)`.
    ///
    /// Current direction: positive current flows from drain to source
    /// *inside* the device (standard NMOS convention; a conducting PMOS
    /// therefore reports negative `i_d`).
    pub fn eval(&self, vd: f64, vg: f64, vs: f64) -> (f64, f64, f64, f64) {
        match self.mos_type {
            MosType::Nmos => self.eval_nmos(vd, vg, vs),
            MosType::Pmos => {
                // PMOS = NMOS with negated terminal voltages; the
                // partials keep their sign (chain rule through two
                // negations).
                let (i, dd, dg, ds) = self.eval_nmos(-vd, -vg, -vs);
                (-i, dd, dg, ds)
            }
        }
    }

    fn eval_nmos(&self, vd: f64, vg: f64, vs: f64) -> (f64, f64, f64, f64) {
        if vd >= vs {
            self.eval_nmos_forward(vd, vg, vs)
        } else {
            // Source/drain symmetry: swap the roles, negate current.
            let (i, dd, dg, ds) = self.eval_nmos_forward(vs, vg, vd);
            // Here dd is d(i)/d(new drain) = d(i)/d(vs) etc.
            (-i, -ds, -dg, -dd)
        }
    }

    fn eval_nmos_forward(&self, vd: f64, vg: f64, vs: f64) -> (f64, f64, f64, f64) {
        let vgs = vg - vs;
        let vds = vd - vs;
        let nphi = self.n * self.phi_t;
        let u_f = (vgs - self.vth) / nphi;
        let u_r = (vgs - self.vth - self.n * vds) / nphi;
        let (ff, dff) = big_f(u_f);
        let (fr, dfr) = big_f(u_r);
        let clm = 1.0 + self.lambda * vds;
        let i0 = self.i0();

        let i_core = i0 * (ff - fr);
        let id = i_core * clm;

        let di_dvgs = i0 * (dff - dfr) / nphi * clm;
        let di_dvds = i0 * dfr / self.phi_t * clm + i_core * self.lambda;

        // Terminal derivatives.
        let dd = di_dvds;
        let dg = di_dvgs;
        let ds = -(di_dvgs + di_dvds);
        (id, dd, dg, ds)
    }
}

/// `F(x) = ln²(1 + e^{x/2})` and its derivative, numerically stable on
/// the whole real line.
fn big_f(x: f64) -> (f64, f64) {
    // l = ln(1 + e^{x/2}), s = sigmoid(x/2) = d l/d(x/2).
    let half = 0.5 * x;
    let (l, s) = if half > 30.0 {
        (half, 1.0)
    } else if half < -30.0 {
        let e = half.exp();
        (e, e)
    } else {
        (half.exp().ln_1p(), 1.0 / (1.0 + (-half).exp()))
    };
    (l * l, l * s) // dF/dx = 2·l·s·(1/2) = l·s
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn nmos() -> MosfetParams {
        MosfetParams::nmos_90nm(2.0)
    }

    fn pmos() -> MosfetParams {
        MosfetParams::pmos_90nm(2.0)
    }

    #[test]
    fn interpolation_function_limits() {
        // Strong inversion: F(x) -> x^2/4.
        let (f, _) = big_f(40.0);
        assert!((f / (40.0 * 40.0 / 4.0) - 1.0).abs() < 1e-6);
        // Subthreshold: F(x) -> e^x.
        let (f, _) = big_f(-20.0);
        assert!((f / (-20.0f64).exp() - 1.0).abs() < 1e-3);
        // Derivative by finite differences.
        for x in [-5.0, -1.0, 0.0, 1.0, 5.0, 20.0] {
            let h = 1e-6;
            let (f1, df) = big_f(x);
            let (f2, _) = big_f(x + h);
            assert!(
                ((f2 - f1) / h - df).abs() < 1e-4 * (1.0 + df.abs()),
                "x = {x}"
            );
        }
    }

    #[test]
    fn cutoff_linear_saturation_regions() {
        let m = nmos();
        let (off, ..) = m.eval(1.0, 0.0, 0.0);
        let (lin, ..) = m.eval(0.05, 1.0, 0.0);
        let (sat, ..) = m.eval(1.0, 1.0, 0.0);
        assert!(off < 1e-9, "cutoff current {off}");
        assert!(lin > 1e-6, "linear current {lin}");
        assert!(sat > lin, "saturation {sat} > linear {lin}");
        // Saturation current roughly flat in vd.
        let (sat2, ..) = m.eval(1.1, 1.0, 0.0);
        assert!((sat2 - sat) / sat < 0.05);
    }

    #[test]
    fn square_law_scaling_in_strong_inversion() {
        let m = nmos();
        let id = |vgs: f64| m.eval(1.5, vgs, 0.0).0;
        // (Vgs - Vth) doubling should ~quadruple the saturation current.
        let i1 = id(m.vth + 0.3);
        let i2 = id(m.vth + 0.6);
        let ratio = i2 / i1;
        assert!(ratio > 3.0 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn subthreshold_slope_is_exponential() {
        let m = nmos();
        let id = |vgs: f64| m.eval(1.0, vgs, 0.0).0;
        let i1 = id(m.vth - 0.3);
        let i2 = id(m.vth - 0.3 + m.n * m.phi_t);
        // One n·φt of gate drive = one e-fold of current.
        assert!((i2 / i1 / core::f64::consts::E - 1.0).abs() < 0.05);
    }

    #[test]
    fn reverse_operation_is_antisymmetric() {
        let m = nmos();
        let (fwd, ..) = m.eval(0.6, 1.0, 0.0);
        // Swap drain and source: the same channel carries the current
        // the other way.
        let (rev, ..) = m.eval(0.0, 1.0, 0.6);
        assert!(
            (fwd + rev).abs() < 1e-12 * fwd.abs().max(1e-12),
            "{fwd} vs {rev}"
        );
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let p = pmos();
        // PMOS on: gate low relative to source (source at 1.1 V).
        let (i_on, ..) = p.eval(0.0, 0.0, 1.1);
        assert!(i_on < -1e-6, "conducting PMOS current {i_on}");
        let (i_off, ..) = p.eval(0.0, 1.1, 1.1);
        assert!(i_off.abs() < 1e-9, "off PMOS current {i_off}");
    }

    proptest! {
        #[test]
        fn derivatives_match_finite_differences(
            vd in -1.2f64..1.2,
            vg in -1.2f64..1.2,
            vs in -1.2f64..1.2,
            is_pmos in any::<bool>(),
        ) {
            let m = if is_pmos { pmos() } else { nmos() };
            let h = 1e-7;
            let (i, dd, dg, ds) = m.eval(vd, vg, vs);
            let scale = 1e-6 + i.abs();
            let fd_d = (m.eval(vd + h, vg, vs).0 - i) / h;
            let fd_g = (m.eval(vd, vg + h, vs).0 - i) / h;
            let fd_s = (m.eval(vd, vg, vs + h).0 - i) / h;
            prop_assert!((fd_d - dd).abs() < 2e-2 * (scale / m.phi_t), "dd {dd} vs {fd_d}");
            prop_assert!((fd_g - dg).abs() < 2e-2 * (scale / m.phi_t), "dg {dg} vs {fd_g}");
            prop_assert!((fd_s - ds).abs() < 4e-2 * (scale / m.phi_t), "ds {ds} vs {fd_s}");
        }

        #[test]
        fn kcl_sum_of_partials_is_zero(
            vd in -1.2f64..1.2,
            vg in -1.2f64..1.2,
            vs in -1.2f64..1.2,
        ) {
            // Shifting all terminals together must not change the
            // current: the partials sum to zero.
            let m = nmos();
            let (_, dd, dg, ds) = m.eval(vd, vg, vs);
            let total: f64 = dd + dg + ds;
            prop_assert!(total.abs() < 1e-6 * (dd.abs() + dg.abs() + ds.abs() + 1e-12));
        }
    }
}
