//! A minimal command-line front end for the circuit simulator: read a
//! SPICE-dialect netlist, run the `.tran` analysis, print node
//! voltages as CSV.
//!
//! ```sh
//! cargo run -p samurai-spice --bin spice_cli -- deck.sp [node ...]
//! ```
//!
//! With no node arguments every node is printed. The deck must contain
//! a `.tran tstep tstop` directive; `tstep` sets the CSV sampling grid
//! (the solver's internal steps remain adaptive).

#![allow(clippy::print_stdout, clippy::print_stderr)] // terminal output is the deliverable
use std::process::ExitCode;

use samurai_spice::{parse_netlist, CompiledCircuit, NewtonWorkspace, TransientConfig};

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        return Err("usage: spice_cli <netlist.sp> [node ...]".into());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let parsed = parse_netlist(&text).map_err(|e| e.to_string())?;
    let (tstep, tstop) = parsed
        .tran
        .ok_or_else(|| "netlist has no .tran directive".to_string())?;

    let compiled = CompiledCircuit::compile(&parsed.circuit);
    let mut ws = NewtonWorkspace::new(&compiled);
    let result = compiled
        .run_transient(&mut ws, 0.0, tstop, &TransientConfig::default())
        .map_err(|e| format!("transient failed: {e}"))?;

    // Node selection: explicit list or all nodes in name order.
    let nodes: Vec<String> = if args.len() > 1 {
        args[1..].to_vec()
    } else {
        let mut names: Vec<String> = (1..=parsed.circuit.node_count())
            .map(|i| {
                // Reverse lookup by probing every known name is not
                // exposed; reconstruct from node ids via node_name.
                let id = samurai_spice::NodeId::from_index_for_cli(i);
                parsed.circuit.node_name(id).to_string()
            })
            .collect();
        names.sort();
        names
    };

    let waveforms: Vec<_> = nodes
        .iter()
        .map(|n| {
            result
                .voltage(&parsed.circuit, n)
                .map_err(|e| format!("{e}"))
        })
        .collect::<Result<_, _>>()?;

    // Header.
    let mut header = String::from("time_s");
    for n in &nodes {
        header.push_str(&format!(",v({n})"));
    }
    println!("{header}");
    let samples = (tstop / tstep).round() as usize;
    for k in 0..=samples {
        let t = k as f64 * tstep;
        let mut line = format!("{t:.6e}");
        for w in &waveforms {
            line.push_str(&format!(",{:.6e}", w.eval(t)));
        }
        println!("{line}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
