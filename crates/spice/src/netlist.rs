//! Netlist construction: named nodes and circuit elements.

use std::collections::BTreeMap;

use samurai_waveform::Pwl;

use crate::{MosfetParams, SpiceError};

/// A circuit node. `Circuit::GROUND` is the reference node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Index of this node's voltage among the MNA unknowns (and in
    /// [`DcConfig::initial_guess`](crate::DcConfig)), or `None` for
    /// ground.
    pub fn unknown_index(self) -> Option<usize> {
        self.0.checked_sub(1)
    }

    /// Reconstructs a node id from a 1-based creation index. Intended
    /// for tooling that iterates over all nodes of a circuit (e.g. the
    /// CLI); indices beyond [`Circuit::node_count`] are not valid.
    #[doc(hidden)]
    pub fn from_index_for_cli(index: usize) -> Self {
        NodeId(index)
    }
}

/// Identifies an element within its [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ElementId(pub(crate) usize);

/// The value of an independent source.
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// A constant value (volts or amperes).
    Dc(f64),
    /// A piecewise-linear waveform of time.
    Pwl(Pwl),
}

impl Source {
    /// The source value at time `t`.
    pub fn eval(&self, t: f64) -> f64 {
        match self {
            Self::Dc(v) => *v,
            Self::Pwl(w) => w.eval(t),
        }
    }

    /// Breakpoint times of the waveform (mandatory transient steps).
    pub fn breakpoints(&self) -> Vec<f64> {
        match self {
            Self::Dc(_) => Vec::new(),
            Self::Pwl(w) => w.breakpoint_times().collect(),
        }
    }
}

/// One circuit element.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Element {
    Resistor {
        a: NodeId,
        b: NodeId,
        conductance: f64,
    },
    Capacitor {
        a: NodeId,
        b: NodeId,
        capacitance: f64,
        /// Index into the transient capacitor-state array.
        state: usize,
    },
    /// Voltage source from `plus` to `minus`; `branch` indexes its
    /// current unknown.
    Vsource {
        plus: NodeId,
        minus: NodeId,
        source: Source,
        branch: usize,
    },
    /// Current source driving current out of `from` and into `to`.
    Isource {
        from: NodeId,
        to: NodeId,
        source: Source,
    },
    Mosfet {
        d: NodeId,
        g: NodeId,
        s: NodeId,
        params: MosfetParams,
        /// Indices of the three internal capacitor states
        /// (gate–source, gate–drain, drain–bulk).
        cap_states: [usize; 3],
    },
}

/// A circuit under construction (and the static description consumed
/// by the solvers).
///
/// # Examples
///
/// ```
/// use samurai_spice::{Circuit, Source};
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.vsource(a, Circuit::GROUND, Source::Dc(1.0));
/// ckt.resistor(a, Circuit::GROUND, 1e3);
/// assert_eq!(ckt.node_count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    names: BTreeMap<String, NodeId>,
    node_count: usize,
    pub(crate) elements: Vec<Element>,
    pub(crate) vsource_count: usize,
    pub(crate) cap_state_count: usize,
    /// Minimum conductance from every node to ground (numerical
    /// safety net); set to 0 to disable.
    pub gmin: f64,
}

impl Circuit {
    /// The reference (ground) node.
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty circuit with the default `gmin` of 1e-12 S.
    pub fn new() -> Self {
        Self {
            gmin: 1e-12,
            ..Self::default()
        }
    }

    /// Returns the node with the given name, creating it on first use.
    /// The name `"0"` and `"gnd"` map to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Self::GROUND;
        }
        if let Some(&id) = self.names.get(name) {
            return id;
        }
        self.node_count += 1;
        let id = NodeId(self.node_count);
        self.names.insert(name.to_owned(), id);
        id
    }

    /// Looks up an existing node by name.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] if no such node exists.
    pub fn find_node(&self, name: &str) -> Result<NodeId, SpiceError> {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Ok(Self::GROUND);
        }
        self.names
            .get(name)
            .copied()
            .ok_or_else(|| SpiceError::UnknownNode { name: name.into() })
    }

    /// Name of a node (ground reports `"0"`).
    pub fn node_name(&self, id: NodeId) -> &str {
        if id == Self::GROUND {
            return "0";
        }
        self.names
            .iter()
            .find(|(_, &n)| n == id)
            .map(|(name, _)| name.as_str())
            .unwrap_or("?")
    }

    /// Number of non-ground nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of MNA unknowns (node voltages + source branch currents).
    pub fn unknown_count(&self) -> usize {
        self.node_count + self.vsource_count
    }

    /// Number of elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Human-readable names of the MNA unknowns, in unknown order:
    /// node voltages first (by [`NodeId::unknown_index`]), then one
    /// `i(v<branch>)` label per voltage-source branch current. Used at
    /// reporting boundaries to resolve the unknown *index* carried by
    /// [`SpiceError::SingularMatrix`] into a name.
    pub fn unknown_names(&self) -> Vec<String> {
        let mut names = vec![String::new(); self.unknown_count()];
        for (name, &id) in &self.names {
            if let Some(i) = id.unknown_index() {
                names[i].clone_from(name);
            }
        }
        for e in &self.elements {
            if let Element::Vsource { branch, .. } = e {
                names[self.node_count + branch] = format!("i(v{branch})");
            }
        }
        names
    }

    /// Adds a resistor of `ohms` between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `ohms` is not positive and finite.
    pub fn resistor(&mut self, a: NodeId, b: NodeId, ohms: f64) -> ElementId {
        assert!(
            ohms > 0.0 && ohms.is_finite(),
            "resistance must be positive"
        );
        self.push(Element::Resistor {
            a,
            b,
            conductance: 1.0 / ohms,
        })
    }

    /// Adds a capacitor of `farads` between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `farads` is not positive and finite.
    pub fn capacitor(&mut self, a: NodeId, b: NodeId, farads: f64) -> ElementId {
        assert!(
            farads > 0.0 && farads.is_finite(),
            "capacitance must be positive"
        );
        let state = self.cap_state_count;
        self.cap_state_count += 1;
        self.push(Element::Capacitor {
            a,
            b,
            capacitance: farads,
            state,
        })
    }

    /// Adds a voltage source with `plus`/`minus` terminals.
    pub fn vsource(&mut self, plus: NodeId, minus: NodeId, source: Source) -> ElementId {
        let branch = self.vsource_count;
        self.vsource_count += 1;
        self.push(Element::Vsource {
            plus,
            minus,
            source,
            branch,
        })
    }

    /// Adds a current source driving current out of `from` and into
    /// `to` (through the external circuit the current returns
    /// `to → from`).
    pub fn isource(&mut self, from: NodeId, to: NodeId, source: Source) -> ElementId {
        self.push(Element::Isource { from, to, source })
    }

    /// Adds a MOSFET with drain/gate/source terminals (bulk is tied to
    /// ground for NMOS and implicitly to the source rail for PMOS in
    /// this simplified model).
    pub fn mosfet(&mut self, d: NodeId, g: NodeId, s: NodeId, params: MosfetParams) -> ElementId {
        let base = self.cap_state_count;
        self.cap_state_count += 3;
        self.push(Element::Mosfet {
            d,
            g,
            s,
            params,
            cap_states: [base, base + 1, base + 2],
        })
    }

    /// Replaces the waveform of an existing voltage or current source
    /// (used by the SRAM harness to attach RTN currents between the
    /// two passes, and by the coupled simulator each step).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidElement`] if `id` does not refer to
    /// a source.
    pub fn set_source(&mut self, id: ElementId, new_source: Source) -> Result<(), SpiceError> {
        match self.elements.get_mut(id.0) {
            Some(Element::Vsource { source, .. }) | Some(Element::Isource { source, .. }) => {
                *source = new_source;
                Ok(())
            }
            _ => Err(SpiceError::InvalidElement {
                reason: "set_source requires a voltage or current source id",
            }),
        }
    }

    /// The MOSFET parameters of element `id`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidElement`] if `id` is not a MOSFET.
    pub fn mosfet_params(&self, id: ElementId) -> Result<&MosfetParams, SpiceError> {
        match self.elements.get(id.0) {
            Some(Element::Mosfet { params, .. }) => Ok(params),
            _ => Err(SpiceError::InvalidElement {
                reason: "expected a MOSFET element id",
            }),
        }
    }

    /// The `(drain, gate, source)` nodes of MOSFET `id`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidElement`] if `id` is not a MOSFET.
    pub fn mosfet_nodes(&self, id: ElementId) -> Result<(NodeId, NodeId, NodeId), SpiceError> {
        match self.elements.get(id.0) {
            Some(Element::Mosfet { d, g, s, .. }) => Ok((*d, *g, *s)),
            _ => Err(SpiceError::InvalidElement {
                reason: "expected a MOSFET element id",
            }),
        }
    }

    /// All source breakpoints, sorted and deduplicated (mandatory
    /// transient time points).
    pub fn breakpoints(&self) -> Vec<f64> {
        let mut times: Vec<f64> = self
            .elements
            .iter()
            .flat_map(|e| match e {
                Element::Vsource { source, .. } | Element::Isource { source, .. } => {
                    source.breakpoints()
                }
                _ => Vec::new(),
            })
            .collect();
        times.sort_by(f64::total_cmp);
        times.dedup();
        times
    }

    fn push(&mut self, e: Element) -> ElementId {
        self.elements.push(e);
        ElementId(self.elements.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_interning() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let a2 = c.node("a");
        let b = c.node("b");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(c.node("gnd"), Circuit::GROUND);
        assert_eq!(c.node("0"), Circuit::GROUND);
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.find_node("a").unwrap(), a);
        assert!(c.find_node("zzz").is_err());
        assert_eq!(c.node_name(a), "a");
        assert_eq!(c.node_name(Circuit::GROUND), "0");
    }

    #[test]
    fn unknown_count_includes_vsource_branches() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        c.vsource(a, Circuit::GROUND, Source::Dc(1.0));
        c.resistor(a, b, 1e3);
        c.capacitor(b, Circuit::GROUND, 1e-12);
        assert_eq!(c.unknown_count(), 3);
        assert_eq!(c.element_count(), 3);
    }

    #[test]
    fn set_source_only_accepts_sources() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let r = c.resistor(a, Circuit::GROUND, 1.0);
        let v = c.vsource(a, Circuit::GROUND, Source::Dc(0.0));
        assert!(c.set_source(r, Source::Dc(1.0)).is_err());
        assert!(c.set_source(v, Source::Dc(2.0)).is_ok());
    }

    #[test]
    fn breakpoints_come_from_pwl_sources() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let w = Pwl::new(vec![(1e-9, 0.0), (2e-9, 1.0)]).unwrap();
        c.vsource(a, Circuit::GROUND, Source::Pwl(w));
        c.isource(a, Circuit::GROUND, Source::Dc(1e-6));
        assert_eq!(c.breakpoints(), vec![1e-9, 2e-9]);
    }

    #[test]
    fn mosfet_accessors() {
        let mut c = Circuit::new();
        let d = c.node("d");
        let g = c.node("g");
        let m = c.mosfet(d, g, Circuit::GROUND, MosfetParams::nmos_90nm(1.0));
        assert_eq!(c.mosfet_nodes(m).unwrap(), (d, g, Circuit::GROUND));
        assert!(c.mosfet_params(m).is_ok());
        let r = c.resistor(d, g, 1.0);
        assert!(c.mosfet_params(r).is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_resistance_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor(a, Circuit::GROUND, 0.0);
    }
}
