//! A transient circuit simulator built on modified nodal analysis —
//! the SPICE substrate of the SAMURAI methodology.
//!
//! The paper's SRAM flow (Fig 8, left) runs two SPICE transient
//! simulations: one RTN-free pass to extract each transistor's bias
//! waveforms, and one pass with the generated `I_RTN` current sources
//! attached. The authors used SpiceOPUS with BSIM-4 models; this crate
//! is the from-scratch Rust equivalent documented in DESIGN.md §3:
//!
//! * [`Circuit`] — a netlist builder over named nodes with resistors,
//!   capacitors, DC/PWL voltage and current sources and MOSFETs;
//! * [`MosfetParams`] — a smooth EKV-style all-region MOSFET I–V
//!   (exponential subthreshold, square-law strong inversion, smooth
//!   saturation, channel-length modulation) with analytic derivatives
//!   and a simple constant-capacitance charge model;
//! * [`CompiledCircuit`] / [`NewtonWorkspace`] — the compile-once
//!   engine: node names resolved to dense indices, elements lowered to
//!   [`Stamp`]s, Jacobian fill pattern precomputed, and every solver
//!   buffer owned by a persistent workspace so the Newton/timestep
//!   loop allocates nothing;
//! * [`SparsityPattern`] / [`CscMatrix`] / [`SparseLu`] — the sparse
//!   linear-solve path for generated arrays: a Gilbert–Peierls LU over
//!   a compile-time symbolic analysis, selected automatically above
//!   [`SPARSE_AUTO_THRESHOLD`] unknowns (or forced via
//!   [`SolverChoice`]);
//! * [`dc_operating_point`] — Newton–Raphson with per-step damping and
//!   gmin stepping;
//! * [`run_transient`] — backward-Euler or trapezoidal integration with
//!   adaptive step control and PWL-source breakpoints, returning every
//!   node voltage as a [`samurai_waveform::Pwl`] ready to feed the RTN
//!   generator.
//!
//! DC, AC and transient analysis all run through the single compiled
//! assembly/solve path: the free functions compile on the fly, while
//! the methods on [`CompiledCircuit`] reuse one workspace across runs
//! (see `CompiledCircuit::run_transient` and friends).
//!
//! # Example: an RC low-pass step response
//!
//! ```
//! use samurai_spice::{Circuit, Source, TransientConfig, run_transient};
//! use samurai_waveform::Pwl;
//!
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let vout = ckt.node("out");
//! ckt.vsource(vin, Circuit::GROUND, Source::Pwl(Pwl::step(0.0, 1.0, 1e-9, 1e-12)?));
//! ckt.resistor(vin, vout, 1e3);
//! ckt.capacitor(vout, Circuit::GROUND, 1e-12); // tau = 1 ns
//! let result = run_transient(&ckt, 0.0, 10e-9, &TransientConfig::default())?;
//! let out = result.voltage(&ckt, "out")?;
//! assert!(out.eval(10e-9) > 0.99);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod ac;
mod compiled;
mod dcop;
mod error;
mod linalg;
mod mosfet;
mod netlist;
pub mod parser;
mod patch;
mod sparse;
mod stepper;
mod transient;

pub use compiled::{
    CompiledCircuit, NewtonConfig, NewtonWorkspace, SolverChoice, SolverKind, Stamp,
    SPARSE_AUTO_THRESHOLD,
};
pub use dcop::{dc_operating_point, DcConfig};
pub use error::SpiceError;
pub use linalg::DenseMatrix;
pub use mosfet::{MosType, MosfetParams};
pub use netlist::{Circuit, ElementId, NodeId, Source};
pub use parser::{parse_netlist, ParsedNetlist};
pub use patch::{MosfetAdjust, ParamPatch, PatchUndo};
pub use samurai_telemetry::SolverStats;
pub use sparse::{CscMatrix, SparseLu, SparsityPattern};
pub use stepper::TransientStepper;
pub use transient::{run_transient, Integrator, RescueConfig, TransientConfig, TransientResult};
