//! The compile-once circuit engine: index-resolved device stamps, a
//! persistent Newton workspace, and the single assembly/solve path
//! shared by DC, AC and transient analysis.
//!
//! A [`Circuit`] is a *description*: elements refer to nodes through
//! [`NodeId`]s and every analysis used to re-match on the element enum
//! and re-allocate Jacobian/solution buffers per Newton iteration.
//! [`CompiledCircuit::compile`] lowers that description once:
//!
//! * every node reference becomes a dense `Option<usize>` unknown
//!   index (`None` = ground),
//! * every element becomes a concrete device stamp behind the
//!   [`Stamp`] trait,
//! * the Jacobian fill pattern (the set of matrix entries any stamp
//!   can ever write) is precomputed, so re-assembly clears only the
//!   touched entries.
//!
//! All per-solve storage lives in a [`NewtonWorkspace`] that is reused
//! across Newton iterations, timesteps and whole transient runs; after
//! construction the Newton/timestep loop performs no heap allocation
//! (the only allocation on the accepted-step path is the one
//! exact-sized solution snapshot a transient result must own).
//!
//! The nonlinear system is written in residual form: for every
//! non-ground node, `r = Σ currents leaving the node = 0`; for every
//! voltage source, `r = v(+) − v(−) − V(t) = 0`. Newton solves
//! `J·δ = −r` with a per-iteration voltage-step clamp that tames the
//! MOSFET exponentials. The LU factorisation is computed in a scratch
//! copy of the Jacobian (`solve_in_place` destroys its matrix), which
//! is what keeps fill-pattern clearing of the assembled Jacobian
//! valid.
//!
//! Two linear-solver backends sit behind one dispatch point
//! ([`SolverSystem`]): the dense LU of [`DenseMatrix`] and the sparse
//! Gilbert–Peierls LU of [`crate::SparseLu`]. The backend is fixed at
//! compile time ([`SolverChoice`], automatic by unknown count), so the
//! whole analysis stack — DC, AC operating points, transient, the
//! stepper, the rescue ladder — gains the sparse path without
//! changing a line.

use samurai_core::faults::{FaultArm, FaultKind};
use samurai_telemetry::SolverStats;

use crate::linalg::DenseMatrix;
use crate::netlist::{Circuit, Element, ElementId, Source};
use crate::sparse::{CscMatrix, SparseLu, SparsityPattern};
use crate::{MosfetParams, SpiceError};

/// Per-capacitor integration state (voltage across and current through
/// the capacitor at the last accepted time point).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct CapState {
    pub v_prev: f64,
    pub i_prev: f64,
}

/// How capacitors enter the system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum IntegMode {
    /// DC: capacitors are open circuits.
    Dc,
    /// Backward Euler with step `h`.
    BackwardEuler { h: f64 },
    /// Trapezoidal with step `h`.
    Trapezoidal { h: f64 },
}

impl IntegMode {
    /// Companion model `(g_eq, i_eq)` such that the capacitor current
    /// is `i = g_eq·v + i_eq` for the present voltage `v` across it.
    fn companion(self, c: f64, state: CapState) -> (f64, f64) {
        match self {
            IntegMode::Dc => (0.0, 0.0),
            IntegMode::BackwardEuler { h } => {
                let g = c / h;
                (g, -g * state.v_prev)
            }
            IntegMode::Trapezoidal { h } => {
                let g = 2.0 * c / h;
                (g, -g * state.v_prev - state.i_prev)
            }
        }
    }
}

/// Numerical controls for the Newton iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonConfig {
    /// Iteration budget before `NonConvergence` is reported.
    pub max_iterations: usize,
    /// Convergence threshold on the largest voltage update.
    pub v_tol: f64,
    /// Convergence threshold on the largest KCL residual (amperes).
    pub i_tol: f64,
    /// Per-iteration clamp on voltage updates (damping).
    pub v_step_clamp: f64,
}

impl Default for NewtonConfig {
    fn default() -> Self {
        Self {
            max_iterations: 200,
            v_tol: 1e-9,
            i_tol: 1e-9,
            v_step_clamp: 0.5,
        }
    }
}

/// Requested linear-solver backend for [`CompiledCircuit::compile_with_solver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverChoice {
    /// Pick by system size: dense below [`SPARSE_AUTO_THRESHOLD`]
    /// unknowns, sparse at or above it.
    #[default]
    Auto,
    /// Force the dense LU regardless of size.
    Dense,
    /// Force the sparse LU regardless of size.
    Sparse,
}

/// The linear-solver backend a circuit was actually compiled for (the
/// resolution of a [`SolverChoice`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// Dense LU with partial pivoting ([`DenseMatrix`]).
    Dense,
    /// Sparse Gilbert–Peierls LU over the compile-time sparsity
    /// pattern ([`SparseLu`]).
    Sparse,
}

/// Unknown count at which [`SolverChoice::Auto`] switches to the
/// sparse backend. Every hand-built cell circuit in this repository
/// sits well below this (a 6T cell has 10 unknowns), so their
/// bit-exact dense goldens are untouched; generated column arrays sit
/// well above it.
pub const SPARSE_AUTO_THRESHOLD: usize = 48;

/// The assembled system matrix plus its factorisation scratch, as one
/// matched pair per backend.
///
/// Holding the pair in a single enum (rather than separate
/// matrix/factor fields) makes a dense-matrix-with-sparse-factors
/// state unrepresentable — the dispatch below has no impossible arm.
// One workspace holds exactly one SolverSystem — never collections of
// them — so the size skew between the two arms costs nothing, while
// boxing the large arm would put an indirection in the Newton loop.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub(crate) enum SolverSystem {
    /// Dense Jacobian + dense LU scratch.
    Dense {
        /// The assembled Jacobian.
        jac: DenseMatrix,
        /// LU scratch (`solve_in_place` destroys the matrix it
        /// factors, so the factorisation runs in this copy and `jac`
        /// survives for the next fill-pattern clear).
        lu: DenseMatrix,
    },
    /// CSC Jacobian + sparse LU factors.
    Sparse {
        /// The assembled Jacobian over the compiled sparsity pattern.
        jac: CscMatrix,
        /// Reusable Gilbert–Peierls factor workspace (factors into its
        /// own L/U storage; `jac` is read-only during factorisation).
        lu: SparseLu,
    },
}

impl SolverSystem {
    /// Allocates the backend `compiled` was compiled for.
    fn for_circuit(compiled: &CompiledCircuit) -> Self {
        let n = compiled.n_unknowns;
        match compiled.solver {
            SolverKind::Dense => Self::Dense {
                jac: DenseMatrix::zeros(n, n),
                lu: DenseMatrix::zeros(n, n),
            },
            SolverKind::Sparse => Self::Sparse {
                jac: CscMatrix::zeros(&compiled.pattern),
                lu: SparseLu::with_column_order(&compiled.order),
            },
        }
    }

    // lint: hot-loop
    //
    // `add`, `clear_fill` and `factor_solve` are the per-iteration
    // matrix operations of the Newton loop; both arms are
    // allocation-free on reuse.

    /// Adds `v` to assembled entry `(r, c)` — the MNA stamp.
    #[inline]
    pub(crate) fn add(&mut self, r: usize, c: usize, v: f64) {
        match self {
            Self::Dense { jac, .. } => jac.add(r, c, v),
            Self::Sparse { jac, .. } => jac.add(r, c, v),
        }
    }

    /// Clears the assembled matrix for re-stamping: dense zeroes
    /// exactly the fill entries (everything else is zero forever),
    /// sparse memsets its value array (its storage *is* the fill
    /// pattern).
    fn clear_fill(&mut self, fill: &[(usize, usize)]) {
        match self {
            Self::Dense { jac, .. } => {
                for &(r, c) in fill {
                    jac.set(r, c, 0.0);
                }
            }
            Self::Sparse { jac, .. } => jac.clear(),
        }
    }

    /// Factors the assembled matrix and solves for `delta` in place,
    /// reporting the failing unknown index on singularity.
    fn factor_solve(&mut self, delta: &mut [f64]) -> Result<(), usize> {
        match self {
            Self::Dense { jac, lu } => {
                lu.copy_from(jac);
                lu.solve_in_place_indexed(delta)
            }
            Self::Sparse { jac, lu } => {
                lu.factor(jac)?;
                lu.solve(delta);
                Ok(())
            }
        }
    }
    // lint: end-hot-loop

    /// Reads an assembled entry (cold path: in-crate tests only).
    #[cfg(test)]
    pub(crate) fn get(&self, r: usize, c: usize) -> f64 {
        match self {
            Self::Dense { jac, .. } => jac.get(r, c),
            Self::Sparse { jac, .. } => jac.get(r, c),
        }
    }

    /// Zeroes row `r` of the `n`-unknown assembled matrix — the
    /// deterministic `SingularMatrix` fault, expressed on the matrix
    /// both backends actually factor.
    fn zero_row(&mut self, r: usize, n: usize) {
        match self {
            Self::Dense { jac, .. } => {
                for c in 0..n {
                    jac.set(r, c, 0.0);
                }
            }
            Self::Sparse { jac, .. } => jac.zero_row(r),
        }
    }
}

/// Persistent solver state: every buffer the Newton iteration and the
/// transient loop need, allocated once per compiled circuit and reused
/// across solves.
///
/// A workspace is tied to the dimensions of the [`CompiledCircuit`]
/// it was created for; reusing it across solves (or across whole
/// transient runs) is bit-identical to using a fresh one, because
/// every analysis fully re-seeds the state it reads.
#[derive(Debug, Clone)]
pub struct NewtonWorkspace {
    /// The assembled Jacobian with its factorisation scratch, dense or
    /// sparse per the compiled circuit's [`SolverKind`]. Entries
    /// outside the fill pattern are zero forever; entries inside it
    /// are cleared before each assembly.
    pub(crate) sys: SolverSystem,
    /// KCL/branch residual.
    pub(crate) res: Vec<f64>,
    /// Newton update `δ` (the negated residual before the LU solve).
    pub(crate) delta: Vec<f64>,
    /// Current accepted solution.
    pub(crate) x: Vec<f64>,
    /// Trial solution for in-flight steps; promoted with a swap.
    pub(crate) x_try: Vec<f64>,
    /// Per-capacitor companion-model history.
    pub(crate) cap_states: Vec<CapState>,
    /// Stamp context: evaluation time.
    pub(crate) t: f64,
    /// Stamp context: capacitor integration mode.
    pub(crate) mode: IntegMode,
    /// Stamp context: homotopy scale on independent sources.
    pub(crate) source_scale: f64,
    /// Stamp context: homotopy conductance added to the circuit gmin.
    pub(crate) gmin_extra: f64,
    /// Pre-resolved fault triggers counting Newton solves.
    pub(crate) solve_arm: FaultArm,
    /// Pre-resolved fault triggers counting transient step attempts
    /// (consulted by the transient loop and the stepper, not here).
    pub(crate) step_arm: FaultArm,
    /// Solver telemetry counters (see [`SolverStats`]): bare `u64`
    /// fields the hot loops bump unconditionally — deterministic,
    /// branch-free, and consumed only at job boundaries.
    pub(crate) stats: SolverStats,
}

impl NewtonWorkspace {
    /// Allocates every buffer for `compiled`'s dimensions.
    pub fn new(compiled: &CompiledCircuit) -> Self {
        let n = compiled.n_unknowns;
        Self {
            sys: SolverSystem::for_circuit(compiled),
            res: vec![0.0; n],
            delta: Vec::with_capacity(n),
            x: vec![0.0; n],
            x_try: Vec::with_capacity(n),
            cap_states: vec![CapState::default(); compiled.cap_state_count],
            t: 0.0,
            mode: IntegMode::Dc,
            source_scale: 1.0,
            gmin_extra: 0.0,
            solve_arm: FaultArm::disarmed(),
            step_arm: FaultArm::disarmed(),
            stats: SolverStats::default(),
        }
    }

    /// The most recent accepted solution (node voltages, then
    /// voltage-source branch currents).
    pub fn solution(&self) -> &[f64] {
        &self.x
    }

    /// Arms deterministic fault injection on this workspace: `solve`
    /// triggers count Newton solves, `step` triggers count transient
    /// step attempts. Arms persist across analyses on the same
    /// workspace (counters are not reset by a new run), so the N-th
    /// solve is the N-th since arming.
    pub fn arm_faults(&mut self, solve: FaultArm, step: FaultArm) {
        self.solve_arm = solve;
        self.step_arm = step;
    }

    /// The solver telemetry accumulated on this workspace since
    /// construction (or the last [`NewtonWorkspace::reset_stats`]):
    /// Newton solves and iterations, accepted/rejected transient
    /// steps, rescue-ladder rungs and triggered fault arms. This
    /// replaces the PR4 `solve_attempts()` / `rescue_rungs_fired()`
    /// accessors; rescue-ladder coverage tests and failure
    /// diagnostics read it, and ensemble job probes absorb deltas of
    /// it ([`SolverStats::delta_since`]).
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Zeroes the telemetry counters (the solver state is untouched).
    pub fn reset_stats(&mut self) {
        self.stats = SolverStats::default();
    }

    /// Promotes the trial solution without copying.
    pub(crate) fn accept_trial(&mut self) {
        std::mem::swap(&mut self.x, &mut self.x_try);
    }

    /// Zeroes the capacitor histories (fresh-analysis semantics).
    pub(crate) fn reset_states(&mut self) {
        self.cap_states
            .iter_mut()
            .for_each(|s| *s = CapState::default());
    }
}

/// The value of unknown `n` in `x` (`None` = ground = 0 V).
#[inline]
fn v_at(x: &[f64], n: Option<usize>) -> f64 {
    match n {
        Some(i) => x[i],
        None => 0.0,
    }
}

/// Adds `value` to the residual entry of unknown `n` (no-op for
/// ground).
#[inline]
fn add_res(res: &mut [f64], n: Option<usize>, value: f64) {
    if let Some(i) = n {
        res[i] += value;
    }
}

/// Adds `value` to the Jacobian entry (∂r[row] / ∂x[col]).
#[inline]
fn add_jac(sys: &mut SolverSystem, row: Option<usize>, col: Option<usize>, value: f64) {
    if let (Some(r), Some(c)) = (row, col) {
        sys.add(r, c, value);
    }
}

/// A two-terminal conductance + current stamp: current `i = g·(va−vb) +
/// i0` flows from `a` to `b`.
fn stamp_branch(
    sys: &mut SolverSystem,
    res: &mut [f64],
    x: &[f64],
    a: Option<usize>,
    b: Option<usize>,
    g: f64,
    i0: f64,
) {
    let v = v_at(x, a) - v_at(x, b);
    let i = g * v + i0;
    add_res(res, a, i);
    add_res(res, b, -i);
    add_jac(sys, a, a, g);
    add_jac(sys, a, b, -g);
    add_jac(sys, b, a, -g);
    add_jac(sys, b, b, g);
}

/// Records the fill positions a two-terminal branch stamp can write.
fn fill_branch(fill: &mut Vec<(usize, usize)>, a: Option<usize>, b: Option<usize>) {
    for (r, c) in [(a, a), (a, b), (b, a), (b, b)] {
        if let (Some(r), Some(c)) = (r, c) {
            fill.push((r, c));
        }
    }
}

/// An index-resolved device: how one element contributes to the
/// compiled system.
///
/// Implementations receive the candidate solution `x` and the
/// workspace, whose context fields (`t`, integration mode, homotopy
/// scales, capacitor histories) parameterise the evaluation; they
/// accumulate into the workspace residual and Jacobian.
pub trait Stamp {
    /// Accumulates this device's residual and Jacobian contributions
    /// at the candidate solution `x`.
    fn stamp(&self, x: &[f64], ws: &mut NewtonWorkspace);

    /// Records every Jacobian entry this device can ever write (over
    /// all integration modes), so assembly can clear exactly the
    /// touched entries.
    fn register_fill(&self, fill: &mut Vec<(usize, usize)>);

    /// Refreshes this device's integration state from an accepted
    /// solution (capacitor companion histories); default: stateless.
    fn update_state(&self, _x: &[f64], _ws: &mut NewtonWorkspace) {}

    /// Appends the time points a transient run must land on exactly
    /// (PWL source corners); default: none.
    fn append_breakpoints(&self, _out: &mut Vec<f64>) {}
}

#[derive(Debug, Clone)]
pub(crate) struct ResistorStamp {
    pub a: Option<usize>,
    pub b: Option<usize>,
    pub g: f64,
}

impl Stamp for ResistorStamp {
    fn stamp(&self, x: &[f64], ws: &mut NewtonWorkspace) {
        stamp_branch(&mut ws.sys, &mut ws.res, x, self.a, self.b, self.g, 0.0);
    }

    fn register_fill(&self, fill: &mut Vec<(usize, usize)>) {
        fill_branch(fill, self.a, self.b);
    }
}

#[derive(Debug, Clone)]
pub(crate) struct CapacitorStamp {
    pub a: Option<usize>,
    pub b: Option<usize>,
    pub c: f64,
    /// Index into the workspace capacitor-history table.
    pub state: usize,
}

impl Stamp for CapacitorStamp {
    fn stamp(&self, x: &[f64], ws: &mut NewtonWorkspace) {
        let (g, i0) = ws.mode.companion(self.c, ws.cap_states[self.state]);
        // lint: allow(HYG004): exact-zero sentinel skips unstamped entries
        if g != 0.0 || i0 != 0.0 {
            stamp_branch(&mut ws.sys, &mut ws.res, x, self.a, self.b, g, i0);
        }
    }

    fn register_fill(&self, fill: &mut Vec<(usize, usize)>) {
        fill_branch(fill, self.a, self.b);
    }

    fn update_state(&self, x: &[f64], ws: &mut NewtonWorkspace) {
        let v = v_at(x, self.a) - v_at(x, self.b);
        let (g, i0) = ws.mode.companion(self.c, ws.cap_states[self.state]);
        ws.cap_states[self.state] = CapState {
            v_prev: v,
            i_prev: g * v + i0,
        };
    }
}

#[derive(Debug, Clone)]
pub(crate) struct VsourceStamp {
    pub plus: Option<usize>,
    pub minus: Option<usize>,
    /// The branch-current unknown / branch-equation row.
    pub row: usize,
    pub source: Source,
}

impl Stamp for VsourceStamp {
    fn stamp(&self, x: &[f64], ws: &mut NewtonWorkspace) {
        let i_branch = x[self.row];
        // Branch current leaves the + node through the source.
        add_res(&mut ws.res, self.plus, i_branch);
        add_res(&mut ws.res, self.minus, -i_branch);
        add_jac(&mut ws.sys, self.plus, Some(self.row), 1.0);
        add_jac(&mut ws.sys, self.minus, Some(self.row), -1.0);
        // Branch equation.
        ws.res[self.row] =
            v_at(x, self.plus) - v_at(x, self.minus) - ws.source_scale * self.source.eval(ws.t);
        if let Some(i) = self.plus {
            ws.sys.add(self.row, i, 1.0);
        }
        if let Some(i) = self.minus {
            ws.sys.add(self.row, i, -1.0);
        }
    }

    fn register_fill(&self, fill: &mut Vec<(usize, usize)>) {
        for i in [self.plus, self.minus].into_iter().flatten() {
            fill.push((i, self.row));
            fill.push((self.row, i));
        }
    }

    fn append_breakpoints(&self, out: &mut Vec<f64>) {
        out.extend(self.source.breakpoints());
    }
}

#[derive(Debug, Clone)]
pub(crate) struct IsourceStamp {
    pub from: Option<usize>,
    pub to: Option<usize>,
    pub source: Source,
}

impl Stamp for IsourceStamp {
    fn stamp(&self, x: &[f64], ws: &mut NewtonWorkspace) {
        let _ = x;
        let i = ws.source_scale * self.source.eval(ws.t);
        add_res(&mut ws.res, self.from, i);
        add_res(&mut ws.res, self.to, -i);
    }

    fn register_fill(&self, _fill: &mut Vec<(usize, usize)>) {
        // Current sources contribute to the residual only.
    }

    fn append_breakpoints(&self, out: &mut Vec<f64>) {
        out.extend(self.source.breakpoints());
    }
}

#[derive(Debug, Clone)]
pub(crate) struct MosfetStamp {
    pub d: Option<usize>,
    pub g: Option<usize>,
    pub s: Option<usize>,
    pub params: MosfetParams,
    /// Workspace history slots for the Cgs, Cgd, Cdb charge model.
    pub caps: [usize; 3],
}

impl Stamp for MosfetStamp {
    fn stamp(&self, x: &[f64], ws: &mut NewtonWorkspace) {
        let (id, dd, dg, ds) = self
            .params
            .eval(v_at(x, self.d), v_at(x, self.g), v_at(x, self.s));
        add_res(&mut ws.res, self.d, id);
        add_res(&mut ws.res, self.s, -id);
        add_jac(&mut ws.sys, self.d, self.d, dd);
        add_jac(&mut ws.sys, self.d, self.g, dg);
        add_jac(&mut ws.sys, self.d, self.s, ds);
        add_jac(&mut ws.sys, self.s, self.d, -dd);
        add_jac(&mut ws.sys, self.s, self.g, -dg);
        add_jac(&mut ws.sys, self.s, self.s, -ds);
        // Charge model: Cgs, Cgd, Cdb.
        let (g_gs, i_gs) = ws
            .mode
            .companion(self.params.cgs, ws.cap_states[self.caps[0]]);
        // lint: allow(HYG004): exact-zero sentinel skips unstamped entries
        if g_gs != 0.0 || i_gs != 0.0 {
            stamp_branch(&mut ws.sys, &mut ws.res, x, self.g, self.s, g_gs, i_gs);
        }
        let (g_gd, i_gd) = ws
            .mode
            .companion(self.params.cgd, ws.cap_states[self.caps[1]]);
        // lint: allow(HYG004): exact-zero sentinel skips unstamped entries
        if g_gd != 0.0 || i_gd != 0.0 {
            stamp_branch(&mut ws.sys, &mut ws.res, x, self.g, self.d, g_gd, i_gd);
        }
        let (g_db, i_db) = ws
            .mode
            .companion(self.params.cdb, ws.cap_states[self.caps[2]]);
        // lint: allow(HYG004): exact-zero sentinel skips unstamped entries
        if g_db != 0.0 || i_db != 0.0 {
            stamp_branch(&mut ws.sys, &mut ws.res, x, self.d, None, g_db, i_db);
        }
    }

    fn register_fill(&self, fill: &mut Vec<(usize, usize)>) {
        for row in [self.d, self.s] {
            for col in [self.d, self.g, self.s] {
                if let (Some(r), Some(c)) = (row, col) {
                    fill.push((r, c));
                }
            }
        }
        fill_branch(fill, self.g, self.s);
        fill_branch(fill, self.g, self.d);
        fill_branch(fill, self.d, None);
    }

    fn update_state(&self, x: &[f64], ws: &mut NewtonWorkspace) {
        let mut refresh = |a: Option<usize>, b: Option<usize>, c: f64, idx: usize| {
            let v = v_at(x, a) - v_at(x, b);
            let (g, i0) = ws.mode.companion(c, ws.cap_states[idx]);
            ws.cap_states[idx] = CapState {
                v_prev: v,
                i_prev: g * v + i0,
            };
        };
        refresh(self.g, self.s, self.params.cgs, self.caps[0]);
        refresh(self.g, self.d, self.params.cgd, self.caps[1]);
        refresh(self.d, None, self.params.cdb, self.caps[2]);
    }
}

/// One lowered element. Static dispatch over the concrete stamps: the
/// assembly loop is a jump table, not a vtable walk.
#[derive(Debug, Clone)]
pub(crate) enum DeviceStamp {
    Resistor(ResistorStamp),
    Capacitor(CapacitorStamp),
    Vsource(VsourceStamp),
    Isource(IsourceStamp),
    Mosfet(MosfetStamp),
}

impl DeviceStamp {
    /// Lowers one netlist element into its index-resolved stamp.
    fn lower(element: &Element, n_nodes: usize) -> Self {
        match element {
            Element::Resistor { a, b, conductance } => Self::Resistor(ResistorStamp {
                a: a.unknown_index(),
                b: b.unknown_index(),
                g: *conductance,
            }),
            Element::Capacitor {
                a,
                b,
                capacitance,
                state,
            } => Self::Capacitor(CapacitorStamp {
                a: a.unknown_index(),
                b: b.unknown_index(),
                c: *capacitance,
                state: *state,
            }),
            Element::Vsource {
                plus,
                minus,
                source,
                branch,
            } => Self::Vsource(VsourceStamp {
                plus: plus.unknown_index(),
                minus: minus.unknown_index(),
                row: n_nodes + branch,
                source: source.clone(),
            }),
            Element::Isource { from, to, source } => Self::Isource(IsourceStamp {
                from: from.unknown_index(),
                to: to.unknown_index(),
                source: source.clone(),
            }),
            Element::Mosfet {
                d,
                g,
                s,
                params,
                cap_states,
            } => Self::Mosfet(MosfetStamp {
                d: d.unknown_index(),
                g: g.unknown_index(),
                s: s.unknown_index(),
                params: *params,
                caps: *cap_states,
            }),
        }
    }

    /// The rewritable source waveform, for source-bearing devices.
    fn source_mut(&mut self) -> Option<&mut Source> {
        match self {
            Self::Vsource(v) => Some(&mut v.source),
            Self::Isource(i) => Some(&mut i.source),
            _ => None,
        }
    }
}

impl Stamp for DeviceStamp {
    fn stamp(&self, x: &[f64], ws: &mut NewtonWorkspace) {
        match self {
            Self::Resistor(d) => d.stamp(x, ws),
            Self::Capacitor(d) => d.stamp(x, ws),
            Self::Vsource(d) => d.stamp(x, ws),
            Self::Isource(d) => d.stamp(x, ws),
            Self::Mosfet(d) => d.stamp(x, ws),
        }
    }

    fn register_fill(&self, fill: &mut Vec<(usize, usize)>) {
        match self {
            Self::Resistor(d) => d.register_fill(fill),
            Self::Capacitor(d) => d.register_fill(fill),
            Self::Vsource(d) => d.register_fill(fill),
            Self::Isource(d) => d.register_fill(fill),
            Self::Mosfet(d) => d.register_fill(fill),
        }
    }

    fn update_state(&self, x: &[f64], ws: &mut NewtonWorkspace) {
        match self {
            Self::Resistor(d) => d.update_state(x, ws),
            Self::Capacitor(d) => d.update_state(x, ws),
            Self::Vsource(d) => d.update_state(x, ws),
            Self::Isource(d) => d.update_state(x, ws),
            Self::Mosfet(d) => d.update_state(x, ws),
        }
    }

    fn append_breakpoints(&self, out: &mut Vec<f64>) {
        match self {
            Self::Resistor(d) => d.append_breakpoints(out),
            Self::Capacitor(d) => d.append_breakpoints(out),
            Self::Vsource(d) => d.append_breakpoints(out),
            Self::Isource(d) => d.append_breakpoints(out),
            Self::Mosfet(d) => d.append_breakpoints(out),
        }
    }
}

/// A [`Circuit`] lowered for repeated solving: node names resolved to
/// dense indices, elements lowered to [`Stamp`]s, Jacobian fill
/// pattern precomputed.
///
/// Stamps keep the element order (and therefore the floating-point
/// accumulation order) of the source circuit, so compiled results are
/// bit-identical to the per-run engine this replaced. [`ElementId`]s
/// of the source circuit address the same device here (stamp `k`
/// lowers element `k`), which is what [`CompiledCircuit::set_source`]
/// relies on.
#[derive(Debug, Clone)]
pub struct CompiledCircuit {
    pub(crate) n_nodes: usize,
    pub(crate) n_unknowns: usize,
    pub(crate) cap_state_count: usize,
    pub(crate) gmin: f64,
    pub(crate) stamps: Vec<DeviceStamp>,
    /// Sorted, deduplicated Jacobian entries any stamp (or the gmin
    /// leak) can write.
    pub(crate) fill: Vec<(usize, usize)>,
    /// CSC image of `fill` — the sparse backend's symbolic analysis,
    /// computed once here and shared by every workspace.
    pub(crate) pattern: SparsityPattern,
    /// Fill-reducing column elimination order for the sparse backend
    /// (empty on the dense backend, where it is meaningless). Part of
    /// the compile-time symbolic analysis: computed once, shared by
    /// every workspace.
    pub(crate) order: Vec<usize>,
    /// The linear-solver backend this circuit was compiled for.
    pub(crate) solver: SolverKind,
    /// Names of the MNA unknowns (node names, then `i(v<branch>)`),
    /// for singular-pivot diagnostics.
    pub(crate) unknown_names: Vec<String>,
}

impl CompiledCircuit {
    /// Lowers `ckt` into its compiled form, selecting the linear
    /// solver automatically by unknown count
    /// ([`SolverChoice::Auto`]).
    pub fn compile(ckt: &Circuit) -> Self {
        Self::compile_with_solver(ckt, SolverChoice::Auto)
    }

    /// [`compile`](Self::compile) with an explicit linear-solver
    /// choice (forcing the sparse backend at small sizes is what the
    /// dense↔sparse equivalence suite does).
    pub fn compile_with_solver(ckt: &Circuit, choice: SolverChoice) -> Self {
        let n_nodes = ckt.node_count();
        let n_unknowns = ckt.unknown_count();
        let stamps: Vec<DeviceStamp> = ckt
            .elements
            .iter()
            .map(|e| DeviceStamp::lower(e, n_nodes))
            .collect();
        let mut fill: Vec<(usize, usize)> = (0..n_nodes).map(|i| (i, i)).collect();
        for stamp in &stamps {
            stamp.register_fill(&mut fill);
        }
        fill.sort_unstable();
        fill.dedup();
        let pattern = SparsityPattern::new(n_unknowns, &fill);
        let solver = match choice {
            SolverChoice::Dense => SolverKind::Dense,
            SolverChoice::Sparse => SolverKind::Sparse,
            SolverChoice::Auto => {
                if n_unknowns >= SPARSE_AUTO_THRESHOLD {
                    SolverKind::Sparse
                } else {
                    SolverKind::Dense
                }
            }
        };
        let order = match solver {
            SolverKind::Sparse => pattern.min_degree_ordering(),
            SolverKind::Dense => Vec::new(),
        };
        Self {
            n_nodes,
            n_unknowns,
            cap_state_count: ckt.cap_state_count,
            gmin: ckt.gmin,
            stamps,
            fill,
            pattern,
            order,
            solver,
            unknown_names: ckt.unknown_names(),
        }
    }

    /// Number of non-ground nodes.
    pub fn node_count(&self) -> usize {
        self.n_nodes
    }

    /// System size: node voltages plus voltage-source branch currents.
    pub fn unknown_count(&self) -> usize {
        self.n_unknowns
    }

    /// The linear-solver backend selected at compile time.
    pub fn solver_kind(&self) -> SolverKind {
        self.solver
    }

    /// Number of structural nonzeros in the Jacobian fill pattern.
    pub fn nnz(&self) -> usize {
        self.fill.len()
    }

    /// Name of MNA unknown `i` (a node name, or `i(v<branch>)` for a
    /// voltage-source branch current).
    pub fn unknown_name(&self, i: usize) -> Option<&str> {
        self.unknown_names.get(i).map(String::as_str)
    }

    /// The [`SpiceError::SingularMatrix`] for a pivot failure at
    /// unknown `col`. Built on the Newton hot path, so it is
    /// allocation-free: the error carries the index, and reporting
    /// boundaries resolve it with [`Self::unknown_name`].
    pub(crate) fn singular_at(&self, col: usize) -> SpiceError {
        SpiceError::SingularMatrix { col }
    }

    /// Rewrites the waveform of voltage/current source `id` (the
    /// [`ElementId`] from the source [`Circuit`]).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidElement`] if `id` does not name a
    /// voltage or current source.
    pub fn set_source(&mut self, id: ElementId, new_source: Source) -> Result<(), SpiceError> {
        match self.stamps.get_mut(id.0).and_then(DeviceStamp::source_mut) {
            Some(slot) => {
                *slot = new_source;
                Ok(())
            }
            None => Err(SpiceError::InvalidElement {
                reason: "set_source requires a voltage or current source id",
            }),
        }
    }

    /// All PWL-source breakpoint times, sorted and deduplicated
    /// (reflects any [`set_source`](Self::set_source) rewrites).
    pub fn breakpoints(&self) -> Vec<f64> {
        let mut times = Vec::new();
        for stamp in &self.stamps {
            stamp.append_breakpoints(&mut times);
        }
        times.sort_by(f64::total_cmp);
        times.dedup();
        times
    }

    /// The MOSFET stamp for `id`, for state readback.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidElement`] if `id` is not a MOSFET.
    pub(crate) fn mosfet(&self, id: ElementId) -> Result<&MosfetStamp, SpiceError> {
        match self.stamps.get(id.0) {
            Some(DeviceStamp::Mosfet(m)) => Ok(m),
            _ => Err(SpiceError::InvalidElement {
                reason: "expected a MOSFET id",
            }),
        }
    }

    // lint: hot-loop
    //
    // `assemble` and `newton` run once per Newton iteration per
    // timestep — the innermost engine loop. They must stay
    // allocation-free: everything they touch is preallocated in the
    // `NewtonWorkspace`.

    /// Assembles the residual and Jacobian at solution `x`, under the
    /// workspace's stamp context (`t`, mode, homotopy scales).
    pub(crate) fn assemble(&self, x: &[f64], ws: &mut NewtonWorkspace) {
        ws.sys.clear_fill(&self.fill);
        ws.res.iter_mut().for_each(|r| *r = 0.0);

        // gmin to ground from every node.
        let g_leak = self.gmin + ws.gmin_extra;
        if g_leak > 0.0 {
            for (i, &v) in x.iter().enumerate().take(self.n_nodes) {
                ws.res[i] += g_leak * v;
                ws.sys.add(i, i, g_leak);
            }
        }

        for stamp in &self.stamps {
            stamp.stamp(x, ws);
        }
    }

    /// Damped Newton iteration on `x` under the current workspace
    /// context. `x` enters as the initial guess and leaves as the
    /// solution.
    fn newton(
        &self,
        x: &mut [f64],
        ws: &mut NewtonWorkspace,
        config: &NewtonConfig,
    ) -> Result<(), SpiceError> {
        let n_nodes = self.n_nodes;
        debug_assert_eq!(x.len(), self.n_unknowns);
        ws.stats.solve_attempts += 1;
        // Fault injection resolves to one pre-armed branch per solve
        // (a counter bump and an integer compare); the per-iteration
        // cost below is untouched. Injected failures are driven
        // through the *real* error paths: a genuinely zeroed LU row, a
        // genuinely poisoned residual, a genuinely exhausted loop.
        let injected = ws.solve_arm.check();
        if injected.is_some() {
            ws.stats.faults_injected += 1;
        }
        let force_nonconvergence = matches!(
            injected,
            Some(FaultKind::NonConvergence | FaultKind::TimestepFloor)
        );

        let mut last_max_dv = f64::NAN;
        for iter in 0..config.max_iterations {
            ws.stats.newton_iterations += 1;
            self.assemble(x, ws);
            if iter == 0 && injected == Some(FaultKind::NanResidual) {
                if let Some(r) = ws.res.first_mut() {
                    *r = f64::NAN;
                }
            }

            // Solve J delta = -res; the factorisation runs in the
            // backend's scratch, so the assembled matrix survives.
            ws.delta.clear();
            ws.delta.extend(ws.res.iter().map(|r| -r));
            if iter == 0 && injected == Some(FaultKind::SingularMatrix) {
                ws.sys.zero_row(0, self.n_unknowns);
            }
            ws.sys
                .factor_solve(&mut ws.delta)
                .map_err(|col| self.singular_at(col))?;

            // A non-finite update poisons every later iterate, and —
            // because `f64::max` ignores NaN — would otherwise slip
            // through the max-fold convergence checks below as an
            // apparent 0.0. Bail out immediately instead.
            if ws.delta.iter().any(|d| !d.is_finite()) {
                return Err(SpiceError::NumericalBreakdown {
                    time: ws.t,
                    iteration: iter,
                });
            }

            // Damping: clamp node-voltage updates.
            let max_dv = ws.delta[..n_nodes]
                .iter()
                .fold(0.0f64, |m, d| m.max(d.abs()));
            last_max_dv = max_dv;
            let scale = if max_dv > config.v_step_clamp {
                config.v_step_clamp / max_dv
            } else {
                1.0
            };
            for (xi, di) in x.iter_mut().zip(&ws.delta) {
                *xi += scale * di;
            }

            // lint: allow(HYG004): exact 1.0 means "no scaling requested"
            if scale == 1.0 && max_dv < config.v_tol && !force_nonconvergence {
                // Check the residual at the updated point.
                self.assemble(x, ws);
                let max_res = ws.res[..n_nodes].iter().fold(0.0f64, |m, r| m.max(r.abs()));
                if max_res < config.i_tol {
                    return Ok(());
                }
            }
        }
        // Cold failure path: one extra assembly buys the diagnostic
        // residual for the report.
        self.assemble(x, ws);
        let max_res = ws.res[..n_nodes].iter().fold(0.0f64, |m, r| m.max(r.abs()));
        Err(SpiceError::NonConvergence {
            time: ws.t,
            iterations: config.max_iterations,
            max_delta: last_max_dv,
            max_residual: max_res,
        })
    }
    // lint: end-hot-loop

    /// Newton-solves in place on the workspace's accepted solution
    /// `x`, under the given stamp context.
    pub(crate) fn solve(
        &self,
        ws: &mut NewtonWorkspace,
        t: f64,
        mode: IntegMode,
        source_scale: f64,
        gmin_extra: f64,
        config: &NewtonConfig,
    ) -> Result<(), SpiceError> {
        ws.t = t;
        ws.mode = mode;
        ws.source_scale = source_scale;
        ws.gmin_extra = gmin_extra;
        let mut x = std::mem::take(&mut ws.x);
        let outcome = self.newton(&mut x, ws, config);
        ws.x = x;
        outcome
    }

    /// Newton-solves into the trial buffer, starting from the accepted
    /// solution; `ws.x` is untouched, so a failed step can be retried.
    pub(crate) fn solve_trial(
        &self,
        ws: &mut NewtonWorkspace,
        t: f64,
        mode: IntegMode,
        config: &NewtonConfig,
    ) -> Result<(), SpiceError> {
        self.solve_trial_with(ws, t, mode, 0.0, false, config)
    }

    /// [`solve_trial`](Self::solve_trial) with rescue-ladder controls:
    /// `gmin_extra` adds homotopy conductance, and `warm` keeps the
    /// current trial buffer as the initial guess (for gmin-ramp
    /// continuation) instead of re-seeding from the accepted solution.
    pub(crate) fn solve_trial_with(
        &self,
        ws: &mut NewtonWorkspace,
        t: f64,
        mode: IntegMode,
        gmin_extra: f64,
        warm: bool,
        config: &NewtonConfig,
    ) -> Result<(), SpiceError> {
        ws.t = t;
        ws.mode = mode;
        ws.source_scale = 1.0;
        ws.gmin_extra = gmin_extra;
        let mut x_try = std::mem::take(&mut ws.x_try);
        if !warm {
            x_try.clear();
            x_try.extend_from_slice(&ws.x);
        }
        let outcome = self.newton(&mut x_try, ws, config);
        ws.x_try = x_try;
        outcome
    }

    /// After an accepted step, refreshes every capacitor's `(v_prev,
    /// i_prev)` from the converged solution (the trial buffer when
    /// `from_trial`, the accepted one otherwise) under the workspace's
    /// current integration mode.
    pub(crate) fn refresh_states(&self, ws: &mut NewtonWorkspace, from_trial: bool) {
        let x = std::mem::take(if from_trial { &mut ws.x_try } else { &mut ws.x });
        for stamp in &self.stamps {
            stamp.update_state(&x, ws);
        }
        if from_trial {
            ws.x_try = x;
        } else {
            ws.x = x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Source;

    fn solve_dc(ckt: &Circuit) -> Vec<f64> {
        let compiled = CompiledCircuit::compile(ckt);
        let mut ws = NewtonWorkspace::new(&compiled);
        compiled
            .solve(
                &mut ws,
                0.0,
                IntegMode::Dc,
                1.0,
                0.0,
                &NewtonConfig::default(),
            )
            .unwrap();
        ws.solution().to_vec()
    }

    #[test]
    fn resistor_divider_solves_exactly() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Source::Dc(3.0));
        ckt.resistor(a, b, 1e3);
        ckt.resistor(b, Circuit::GROUND, 2e3);
        let x = solve_dc(&ckt);
        assert!((x[0] - 3.0).abs() < 1e-6, "source node {x:?}");
        assert!((x[1] - 2.0).abs() < 1e-6, "divider node {x:?}");
        // Branch current: 3V across 3k = 1 mA flowing out of +.
        assert!((x[2] + 1e-3).abs() < 1e-8, "branch current {x:?}");
    }

    #[test]
    fn current_source_into_resistor() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        // 1 mA driven out of ground into node a.
        ckt.isource(Circuit::GROUND, a, Source::Dc(1e-3));
        ckt.resistor(a, Circuit::GROUND, 2e3);
        let x = solve_dc(&ckt);
        assert!((x[0] - 2.0).abs() < 1e-6, "node voltage {x:?}");
    }

    #[test]
    fn floating_node_is_held_by_gmin() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("float");
        ckt.vsource(a, Circuit::GROUND, Source::Dc(1.0));
        ckt.resistor(a, b, 1e3);
        // b only connects through the resistor: gmin keeps the matrix
        // regular and pulls b to a (no current path).
        let x = solve_dc(&ckt);
        assert!((x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn nonlinear_diode_connected_mosfet_converges() {
        let mut ckt = Circuit::new();
        let d = ckt.node("d");
        // Diode-connected NMOS pulled up through a resistor.
        let vdd = ckt.node("vdd");
        ckt.vsource(vdd, Circuit::GROUND, Source::Dc(1.1));
        ckt.resistor(vdd, d, 10e3);
        ckt.mosfet(d, d, Circuit::GROUND, crate::MosfetParams::nmos_90nm(2.0));
        let x = solve_dc(&ckt);
        let vd = x[0];
        // The gate-drain node settles somewhere above Vth, below Vdd.
        assert!(vd > 0.3 && vd < 1.0, "diode node {vd}");
    }

    #[test]
    fn fill_pattern_is_sorted_deduplicated_and_covers_assembly() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Source::Dc(1.0));
        ckt.resistor(a, b, 1e3);
        ckt.capacitor(b, Circuit::GROUND, 1e-12);
        ckt.mosfet(b, a, Circuit::GROUND, crate::MosfetParams::nmos_90nm(1.0));
        let compiled = CompiledCircuit::compile(&ckt);
        assert!(
            compiled.fill.windows(2).all(|w| w[0] < w[1]),
            "fill must be strictly sorted (deduplicated)"
        );

        // Assemble under the transient mode (widest stamp footprint)
        // and check no nonzero escaped the registered pattern.
        let mut ws = NewtonWorkspace::new(&compiled);
        ws.mode = IntegMode::Trapezoidal { h: 1e-12 };
        for s in ws.cap_states.iter_mut() {
            *s = CapState {
                v_prev: 0.3,
                i_prev: 1e-6,
            };
        }
        let x = vec![0.7; compiled.unknown_count()];
        compiled.assemble(&x, &mut ws);
        for r in 0..compiled.unknown_count() {
            for c in 0..compiled.unknown_count() {
                if ws.sys.get(r, c) != 0.0 {
                    assert!(
                        compiled.fill.binary_search(&(r, c)).is_ok(),
                        "({r}, {c}) written outside the fill pattern"
                    );
                }
            }
        }
    }

    #[test]
    fn set_source_rejects_non_source_elements() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let r = ckt.resistor(a, Circuit::GROUND, 1e3);
        let v = ckt.vsource(a, Circuit::GROUND, Source::Dc(1.0));
        let mut compiled = CompiledCircuit::compile(&ckt);
        assert!(matches!(
            compiled.set_source(r, Source::Dc(2.0)),
            Err(SpiceError::InvalidElement { .. })
        ));
        compiled.set_source(v, Source::Dc(2.0)).unwrap();
        let mut ws = NewtonWorkspace::new(&compiled);
        compiled
            .solve(
                &mut ws,
                0.0,
                IntegMode::Dc,
                1.0,
                0.0,
                &NewtonConfig::default(),
            )
            .unwrap();
        assert!((ws.solution()[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn workspace_reuse_is_bit_identical_to_a_fresh_workspace() {
        let mut ckt = Circuit::new();
        let d = ckt.node("d");
        let vdd = ckt.node("vdd");
        ckt.vsource(vdd, Circuit::GROUND, Source::Dc(1.1));
        ckt.resistor(vdd, d, 10e3);
        ckt.mosfet(d, d, Circuit::GROUND, crate::MosfetParams::nmos_90nm(2.0));
        let compiled = CompiledCircuit::compile(&ckt);
        let newton = NewtonConfig::default();

        let mut fresh = NewtonWorkspace::new(&compiled);
        compiled
            .solve(&mut fresh, 0.0, IntegMode::Dc, 1.0, 0.0, &newton)
            .unwrap();
        let reference: Vec<u64> = fresh.solution().iter().map(|v| v.to_bits()).collect();

        // Dirty the same workspace, re-seed, solve again.
        let mut reused = fresh;
        reused.x.iter_mut().for_each(|v| *v = 0.0);
        compiled
            .solve(&mut reused, 0.0, IntegMode::Dc, 1.0, 0.0, &newton)
            .unwrap();
        let again: Vec<u64> = reused.solution().iter().map(|v| v.to_bits()).collect();
        assert_eq!(reference, again);
    }

    #[test]
    fn singular_circuit_reports_singular_matrix() {
        // Two nodes joined only by a resistor, gmin disabled: the
        // conductance matrix is rank deficient.
        let mut ckt = Circuit::new();
        ckt.gmin = 0.0;
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.resistor(a, b, 1e3);
        let compiled = CompiledCircuit::compile(&ckt);
        let mut ws = NewtonWorkspace::new(&compiled);
        let err = compiled
            .solve(
                &mut ws,
                0.0,
                IntegMode::Dc,
                1.0,
                0.0,
                &NewtonConfig::default(),
            )
            .unwrap_err();
        assert!(
            matches!(&err, SpiceError::SingularMatrix { col } if compiled.unknown_name(*col) == Some("b")),
            "the rank collapse surfaces at node b: {err:?}"
        );
    }

    #[test]
    fn forced_sparse_backend_matches_dense_on_a_divider() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.vsource(a, Circuit::GROUND, Source::Dc(3.0));
        ckt.resistor(a, b, 1e3);
        ckt.resistor(b, Circuit::GROUND, 2e3);
        let dense = CompiledCircuit::compile(&ckt);
        assert_eq!(dense.solver_kind(), SolverKind::Dense, "auto picks dense");
        let sparse = CompiledCircuit::compile_with_solver(&ckt, SolverChoice::Sparse);
        assert_eq!(sparse.solver_kind(), SolverKind::Sparse);
        assert_eq!(sparse.nnz(), dense.nnz(), "one fill pattern, two images");
        let mut ws = NewtonWorkspace::new(&sparse);
        sparse
            .solve(
                &mut ws,
                0.0,
                IntegMode::Dc,
                1.0,
                0.0,
                &NewtonConfig::default(),
            )
            .unwrap();
        let x = ws.solution();
        let reference = solve_dc(&ckt);
        for (s, d) in x.iter().zip(&reference) {
            assert!((s - d).abs() < 1e-9, "sparse {s} vs dense {d}");
        }
    }

    #[test]
    fn sparse_singular_circuit_names_the_offending_unknown() {
        let mut ckt = Circuit::new();
        ckt.gmin = 0.0;
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.resistor(a, b, 1e3);
        let compiled = CompiledCircuit::compile_with_solver(&ckt, SolverChoice::Sparse);
        let mut ws = NewtonWorkspace::new(&compiled);
        let err = compiled
            .solve(
                &mut ws,
                0.0,
                IntegMode::Dc,
                1.0,
                0.0,
                &NewtonConfig::default(),
            )
            .unwrap_err();
        assert!(
            matches!(&err, SpiceError::SingularMatrix { col } if compiled.unknown_name(*col) == Some("b")),
            "sparse backend must agree with dense on the failing unknown: {err:?}"
        );
    }

    #[test]
    fn auto_threshold_switches_to_sparse_on_large_circuits() {
        let mut ckt = Circuit::new();
        let mut prev = Circuit::GROUND;
        for i in 0..SPARSE_AUTO_THRESHOLD {
            let n = ckt.node(&format!("n{i}"));
            ckt.resistor(prev, n, 1e3);
            prev = n;
        }
        ckt.isource(Circuit::GROUND, prev, Source::Dc(1e-6));
        let compiled = CompiledCircuit::compile(&ckt);
        assert_eq!(compiled.solver_kind(), SolverKind::Sparse);
        let mut ws = NewtonWorkspace::new(&compiled);
        compiled
            .solve(
                &mut ws,
                0.0,
                IntegMode::Dc,
                1.0,
                0.0,
                &NewtonConfig::default(),
            )
            .unwrap();
        // 1 µA through a 48-resistor ladder: the far node sits at
        // 48 kΩ · 1 µA plus the gmin leak's tiny correction.
        let far = ws.solution()[SPARSE_AUTO_THRESHOLD - 1];
        assert!((far - 48e-3).abs() < 1e-4, "far node {far}");
    }
}
